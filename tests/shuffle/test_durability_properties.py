"""Durability-first backends: replication accounting and zero-lineage
recovery.

The ``remote`` and ``blob`` backends recover by durability (surviving
replicas / durable objects) instead of lineage.  Three invariant
families are pinned here:

* **accounting** — replication, re-replication, and blob request bytes
  thread through the same counter-vs-monitor equality as every other
  backend, under chaos and flow retries, once background repair flows
  drain (``sim.run()`` to event exhaustion);
* **recovery** — losing a shuffle worker with a surviving replica, or
  any number of map-side executors under the object store, completes
  the job with **zero stage resubmissions** and byte-correct results;
* **tenancy** — multi-tenant streams on the durable backends reconcile
  the admission-time ledger against the completion-time monitor exactly
  (background repair traffic is untenanted and must not leak).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.failures.chaos import ChaosEvent, ChaosSchedule
from tests.conftest import make_context, small_spec
from tests.shuffle.test_counter_properties import (
    _assert_counters_match_monitor,
)

HOSTS = ("dc-a-w0", "dc-a-w1", "dc-b-w0", "dc-b-w1")


def _run_reduce_job(context, num_keys: int = 7, num_records: int = 40):
    records = [(f"k{i % num_keys}", i) for i in range(num_records)]
    context.write_input_file("/in", [records[i::4] for i in range(4)])
    result = dict(
        context.text_file("/in")
        .reduce_by_key(lambda a, b: a + b, num_partitions=8)
        .collect()
    )
    expected: dict = {}
    for key, value in records:
        expected[key] = expected.get(key, 0) + value
    return result, expected


# ---------------------------------------------------------------------------
# Counter-vs-monitor equality under chaos + flow retry
# ---------------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    backend=st.sampled_from(("remote", "blob")),
    seed=st.integers(min_value=0, max_value=3),
    victim=st.sampled_from(HOSTS),
    fail_at=st.floats(min_value=0.3, max_value=6.0),
    retry=st.booleans(),
)
def test_durable_backends_reconcile_under_chaos(
    backend, seed, victim, fail_at, retry
):
    """Whatever the failure timing — mid-map, mid-upload, mid-reduce —
    the job completes correctly and, once background repair flows drain,
    the backend's counters equal the traffic monitor over its tags."""
    overrides = {}
    if retry:
        from repro.config import HealthConfig

        overrides["health"] = HealthConfig(
            flow_retry_enabled=True,
            flow_deadline_base=0.5,
            flow_deadline_multiplier=3.0,
            max_flow_retries=2,
            flow_retry_backoff=0.05,
        )
    context = make_context(
        backend=backend,
        seed=seed,
        chaos=ChaosSchedule(
            (ChaosEvent(at=fail_at, kind="host", target=victim),)
        ),
        dfs_replication=2,
        scale_factor=1e5,
        **overrides,
    )
    result, expected = _run_reduce_job(context)
    assert result == expected
    context.sim.run()  # drain background re-replication
    _assert_counters_match_monitor(context)
    context.shutdown()


# ---------------------------------------------------------------------------
# Zero-resubmission recovery
# ---------------------------------------------------------------------------
def test_remote_worker_loss_recovers_without_resubmission():
    """Killing a pool worker after the map barrier promotes its replicas:
    reads continue, no stage is resubmitted, and the promotion plus the
    background re-replication that restores r are both counted."""
    context = make_context(
        backend="remote",
        chaos=ChaosSchedule(
            # After the hand-off (replication lands ~t=4.9), mid-reduce.
            (ChaosEvent(at=5.5, kind="shuffle_worker", target="dc-a"),)
        ),
        dfs_replication=2,
        scale_factor=1e5,
    )
    result, expected = _run_reduce_job(context)
    assert result == expected
    assert context.recovery.shuffle_worker_losses == 1
    assert context.recovery.stages_resubmitted == 0
    counters = context.shuffle_service.backend.counters
    assert counters.replica_promotions > 0
    assert counters.replication_bytes > 0
    context.sim.run()
    assert counters.rereplication_bytes > 0
    _assert_counters_match_monitor(context)
    context.shutdown()


def test_remote_replication_bytes_flow_even_without_chaos():
    """r=2 means every byte uploaded to a worker is also replicated —
    the replication counter is live traffic, not recovery-only."""
    context = make_context(backend="remote", scale_factor=1e5)
    result, expected = _run_reduce_job(context)
    assert result == expected
    counters = context.shuffle_service.backend.counters
    assert counters.replication_bytes > 0
    assert counters.rereplication_bytes == 0
    assert counters.replica_promotions == 0
    _assert_counters_match_monitor(context)
    context.shutdown()


def test_blob_survives_datacenter_outage_without_resubmission():
    """The object store outlives executors: a whole-DC outage after the
    map barrier costs re-read traffic only — zero resubmissions, zero
    recomputed tasks, results byte-identical."""
    context = make_context(
        backend="blob",
        chaos=ChaosSchedule(
            (ChaosEvent(at=2.0, kind="outage", target="dc-a"),)
        ),
        dfs_replication=2,
        scale_factor=1e5,
    )
    result, expected = _run_reduce_job(context)
    assert result == expected
    assert context.recovery.datacenter_outages == 1
    assert context.recovery.stages_resubmitted == 0
    counters = context.shuffle_service.backend.counters
    assert counters.blob_puts > 0
    assert counters.blob_gets > 0
    _assert_counters_match_monitor(context)
    context.shutdown()


def test_blob_outage_window_delays_but_never_fails_requests():
    context = make_context(
        backend="blob",
        chaos=ChaosSchedule((
            ChaosEvent(
                at=1.0, kind="blob_outage", target="dc-a", duration=3.0
            ),
        )),
        scale_factor=1e5,
    )
    result, expected = _run_reduce_job(context)
    assert result == expected
    assert context.recovery.blob_outages == 1
    assert context.recovery.stages_resubmitted == 0
    store = context.shuffle_service.blob_store()
    assert store.transient_retries > 0
    _assert_counters_match_monitor(context)
    context.shutdown()


# ---------------------------------------------------------------------------
# Per-tenant ledger reconciliation on multi-tenant streams
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", ("remote", "blob"))
def test_stream_cells_reconcile_per_tenant(backend):
    """Weighted two-tenant stream on a durable backend under WAN chaos
    with flow retries: admission-time ledger rows equal the monitor's
    completion-time rows exactly, and background repair traffic (which
    is untenanted) leaks into neither."""
    from repro.config import HealthConfig, SimulationConfig
    from repro.experiments.runner import ExperimentPlan, run_workload_once
    from repro.experiments.schemes import SCHEME_REGISTRY
    from repro.workloads import all_workloads
    from repro.workloads.arrivals import ArrivalSpec, StreamSpec, TenantSpec

    chaos = ChaosSchedule((
        ChaosEvent(at=1.0, kind="degrade", target="dc-a->dc-b",
                   factor=0.05, duration=10.0),
        ChaosEvent(at=2.0, kind="shuffle_worker", target="dc-a"),
    ))
    health = HealthConfig(
        flow_retry_enabled=True,
        breaker_enabled=True,
        flow_deadline_base=0.05,
        flow_deadline_multiplier=3.0,
        max_flow_retries=2,
        flow_retry_backoff=0.05,
    )
    stream = StreamSpec(
        arrival=ArrivalSpec(
            process="poisson", rate_per_minute=120.0, num_jobs=6
        ),
        tenants=(
            TenantSpec("gold", weight=4.0, share=1.0),
            TenantSpec("bronze", weight=1.0, share=2.0),
        ),
        policy="fair",
        max_concurrent=2,
    )
    scheme = next(
        name
        for name, spec in SCHEME_REGISTRY.items()
        if spec.backend == backend and spec.preprocess is None
    )
    plan = ExperimentPlan(
        cluster=small_spec(datacenters=("dc-a", "dc-b")),
        seeds=(0,),
        base_config=SimulationConfig(
            chaos=chaos, health=health, dfs_replication=2
        ),
        stream=stream,
    )
    result = run_workload_once(all_workloads()[0], scheme, 0, plan)
    assert result.stream["jobs_completed"] == 6
    for tenant, row in result.tenants.items():
        assert row["bytes"] == row["monitor_bytes"], tenant
        assert row["wan_bytes"] == row["monitor_wan_bytes"], tenant
    assert set(result.tenants) == {"gold", "bronze"}
