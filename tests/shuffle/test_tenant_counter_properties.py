"""Per-tenant extension of the counter-vs-monitor byte-equality invariant.

The :class:`~repro.metrics.tenants.TenantLedger` charges at flow
*admission* while the traffic monitor records at flow *completion*;
cancelled flows (chaos, WAN retries) replace their charge with the bytes
actually delivered.  Once the simulation drains, the two views must
agree per tenant **bit-for-bit** — both sides reduce the identical
multiset of per-flow floats with ``math.fsum`` — not merely to a
tolerance.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.fabric import NetworkFabric
from repro.network.topology import GBPS, MBPS, Topology
from repro.simulation import Simulator

TENANTS = ("gold", "bronze", "")  # "" = untenanted control traffic
HOSTS = ("a1", "a2", "b1", "b2")


def _fabric(drive):
    sim = Simulator()
    topo = Topology()
    topo.add_datacenter("A")
    topo.add_datacenter("B")
    for host in ("a1", "a2"):
        topo.add_host(host, "A", access_bandwidth=GBPS, access_latency=0.0)
    for host in ("b1", "b2"):
        topo.add_host(host, "B", access_bandwidth=GBPS, access_latency=0.0)
    topo.connect_datacenters("A", "B", 100 * MBPS, latency=0.001)
    fabric = NetworkFabric(sim, topo, drive=drive)
    return sim, fabric


def _assert_ledger_reconciles(fabric):
    """Ledger (admission-time) == monitor (completion-time), exactly."""
    ledger_bytes = fabric.tenant_ledger.bytes_by_tenant
    ledger_wan = fabric.tenant_ledger.wan_bytes_by_tenant
    monitor_bytes = fabric.monitor.by_tenant
    monitor_wan = fabric.monitor.cross_dc_by_tenant
    for tenant in set(ledger_bytes) | set(monitor_bytes):
        assert ledger_bytes.get(tenant, 0.0) == monitor_bytes.get(tenant, 0.0)
    for tenant in set(ledger_wan) | set(monitor_wan):
        assert ledger_wan.get(tenant, 0.0) == monitor_wan.get(tenant, 0.0)
    # The untenanted control traffic must never leak into either view.
    assert "" not in ledger_bytes and "" not in monitor_bytes


@st.composite
def _flow_plans(draw):
    drive = draw(st.sampled_from(("vector", "incremental", "global")))
    weights = {
        "gold": draw(st.floats(0.5, 8.0)),
        "bronze": draw(st.floats(0.5, 8.0)),
    }
    num_flows = draw(st.integers(min_value=1, max_value=8))
    flows = []
    for _ in range(num_flows):
        src = draw(st.sampled_from(HOSTS))
        dst = draw(st.sampled_from(HOSTS))
        size = draw(st.floats(1e5, 5e7))
        tenant = draw(st.sampled_from(TENANTS))
        # None = let it finish; a float = cancel it mid-flight then.
        cancel_at = draw(
            st.one_of(st.none(), st.floats(0.01, 2.0))
        )
        flows.append((src, dst, size, tenant, cancel_at))
    return drive, weights, flows


@given(_flow_plans())
@settings(max_examples=60, deadline=None)
def test_ledger_reconciles_with_monitor_under_cancels(plan):
    drive, weights, flows = plan
    sim, fabric = _fabric(drive)
    for tenant, weight in weights.items():
        fabric.set_tenant_weight(tenant, weight)
    for src, dst, size, tenant, cancel_at in flows:
        event = fabric.transfer(src, dst, size, tag="shuffle", tenant=tenant)
        if cancel_at is not None:
            sim.call_at(
                cancel_at, lambda event=event: fabric.cancel(event)
            )
    sim.run()
    assert fabric.active_flow_count == 0
    _assert_ledger_reconciles(fabric)


def test_cancel_before_any_progress_refunds_everything():
    """A flow killed at t=0+ delivers nothing: the ledger must settle to
    0.0 and the monitor must not record the tenant at all — the exact
    multiset contract, including the degenerate entry."""
    sim, fabric = _fabric("vector")
    event = fabric.transfer("a1", "b1", 10e6, tag="shuffle", tenant="gold")
    sim.call_at(0.0, lambda: fabric.cancel(event))
    sim.run()
    assert fabric.tenant_ledger.bytes_by_tenant == {"gold": 0.0}
    assert "gold" not in fabric.monitor.by_tenant
    _assert_ledger_reconciles(fabric)


def test_stream_cell_reconciles_under_chaos():
    """End-to-end: a weighted two-tenant job stream on a degraded WAN
    with flow retries enabled — retry cancels refund charges, and the
    per-tenant rows must still match the monitor exactly."""
    from repro.config import HealthConfig, SimulationConfig
    from repro.experiments.runner import ExperimentPlan, run_workload_once
    from repro.experiments.schemes import SCHEME_REGISTRY
    from repro.failures.chaos import ChaosEvent, ChaosSchedule
    from repro.workloads import all_workloads
    from repro.workloads.arrivals import ArrivalSpec, StreamSpec, TenantSpec

    from tests.conftest import small_spec

    chaos = ChaosSchedule((
        ChaosEvent(at=1.0, kind="degrade", target="dc-a->dc-b",
                   factor=0.05, duration=10.0),
        ChaosEvent(at=1.0, kind="degrade", target="dc-b->dc-a",
                   factor=0.05, duration=10.0),
    ))
    health = HealthConfig(
        flow_retry_enabled=True,
        breaker_enabled=True,
        flow_deadline_base=0.05,
        flow_deadline_multiplier=3.0,
        max_flow_retries=2,
        flow_retry_backoff=0.05,
    )
    stream = StreamSpec(
        arrival=ArrivalSpec(
            process="poisson", rate_per_minute=120.0, num_jobs=8
        ),
        tenants=(
            TenantSpec("gold", weight=4.0, share=1.0),
            TenantSpec("bronze", weight=1.0, share=2.0),
        ),
        policy="fair",
        max_concurrent=2,
    )
    scheme = next(
        name
        for name, spec in SCHEME_REGISTRY.items()
        if spec.preprocess is None
    )
    plan = ExperimentPlan(
        cluster=small_spec(datacenters=("dc-a", "dc-b")),
        seeds=(0,),
        base_config=SimulationConfig(chaos=chaos, health=health),
        stream=stream,
    )
    result = run_workload_once(all_workloads()[0], scheme, 0, plan)
    assert result.stream["jobs_completed"] == 8
    assert result.chaos_events_applied > 0
    for tenant, row in result.tenants.items():
        assert row["bytes"] == row["monitor_bytes"], tenant
        assert row["wan_bytes"] == row["monitor_wan_bytes"], tenant
        assert row["wan_bytes"] <= row["bytes"]
    assert set(result.tenants) == {"gold", "bronze"}
