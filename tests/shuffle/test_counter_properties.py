"""Property: backend counters agree with the traffic monitor (#3).

Every byte a backend claims to have moved must correspond to a flow the
network fabric actually carried (and vice versa): for any workload shape
and any backend,

* ``wan_bytes + intra_dc_bytes`` equals the monitor's total over the
  backend's declared ``flow_tags``;
* ``wan_bytes`` equals the monitor's *cross-datacenter* total over the
  same tags;
* the per-shuffle attribution sums to the shuffle-path tags exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.shuffle.backends import backend_class, backend_names
from tests.conftest import make_context, small_spec


def _tag_total(monitor, tags) -> float:
    return sum(monitor.by_tag.get(tag, 0.0) for tag in tags)


def _cross_dc_tag_total(monitor, tags) -> float:
    return sum(monitor.cross_dc_by_tag.get(tag, 0.0) for tag in tags)


def _assert_counters_match_monitor(context) -> None:
    backend = context.shuffle_service.backend
    counters = backend.counters
    monitor = context.traffic
    assert counters.wan_bytes + counters.intra_dc_bytes == pytest.approx(
        _tag_total(monitor, backend.flow_tags), rel=1e-9, abs=1e-6
    )
    assert counters.wan_bytes == pytest.approx(
        _cross_dc_tag_total(monitor, backend.flow_tags), rel=1e-9, abs=1e-6
    )
    # Per-shuffle attribution covers exactly the shuffle-path flows
    # (transfer_to flows belong to a transfer, not a shuffle id).
    shuffle_tags = tuple(
        tag for tag in backend.flow_tags if tag != "transfer_to"
    )
    assert sum(counters.network_bytes_by_shuffle.values()) == pytest.approx(
        _tag_total(monitor, shuffle_tags), rel=1e-9, abs=1e-6
    )


@settings(max_examples=12, deadline=None)
@given(
    backend=st.sampled_from(tuple(backend_names())),
    num_slices=st.integers(min_value=2, max_value=6),
    num_keys=st.integers(min_value=1, max_value=25),
    num_reduces=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=3),
    three_dcs=st.booleans(),
)
def test_counters_equal_monitor_for_reduce_by_key(
    backend, num_slices, num_keys, num_reduces, seed, three_dcs
):
    datacenters = ("dc-a", "dc-b", "dc-c") if three_dcs else ("dc-a", "dc-b")
    context = make_context(
        spec=small_spec(datacenters=datacenters),
        backend=backend,
        seed=seed,
    )
    records = [(f"key-{i % num_keys}", i) for i in range(num_keys * 4)]
    rdd = context.parallelize(records, num_slices).reduce_by_key(
        lambda a, b: a + b, num_partitions=num_reduces
    )
    rdd.collect()
    _assert_counters_match_monitor(context)
    context.shutdown()


@settings(max_examples=8, deadline=None)
@given(
    backend=st.sampled_from(tuple(backend_names())),
    num_keys=st.integers(min_value=2, max_value=20),
    seed=st.integers(min_value=0, max_value=2),
)
def test_counters_equal_monitor_for_group_by_key(backend, num_keys, seed):
    """group_by_key has no map-side combine, so shard sizes differ from
    the reduce_by_key case — the equality must hold regardless."""
    context = make_context(
        spec=small_spec(datacenters=("dc-a", "dc-b", "dc-c")),
        backend=backend,
        seed=seed,
    )
    records = [(f"key-{i % num_keys}", f"v{i}") for i in range(num_keys * 3)]
    rdd = context.parallelize(records, 5).group_by_key(num_partitions=3)
    rdd.collect()
    _assert_counters_match_monitor(context)
    context.shutdown()


@pytest.mark.parametrize("backend", tuple(backend_names()))
def test_counters_equal_monitor_end_to_end(backend):
    """Same invariant through the full experiment harness (DFS input,
    skewed placement, save actions) rather than a bare parallelize."""
    from repro.experiments.runner import (
        ExperimentPlan,
        clear_data_cache,
        run_workload_once,
    )
    from repro.experiments.schemes import SCHEME_REGISTRY

    clear_data_cache()
    scheme = next(
        spec.scheme
        for spec in SCHEME_REGISTRY.values()
        if spec.backend == backend and spec.preprocess is None
    )
    from tests.integration.test_paper_properties import small_wordcount

    plan = ExperimentPlan(
        cluster=small_spec(
            datacenters=("dc-a", "dc-b", "dc-c"), workers_per_datacenter=2
        ),
        seeds=(0,),
    )
    result = run_workload_once(small_wordcount(), scheme, 0, plan)
    clear_data_cache()
    tags = backend_class(backend).flow_tags
    monitor_cross_dc_mb = sum(
        result.cross_dc_by_tag.get(tag, 0.0) for tag in tags
    )
    assert result.shuffle_perf["wan_bytes"] / 1e6 == pytest.approx(
        monitor_cross_dc_mb, rel=1e-9, abs=1e-9
    )
    assert result.shuffle_perf["network_bytes"] >= result.shuffle_perf[
        "wan_bytes"
    ]
