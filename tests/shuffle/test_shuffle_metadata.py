"""MapOutputTracker and the shard/staging stores."""

import pytest

from repro.errors import MapOutputMissingError
from repro.shuffle import (
    MapOutputTracker,
    MapStatus,
    ShuffleStore,
    TransferTracker,
)
from repro.shuffle.stores import ShuffleShard


# ----------------------------------------------------------------------
# MapOutputTracker
# ----------------------------------------------------------------------
def tracked(num_maps=3, num_reduces=2):
    tracker = MapOutputTracker()
    tracker.register_shuffle(7, num_maps=num_maps)
    return tracker


def test_registration_and_completion():
    tracker = tracked(num_maps=2)
    assert not tracker.is_complete(7)
    tracker.register_map_output(7, MapStatus(0, "h0", [10.0, 20.0]))
    assert not tracker.is_complete(7)
    tracker.register_map_output(7, MapStatus(1, "h1", [5.0, 0.0]))
    assert tracker.is_complete(7)


def test_register_shuffle_idempotent():
    tracker = tracked(num_maps=1)
    tracker.register_map_output(7, MapStatus(0, "h0", [1.0]))
    tracker.register_shuffle(7, num_maps=1)  # must not wipe outputs
    assert tracker.is_complete(7)


def test_map_statuses_sorted_by_index():
    tracker = tracked()
    tracker.register_map_output(7, MapStatus(2, "h2", [1.0, 1.0]))
    tracker.register_map_output(7, MapStatus(0, "h0", [1.0, 1.0]))
    statuses = tracker.map_statuses(7)
    assert [s.map_index for s in statuses] == [0, 2]


def test_unknown_shuffle_raises():
    tracker = MapOutputTracker()
    with pytest.raises(MapOutputMissingError):
        tracker.map_statuses(99)
    with pytest.raises(MapOutputMissingError):
        tracker.register_map_output(99, MapStatus(0, "h", [1.0]))
    assert not tracker.is_complete(99)


def test_reducer_input_by_host_sums_shards():
    tracker = tracked(num_maps=2)
    tracker.register_map_output(7, MapStatus(0, "h0", [10.0, 20.0]))
    tracker.register_map_output(7, MapStatus(1, "h0", [5.0, 1.0]))
    assert tracker.reducer_input_by_host(7, 0) == {"h0": 15.0}
    assert tracker.reducer_input_by_host(7, 1) == {"h0": 21.0}


def test_reducer_preferred_hosts_threshold():
    tracker = tracked(num_maps=4)
    tracker.register_map_output(7, MapStatus(0, "big", [80.0, 0.0]))
    tracker.register_map_output(7, MapStatus(1, "s1", [10.0, 0.0]))
    tracker.register_map_output(7, MapStatus(2, "s2", [5.0, 0.0]))
    tracker.register_map_output(7, MapStatus(3, "s3", [5.0, 0.0]))
    prefs = tracker.reducer_preferred_hosts(7, 0, fraction=0.2)
    assert prefs == ["big"]
    # Scattered input: nothing passes the threshold.
    assert tracker.reducer_preferred_hosts(7, 0, fraction=0.9) == []
    # Empty reducer: no preference at all.
    assert tracker.reducer_preferred_hosts(7, 1, fraction=0.2) == []


def test_output_by_datacenter():
    tracker = tracked(num_maps=2)
    tracker.register_map_output(7, MapStatus(0, "h0", [10.0, 10.0]))
    tracker.register_map_output(7, MapStatus(1, "h1", [30.0, 0.0]))
    by_dc = tracker.total_output_by_datacenter(
        7, {"h0": "east", "h1": "west"}
    )
    assert by_dc == {"east": 20.0, "west": 30.0}


def test_shard_size_lookup():
    tracker = tracked(num_maps=1)
    tracker.register_map_output(7, MapStatus(0, "h0", [3.0, 4.0]))
    assert tracker.shard_size(7, 0, 1) == 4.0
    assert tracker.shard_size(7, 5, 0) is None


def test_unregister_shuffle():
    tracker = tracked(num_maps=1)
    tracker.register_map_output(7, MapStatus(0, "h0", [1.0]))
    tracker.unregister_shuffle(7)
    assert not tracker.is_complete(7)


# ----------------------------------------------------------------------
# ShuffleStore
# ----------------------------------------------------------------------
def test_shuffle_store_roundtrip():
    store = ShuffleStore()
    shards = [ShuffleShard([("a", 1)], 10.0), ShuffleShard([], 0.0)]
    store.put_map_output(1, 0, "h0", shards)
    assert store.get_shard(1, 0, 0).records == [("a", 1)]
    assert store.get_shard(1, 0, 1).size_bytes == 0.0
    assert store.host_of(1, 0) == "h0"


def test_shuffle_store_reregistration_overwrites():
    store = ShuffleStore()
    store.put_map_output(1, 0, "h0", [ShuffleShard([1], 1.0)])
    store.put_map_output(1, 0, "h9", [ShuffleShard([2], 2.0)])
    assert store.host_of(1, 0) == "h9"
    assert store.get_shard(1, 0, 0).records == [2]


def test_shuffle_store_missing_raises():
    store = ShuffleStore()
    with pytest.raises(MapOutputMissingError):
        store.get_shard(1, 0, 0)
    with pytest.raises(MapOutputMissingError):
        store.host_of(1, 0)


def test_shuffle_store_remove_shuffle():
    store = ShuffleStore()
    store.put_map_output(1, 0, "h0", [ShuffleShard([1], 1.0)])
    store.put_map_output(2, 0, "h0", [ShuffleShard([2], 1.0)])
    store.remove_shuffle(1)
    with pytest.raises(MapOutputMissingError):
        store.get_shard(1, 0, 0)
    assert store.get_shard(2, 0, 0).records == [2]


# ----------------------------------------------------------------------
# TransferTracker
# ----------------------------------------------------------------------
def test_transfer_tracker_roundtrip():
    tracker = TransferTracker()
    tracker.stage_partition(5, 0, "h0", [1, 2], 16.0)
    staged = tracker.get(5, 0)
    assert staged.host == "h0"
    assert staged.records == [1, 2]
    assert tracker.try_get(5, 1) is None
    with pytest.raises(MapOutputMissingError):
        tracker.get(5, 1)


def test_transfer_tracker_remove():
    tracker = TransferTracker()
    tracker.stage_partition(5, 0, "h0", [], 0.0)
    tracker.stage_partition(6, 0, "h0", [], 0.0)
    tracker.remove_transfer(5)
    assert tracker.try_get(5, 0) is None
    assert tracker.try_get(6, 0) is not None
