"""Every registered backend computes identical results (satellite #2).

A shuffle backend may change *where* data moves and *when*, but never
what reducers compute.  These tests run wordcount, sort, and pagerank
with a fixed seed under every backend-only scheme in the registry and
require byte-identical action results against the Spark (fetch)
baseline.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import (
    ExperimentPlan,
    clear_data_cache,
    run_workload_once,
)
from repro.experiments.schemes import SCHEME_REGISTRY, Scheme
from tests.conftest import small_spec
from tests.integration.test_paper_properties import (
    small_pagerank,
    small_sort,
    small_wordcount,
)

# Schemes that are purely a shuffle backend (no input preprocessing):
# exactly these must be output-equivalent given identical inputs.
BACKEND_SCHEMES = tuple(
    spec.scheme for spec in SCHEME_REGISTRY.values() if spec.preprocess is None
)


@pytest.fixture(autouse=True)
def _clean_cache():
    clear_data_cache()
    yield
    clear_data_cache()


def _plan():
    return ExperimentPlan(
        cluster=small_spec(
            datacenters=("dc-a", "dc-b", "dc-c"),
            workers_per_datacenter=2,
        ),
        seeds=(0,),
        keep_action_results=True,
    )


def _result(workload_factory, scheme, seed=0):
    return run_workload_once(
        workload_factory(), scheme, seed, _plan()
    ).action_result


def test_backend_schemes_cover_all_backends():
    covered = {SCHEME_REGISTRY[s].backend for s in BACKEND_SCHEMES}
    assert covered == {
        "fetch", "push_aggregate", "pre_merge", "remote", "blob"
    }


@pytest.mark.parametrize(
    "workload_factory",
    [small_wordcount, small_sort, small_pagerank],
    ids=["wordcount", "sort", "pagerank"],
)
@pytest.mark.parametrize(
    "scheme",
    [s for s in BACKEND_SCHEMES if s is not Scheme.SPARK],
    ids=lambda s: s.value,
)
def test_backend_outputs_identical_to_fetch_baseline(
    workload_factory, scheme
):
    baseline = _result(workload_factory, Scheme.SPARK)
    candidate = _result(workload_factory, scheme)
    assert candidate == baseline


def test_equivalence_holds_across_seeds_for_premerge():
    """The merge relocation must be output-invisible for any weather."""
    for seed in (0, 1, 2):
        baseline = _result(small_wordcount, Scheme.SPARK, seed)
        merged = _result(small_wordcount, Scheme.PREMERGE, seed)
        assert merged == baseline


def test_sorted_output_order_is_preserved_exactly():
    """Sort is the sharpest equality: any reordering of reduce input
    that leaked into the output would flip record order."""
    baseline = _result(small_sort, Scheme.SPARK)
    for scheme in BACKEND_SCHEMES:
        assert _result(small_sort, scheme) == baseline
