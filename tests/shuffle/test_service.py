"""The ShuffleService layer: registry, config resolution, wiring."""

from __future__ import annotations

import dataclasses
import inspect

import pytest

from repro.config import (
    ShuffleConfig,
    SimulationConfig,
    backend_config,
    shuffle_config_for_backend,
)
from repro.errors import ConfigurationError
from repro.shuffle.backends import (
    backend_class,
    backend_names,
    create_backend,
)
from repro.shuffle.backends.fetch import FetchShuffleBackend
from repro.shuffle.backends.pre_merge import PreMergeBackend
from repro.shuffle.backends.push_aggregate import PushAggregateBackend
from repro.shuffle.service import ShuffleBackend
from tests.conftest import make_context, small_spec


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def test_registry_contains_the_three_backends():
    names = backend_names()
    assert "fetch" in names
    assert "push_aggregate" in names
    assert "pre_merge" in names


def test_backend_class_lookup():
    assert backend_class("fetch") is FetchShuffleBackend
    assert backend_class("push_aggregate") is PushAggregateBackend
    assert backend_class("pre_merge") is PreMergeBackend


def test_unknown_backend_raises_with_known_names():
    with pytest.raises(ConfigurationError, match="fetch"):
        create_backend("carrier-pigeon")


def test_create_backend_returns_fresh_instances():
    assert create_backend("fetch") is not create_backend("fetch")


def test_every_backend_advertises_its_contract():
    for name in backend_names():
        cls = backend_class(name)
        assert issubclass(cls, ShuffleBackend)
        assert cls.name == name
        assert cls.scheme_label
        assert cls.flow_tags


# ---------------------------------------------------------------------------
# Config resolution
# ---------------------------------------------------------------------------
def test_legacy_flags_resolve_to_backends():
    assert ShuffleConfig().backend_name == "fetch"
    assert (
        ShuffleConfig(push_based=True, auto_aggregate=True).backend_name
        == "push_aggregate"
    )


def test_explicit_backend_wins_over_legacy_flags():
    config = ShuffleConfig(backend="pre_merge")
    assert config.backend_name == "pre_merge"


def test_shuffle_config_for_backend_keeps_legacy_flags_consistent():
    push = shuffle_config_for_backend("push_aggregate")
    assert push.push_based and push.auto_aggregate
    fetch = shuffle_config_for_backend("fetch")
    assert not fetch.push_based and not fetch.auto_aggregate


def test_unknown_backend_rejected_at_validation():
    config = SimulationConfig(shuffle=ShuffleConfig(backend="nope"))
    with pytest.raises(ConfigurationError, match="nope"):
        config.validate()


def test_backend_config_builds_a_runnable_simulation_config():
    config = backend_config("pre_merge")
    config.validate()
    assert config.shuffle.backend_name == "pre_merge"


# ---------------------------------------------------------------------------
# Scheme registry (satellite: no AGGSHUFFLE branching)
# ---------------------------------------------------------------------------
def test_scheme_registry_enumerates_registered_backends():
    from repro.experiments.schemes import (
        SCHEME_REGISTRY,
        Scheme,
        all_schemes,
        scheme_spec,
    )

    labels = {backend_class(name).scheme_label for name in backend_names()}
    covered = {spec.scheme.value for spec in SCHEME_REGISTRY.values()}
    assert labels <= covered
    assert all_schemes() == tuple(SCHEME_REGISTRY)
    assert scheme_spec(Scheme.PREMERGE).backend == "pre_merge"
    assert scheme_spec(Scheme.AGGSHUFFLE).backend == "push_aggregate"


def test_paper_schemes_preserved_and_registry_driven():
    from repro.experiments.schemes import (
        PAPER_SCHEMES,
        SCHEME_REGISTRY,
        Scheme,
    )

    assert PAPER_SCHEMES == (
        Scheme.SPARK, Scheme.CENTRALIZED, Scheme.AGGSHUFFLE
    )
    assert all(SCHEME_REGISTRY[s].paper for s in PAPER_SCHEMES)


def test_preprocess_schemes_ride_on_the_fetch_backend():
    from repro.experiments.schemes import Scheme, scheme_spec

    for scheme in (Scheme.CENTRALIZED, Scheme.IRIDIUM):
        spec = scheme_spec(scheme)
        assert spec.backend == "fetch"
        assert spec.preprocess is not None
        assert spec.preprocess_stage_name


def test_config_for_scheme_uses_registry_backend():
    from repro.experiments.schemes import Scheme, config_for_scheme
    from repro.workloads import WORDCOUNT

    for scheme, backend in (
        (Scheme.SPARK, "fetch"),
        (Scheme.AGGSHUFFLE, "push_aggregate"),
        (Scheme.PREMERGE, "pre_merge"),
        (Scheme.CENTRALIZED, "fetch"),
    ):
        config = config_for_scheme(scheme, WORDCOUNT, seed=0)
        assert config.shuffle.backend_name == backend


def test_dag_scheduler_has_no_strategy_branches():
    """Acceptance criterion: zero scheme-conditional branches left."""
    from repro.scheduler import dag_scheduler

    source = inspect.getsource(dag_scheduler)
    for marker in ("auto_aggregate", "push_based", "AGGSHUFFLE", "Scheme"):
        assert marker not in source


# ---------------------------------------------------------------------------
# Service wiring
# ---------------------------------------------------------------------------
def test_context_owns_a_service_matching_its_config():
    context = make_context(push=False)
    assert context.shuffle_service.backend_name == "fetch"
    push = make_context(push=True)
    assert push.shuffle_service.backend_name == "push_aggregate"


def test_push_backend_prepare_job_inserts_transfers():
    from repro.core.transfer_injection import count_inserted_transfers

    context = make_context(push=True)
    rdd = context.parallelize([("a", 1), ("b", 2)], 2).reduce_by_key(
        lambda a, b: a + b, num_partitions=2
    )
    assert count_inserted_transfers(rdd) == 0
    prepared = context.shuffle_service.prepare_job(rdd)
    assert count_inserted_transfers(prepared) == 1


def test_fetch_backend_prepare_job_is_identity():
    from repro.core.transfer_injection import count_inserted_transfers

    context = make_context(push=False)
    rdd = context.parallelize([("a", 1), ("b", 2)], 2).reduce_by_key(
        lambda a, b: a + b, num_partitions=2
    )
    prepared = context.shuffle_service.prepare_job(rdd)
    assert prepared is rdd
    assert count_inserted_transfers(prepared) == 0


def _premerge_context():
    return make_context(
        spec=small_spec(
            datacenters=("dc-a", "dc-b", "dc-c"), workers_per_datacenter=2
        ),
        backend="pre_merge",
    )


def test_premerge_consolidates_map_output_per_datacenter():
    context = _premerge_context()
    rdd = context.parallelize(
        [(f"k{i}", 1) for i in range(60)], 6
    ).reduce_by_key(lambda a, b: a + b)
    rdd.collect()
    counters = context.shuffle_service.counters
    assert counters.merge_rounds > 0
    assert counters.merge_fan_in > 0
    # After merging, map outputs live on at most one host per DC, so a
    # reducer opens at most one remote flow per source host.
    assert counters.blocks_fetched <= counters.merge_rounds * (
        len(context.topology.datacenters)
    ) * rdd.num_partitions


def test_premerge_fetches_fewer_blocks_than_fetch_backend():
    def run(backend):
        context = make_context(
            spec=small_spec(
                datacenters=("dc-a", "dc-b", "dc-c"),
                workers_per_datacenter=2,
            ),
            backend=backend,
        )
        rdd = context.parallelize(
            [(f"k{i}", i) for i in range(120)], 6
        ).group_by_key()
        result = rdd.collect()
        return context.shuffle_service.counters, result

    fetch_counters, fetch_result = run("fetch")
    merge_counters, merge_result = run("pre_merge")
    assert merge_counters.blocks_fetched < fetch_counters.blocks_fetched
    # And the reduce outputs are identical, record for record.
    assert merge_result == fetch_result


def test_counters_flow_through_run_result():
    from repro.experiments.runner import ExperimentPlan, run_workload_once
    from repro.experiments.schemes import Scheme
    from repro.workloads import WordCount, WORDCOUNT
    from repro.workloads.text_gen import TextGenerator

    workload = WordCount(
        spec=dataclasses.replace(
            WORDCOUNT, input_partitions=4, records_per_partition=2
        ),
        generator=TextGenerator(vocabulary_buckets=50, tokens_per_document=200),
    )
    plan = ExperimentPlan(
        cluster=small_spec(
            datacenters=("dc-a", "dc-b", "dc-c"), workers_per_datacenter=2
        ),
        seeds=(0,),
    )
    result = run_workload_once(workload, Scheme.PREMERGE, 0, plan)
    assert result.backend == "pre_merge"
    assert result.shuffle_perf["map_outputs_registered"] > 0
    assert result.shuffle_perf["merge_rounds"] > 0
    assert result.shuffle_perf["network_bytes"] > 0
