"""Integration: the paper's qualitative claims on scaled-down runs.

These use reduced workload specs on a three-datacenter cluster so the
whole module stays fast, but exercise the complete stack end to end.
"""

import dataclasses

import pytest

from repro.experiments.runner import (
    ExperimentPlan,
    clear_data_cache,
    run_workload_once,
)
from repro.experiments.schemes import Scheme
from repro.workloads import (
    PAGERANK,
    SORT,
    TERASORT,
    WORDCOUNT,
    PageRank,
    Sort,
    TeraSort,
    WordCount,
)
from repro.workloads.text_gen import TextGenerator
from tests.conftest import small_spec


@pytest.fixture(autouse=True)
def _clean_cache():
    clear_data_cache()
    yield
    clear_data_cache()


def plan(seeds=(0,)):
    return ExperimentPlan(
        cluster=small_spec(
            datacenters=("dc-a", "dc-b", "dc-c"),
            workers_per_datacenter=2,
        ),
        seeds=seeds,
    )


def small_wordcount():
    return WordCount(
        spec=dataclasses.replace(
            WORDCOUNT, input_partitions=6, records_per_partition=2
        ),
        generator=TextGenerator(vocabulary_buckets=100, tokens_per_document=400),
    )


def small_sort():
    return Sort(
        spec=dataclasses.replace(
            SORT, input_partitions=6, records_per_partition=20
        )
    )


def small_terasort():
    return TeraSort(
        spec=dataclasses.replace(
            TERASORT, input_partitions=6, records_per_partition=20
        )
    )


def small_pagerank():
    return PageRank(
        spec=dataclasses.replace(
            PAGERANK, input_partitions=6, records_per_partition=30
        )
    )


def run(workload, scheme, seed=0):
    return run_workload_once(workload, scheme, seed, plan())


def test_aggshuffle_shuffle_path_traffic_never_exceeds_fetch():
    """Eq. (2): the pushed volume (S - s1) is the *minimum* any fetch
    placement can achieve, so Push/Aggregate's shuffle-path traffic is
    at most the baseline's (equality when the baseline's reducers all
    land in the largest datacenter, which this tiny cluster permits)."""
    spark = run(small_wordcount(), Scheme.SPARK)
    agg = run(small_wordcount(), Scheme.AGGSHUFFLE)
    spark_path = spark.cross_dc_by_tag.get("shuffle", 0.0)
    agg_path = agg.cross_dc_by_tag.get(
        "transfer_to", 0.0
    ) + agg.cross_dc_by_tag.get("shuffle", 0.0)
    assert agg_path <= spark_path * (1 + 1e-6)


def test_aggshuffle_eliminates_cross_dc_shuffle_fetch():
    agg = run(small_sort(), Scheme.AGGSHUFFLE)
    assert agg.cross_dc_by_tag.get("shuffle", 0.0) == 0.0


def test_spark_baseline_fetches_shuffle_across_datacenters():
    spark = run(small_sort(), Scheme.SPARK)
    assert spark.cross_dc_by_tag.get("shuffle", 0.0) > 0


def test_pagerank_iterations_localised_after_aggregation():
    """The Fig. 8 PageRank headline: ~90 % traffic reduction, because
    after the first aggregated shuffle every iteration stays local."""
    spark = run(small_pagerank(), Scheme.SPARK)
    agg = run(small_pagerank(), Scheme.AGGSHUFFLE)
    assert agg.cross_dc_megabytes < 0.5 * spark.cross_dc_megabytes
    # AggShuffle PageRank moves the edges once; everything else is local.
    assert set(agg.cross_dc_by_tag) <= {"transfer_to", "result", "input"}


def test_terasort_anomaly_push_exceeds_raw_input_ship():
    """§V-B: the bloating map makes AggShuffle push MORE bytes than the
    Centralized scheme ships (raw input), the paper's TeraSort anomaly."""
    agg = run(small_terasort(), Scheme.AGGSHUFFLE)
    cent = run(small_terasort(), Scheme.CENTRALIZED)
    pushed = agg.cross_dc_by_tag.get("transfer_to", 0.0)
    shipped = cent.cross_dc_by_tag.get("centralize", 0.0)
    assert pushed > shipped


def test_explicit_transfer_fixes_terasort_traffic():
    """The paper's prescribed fix: transfer_to() before the bloating map
    pushes raw (smaller) data instead of bloated data."""
    workload = small_terasort()
    implicit = run(workload, Scheme.AGGSHUFFLE)

    from repro.cluster.context import ClusterContext
    from repro.experiments.runner import generated_input
    from repro.experiments.placement import skewed_block_placement
    from repro.experiments.schemes import config_for_scheme
    from repro.simulation import RandomSource

    config = config_for_scheme(Scheme.AGGSHUFFLE, workload.spec, 0)
    context = ClusterContext(plan().cluster, config)
    partitions = generated_input(workload, 0)
    placement = skewed_block_placement(
        plan().cluster, RandomSource(0).child("placement:TeraSort"),
        len(partitions),
    )
    workload.install(context, partitions, placement_hosts=placement)
    rdd = workload.build_with_explicit_transfer(context)
    rdd.save_as_file(workload.output_path)
    explicit_pushed = (
        context.traffic.cross_dc_by_tag.get("transfer_to", 0.0) / 1e6
    )
    context.shutdown()

    implicit_pushed = implicit.cross_dc_by_tag.get("transfer_to", 0.0)
    assert explicit_pushed < implicit_pushed
    assert explicit_pushed == pytest.approx(
        implicit_pushed / workload.bloat_factor, rel=0.05
    )


def test_centralized_pays_large_upfront_cost():
    spark = run(small_wordcount(), Scheme.CENTRALIZED)
    assert spark.centralize_duration > 0
    assert spark.stages[0].name == "centralize-input"


def test_all_schemes_compute_identical_wordcount_results():
    from repro.workloads import WordCount as WC

    results = {}
    for scheme in Scheme:
        workload = small_wordcount()
        outcome = run_workload_once(
            workload, scheme, 0,
            dataclasses.replace(plan(), keep_action_results=True),
        )
        results[scheme] = WC.result_to_counts(outcome.action_result)
    assert results[Scheme.SPARK] == results[Scheme.AGGSHUFFLE]
    assert results[Scheme.SPARK] == results[Scheme.CENTRALIZED]


def test_failure_recovery_cheaper_under_push():
    """Fig. 2 at system scale: injected reducer failures add WAN traffic
    under fetch but not under Push/Aggregate."""
    from repro.config import FailureConfig

    base = dataclasses.replace(
        plan(),
        base_config=None,
    )
    failure_plan = ExperimentPlan(
        cluster=base.cluster,
        seeds=(0,),
        base_config=dataclasses.replace(
            run_config_base(),
            failures=FailureConfig(
                reducer_failure_probability=1.0,
                max_injected_failures_per_task=1,
            ),
        ),
    )
    clean_spark = run(small_sort(), Scheme.SPARK)
    failed_spark = run_workload_once(
        small_sort(), Scheme.SPARK, 0, failure_plan
    )
    failed_agg = run_workload_once(
        small_sort(), Scheme.AGGSHUFFLE, 0, failure_plan
    )
    assert failed_spark.injected_failures > 0
    assert failed_agg.injected_failures > 0
    spark_extra = (
        failed_spark.cross_dc_by_tag.get("shuffle", 0.0)
        - clean_spark.cross_dc_by_tag.get("shuffle", 0.0)
    )
    assert spark_extra > 0
    assert failed_agg.cross_dc_by_tag.get("shuffle", 0.0) == 0.0


def run_config_base():
    from repro.config import SimulationConfig

    return SimulationConfig()


def test_stage_count_structure_matches_scheme():
    spark = run(small_sort(), Scheme.SPARK)
    agg = run(small_sort(), Scheme.AGGSHUFFLE)
    spark_kinds = sorted(s.kind for s in spark.stages)
    agg_kinds = sorted(s.kind for s in agg.stages)
    assert spark_kinds == ["result", "shuffle_map"]
    assert agg_kinds == ["result", "shuffle_map", "transfer_producer"]
