"""Cross-cutting invariants of the whole engine, property-tested.

Rather than checking one scenario, these tests assert conservation and
determinism laws that must hold for *any* job the engine runs.
"""


import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import make_context


pair_partitions = st.lists(
    st.lists(
        st.tuples(
            st.sampled_from("abcdefgh"),
            st.integers(-50, 50),
        ),
        max_size=8,
    ),
    min_size=1,
    max_size=5,
)


@given(pair_partitions, st.booleans())
@settings(max_examples=25, deadline=None)
def test_reduce_by_key_total_is_conserved(partitions, push):
    """Sum of all values is invariant under any shuffle mechanism."""
    context = make_context(push=push)
    context.write_input_file("/in", partitions)
    result = (
        context.text_file("/in").reduce_by_key(lambda a, b: a + b).collect()
    )
    expected_total = sum(v for part in partitions for _k, v in part)
    assert sum(v for _k, v in result) == expected_total
    context.shutdown()


@given(pair_partitions)
@settings(max_examples=15, deadline=None)
def test_fetch_and_push_agree(partitions):
    """Both shuffle mechanisms compute identical results."""
    outcomes = []
    for push in (False, True):
        context = make_context(push=push)
        context.write_input_file("/in", partitions)
        outcomes.append(
            sorted(
                context.text_file("/in")
                .reduce_by_key(lambda a, b: a + b)
                .collect()
            )
        )
        context.shutdown()
    assert outcomes[0] == outcomes[1]


@given(st.integers(0, 1000))
@settings(max_examples=10, deadline=None)
def test_simulation_is_deterministic_per_seed(seed):
    """Same seed -> byte-identical durations and traffic."""
    def run():
        context = make_context(push=True, seed=seed)
        context.write_input_file(
            "/in", [[("k", i) for i in range(5)]] * 3
        )
        context.text_file("/in").group_by_key().collect()
        outcome = (
            context.metrics.job.duration,
            context.traffic.total_bytes,
            context.traffic.cross_dc_bytes,
        )
        context.shutdown()
        return outcome

    assert run() == run()


def test_clock_never_goes_backwards():
    context = make_context(push=True)
    context.write_input_file("/in", [[("a", 1)], [("b", 2)]])
    rdd = context.text_file("/in").reduce_by_key(lambda a, b: a + b)
    rdd.collect()
    events = []
    for span in context.metrics.job.stages:
        events.append(span.submitted_at)
        events.append(span.finished_at)
        for task in span.tasks:
            assert span.submitted_at <= task.started_at
            assert task.finished_at <= span.finished_at + 1e-9
    assert all(t >= 0 for t in events)
    context.shutdown()


def test_traffic_is_conserved_across_monitor_views():
    context = make_context(push=True)
    context.write_input_file("/in", [[("a", "x" * 100)], [("b", "y" * 100)]])
    context.text_file("/in").reduce_by_key(lambda a, b: a + b).collect()
    monitor = context.traffic
    by_pair_total = sum(monitor.by_pair.values())
    assert by_pair_total == pytest.approx(monitor.total_bytes)
    cross = sum(
        size for (src, dst), size in monitor.by_pair.items() if src != dst
    )
    assert cross == pytest.approx(monitor.cross_dc_bytes)
    context.shutdown()


def test_executor_slots_fully_released_after_job():
    context = make_context(push=True)
    context.write_input_file("/in", [[("a", 1)]] * 4)
    context.text_file("/in").reduce_by_key(lambda a, b: a + b).collect()
    for executor in context.executors.values():
        assert executor.busy == 0
    for executor in context.transfer_executors.values():
        assert executor.busy == 0
    assert context.task_scheduler.pending_count == 0
    context.shutdown()


def test_no_pending_flows_after_job():
    context = make_context(push=False)
    context.write_input_file("/in", [[("a", 1)], [("b", 2)]])
    context.text_file("/in").reduce_by_key(lambda a, b: a + b).collect()
    assert context.fabric.active_flow_count == 0
    context.shutdown()
