"""Edge cases across the whole stack."""

import dataclasses

import pytest

from repro.cluster.context import ClusterContext
from repro.config import FailureConfig, SchedulingConfig, ShuffleConfig
from repro.errors import (
    ConfigurationError,
    FileExistsInDFSError,
    FileNotFoundInDFSError,
    TaskFailedError,
)
from tests.conftest import quiet_config, small_spec


def test_text_file_on_missing_path_raises(fetch_context):
    with pytest.raises(FileNotFoundInDFSError):
        fetch_context.text_file("/nope")


def test_save_to_existing_path_fails_loudly(fetch_context):
    context = fetch_context
    context.write_input_file("/in", [[1]])
    context.text_file("/in").save_as_file("/out")
    with pytest.raises(FileExistsInDFSError):
        context.text_file("/in").save_as_file("/out")


def test_save_requires_path(fetch_context):
    fetch_context.write_input_file("/in", [[1]])
    with pytest.raises(ConfigurationError):
        fetch_context.run_save(fetch_context.text_file("/in"), "")


def test_single_partition_job(fetch_context):
    fetch_context.write_input_file("/one", [[("k", 1), ("k", 2)]])
    result = dict(
        fetch_context.text_file("/one")
        .reduce_by_key(lambda a, b: a + b, num_partitions=1)
        .collect()
    )
    assert result == {"k": 3}


def test_empty_partitions_through_shuffle(fetch_context):
    fetch_context.write_input_file("/sparse", [[], [("a", 1)], [], []])
    result = dict(
        fetch_context.text_file("/sparse")
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )
    assert result == {"a": 1}


def test_all_empty_input(fetch_context):
    fetch_context.write_input_file("/empty", [[], []])
    assert fetch_context.text_file("/empty").collect() == []
    assert fetch_context.text_file("/empty").count() == 0


def test_task_exhausts_retries_and_job_fails():
    """Failure probability 1 with more injections than attempts."""
    failures = FailureConfig(
        reducer_failure_probability=1.0,
        max_injected_failures_per_task=10,
    )
    scheduling = SchedulingConfig(max_task_attempts=2)
    config = dataclasses.replace(
        quiet_config(), failures=failures, scheduling=scheduling
    )
    context = ClusterContext(small_spec(), config)
    context.write_input_file("/in", [[("a", 1)], [("b", 2)]])
    with pytest.raises(TaskFailedError):
        context.text_file("/in").reduce_by_key(lambda a, b: a + b).collect()
    context.shutdown()


def test_subset_aggregation_end_to_end():
    """k=2 aggregation spreads receivers over two datacenters."""
    spec = small_spec(datacenters=("d1", "d2", "d3"), workers_per_datacenter=2)
    config = dataclasses.replace(
        quiet_config(push=True),
        shuffle=ShuffleConfig(
            push_based=True, auto_aggregate=True, aggregation_subset_size=2
        ),
    )
    context = ClusterContext(spec, config)
    context.write_input_file(
        "/in", [[(f"k{i}", 1)] for i in range(6)],
        placement_hosts=[f"d{1 + i % 3}-w0" for i in range(6)],
    )
    result = dict(
        context.text_file("/in").reduce_by_key(lambda a, b: a + b).collect()
    )
    assert result == {f"k{i}": 1 for i in range(6)}
    # Shuffle output must live in at most two datacenters.
    hosts = set()
    for shuffle_id in range(10_000):
        if context.map_output_tracker.is_complete(shuffle_id):
            for status in context.map_output_tracker.map_statuses(shuffle_id):
                hosts.add(context.topology.datacenter_of(status.host))
    assert 1 <= len(hosts) <= 2
    context.shutdown()


def test_unpersist_via_cache_eviction(fetch_context):
    context = fetch_context
    context.write_input_file("/in", [[1], [2]])
    rdd = context.text_file("/in").map(lambda x: x).cache()
    rdd.collect()
    assert context.cache.entry_count == 2
    context.cache.evict_rdd(rdd.rdd_id)
    assert context.cache.entry_count == 0
    # Still computes correctly after eviction.
    assert rdd.collect() == [1, 2]


def test_deep_narrow_chain(fetch_context):
    context = fetch_context
    context.write_input_file("/in", [[0]])
    rdd = context.text_file("/in")
    for _ in range(50):
        rdd = rdd.map(lambda x: x + 1)
    assert rdd.collect() == [50]


def test_many_small_shuffles_in_sequence(fetch_context):
    context = fetch_context
    context.write_input_file("/in", [[("a", 1), ("b", 2)]])
    rdd = context.text_file("/in")
    for _ in range(5):
        rdd = rdd.reduce_by_key(lambda a, b: a + b).map(lambda kv: kv)
    assert dict(rdd.collect()) == {"a": 1, "b": 2}


def test_job_after_failed_job_still_works(fetch_context):
    context = fetch_context
    context.write_input_file("/in", [[1, 2]])

    def explode(_record):
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError):
        context.text_file("/in").map(explode).collect()
    # The scheduler and executors must be clean for the next job.
    assert context.text_file("/in").map(lambda x: x * 2).collect() == [2, 4]
    for executor in context.executors.values():
        assert executor.busy == 0
