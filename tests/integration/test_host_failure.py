"""Host failure between jobs: lost state, partial recomputation.

The paper's fault-tolerance argument (§II-A / §IV-E) rests on what
survives a failure where: with fetch-based shuffle the input lives with
the mappers; with Push/Aggregate it lives in the aggregator datacenter,
while the *staged* map output still exists at the producers, so losing a
receiver host costs one re-push rather than a map re-execution.
"""

import pytest

from repro.errors import BlockNotFoundError, ConfigurationError
from tests.conftest import make_context


def a_hosts():
    return ["dc-a-w0", "dc-a-w1"]


def test_fail_host_reports_losses(fetch_context):
    context = fetch_context
    context.write_input_file("/in", [[("a", 1)], [("b", 2)]])
    context.text_file("/in").reduce_by_key(lambda a, b: a + b).collect()
    report = context.fail_host("dc-a-w0")
    assert report["map_outputs_lost"] >= 0
    assert "dc-a-w0" not in context.live_workers
    assert len(context.live_workers) == 3


def test_fail_unknown_host_rejected(fetch_context):
    with pytest.raises(ConfigurationError):
        fetch_context.fail_host("ghost")


def test_fail_host_twice_rejected(fetch_context):
    fetch_context.write_input_file("/in", [[1]])
    fetch_context.fail_host("dc-b-w1")
    with pytest.raises(ConfigurationError):
        fetch_context.fail_host("dc-b-w1")


def test_jobs_continue_on_surviving_hosts(fetch_context):
    context = fetch_context
    context.write_input_file(
        "/in", [[("a", 1)], [("b", 2)]], placement_hosts=a_hosts()
    )
    context.fail_host("dc-b-w0")
    context.fail_host("dc-b-w1")
    result = dict(
        context.text_file("/in").reduce_by_key(lambda a, b: a + b).collect()
    )
    assert result == {"a": 1, "b": 2}


def test_lost_map_output_recomputed_partially(fetch_context):
    """Only the failed host's partitions re-run on the next job."""
    context = fetch_context
    # Input on dc-a hosts; replication 2 so input survives the failure.
    context.dfs.namenode.replication = 2
    context.write_input_file(
        "/in",
        [[("a", 1)], [("b", 2)], [("c", 3)], [("d", 4)]],
        placement_hosts=["dc-a-w0", "dc-a-w1", "dc-a-w0", "dc-a-w1"],
    )
    reduced = context.text_file("/in").reduce_by_key(lambda a, b: a + b)
    first = dict(reduced.collect())
    stages_before = len(context.metrics.job.stages)

    report = context.fail_host("dc-a-w0")
    assert report["map_outputs_lost"] == 2  # its two map partitions

    second = dict(reduced.map(lambda kv: kv).collect())
    assert second == first
    # The re-run shuffle-map stage executed only the 2 lost partitions.
    new_spans = context.metrics.job.stages[stages_before:]
    map_spans = [s for s in new_spans if s.kind == "shuffle_map"]
    assert len(map_spans) == 1
    assert len(map_spans[0].tasks) == 2


def test_lost_receiver_host_recovers_by_repush():
    """Push mode: losing an aggregator host re-pushes staged data
    without re-running any map task (the producers still hold it)."""
    context = make_context(push=True)
    context.write_input_file(
        "/in",
        [[("a", 1)], [("b", 2)], [("c", 3)], [("d", 4)]],
        placement_hosts=a_hosts() * 2,
    )
    reduced = (
        context.text_file("/in")
        .transfer_to("dc-b")
        .reduce_by_key(lambda a, b: a + b)
    )
    first = dict(reduced.collect())
    stages_before = len(context.metrics.job.stages)

    context.fail_host("dc-b-w0")
    second = dict(reduced.map(lambda kv: kv).collect())
    assert second == first
    new_spans = context.metrics.job.stages[stages_before:]
    # Receiver partitions re-ran; the producer stage did not.
    kinds = [s.kind for s in new_spans]
    assert "transfer_producer" not in kinds or all(
        not s.tasks for s in new_spans if s.kind == "transfer_producer"
    )
    receiver_spans = [
        s for s in new_spans if s.kind == "shuffle_map" and s.tasks
    ]
    assert receiver_spans  # some receivers re-pulled
    context.shutdown()


def test_cached_partitions_on_failed_host_recompute(fetch_context):
    context = fetch_context
    context.dfs.namenode.replication = 2
    context.write_input_file(
        "/in", [[1], [2]], placement_hosts=["dc-a-w0", "dc-a-w1"]
    )
    rdd = context.text_file("/in").map(lambda x: x * 10).cache()
    assert rdd.collect() == [10, 20]
    entries_before = context.cache.entry_count
    context.fail_host("dc-a-w0")
    assert context.cache.entry_count < entries_before
    assert rdd.collect() == [10, 20]  # recomputed transparently


def test_unreplicated_input_loss_surfaces(fetch_context):
    context = fetch_context
    context.write_input_file(
        "/in", [[1]], placement_hosts=["dc-a-w0"]
    )
    context.fail_host("dc-a-w0")
    with pytest.raises(BlockNotFoundError):
        context.text_file("/in").collect()


def test_replicated_input_survives(fetch_context):
    context = fetch_context
    context.dfs.namenode.replication = 2
    context.write_input_file(
        "/in", [[7]], placement_hosts=["dc-a-w0", "dc-b-w0"]
    )
    context.fail_host("dc-a-w0")
    assert context.text_file("/in").collect() == [7]
