"""Campaign engine: oracles, determinism across runners, liveness,
artifact round trips, and speculation under chaos."""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.analysis.sanitizer import reconcile_run, sanitized
from repro.errors import ConfigurationError, LivenessError
from repro.failures import CampaignConfig, ChaosEvent, ChaosSchedule, run_campaign
from repro.failures.campaign import (
    CampaignCell,
    _run_campaign_shard,
    build_artifact,
    fault_free_hashes,
    load_artifact_schedule,
    run_cell,
)
from repro.rdd.size_estimator import SizedRecord
from repro.simulation.kernel import Simulator
from tests.conftest import quiet_config, small_spec


# ---------------------------------------------------------------------------
# Single cells and the composite oracle
# ---------------------------------------------------------------------------
def test_fault_free_cell_is_clean_and_deterministic():
    cell = CampaignCell(
        index=0,
        schedule_specs=(),
        backend="fetch",
        policy="baseline",
        seed=0,
        expected_hash=None,
        max_wall_seconds=30.0,
    )
    first = run_cell(cell)
    second = run_cell(cell)
    assert first.violations == ()
    assert first.job_failed == ""
    assert first.observed_hash
    assert first == second


def test_result_hash_oracle_catches_a_wrong_answer():
    """A deliberately wrong expected hash must surface as a violation —
    the oracle plumbing itself is under test here."""
    cell = CampaignCell(
        index=0,
        schedule_specs=(),
        backend="fetch",
        policy="baseline",
        seed=0,
        expected_hash="not-the-real-hash",
        max_wall_seconds=30.0,
    )
    outcome = run_cell(cell)
    assert any(v.startswith("result-hash:") for v in outcome.violations)


def test_chaotic_cell_reproduces_the_fault_free_hash():
    baseline = run_cell(
        CampaignCell(
            index=0,
            schedule_specs=(),
            backend="push_aggregate",
            policy="health",
            seed=0,
            expected_hash=None,
            max_wall_seconds=30.0,
        )
    )
    chaotic = run_cell(
        CampaignCell(
            index=0,
            schedule_specs=(
                "partition:dc-a->dc-b@1+3",
                "crash:dc-b-w0@1.5",
            ),
            backend="push_aggregate",
            policy="health",
            seed=0,
            expected_hash=baseline.observed_hash,
            max_wall_seconds=30.0,
        )
    )
    assert chaotic.violations == ()
    assert chaotic.observed_hash == baseline.observed_hash


def test_fault_free_hashes_cover_every_column():
    hashes = fault_free_hashes(("fetch", "blob"), ("baseline", "health"), seed=0)
    assert set(hashes) == {
        ("fetch", "baseline"),
        ("fetch", "health"),
        ("blob", "baseline"),
        ("blob", "health"),
    }
    assert all(hashes.values())


def test_unknown_policy_rejected():
    with pytest.raises(ConfigurationError):
        run_cell(
            CampaignCell(
                index=0,
                schedule_specs=(),
                backend="fetch",
                policy="yolo",
                seed=0,
                expected_hash=None,
                max_wall_seconds=30.0,
            )
        )


# ---------------------------------------------------------------------------
# Liveness oracle
# ---------------------------------------------------------------------------
def test_kernel_watchdog_flags_a_hung_simulation():
    sim = Simulator(wall_deadline_seconds=0.02)

    def spinner():
        while True:
            yield sim.timeout(0.001)

    sim.spawn(spinner(), name="spin")
    with pytest.raises(LivenessError):
        sim.run(until=1e15)


def test_cell_converts_a_blown_wall_budget_into_a_liveness_violation(
    monkeypatch,
):
    # A healthy cell finishes in fewer batch pulls than the watchdog's
    # sampling interval (that is the point of the interval); tighten it
    # so the microscopic budget below is actually observed.
    from repro.simulation import kernel

    monkeypatch.setattr(kernel, "_WALL_CHECK_INTERVAL", 1)
    cell = CampaignCell(
        index=0,
        schedule_specs=("partition:dc-a->dc-b@1+5",),
        backend="fetch",
        policy="baseline",
        seed=0,
        expected_hash=None,
        max_wall_seconds=1e-9,  # nothing finishes in a nanosecond
    )
    outcome = run_cell(cell)
    assert any(v.startswith("liveness:") for v in outcome.violations)


def test_watchdog_rejects_nonpositive_deadline():
    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        Simulator(wall_deadline_seconds=0.0)


# ---------------------------------------------------------------------------
# Campaign driver: determinism serial == parallel == sharded
# ---------------------------------------------------------------------------
def _small_campaign_config(**overrides):
    defaults = dict(
        seed=5,
        schedules=6,
        backends=("fetch", "push_aggregate"),
        policies=("baseline", "health"),
        rotate=True,
        events_min=2,
        events_max=4,
        cell_wall_seconds=30.0,
        minimize=False,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def test_campaign_is_seed_deterministic():
    first = run_campaign(_small_campaign_config(), jobs=1)
    second = run_campaign(_small_campaign_config(), jobs=1)
    assert first.schedules_drawn == second.schedules_drawn == 6
    assert first.cells_run == second.cells_run == 6
    assert first.kinds_applied == second.kinds_applied
    assert first.kinds_skipped == second.kinds_skipped
    assert first.recovery_totals == second.recovery_totals
    assert first.findings == second.findings == []


def test_campaign_parallel_matches_serial_byte_for_byte():
    serial = run_campaign(_small_campaign_config(), jobs=1)
    parallel = run_campaign(_small_campaign_config(), jobs=2)
    assert serial.kinds_applied == parallel.kinds_applied
    assert serial.kinds_skipped == parallel.kinds_skipped
    assert serial.kinds_by_backend == parallel.kinds_by_backend
    assert serial.recovery_totals == parallel.recovery_totals
    assert serial.cells_run == parallel.cells_run
    assert len(serial.findings) == len(parallel.findings) == 0


def test_full_matrix_mode_runs_the_cross_product():
    report = run_campaign(
        _small_campaign_config(schedules=2, rotate=False), jobs=1
    )
    assert report.cells_run == 2 * 2 * 2  # schedules x backends x policies


def test_campaign_coverage_counts_move():
    report = run_campaign(
        _small_campaign_config(schedules=12, events_min=3, events_max=6),
        jobs=1,
    )
    assert sum(report.kinds_applied.values()) > 0
    assert report.recovery_totals  # some recovery path fired
    summary = report.format_summary()
    assert "campaign: seed=5" in summary
    assert "coverage" in summary


def test_campaign_validates_config():
    with pytest.raises(ConfigurationError):
        run_campaign(CampaignConfig(schedules=0))
    with pytest.raises(ConfigurationError):
        run_campaign(CampaignConfig(policies=("yolo",)))
    with pytest.raises(ConfigurationError):
        CampaignConfig(events_min=5, events_max=2).validate()
    with pytest.raises(ConfigurationError):
        CampaignConfig(cell_wall_seconds=0.0).validate()


# ---------------------------------------------------------------------------
# Artifacts: build -> write -> load -> replay, identical on every runner
# ---------------------------------------------------------------------------
def test_artifact_schedule_round_trips_through_json(tmp_path):
    specs = ["partition:dc-a->dc-b@1.5+3.0", "crash:dc-b-w0@2.0"]
    path = tmp_path / "finding.json"
    path.write_text(json.dumps({"version": 1, "schedule": specs}))
    schedule = load_artifact_schedule(str(path))
    assert [event.to_spec() for event in schedule.events] == specs


def test_artifact_without_schedule_list_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 1, "schedule": "nope"}))
    with pytest.raises(ConfigurationError):
        load_artifact_schedule(str(path))
    missing = tmp_path / "missing.json"
    with pytest.raises(ConfigurationError):
        load_artifact_schedule(str(missing))


def test_artifact_replay_is_identical_across_serial_parallel_sharded(tmp_path):
    """The ISSUE acceptance bar: replaying an emitted artifact produces
    byte-identical outcomes on the serial, parallel, and sharded runners."""
    from repro.experiments.runner import shard_map

    specs = ["partition:dc-a->dc-b@1+4", "crash:dc-b-w0@2.0"]
    path = tmp_path / "finding.json"
    path.write_text(json.dumps({"version": 1, "schedule": specs}))
    schedule = load_artifact_schedule(str(path))
    replay_specs = tuple(event.to_spec() for event in schedule.events)

    cells = [
        CampaignCell(
            index=index,
            schedule_specs=replay_specs,
            backend=backend,
            policy="health",
            seed=0,
            expected_hash=None,
            max_wall_seconds=30.0,
        )
        for index, backend in enumerate(("fetch", "push_aggregate", "blob"))
    ]
    serial = shard_map(cells, _run_campaign_shard, jobs=1)
    parallel = shard_map(cells, _run_campaign_shard, jobs=2)
    sharded = shard_map(cells, _run_campaign_shard, jobs=2, shards=3)
    assert serial == parallel == sharded
    for outcome in serial:
        assert outcome.violations == ()


def test_build_artifact_carries_the_reproducer():
    from repro.failures.campaign import CellOutcome, Finding
    from repro.failures.minimize import MinimizationResult

    cell = CampaignCell(
        index=3,
        schedule_specs=("crash:dc-b-w0@2.0", "host:dc-a-w1@3.0"),
        backend="fetch",
        policy="health",
        seed=9,
        expected_hash="abc",
        max_wall_seconds=30.0,
    )
    outcome = CellOutcome(
        cell=cell,
        violations=("sanitizer: boom",),
        job_failed="",
        duration=1.0,
        chaos_applied=("crash",),
        chaos_skipped=(),
        recovery=(),
        observed_hash="def",
    )
    minimized = MinimizationResult(
        schedule=ChaosSchedule(
            (ChaosEvent(at=0.0, kind="crash", target="dc-b-w0"),)
        ),
        original_events=2,
        probes=5,
    )
    payload = build_artifact(
        Finding(outcome=outcome, minimized=minimized, artifact_path=None),
        campaign_seed=9,
    )
    assert payload["schedule"] == ["crash:dc-b-w0@0.0"]
    assert payload["original_schedule"] == list(cell.schedule_specs)
    assert payload["minimizer"] == {
        "original_events": 2,
        "events": 1,
        "probes": 5,
    }
    # And the artifact's schedule parses straight back.
    assert ChaosSchedule.from_specs(payload["schedule"])


# ---------------------------------------------------------------------------
# Speculation under chaos (satellite): a speculative duplicate racing a
# host kill settles counters consistently and never double-charges the
# tenant ledger.
# ---------------------------------------------------------------------------
class OneSlowTask:
    def __init__(self, factor: float = 8.0) -> None:
        self.factor = factor
        self._victim = None

    def slowdown(self, _randomness, task_id: str, attempt: int) -> float:
        if self._victim is None:
            self._victim = task_id
        return self.factor if task_id == self._victim else 1.0


def _merge(a: SizedRecord, b: SizedRecord) -> SizedRecord:
    return SizedRecord(a.payload + b.payload, a.natural_size + b.natural_size)


def test_speculative_duplicate_races_host_kill_without_double_charge():
    from repro.cluster.context import ClusterContext
    from repro.config import SchedulingConfig

    scheduling = SchedulingConfig(
        speculation=True,
        speculation_multiplier=1.5,
        speculation_quantile=0.5,
        speculation_interval=1.0,
    )
    chaos = ChaosSchedule((
        ChaosEvent(at=2.0, kind="host", target="dc-b-w0"),
        ChaosEvent(at=3.0, kind="shuffle_worker", target="dc-a"),
    ))
    config = dataclasses.replace(
        quiet_config(scheduling=scheduling, dfs_replication=2), chaos=chaos
    )
    with sanitized():
        context = ClusterContext(
            small_spec(), config, straggler_model=OneSlowTask()
        )
        context.write_input_file(
            "/in",
            [[(f"k{i % 2}", SizedRecord(1, 2e8))] for i in range(8)],
        )
        result = context.text_file("/in").reduce_by_key(_merge).collect()

        recovery = context.recovery
        # The duplicate actually launched and the race resolved one way
        # or the other — never more wins than launches.
        assert recovery.speculative_launched >= 1
        assert recovery.speculative_wins <= recovery.speculative_launched
        assert recovery.hosts_lost >= 1
        # Re-executed and killed attempts must not corrupt the answer...
        assert sorted((key, record.payload) for key, record in result) == [
            ("k0", 4),
            ("k1", 4),
        ]
        # ...nor the books: counter == monitor == ledger, bit-exact.
        assert reconcile_run(context) == []
        context.shutdown()


def test_speculate_policy_cell_absorbs_kill_race():
    outcome = run_cell(
        CampaignCell(
            index=0,
            schedule_specs=("shuffle_worker:dc-b@1.0", "host:dc-c-w1@1.5"),
            backend="push_aggregate",
            policy="speculate",
            seed=3,
            expected_hash=None,
            max_wall_seconds=30.0,
        )
    )
    assert outcome.violations == ()
    recovery = dict(outcome.recovery)
    assert recovery.get("speculative_wins", 0) <= recovery.get(
        "speculative_launched", 0
    )


# ---------------------------------------------------------------------------
# Regression corpus: every stored artifact replays clean (satellite)
# ---------------------------------------------------------------------------
_CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
_CORPUS = sorted(
    os.path.join(_CORPUS_DIR, name)
    for name in os.listdir(_CORPUS_DIR)
    if name.endswith(".json")
)


def test_corpus_is_not_empty():
    assert len(_CORPUS) >= 4


@pytest.mark.parametrize("path", _CORPUS, ids=os.path.basename)
def test_corpus_artifact_replays_clean(path):
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    schedule = load_artifact_schedule(path)
    # Byte-exact grammar round trip of the stored specs.
    assert [event.to_spec() for event in schedule.events] == payload["schedule"]
    outcome = run_cell(
        CampaignCell(
            index=0,
            schedule_specs=tuple(payload["schedule"]),
            backend=payload["backend"],
            policy=payload["policy"],
            seed=payload["seed"],
            expected_hash=None,
            max_wall_seconds=60.0,
        )
    )
    assert outcome.violations == ()
