"""Mid-job fault recovery across shuffle backends (the Fig. 2 contrast).

Each scenario first runs a clean job to learn *when* and *where* reduce
work happens (chaos runs share the clean run's seed, so the prefix
before the fault is identical), then replays it with a chaos event
injected mid-reduce and checks that

* the job output is exactly the clean output,
* the recovery counters record what happened, and
* the backend's byte counters still reconcile with the traffic monitor
  (recovery traffic is a tagged *subset*, never double-counted).

``REPRO_SEEDS`` widens the seed sweep (CI runs the suite at 2).
"""

from __future__ import annotations

import os

import pytest

from repro.failures import ChaosEvent, ChaosSchedule
from tests.conftest import make_context
from tests.shuffle.test_counter_properties import _assert_counters_match_monitor

SEEDS = tuple(range(int(os.environ.get("REPRO_SEEDS", "1"))))

# Inflates tiny test records to paper-scale logical bytes so jobs run
# for simulated seconds and chaos events land while work is in flight.
SCALE = 1e5


def _install_job(context, num_partitions: int = 16):
    records = [(f"k{i % 13}", i) for i in range(60)]
    context.write_input_file("/in", [records[i::4] for i in range(4)])
    return context.text_file("/in").reduce_by_key(
        lambda a, b: a + b, num_partitions=num_partitions
    )


def _result_spans(context):
    spans = [
        span
        for stage in context.metrics.job.stages
        if stage.kind == "result"
        for span in stage.tasks
    ]
    assert spans, "job produced no result-stage tasks"
    return spans


def _first_reduce_attempt(context):
    """(host, midpoint) of the earliest-started result-stage task."""
    span = min(_result_spans(context), key=lambda s: s.started_at)
    return span.host, (span.started_at + span.finished_at) / 2.0


def _run(backend: str, seed: int, chaos=None, **overrides):
    context = make_context(
        backend=backend, seed=seed, scale_factor=SCALE, chaos=chaos,
        **overrides,
    )
    result = sorted(_install_job(context).collect())
    return context, result


# ---------------------------------------------------------------------------
# Executor crash mid-reduce (storage survives)
# ---------------------------------------------------------------------------
def _crash_mid_reduce(backend: str, seed: int):
    clean_context, clean_result = _run(backend, seed)
    victim, when = _first_reduce_attempt(clean_context)
    clean_context.shutdown()

    schedule = ChaosSchedule((ChaosEvent(at=when, kind="crash", target=victim),))
    context, result = _run(backend, seed, chaos=schedule)
    assert result == clean_result
    assert context.recovery.executor_crashes == 1
    assert context.recovery.tasks_relaunched >= 1
    _assert_counters_match_monitor(context)
    counters = context.shuffle_service.backend.counters
    assert counters.recovery_wan_bytes <= counters.wan_bytes
    assert counters.recovery_intra_dc_bytes <= counters.intra_dc_bytes
    context.shutdown()
    return counters


@pytest.mark.parametrize("seed", SEEDS)
def test_fetch_crash_recovery_refetches_over_wan(seed):
    """Fig. 2 (a): a relaunched fetch reducer re-pulls its input across
    the WAN — recovery costs cross-datacenter bytes."""
    counters = _crash_mid_reduce("fetch", seed)
    assert counters.recovery_wan_bytes > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_push_crash_recovery_stays_intra_dc(seed):
    """Fig. 2 (b): the input was already aggregated into the reducer's
    datacenter, so the relaunched reducer recovers without WAN traffic."""
    counters = _crash_mid_reduce("push_aggregate", seed)
    assert counters.recovery_wan_bytes == 0
    assert (
        counters.recovery_intra_dc_bytes > 0
        or counters.recovery_wan_bytes == 0
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_pre_merge_crash_recovery_output_correct(seed):
    _crash_mid_reduce("pre_merge", seed)


# ---------------------------------------------------------------------------
# Merger-host loss (pre_merge's single point of failure)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_pre_merge_survives_merger_host_loss(seed):
    clean_context, clean_result = _run("pre_merge", seed, dfs_replication=2)
    mergers = dict(clean_context.shuffle_service.backend._mergers)
    assert mergers, "pre_merge run recorded no merger hosts"
    datacenter = sorted(mergers)[0]
    _host, when = _first_reduce_attempt(clean_context)
    clean_context.shutdown()

    schedule = ChaosSchedule(
        (ChaosEvent(at=when, kind="merger", target=datacenter),)
    )
    context, result = _run(
        "pre_merge", seed, chaos=schedule, dfs_replication=2
    )
    assert result == clean_result
    assert context.recovery.merger_losses == 1
    assert context.recovery.stages_resubmitted >= 1
    assert context.recovery.tasks_recomputed >= 1
    assert context.recovery.fetch_failures >= 1
    _assert_counters_match_monitor(context)
    context.shutdown()


# ---------------------------------------------------------------------------
# Whole-host loss and datacenter outage (lineage recomputation)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_fetch_host_loss_resubmits_parents_from_lineage(seed):
    clean_context, clean_result = _run("fetch", seed, dfs_replication=2)
    victim, when = _first_reduce_attempt(clean_context)
    clean_context.shutdown()

    schedule = ChaosSchedule((ChaosEvent(at=when, kind="host", target=victim),))
    context, result = _run("fetch", seed, chaos=schedule, dfs_replication=2)
    assert result == clean_result
    assert context.recovery.hosts_lost == 1
    assert context.recovery.stages_resubmitted >= 1
    assert context.recovery.tasks_recomputed >= 1
    _assert_counters_match_monitor(context)
    context.shutdown()


@pytest.mark.parametrize("seed", SEEDS)
def test_fetch_survives_datacenter_outage(seed):
    def install(context):
        records = [(f"k{i % 13}", i) for i in range(60)]
        # Pin input to dc-a so the dc-b outage cannot destroy the last
        # replica of any input block.
        context.write_input_file(
            "/in",
            [records[i::4] for i in range(4)],
            placement_hosts=context.workers_in("dc-a"),
        )
        return context.text_file("/in").reduce_by_key(
            lambda a, b: a + b, num_partitions=16
        )

    clean_context = make_context(backend="fetch", seed=seed, scale_factor=SCALE)
    clean_result = sorted(install(clean_context).collect())
    _host, when = _first_reduce_attempt(clean_context)
    clean_context.shutdown()

    schedule = ChaosSchedule((ChaosEvent(at=when, kind="outage", target="dc-b"),))
    context = make_context(
        backend="fetch", seed=seed, scale_factor=SCALE, chaos=schedule
    )
    result = sorted(install(context).collect())
    assert result == clean_result
    assert context.recovery.datacenter_outages == 1
    assert context.recovery.hosts_lost == 2
    assert context.live_workers == ["dc-a-w0", "dc-a-w1"]
    _assert_counters_match_monitor(context)
    context.shutdown()


# ---------------------------------------------------------------------------
# WAN degradation
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_wan_degradation_slows_job_but_output_unchanged(seed):
    clean_context, clean_result = _run("fetch", seed)
    clean_duration = clean_context.metrics.job.duration
    clean_context.shutdown()

    schedule = ChaosSchedule(
        (
            ChaosEvent(
                at=0.1, kind="degrade", target="dc-a->dc-b", factor=0.05
            ),
            ChaosEvent(
                at=0.1, kind="degrade", target="dc-b->dc-a", factor=0.05
            ),
        )
    )
    context, result = _run("fetch", seed, chaos=schedule)
    assert result == clean_result
    assert context.recovery.wan_degradations == 2
    assert context.metrics.job.duration > clean_duration
    _assert_counters_match_monitor(context)
    context.shutdown()
