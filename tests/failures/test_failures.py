"""Failure injection and stragglers, plus the Fig. 2 recovery contrast."""

import dataclasses

import pytest

from repro.config import FailureConfig
from repro.failures import FailureInjector, StragglerModel
from repro.simulation import RandomSource
from tests.conftest import make_context, quiet_config, small_spec
from repro.cluster.context import ClusterContext


class _FakeTask:
    def __init__(self, task_id="t1", attempts=1):
        self.task_id = task_id
        self.attempts = attempts


def test_failure_config_validates_at_construction():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        FailureConfig(reducer_failure_probability=1.5)
    with pytest.raises(ConfigurationError):
        FailureConfig(reducer_failure_probability=-0.1)
    with pytest.raises(ConfigurationError):
        FailureConfig(wasted_work_fraction=2.0)
    with pytest.raises(ConfigurationError):
        FailureConfig(wasted_work_fraction=-0.5)
    with pytest.raises(ConfigurationError):
        FailureConfig(max_injected_failures_per_task=-1)
    # Boundary values are legal.
    FailureConfig(reducer_failure_probability=1.0, wasted_work_fraction=0.0)


def test_straggler_hits_are_counted():
    model = StragglerModel(probability=1.0, min_slowdown=2.0, max_slowdown=4.0)
    injector = FailureInjector(
        FailureConfig(), RandomSource(0), straggler_model=model
    )
    for i in range(5):
        injector.straggler_slowdown(_FakeTask(f"t{i}"))
    assert injector.stragglers_hit == 5


def test_zero_probability_never_fails():
    injector = FailureInjector(FailureConfig(), RandomSource(0))
    assert not any(injector.should_fail(_FakeTask()) for _ in range(100))


def test_certain_probability_fails_up_to_cap():
    config = FailureConfig(
        reducer_failure_probability=1.0, max_injected_failures_per_task=2
    )
    injector = FailureInjector(config, RandomSource(0))
    task = _FakeTask()
    assert injector.should_fail(task)
    assert injector.should_fail(task)
    assert not injector.should_fail(task)  # capped
    assert injector.total_injected == 2


def test_failures_are_deterministic_per_seed():
    config = FailureConfig(reducer_failure_probability=0.5)
    def draws(seed):
        injector = FailureInjector(config, RandomSource(seed))
        return [injector.should_fail(_FakeTask(f"t{i}")) for i in range(50)]
    assert draws(1) == draws(1)
    assert draws(1) != draws(2)


def test_straggler_model_validation():
    with pytest.raises(ValueError):
        StragglerModel(probability=2.0)
    with pytest.raises(ValueError):
        StragglerModel(min_slowdown=0.5)
    with pytest.raises(ValueError):
        StragglerModel(min_slowdown=3.0, max_slowdown=2.0)


def test_straggler_slowdown_in_range():
    model = StragglerModel(probability=1.0, min_slowdown=2.0, max_slowdown=4.0)
    randomness = RandomSource(0)
    for i in range(50):
        slowdown = model.slowdown(randomness, f"t{i}", 1)
        assert 2.0 <= slowdown <= 4.0


def test_straggler_off_by_default_in_injector():
    injector = FailureInjector(FailureConfig(), RandomSource(0))
    assert injector.straggler_slowdown(_FakeTask()) == 1.0


def _run_wordcount_with_failures(push: bool):
    """Run a small shuffle job with guaranteed reducer failures."""
    failures = FailureConfig(
        reducer_failure_probability=1.0, max_injected_failures_per_task=1
    )
    config = dataclasses.replace(quiet_config(push=push), failures=failures)
    context = ClusterContext(small_spec(), config)
    context.write_input_file(
        "/in", [[("a", 1), ("b", 2)], [("a", 3)], [("c", 4)], [("b", 5)]]
    )
    result = dict(
        context.text_file("/in").reduce_by_key(lambda a, b: a + b).collect()
    )
    assert result == {"a": 4, "b": 7, "c": 4}
    job = context.metrics.job
    traffic = context.traffic
    context.shutdown()
    return job, traffic


def test_injected_failures_are_counted_and_recovered():
    job, _traffic = _run_wordcount_with_failures(push=False)
    assert job.injected_failures > 0


def test_fetch_failures_refetch_across_datacenters():
    """Fig. 2 (a): retries re-fetch shuffle input over the WAN."""
    job_fail, traffic_fail = _run_wordcount_with_failures(push=False)

    # Reference run without failures, same seed/data.
    context = make_context(push=False)
    context.write_input_file(
        "/in", [[("a", 1), ("b", 2)], [("a", 3)], [("c", 4)], [("b", 5)]]
    )
    context.text_file("/in").reduce_by_key(lambda a, b: a + b).collect()
    clean_shuffle = context.traffic.cross_dc_by_tag.get("shuffle", 0.0)
    context.shutdown()

    failed_shuffle = traffic_fail.cross_dc_by_tag.get("shuffle", 0.0)
    assert failed_shuffle > clean_shuffle


def test_push_failures_recover_locally():
    """Fig. 2 (b): with aggregated input the retry adds no WAN traffic."""
    _job, traffic = _run_wordcount_with_failures(push=True)
    assert traffic.cross_dc_by_tag.get("shuffle", 0.0) == 0.0
