"""The ``partition`` chaos kind: parsing, asymmetry, healing, absorption."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.failures import ChaosEvent, ChaosSchedule
from repro.failures.campaign import CampaignCell, run_cell
from repro.failures.chaos import DEFAULT_PARTITION_DURATION
from repro.network.jitter import JitterSpec
from repro.network.topology import MBPS, PARTITION_CAPACITY_FLOOR
from repro.shuffle.backends import backend_names
from tests.conftest import make_context


def _chaos_context(*events, **overrides):
    return make_context(chaos=ChaosSchedule(tuple(events)), **overrides)


def _jittery_chaos_context(*events, jitter, seed=0):
    """quiet_config pins jitter=None, so build the jittered one by hand."""
    from dataclasses import replace

    from repro.cluster.context import ClusterContext
    from tests.conftest import quiet_config, small_spec

    config = replace(
        quiet_config(seed=seed, chaos=ChaosSchedule(tuple(events))),
        jitter=jitter,
    )
    return ClusterContext(small_spec(), config)


def _partition(at, duration=DEFAULT_PARTITION_DURATION, target="dc-a->dc-b"):
    return ChaosEvent(at=at, kind="partition", target=target, duration=duration)


# ---------------------------------------------------------------------------
# Parsing and validation
# ---------------------------------------------------------------------------
def test_parse_partition_defaults_duration():
    event = ChaosSchedule.parse_event("partition:dc-a->dc-b@5")
    assert event.kind == "partition"
    assert event.at == 5.0
    assert event.link_endpoints == ("dc-a", "dc-b")
    assert event.duration == DEFAULT_PARTITION_DURATION


def test_parse_partition_with_explicit_duration():
    event = ChaosSchedule.parse_event("partition:dc-b->dc-c@2.5+7")
    assert event.duration == 7.0


def test_partition_spec_round_trips_bit_exact():
    event = _partition(at=3.25, duration=12.125)
    assert ChaosSchedule.parse_event(event.to_spec()) == event


@pytest.mark.parametrize(
    "spec",
    [
        "partition:dc-a@5",  # needs src->dst
        "partition:dc-a->dc-b@5+0",  # a partition is never permanent
        "partition:dc-a->dc-b@5+-3",
        "partition:dc-a->dc-b@5+inf",
        "partition:dc-a->dc-b@5+later",
        "partition:dc-a->dc-b@soon",
    ],
)
def test_bad_partition_specs_raise(spec):
    with pytest.raises(ConfigurationError):
        ChaosSchedule.parse_event(spec)


# ---------------------------------------------------------------------------
# Application semantics
# ---------------------------------------------------------------------------
def test_partition_is_asymmetric_and_heals():
    context = _chaos_context(_partition(at=1.0, duration=2.0))
    forward = context.topology.wan_link("dc-a", "dc-b")
    reverse = context.topology.wan_link("dc-b", "dc-a")
    nominal = forward.capacity

    context.sim.run(until=1.5)
    assert forward.partitioned
    assert forward.capacity == PARTITION_CAPACITY_FLOOR
    # The reverse direction keeps flowing: partitions are asymmetric.
    assert not reverse.partitioned
    assert reverse.capacity == nominal

    context.sim.run(until=4.0)
    assert not forward.partitioned
    assert forward.capacity == nominal
    assert context.recovery.wan_partitions == 1
    context.shutdown()


def test_partition_heal_restores_composed_degrade_capacity():
    """Degrade keeps updating underneath a partition; the heal restores
    nominal x degrade, not the pre-partition capacity."""
    context = _chaos_context(
        ChaosEvent(
            at=1.0, kind="degrade", target="dc-a->dc-b", factor=0.5, duration=0.0
        ),
        _partition(at=2.0, duration=2.0),
    )
    link = context.topology.wan_link("dc-a", "dc-b")
    nominal = link.capacity
    context.sim.run(until=3.0)
    assert link.capacity == PARTITION_CAPACITY_FLOOR
    context.sim.run(until=5.0)
    assert link.capacity == pytest.approx(nominal * 0.5)
    context.shutdown()


def test_double_partition_of_same_link_is_skipped_not_raised():
    context = _chaos_context(
        _partition(at=1.0, duration=10.0), _partition(at=2.0, duration=10.0)
    )
    context.sim.run(until=3.0)
    assert context.chaos_injector.events_applied == 1
    record = context.chaos_injector.fired[-1]
    assert not record.applied
    assert "already partitioned" in record.detail
    assert context.recovery.wan_partitions == 1
    context.shutdown()


def test_partition_of_unknown_route_is_skipped_not_raised():
    context = _chaos_context(_partition(at=1.0, target="dc-a->nope"))
    context.sim.run(until=2.0)
    assert context.chaos_injector.events_applied == 0
    assert not context.chaos_injector.fired[0].applied
    context.shutdown()


# ---------------------------------------------------------------------------
# Composition with jitter (regression: chaos overlays jitter, it does
# not require jitter=None — the docstring used to claim otherwise)
# ---------------------------------------------------------------------------
def test_partition_pins_capacity_under_jitter_and_heals_into_it():
    jitter = JitterSpec(low=80 * MBPS, high=300 * MBPS, period=1.0)
    context = _jittery_chaos_context(
        _partition(at=2.0, duration=5.0), jitter=jitter, seed=11
    )
    link = context.topology.wan_link("dc-a", "dc-b")
    context.sim.run(until=4.0)
    # Jitter resamples every second but the partition pin wins.
    assert link.capacity == PARTITION_CAPACITY_FLOOR
    context.sim.run(until=10.0)
    assert not link.partitioned
    # Healed back into whatever the jitter walk currently says.
    assert jitter.low <= link.capacity <= jitter.high
    context.shutdown()


def test_degrade_composes_multiplicatively_with_jitter():
    jitter = JitterSpec(low=80 * MBPS, high=300 * MBPS, period=1.0)
    context = _jittery_chaos_context(
        ChaosEvent(
            at=1.0, kind="degrade", target="dc-a->dc-b", factor=0.25, duration=0.0
        ),
        jitter=jitter,
        seed=11,
    )
    link = context.topology.wan_link("dc-a", "dc-b")
    context.sim.run(until=8.0)
    # Several jitter periods later the degrade still applies on top of
    # the live jittered nominal capacity.
    assert link.degrade_factor == 0.25
    assert link.capacity == pytest.approx(link.nominal_capacity * 0.25)
    assert jitter.low <= link.nominal_capacity <= jitter.high
    context.shutdown()


# ---------------------------------------------------------------------------
# Absorption: every backend survives a mid-shuffle partition without an
# unexplained hang (the cell's liveness oracle would flag one) and
# without corrupting results or accounting.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", backend_names())
def test_partition_absorbed_by_every_backend(backend):
    cell = CampaignCell(
        index=0,
        schedule_specs=("partition:dc-a->dc-b@1+5",),
        backend=backend,
        policy="health",
        seed=0,
        expected_hash=None,
        max_wall_seconds=30.0,
    )
    outcome = run_cell(cell)
    assert outcome.violations == ()
    assert outcome.job_failed == ""
    assert "partition" in outcome.chaos_applied
    assert dict(outcome.recovery).get("wan_partitions") == 1
