"""Schedule minimization: ddmin, value shrinking, the planted-bug self-test."""

from __future__ import annotations

from repro.failures import ChaosEvent, ChaosSchedule, minimize_schedule
from repro.failures.minimize import _MIN_DURATION


def _decoy_events():
    """Eighteen decoys spanning every kind the minimizer must discard."""
    decoys = []
    for index in range(6):
        decoys.append(
            ChaosEvent(at=1.0 + index, kind="crash", target=f"dc-a-w{index}")
        )
        decoys.append(
            ChaosEvent(at=2.0 + index, kind="shuffle_worker", target="dc-c")
        )
    for index in range(3):
        decoys.append(
            ChaosEvent(
                at=3.0 + index,
                kind="degrade",
                target="dc-b->dc-c",
                factor=0.5,
                duration=2.0,
            )
        )
        decoys.append(
            ChaosEvent(
                at=4.0 + index, kind="blob_outage", target="dc-a", duration=1.5
            )
        )
    assert len(decoys) == 18
    return decoys


TRIGGER_PARTITION = ChaosEvent(
    at=7.0, kind="partition", target="dc-a->dc-b", duration=4.0
)
TRIGGER_CRASH = ChaosEvent(at=11.0, kind="crash", target="dc-b-w0")


def _planted_bug(schedule: ChaosSchedule) -> bool:
    """Fails iff the schedule partitions dc-a->dc-b AND kills dc-b-w0 —
    a two-event interaction buried in decoys, the shape the campaign
    minimizer exists to isolate."""
    has_partition = any(
        event.kind == "partition" and event.target == "dc-a->dc-b"
        for event in schedule.events
    )
    has_crash = any(
        event.kind == "crash" and event.target == "dc-b-w0"
        for event in schedule.events
    )
    return has_partition and has_crash


def test_planted_bug_shrinks_twenty_events_to_the_two_triggers():
    """The ISSUE acceptance self-test: a 20-event failing schedule must
    minimize to exactly its minimal trigger set."""
    decoys = _decoy_events()
    events = decoys[:9] + [TRIGGER_PARTITION] + decoys[9:] + [TRIGGER_CRASH]
    assert len(events) == 20
    schedule = ChaosSchedule(tuple(events))

    result = minimize_schedule(schedule, _planted_bug)

    assert result.original_events == 20
    assert result.events == 2
    assert result.events_removed == 18
    kinds = sorted(event.kind for event in result.schedule.events)
    assert kinds == ["crash", "partition"]
    targets = {event.kind: event.target for event in result.schedule.events}
    assert targets == {"partition": "dc-a->dc-b", "crash": "dc-b-w0"}
    assert result.probes > 0
    # The predicate ignores times, so value shrinking drives every `at`
    # to zero and the partition's duration to the validation floor.
    for event in result.schedule.events:
        assert event.at == 0.0
    partition = next(
        event for event in result.schedule.events if event.kind == "partition"
    )
    assert partition.duration == _MIN_DURATION
    # The reproducer still fails, of course.
    assert _planted_bug(result.schedule)


def test_minimized_schedule_round_trips_through_specs():
    decoys = _decoy_events()
    schedule = ChaosSchedule(
        tuple(decoys[:4] + [TRIGGER_PARTITION, TRIGGER_CRASH] + decoys[4:])
    )
    result = minimize_schedule(schedule, _planted_bug)
    specs = [event.to_spec() for event in result.schedule.events]
    assert ChaosSchedule.from_specs(specs) == result.schedule


def test_shrink_values_can_be_disabled():
    schedule = ChaosSchedule((TRIGGER_PARTITION, TRIGGER_CRASH))
    result = minimize_schedule(schedule, _planted_bug, shrink_values=False)
    assert result.events == 2
    assert {event.at for event in result.schedule.events} == {7.0, 11.0}


def test_non_failing_input_returns_unchanged():
    schedule = ChaosSchedule((TRIGGER_CRASH,))  # missing the partition
    result = minimize_schedule(schedule, _planted_bug)
    assert result.schedule == schedule
    assert result.probes == 1
    assert result.events_removed == 0


def test_single_event_failure_stays_single():
    schedule = ChaosSchedule((TRIGGER_CRASH,))
    result = minimize_schedule(
        schedule, lambda s: any(e.kind == "crash" for e in s.events)
    )
    assert result.events == 1
    assert result.schedule.events[0].kind == "crash"
    assert result.schedule.events[0].at == 0.0


def test_degrade_duration_may_shrink_to_permanent():
    """A degrade's duration legally reaches zero (permanent degrade) —
    often the simpler reproducer — unlike partition/blob_outage whose
    validators require a positive duration."""
    degrade = ChaosEvent(
        at=5.0, kind="degrade", target="dc-a->dc-b", factor=0.25, duration=9.0
    )
    schedule = ChaosSchedule((degrade,))
    result = minimize_schedule(
        schedule,
        lambda s: any(
            e.kind == "degrade" and e.factor <= 0.5 for e in s.events
        ),
    )
    assert result.events == 1
    assert result.schedule.events[0].duration == 0.0


def test_invalid_candidates_never_reach_the_predicate():
    """Shrinking a partition's duration must stop at the validation
    floor; candidates that fail validation are rejected without a probe."""
    partition = ChaosEvent(
        at=1.0, kind="partition", target="dc-a->dc-b", duration=5.0
    )
    seen = []

    def fails(candidate: ChaosSchedule) -> bool:
        seen.append(candidate)
        candidate.validate()  # would raise if an invalid one slipped in
        return any(event.kind == "partition" for event in candidate.events)

    result = minimize_schedule(ChaosSchedule((partition,)), fails)
    assert result.schedule.events[0].duration == _MIN_DURATION
    assert len(seen) == result.probes


def test_order_is_preserved_in_the_reproducer():
    first = ChaosEvent(at=1.0, kind="crash", target="dc-b-w0")
    middle = ChaosEvent(at=2.0, kind="host", target="dc-a-w1")
    last = ChaosEvent(
        at=3.0, kind="partition", target="dc-a->dc-b", duration=2.0
    )
    result = minimize_schedule(
        ChaosSchedule((first, middle, last)),
        lambda s: any(e.kind == "crash" for e in s.events)
        and any(e.kind == "partition" for e in s.events),
        shrink_values=False,
    )
    assert [event.kind for event in result.schedule.events] == [
        "crash",
        "partition",
    ]
