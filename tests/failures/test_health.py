"""Health-aware degradation: blacklist, circuit breakers, flow retry.

Unit tests drive :class:`BlacklistTracker` and :class:`LinkHealthMonitor`
with a fake clock so every state transition (timed expiry, cooldown,
half-open probe quota) is pinned exactly.  Integration tests replay the
ISSUE's acceptance scenarios: a transient WAN degrade absorbed entirely
by flow-level retries (zero stage resubmissions, byte-identical output)
and a sustained outage of the elected aggregation datacenter survived by
destination re-election.  A hypothesis sweep checks that retries never
break the counter-vs-traffic-monitor byte equality: every cancelled
flow's delivered bytes are refunded exactly once.

``REPRO_SEEDS`` widens the seed sweep (CI runs the suite at 2).
"""

from __future__ import annotations

import os
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import HealthConfig
from repro.failures import ChaosEvent, ChaosSchedule
from repro.failures.health import (
    ALLOW,
    CLOSED,
    DEFER,
    HALF_OPEN,
    OPEN,
    PROBE,
    BlacklistTracker,
    LinkHealthMonitor,
)
from repro.metrics.perf import HealthCounters
from tests.conftest import make_context, small_spec
from tests.shuffle.test_counter_properties import _assert_counters_match_monitor

SEEDS = tuple(range(int(os.environ.get("REPRO_SEEDS", "1"))))
SCALE = 1e5
BACKENDS = ("fetch", "push_aggregate", "pre_merge")

# Deliberately aggressive deadlines (tighter than the fair-share
# contention on the shared WAN link) so a 5-second flap reliably
# produces deadline misses *during* the window — an over-eager retry
# config must still be correct, it just wastes some bytes.
RETRY_HEALTH = HealthConfig(
    flow_retry_enabled=True,
    breaker_enabled=True,
    flow_deadline_base=0.05,
    flow_deadline_multiplier=3.0,
    max_flow_retries=2,
    flow_retry_backoff=0.05,
)


def _fake_clock(now: float = 0.0):
    return SimpleNamespace(now=now)


def _fake_topology():
    # dc-a-w0 -> dc-a; good enough for the tracker's escalation logic.
    return SimpleNamespace(datacenter_of=lambda host: host.rsplit("-", 1)[0])


# ---------------------------------------------------------------------------
# BlacklistTracker unit tests (fake clock)
# ---------------------------------------------------------------------------
def _tracker(**overrides):
    config = HealthConfig(
        blacklist_enabled=True,
        max_task_failures_per_executor_stage=2,
        max_task_failures_per_executor=3,
        blacklist_timeout=10.0,
        datacenter_exclusion_threshold=2,
        **overrides,
    )
    clock = _fake_clock()
    counters = HealthCounters()
    tracker = BlacklistTracker(config, counters, _fake_topology(), clock)
    return tracker, counters, clock


def test_blacklist_disabled_is_inert():
    config = HealthConfig()  # everything defaults off
    counters = HealthCounters()
    tracker = BlacklistTracker(config, counters, _fake_topology(), _fake_clock())
    for _ in range(10):
        tracker.note_task_failure("dc-a-w0", stage_id=1)
    assert not tracker.is_excluded("dc-a-w0", stage_id=1)
    assert not tracker.is_datacenter_excluded("dc-a")
    assert not counters.any_activity


def test_stage_exclusion_is_per_stage():
    tracker, counters, _ = _tracker()
    tracker.note_task_failure("dc-a-w0", stage_id=7)
    assert not tracker.is_excluded("dc-a-w0", stage_id=7)
    tracker.note_task_failure("dc-a-w0", stage_id=7)
    assert tracker.is_excluded("dc-a-w0", stage_id=7)
    assert not tracker.is_excluded("dc-a-w0", stage_id=8)
    assert not tracker.is_excluded("dc-a-w0")  # not app-wide yet
    assert counters.stage_exclusions == 1


def test_host_exclusion_expires_after_timeout():
    tracker, counters, clock = _tracker()
    for _ in range(3):
        tracker.note_task_failure("dc-a-w0", stage_id=1)
    assert tracker.is_excluded("dc-a-w0")
    assert counters.hosts_blacklisted == 1
    assert tracker.next_expiry() == pytest.approx(10.0)
    clock.now = 9.9
    assert tracker.is_excluded("dc-a-w0")
    clock.now = 10.0
    assert not tracker.is_excluded("dc-a-w0")
    assert counters.blacklist_evictions == 1
    assert tracker.next_expiry() is None


def test_failure_window_resets_after_exclusion():
    """Exclusion consumes the failure count: a single post-expiry
    failure must not immediately re-exclude the host."""
    tracker, _, clock = _tracker()
    for _ in range(3):
        tracker.note_task_failure("dc-a-w0", stage_id=1)
    clock.now = 20.0
    tracker.note_task_failure("dc-a-w0", stage_id=2)
    assert not tracker.is_excluded("dc-a-w0")


def test_datacenter_escalation_and_unwind():
    tracker, counters, clock = _tracker()
    tracker.exclude_host("dc-a-w0")
    assert not tracker.is_datacenter_excluded("dc-a")
    tracker.exclude_host("dc-a-w1")
    assert tracker.is_datacenter_excluded("dc-a")
    assert counters.datacenters_blacklisted == 1
    # A third host of the datacenter is excluded transitively.
    assert tracker.is_excluded("dc-a-w2")
    assert not tracker.is_datacenter_excluded("dc-b")
    # Expiry returns the hosts and unwinds the escalation (counted once).
    clock.now = 10.0
    assert not tracker.is_datacenter_excluded("dc-a")
    assert not tracker.is_excluded("dc-a-w2")
    tracker.exclude_host("dc-a-w0")
    tracker.exclude_host("dc-a-w1")
    assert counters.datacenters_blacklisted == 2


# ---------------------------------------------------------------------------
# LinkHealthMonitor unit tests (fake clock, recording fabric)
# ---------------------------------------------------------------------------
class _RecordingFabric:
    def __init__(self):
        self.hints = {}

    def set_capacity_hint(self, link, rate):
        self.hints[link.name] = rate

    def clear_capacity_hint(self, link):
        self.hints.pop(link.name, None)


def _monitor(**overrides):
    config = HealthConfig(
        breaker_enabled=True,
        breaker_failure_threshold=2,
        breaker_cooldown=5.0,
        breaker_probe_flows=1,
        breaker_probes_to_close=2,
        **overrides,
    )
    clock = _fake_clock()
    counters = HealthCounters()
    link = SimpleNamespace(name="wan:dc-a->dc-b")
    topology = SimpleNamespace(wan_link=lambda src, dst: link)
    fabric = _RecordingFabric()
    monitor = LinkHealthMonitor(config, counters, topology, fabric, clock)
    return monitor, counters, clock, fabric, link


def test_breaker_trips_after_consecutive_failures():
    monitor, counters, _, fabric, link = _monitor()
    monitor.record_failure("dc-a", "dc-b", observed_rate=1e6)
    assert monitor.state("dc-a", "dc-b") == CLOSED
    monitor.record_failure("dc-a", "dc-b", observed_rate=1e6)
    assert monitor.state("dc-a", "dc-b") == OPEN
    assert counters.breaker_trips == 1
    # The observed-rate EWMA became the capacity hint on the WAN link.
    assert fabric.hints[link.name] == pytest.approx(1e6)
    verdict, wait = monitor.admission("dc-a", "dc-b")
    assert verdict == DEFER
    assert wait == pytest.approx(5.0)
    assert monitor.datacenter_quarantined("dc-b")
    assert not monitor.datacenter_quarantined("dc-a")  # directed


def test_success_resets_consecutive_failure_count():
    monitor, _, _, _, _ = _monitor()
    monitor.record_failure("dc-a", "dc-b")
    monitor.record_success("dc-a", "dc-b")
    monitor.record_failure("dc-a", "dc-b")
    assert monitor.state("dc-a", "dc-b") == CLOSED


def test_half_open_probe_quota_and_close():
    monitor, counters, clock, fabric, link = _monitor()
    monitor.record_failure("dc-a", "dc-b", observed_rate=1e6)
    monitor.record_failure("dc-a", "dc-b", observed_rate=1e6)
    clock.now = 5.0
    assert monitor.state("dc-a", "dc-b") == HALF_OPEN
    # The hint lives only while open: probes must see the real path.
    assert link.name not in fabric.hints
    verdict, _ = monitor.admission("dc-a", "dc-b")
    assert verdict == PROBE
    assert counters.breaker_probes == 1
    # The probe quota (1) is taken: the next flow defers.
    verdict, _ = monitor.admission("dc-a", "dc-b")
    assert verdict == DEFER
    monitor.record_success("dc-a", "dc-b", probe=True, observed_rate=1e8)
    assert monitor.state("dc-a", "dc-b") == HALF_OPEN
    verdict, _ = monitor.admission("dc-a", "dc-b")
    assert verdict == PROBE
    monitor.record_success("dc-a", "dc-b", probe=True, observed_rate=1e8)
    assert monitor.state("dc-a", "dc-b") == CLOSED
    assert counters.breaker_closes == 1
    verdict, _ = monitor.admission("dc-a", "dc-b")
    assert verdict == ALLOW


def test_half_open_probe_failure_reopens():
    monitor, counters, clock, _, _ = _monitor()
    monitor.record_failure("dc-a", "dc-b")
    monitor.record_failure("dc-a", "dc-b")
    clock.now = 5.0
    verdict, _ = monitor.admission("dc-a", "dc-b")
    assert verdict == PROBE
    monitor.record_failure("dc-a", "dc-b", probe=True)
    assert monitor.state("dc-a", "dc-b") == OPEN
    assert counters.breaker_trips == 2
    # The cooldown restarts from the re-trip.
    clock.now = 9.0
    verdict, wait = monitor.admission("dc-a", "dc-b")
    assert verdict == DEFER
    assert wait == pytest.approx(1.0)


def test_intra_datacenter_flows_never_touch_breakers():
    monitor, counters, _, _, _ = _monitor()
    for _ in range(10):
        monitor.record_failure("dc-a", "dc-a")
    assert monitor.admission("dc-a", "dc-a") == (ALLOW, 0.0)
    assert counters.breaker_trips == 0


# ---------------------------------------------------------------------------
# Integration: transient WAN degrade absorbed by flow retries
# ---------------------------------------------------------------------------
def _three_dc_spec():
    return small_spec(datacenters=("dc-a", "dc-b", "dc-c"))


def _install_skewed_job(context, num_partitions: int = 16):
    records = [(f"k{i % 29}", i) for i in range(96)]
    context.write_input_file(
        "/in",
        [records[i::6] for i in range(6)],
        placement_hosts=[
            "dc-a-w0", "dc-a-w1", "dc-a-w0", "dc-a-w1", "dc-a-w1", "dc-b-w0",
        ],
    )
    return context.text_file("/in").reduce_by_key(
        lambda a, b: a + b, num_partitions=num_partitions
    )


def _flap_schedule(at: float = 1.0, factor: float = 0.01, duration: float = 5.0):
    return ChaosSchedule((
        ChaosEvent(at=at, kind="degrade", target="dc-a->dc-b",
                   factor=factor, duration=duration),
        ChaosEvent(at=at, kind="degrade", target="dc-b->dc-a",
                   factor=factor, duration=duration),
    ))


def _run_skewed(backend: str, seed: int, chaos=None, **overrides):
    context = make_context(
        backend=backend, seed=seed, spec=_three_dc_spec(),
        scale_factor=SCALE, chaos=chaos, health=RETRY_HEALTH, **overrides,
    )
    result = sorted(_install_skewed_job(context).collect())
    return context, result


def _expected_skewed_result():
    records = [(f"k{i % 29}", i) for i in range(96)]
    expected = {}
    for key, value in records:
        expected[key] = expected.get(key, 0) + value
    return sorted(expected.items())


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", SEEDS)
def test_transient_degrade_absorbed_without_resubmission(backend, seed):
    """The ISSUE's first acceptance scenario: a deep WAN flap is fully
    absorbed at the flow layer — byte-identical output and *zero* stage
    resubmissions for every backend."""
    context, result = _run_skewed(backend, seed, chaos=_flap_schedule())
    assert result == _expected_skewed_result()
    assert context.recovery.stages_resubmitted == 0
    assert context.recovery.tasks_relaunched == 0
    _assert_counters_match_monitor(context)
    if backend in ("fetch", "pre_merge"):
        # These backends move reduce input over the degraded pair while
        # the flap is live; the retries (and trips) must be visible.
        assert context.health.flow_retries > 0
        assert context.health.breaker_trips > 0
    context.shutdown()


@pytest.mark.parametrize("seed", SEEDS)
def test_degrade_with_retry_disabled_still_completes(seed):
    """Sanity guard: the flap alone (no health features) also completes —
    slower, but the retry path is a strict improvement, not a crutch."""
    context = make_context(
        backend="fetch", seed=seed, spec=_three_dc_spec(),
        scale_factor=SCALE, chaos=_flap_schedule(),
    )
    result = sorted(_install_skewed_job(context).collect())
    assert result == _expected_skewed_result()
    assert context.health.flow_retries == 0
    context.shutdown()


# ---------------------------------------------------------------------------
# Integration: blacklist consulted at placement
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_excluded_host_is_avoided_at_placement(seed):
    context = make_context(
        seed=seed, scale_factor=SCALE,
        health=HealthConfig(blacklist_enabled=True),
    )
    context.blacklist.exclude_host("dc-a-w0")
    result = sorted(_install_skewed_job(context, num_partitions=8).collect())
    assert result  # job completed
    hosts = {
        span.host
        for stage in context.metrics.job.stages
        for span in stage.tasks
    }
    assert "dc-a-w0" not in hosts
    assert context.health.placements_vetoed > 0
    context.shutdown()


def test_repeated_injected_failures_blacklist_the_host():
    """The failure injector's per-attempt failures all land on the
    victim host's counters and cross the app-wide threshold."""
    context = make_context(
        health=HealthConfig(
            blacklist_enabled=True, max_task_failures_per_executor=2
        ),
    )
    for _ in range(2):
        context.blacklist.note_task_failure("dc-b-w1", stage_id=3)
    assert context.blacklist.is_excluded("dc-b-w1")
    assert context.health.hosts_blacklisted == 1
    context.shutdown()


# ---------------------------------------------------------------------------
# Integration: sustained outage of the elected aggregation datacenter
# ---------------------------------------------------------------------------
def _install_transfer_job(context):
    # Primary replicas alternate dc-b / dc-c with the big block on
    # dc-b, so the auto-elected aggregator is dc-b while replication=2
    # leaves every block a surviving dc-c copy after the dc-b outage.
    context.write_input_file(
        "/in",
        [[(f"k{i}", i) for i in range(8)], [("q", 1)]],
        placement_hosts=["dc-b-w0", "dc-c-w0"],
    )
    moved = context.text_file("/in").transfer_to()
    return moved, moved.reduce_by_key(lambda a, b: a + b)


@pytest.mark.parametrize("seed", SEEDS)
def test_outage_of_aggregation_datacenter_reelects_destination(seed):
    """The ISSUE's second acceptance scenario: the elected aggregation
    datacenter dies mid-job; the resubmitted producer re-elects a live
    destination and the output is byte-identical."""
    clean_context = make_context(
        push=True, seed=seed, spec=_three_dc_spec(),
        scale_factor=SCALE, dfs_replication=2, health=RETRY_HEALTH,
    )
    moved, reduced = _install_transfer_job(clean_context)
    clean_result = sorted(reduced.collect())
    assert getattr(moved.transfer_dependency, "resolved_destinations") == ["dc-b"]
    spans = [
        span
        for stage in clean_context.metrics.job.stages
        if stage.kind != "transfer_producer"
        for span in stage.tasks
    ]
    when = min(
        (span.started_at + span.finished_at) / 2.0 for span in spans
    )
    clean_context.shutdown()

    schedule = ChaosSchedule(
        (ChaosEvent(at=when, kind="outage", target="dc-b"),)
    )
    context = make_context(
        push=True, seed=seed, spec=_three_dc_spec(),
        scale_factor=SCALE, dfs_replication=2, health=RETRY_HEALTH,
        chaos=schedule,
    )
    moved, reduced = _install_transfer_job(context)
    result = sorted(reduced.collect())
    assert result == clean_result
    assert context.recovery.stages_resubmitted >= 1
    destinations = getattr(moved.transfer_dependency, "resolved_destinations")
    assert destinations and "dc-b" not in destinations
    assert context.health.reelections >= 1
    context.shutdown()


# ---------------------------------------------------------------------------
# Integration: pre_merge merger re-election and fetch-shaped fallback
# ---------------------------------------------------------------------------
def _run_pre_merge(seed: int, health, prepare=None):
    context = make_context(
        backend="pre_merge", seed=seed, scale_factor=SCALE, health=health,
    )
    if prepare is not None:
        prepare(context)
    result = sorted(_install_skewed_job(context, num_partitions=8).collect())
    return context, result


def test_pre_merge_merger_election_avoids_blacklisted_host():
    """The merger is normally the host with the most bytes; once that
    host is excluded the election moves off it, and when *every*
    candidate is excluded the unfiltered choice stands (a suspect
    merger still beats no merger)."""
    context = make_context(
        backend="pre_merge", health=HealthConfig(blacklist_enabled=True),
    )
    backend = context.shuffle_service.backend
    per_host = {"dc-a-w0": 100.0, "dc-a-w1": 1.0}
    assert backend._choose_merger("dc-a", per_host) == "dc-a-w0"
    context.blacklist.exclude_host("dc-a-w0")
    assert backend._choose_merger("dc-a", per_host) == "dc-a-w1"
    context.blacklist.exclude_host("dc-a-w1")
    assert backend._choose_merger("dc-a", per_host) == "dc-a-w0"
    context.shutdown()


@pytest.mark.parametrize("seed", SEEDS)
def test_pre_merge_falls_back_to_fetch_for_excluded_datacenter(seed):
    """With a populated source datacenter excluded at consolidation
    time, the merge is skipped — the layout stays scattered and reads
    degrade to plain per-source fetches with unchanged output."""
    clean_context, clean_result = _run_pre_merge(seed, HealthConfig())
    assert clean_context.shuffle_service.backend.counters.merge_rounds > 0
    clean_context.shutdown()

    def quarantine_dc_a(ctx):
        # Model the datacenter crossing the exclusion threshold *after*
        # its maps completed (the interesting window): only the
        # consolidation-time query sees the exclusion — placement is
        # left alone so dc-a actually holds scattered map output.
        ctx.blacklist.is_datacenter_excluded = lambda dc: dc == "dc-a"
        ctx.blacklist.is_excluded = lambda host, stage_id=None: False

    context, result = _run_pre_merge(
        seed, HealthConfig(blacklist_enabled=True), prepare=quarantine_dc_a,
    )
    assert result == clean_result
    assert context.health.fallback_activations >= 1
    assert context.shuffle_service.backend._fallback
    _assert_counters_match_monitor(context)
    context.shutdown()


# ---------------------------------------------------------------------------
# Property: retries never double-count bytes
# ---------------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(
    backend=st.sampled_from(BACKENDS),
    factor=st.floats(min_value=0.005, max_value=0.2),
    at=st.floats(min_value=0.5, max_value=3.0),
    seed=st.integers(min_value=0, max_value=3),
)
def test_flow_retries_never_double_count_bytes(backend, factor, at, seed):
    """Whatever the flap's depth and timing, every cancelled flow's
    delivered bytes are counted exactly once on both sides: the backend
    counters and the traffic monitor stay byte-equal."""
    context, result = _run_skewed(
        backend, seed, chaos=_flap_schedule(at=at, factor=factor),
    )
    assert result == _expected_skewed_result()
    _assert_counters_match_monitor(context)
    context.shutdown()
