"""ChaosSchedule parsing/validation and ChaosInjector event application."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.failures import ChaosEvent, ChaosSchedule
from repro.simulation import RandomSource
from tests.conftest import make_context, small_spec


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------
def test_parse_crash_spec():
    event = ChaosSchedule.parse_event("crash:dc-a-w0@5")
    assert event == ChaosEvent(at=5.0, kind="crash", target="dc-a-w0")


def test_parse_host_outage_merger_specs():
    assert ChaosSchedule.parse_event("host:dc-b-w1@2.5").kind == "host"
    assert ChaosSchedule.parse_event("outage:dc-b@10").target == "dc-b"
    assert ChaosSchedule.parse_event("merger:dc-a@1").kind == "merger"


def test_parse_degrade_with_factor_and_duration():
    event = ChaosSchedule.parse_event("degrade:dc-a->dc-b@3x0.25+7")
    assert event.at == 3.0
    assert event.factor == 0.25
    assert event.duration == 7.0
    assert event.link_endpoints == ("dc-a", "dc-b")


def test_parse_degrade_factor_only_defaults_duration():
    event = ChaosSchedule.parse_event("degrade:dc-a->dc-b@3x0.5")
    assert event.factor == 0.5
    assert event.duration == 0.0


def test_parse_shuffle_worker_spec():
    event = ChaosSchedule.parse_event("shuffle_worker:dc-b@4")
    assert event == ChaosEvent(at=4.0, kind="shuffle_worker", target="dc-b")


def test_parse_blob_outage_defaults_duration():
    from repro.failures.chaos import DEFAULT_BLOB_OUTAGE_DURATION

    event = ChaosSchedule.parse_event("blob_outage:dc-b@5")
    assert event.kind == "blob_outage"
    assert event.at == 5.0
    assert event.duration == DEFAULT_BLOB_OUTAGE_DURATION


def test_parse_blob_outage_with_explicit_duration():
    event = ChaosSchedule.parse_event("blob_outage:dc-b@5+10")
    assert event.at == 5.0
    assert event.duration == 10.0


@pytest.mark.parametrize(
    "spec",
    [
        "crash-no-colon",
        "crash:dc-a-w0",  # missing @time
        "crash:dc-a-w0@soon",  # time not a number
        "warp:dc-a-w0@5",  # unknown kind
        "crash:@5",  # empty target
        "degrade:dc-a@5",  # degrade needs src->dst
        "degrade:dc-a->dc-b@5x0",  # factor out of (0, 1]
        "degrade:dc-a->dc-b@5x2",
        "crash:dc-a-w0@-1",  # negative time
        "crash:dc-a-w0@inf",  # non-finite time
        "crash:dc-a-w0@nan",
        "degrade:dc-a->dc-b@5x-0.5",  # negative factor
        "degrade:dc-a->dc-b@5xinf",  # non-finite factor
        "degrade:dc-a->dc-b@5xnan",
        "degrade:dc-a->dc-b@5x0.5+-3",  # negative duration
        "degrade:dc-a->dc-b@5x0.5+inf",  # non-finite duration
        "degrade:dc-a->dc-b@5x0.5+later",  # duration not a number
        "degrade:dc-a->dc-b@5xbogus",  # factor not a number
        "shuffle_worker:dc-b",  # missing @time
        "shuffle_worker:dc-b@soon",  # time not a number
        "blob_outage:dc-b@5+later",  # duration not a number
        "blob_outage:dc-b@5+-3",  # negative duration
        "blob_outage:dc-b@5+0",  # zero duration
        "blob_outage:dc-b@5+inf",  # non-finite duration
    ],
)
def test_bad_specs_raise(spec):
    with pytest.raises(ConfigurationError):
        ChaosSchedule.parse_event(spec)


@pytest.mark.parametrize(
    ("spec", "token"),
    [
        ("crash:dc-a-w0@soon", "'soon'"),  # the non-numeric time token
        ("degrade:dc-a->dc-b@5xbogus", "'bogus'"),
        ("degrade:dc-a->dc-b@5x0.5+later", "'later'"),
        ("warp:dc-a-w0@5", "'warp'"),
        ("degrade:dc-a->dc-b@5x3", "3.0"),  # out-of-range factor value
        ("crash:dc-a-w0@inf", "inf"),
        ("shuffle_worker:dc-b@soon", "'soon'"),
        ("blob_outage:dc-b@5+later", "'later'"),
        ("blob_outage:dc-b@5+-3", "-3.0"),  # out-of-range duration value
    ],
)
def test_bad_spec_errors_name_the_offending_token(spec, token):
    """A malformed ``--chaos`` spec must fail with a message that points
    at the exact token, not a generic parse error."""
    with pytest.raises(ConfigurationError) as excinfo:
        ChaosSchedule.parse_event(spec)
    assert token in str(excinfo.value)


def test_from_specs_builds_validated_schedule():
    schedule = ChaosSchedule.from_specs(
        ["crash:dc-a-w0@5", "degrade:dc-a->dc-b@1x0.5"]
    )
    assert len(schedule.events) == 2
    assert bool(schedule)
    assert not bool(ChaosSchedule())


def test_sorted_events_orders_by_time_stably():
    first = ChaosEvent(at=5.0, kind="crash", target="a")
    second = ChaosEvent(at=5.0, kind="crash", target="b")
    early = ChaosEvent(at=1.0, kind="crash", target="c")
    schedule = ChaosSchedule((first, second, early))
    assert schedule.sorted_events() == [early, first, second]


def test_random_schedule_is_seed_deterministic():
    hosts = ["h0", "h1", "h2"]
    pairs = [("dc-a", "dc-b")]

    def build(seed):
        return ChaosSchedule.random(
            RandomSource(seed), hosts, pairs, crashes=2, degradations=1
        )

    assert build(7) == build(7)
    assert build(7) != build(8)
    for event in build(7).events:
        assert 1.0 <= event.at <= 30.0


def test_random_schedule_needs_candidates():
    with pytest.raises(ConfigurationError):
        ChaosSchedule.random(RandomSource(0), [], crashes=1)
    with pytest.raises(ConfigurationError):
        ChaosSchedule.random(RandomSource(0), ["h0"], degradations=1)


# ---------------------------------------------------------------------------
# Injector application
# ---------------------------------------------------------------------------
def _chaos_context(*events, **overrides):
    return make_context(chaos=ChaosSchedule(tuple(events)), **overrides)


def test_crash_event_removes_executor_but_keeps_storage():
    context = _chaos_context(ChaosEvent(at=1.0, kind="crash", target="dc-a-w0"))
    context.shuffle_store.put_map_output(0, 0, "dc-a-w0", [])
    context.sim.run(until=2.0)
    assert "dc-a-w0" not in context.executors
    assert context.shuffle_store.host_of(0, 0) == "dc-a-w0"
    assert context.recovery.executor_crashes == 1
    assert context.chaos_injector.events_applied == 1


def test_host_event_removes_executor_and_storage():
    context = _chaos_context(ChaosEvent(at=1.0, kind="host", target="dc-a-w0"))
    context.shuffle_store.put_map_output(0, 0, "dc-a-w0", [])
    context.sim.run(until=2.0)
    assert "dc-a-w0" not in context.executors
    with pytest.raises(Exception):
        context.shuffle_store.host_of(0, 0)
    assert context.recovery.hosts_lost == 1


def test_unknown_target_is_skipped_not_raised():
    context = _chaos_context(ChaosEvent(at=1.0, kind="crash", target="nope"))
    context.sim.run(until=2.0)
    assert context.chaos_injector.events_applied == 0
    record = context.chaos_injector.fired[0]
    assert not record.applied
    assert "unknown worker host" in record.detail


def test_last_executor_is_never_taken():
    events = [
        ChaosEvent(at=1.0, kind="crash", target=host)
        for host in ("dc-a-w0", "dc-a-w1", "dc-b-w0", "dc-b-w1")
    ]
    context = _chaos_context(*events)
    context.sim.run(until=2.0)
    assert len(context.executors) == 1
    assert context.chaos_injector.events_applied == 3
    assert not context.chaos_injector.fired[-1].applied


def test_outage_takes_down_whole_datacenter():
    context = _chaos_context(ChaosEvent(at=1.0, kind="outage", target="dc-b"))
    context.sim.run(until=2.0)
    assert context.live_workers == ["dc-a-w0", "dc-a-w1"]
    assert context.recovery.datacenter_outages == 1
    assert context.recovery.hosts_lost == 2


def test_merger_event_falls_back_to_data_heaviest_host():
    from repro.shuffle.stores import ShuffleShard

    context = _chaos_context(ChaosEvent(at=1.0, kind="merger", target="dc-b"))
    context.shuffle_store.put_map_output(
        0, 0, "dc-b-w1", [ShuffleShard(records=[1], size_bytes=100.0)]
    )
    context.sim.run(until=2.0)
    assert "dc-b-w1" not in context.executors
    assert "dc-b-w0" in context.executors
    assert context.recovery.merger_losses == 1


def test_degrade_scales_link_and_restores_after_duration():
    context = _chaos_context(
        ChaosEvent(
            at=1.0, kind="degrade", target="dc-a->dc-b",
            factor=0.1, duration=5.0,
        )
    )
    link = context.topology.wan_link("dc-a", "dc-b")
    base = link.base_capacity
    context.sim.run(until=2.0)
    assert link.capacity == pytest.approx(base * 0.1)
    assert context.recovery.wan_degradations == 1
    context.sim.run(until=7.0)
    assert link.capacity == pytest.approx(base)


def test_shuffle_worker_event_falls_back_to_data_heaviest_host():
    """Backends without a worker pool resolve the target like ``merger``
    does: the live host storing the most map-output bytes."""
    from repro.shuffle.stores import ShuffleShard

    context = _chaos_context(
        ChaosEvent(at=1.0, kind="shuffle_worker", target="dc-b")
    )
    context.shuffle_store.put_map_output(
        0, 0, "dc-b-w1", [ShuffleShard(records=[1], size_bytes=100.0)]
    )
    context.sim.run(until=2.0)
    assert "dc-b-w1" not in context.executors
    assert "dc-b-w0" in context.executors
    assert context.recovery.shuffle_worker_losses == 1


def test_shuffle_worker_event_kills_the_pool_worker():
    """With the remote backend the event resolves through the backend's
    worker pool and takes the dedicated worker, not a data host —
    surviving replicas keep serving with zero stage resubmissions."""
    context = _chaos_context(
        ChaosEvent(at=0.5, kind="shuffle_worker", target="dc-a"),
        backend="remote",
        scale_factor=1e5,
        dfs_replication=2,
    )
    records = [(f"k{i % 7}", i) for i in range(40)]
    context.write_input_file("/in", [records[i::4] for i in range(4)])
    result = dict(
        context.text_file("/in")
        .reduce_by_key(lambda a, b: a + b, num_partitions=8)
        .collect()
    )
    expected: dict = {}
    for key, value in records:
        expected[key] = expected.get(key, 0) + value
    assert result == expected
    assert context.recovery.shuffle_worker_losses == 1
    context.sim.run()  # drain background re-replication
    context.shutdown()


def test_shuffle_worker_unknown_datacenter_is_skipped():
    context = _chaos_context(
        ChaosEvent(at=1.0, kind="shuffle_worker", target="dc-z")
    )
    context.sim.run(until=2.0)
    assert context.chaos_injector.events_applied == 0
    record = context.chaos_injector.fired[0]
    assert not record.applied
    assert "unknown datacenter" in record.detail


def test_blob_outage_opens_store_window():
    context = _chaos_context(
        ChaosEvent(at=1.0, kind="blob_outage", target="dc-b", duration=8.0),
        backend="blob",
    )
    context.sim.run(until=2.0)
    assert context.chaos_injector.events_applied == 1
    assert context.recovery.blob_outages == 1
    store = context.shuffle_service.blob_store()
    assert store.outage_remaining("dc-b", context.sim.now) == pytest.approx(
        7.0
    )
    assert store.outage_remaining("dc-a", context.sim.now) == 0.0
    context.sim.run(until=10.0)
    assert store.outage_remaining("dc-b", context.sim.now) == 0.0


def test_blob_outage_skipped_for_backends_without_a_store():
    context = _chaos_context(
        ChaosEvent(at=1.0, kind="blob_outage", target="dc-b", duration=5.0)
    )
    context.sim.run(until=2.0)
    assert context.chaos_injector.events_applied == 0
    record = context.chaos_injector.fired[0]
    assert not record.applied
    assert "no blob store" in record.detail


def test_blob_outage_unknown_datacenter_is_skipped():
    context = _chaos_context(
        ChaosEvent(at=1.0, kind="blob_outage", target="dc-z", duration=5.0),
        backend="blob",
    )
    context.sim.run(until=2.0)
    assert context.chaos_injector.events_applied == 0
    assert "unknown datacenter" in context.chaos_injector.fired[0].detail


def test_crash_relaunches_running_attempts():
    """A crash mid-job relaunches the victim's attempts elsewhere and the
    job still produces the correct result."""
    context = _chaos_context(
        ChaosEvent(at=0.5, kind="crash", target="dc-a-w0"),
        spec=small_spec(),
        # Inflate logical bytes so the job runs for simulated seconds and
        # the crash lands while attempts are in flight.
        scale_factor=1e5,
    )
    records = [(f"k{i % 7}", i) for i in range(40)]
    context.write_input_file("/in", [records[i::4] for i in range(4)])
    result = dict(
        context.text_file("/in")
        .reduce_by_key(lambda a, b: a + b, num_partitions=8)
        .collect()
    )
    expected: dict = {}
    for key, value in records:
        expected[key] = expected.get(key, 0) + value
    assert result == expected
    assert context.recovery.executor_crashes == 1
    context.shutdown()
