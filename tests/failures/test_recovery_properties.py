"""Properties of fault recovery: output identity and exact accounting.

* For any backend, seed, and crash/degrade chaos schedule, the job's
  output is identical with chaos on vs. off — recovery changes *when*
  and *where* work happens, never *what* is computed.
* Retries and relaunches never double-count bytes: the backend's
  counters stay byte-equal to the traffic monitor even when every
  reducer attempt fails once and an executor crashes mid-job, and the
  recovery counters are subsets of the totals.

Crash and degrade events keep stored blocks intact, so any schedule of
them leaves the job completable; storage-losing kinds (host, outage,
merger) are covered by the directed scenarios in ``test_recovery``.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.config import FailureConfig
from repro.failures import ChaosEvent, ChaosSchedule
from repro.shuffle.backends import backend_names
from tests.conftest import make_context, quiet_config, small_spec
from tests.shuffle.test_counter_properties import _assert_counters_match_monitor
from repro.cluster.context import ClusterContext

SCALE = 1e5
HOSTS = ("dc-a-w0", "dc-a-w1", "dc-b-w0", "dc-b-w1")


def _run_job(backend: str, seed: int, chaos=None, failures=None):
    config = quiet_config(
        backend=backend, seed=seed, scale_factor=SCALE, chaos=chaos
    )
    if failures is not None:
        config = dataclasses.replace(config, failures=failures)
    context = ClusterContext(small_spec(), config)
    records = [(f"k{i % 11}", i) for i in range(48)]
    context.write_input_file("/in", [records[i::4] for i in range(4)])
    result = sorted(
        context.text_file("/in")
        .reduce_by_key(lambda a, b: a + b, num_partitions=8)
        .collect()
    )
    return context, result


@settings(max_examples=10, deadline=None)
@given(
    backend=st.sampled_from(tuple(backend_names())),
    seed=st.integers(min_value=0, max_value=3),
    victim=st.sampled_from(HOSTS),
    crash_at=st.floats(min_value=0.1, max_value=40.0),
    degrade=st.booleans(),
)
def test_output_identical_with_chaos_on_vs_off(
    backend, seed, victim, crash_at, degrade
):
    clean_context, clean_result = _run_job(backend, seed)
    clean_context.shutdown()

    events = [ChaosEvent(at=crash_at, kind="crash", target=victim)]
    if degrade:
        events.append(
            ChaosEvent(
                at=crash_at / 2, kind="degrade", target="dc-a->dc-b",
                factor=0.2, duration=crash_at,
            )
        )
    context, result = _run_job(backend, seed, chaos=ChaosSchedule(tuple(events)))
    assert result == clean_result
    _assert_counters_match_monitor(context)
    context.shutdown()


@settings(max_examples=8, deadline=None)
@given(
    backend=st.sampled_from(tuple(backend_names())),
    seed=st.integers(min_value=0, max_value=2),
    crash_at=st.floats(min_value=0.5, max_value=30.0),
)
def test_retries_never_double_count_bytes(backend, seed, crash_at):
    """Every reducer attempt fails once *and* an executor crashes; the
    counters must still reconcile exactly with the traffic monitor, and
    recovery bytes must be a subset of the totals."""
    failures = FailureConfig(
        reducer_failure_probability=1.0, max_injected_failures_per_task=1
    )
    chaos = ChaosSchedule(
        (ChaosEvent(at=crash_at, kind="crash", target="dc-a-w0"),)
    )
    clean_context, clean_result = _run_job(backend, seed)
    clean_context.shutdown()

    context, result = _run_job(backend, seed, chaos=chaos, failures=failures)
    assert result == clean_result
    _assert_counters_match_monitor(context)
    counters = context.shuffle_service.backend.counters
    assert counters.recovery_wan_bytes <= counters.wan_bytes
    assert counters.recovery_intra_dc_bytes <= counters.intra_dc_bytes
    assert context.failure_injector.total_injected > 0
    context.shutdown()
