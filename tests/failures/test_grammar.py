"""Weighted chaos grammar: determinism, round-trips, universes, tokens."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.failures import ChaosUniverse, GrammarConfig
from repro.failures.chaos import KINDS, ChaosSchedule as Schedule
from repro.failures.grammar import (
    DEFAULT_WEIGHTS,
    parse_random_token,
    random_schedule,
    schedule_to_specs,
)
from repro.simulation import RandomSource
from tests.conftest import make_context, small_spec


def three_dc_universe() -> ChaosUniverse:
    datacenters = ("dc-a", "dc-b", "dc-c")
    return ChaosUniverse(
        hosts=tuple(f"{dc}-w{i}" for dc in datacenters for i in range(2)),
        datacenters=datacenters,
        wan_pairs=tuple(
            (src, dst)
            for src in datacenters
            for dst in datacenters
            if src != dst
        ),
    )


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------
def test_same_seed_same_schedule():
    universe = three_dc_universe()
    config = GrammarConfig(events=5)
    first = random_schedule(RandomSource(7), universe, config)
    second = random_schedule(RandomSource(7), universe, config)
    assert first == second


def test_different_seeds_differ():
    universe = three_dc_universe()
    config = GrammarConfig(events=5)
    assert random_schedule(RandomSource(7), universe, config) != random_schedule(
        RandomSource(8), universe, config
    )


def test_weight_dict_order_does_not_leak_into_draws():
    """The kind draw scans sorted kinds, so two weight dicts with the
    same contents but different insertion order draw identically."""
    universe = three_dc_universe()
    forward = GrammarConfig(events=6, weights=dict(DEFAULT_WEIGHTS))
    backward = GrammarConfig(
        events=6, weights=dict(reversed(list(DEFAULT_WEIGHTS.items())))
    )
    assert random_schedule(RandomSource(3), universe, forward) == random_schedule(
        RandomSource(3), universe, backward
    )


# ---------------------------------------------------------------------------
# Coverage and round-trips
# ---------------------------------------------------------------------------
def test_grammar_reaches_every_kind_and_round_trips_bit_exact():
    universe = three_dc_universe()
    config = GrammarConfig(events=8)
    seen = set()
    for seed in range(40):
        schedule = random_schedule(RandomSource(seed), universe, config)
        for event in schedule.events:
            seen.add(event.kind)
            # Bit-exact CLI grammar round trip, event by event.
            assert Schedule.parse_event(event.to_spec()) == event
        assert Schedule.from_specs(schedule_to_specs(schedule)) == schedule
    assert seen == set(KINDS)


def test_events_land_inside_the_window():
    universe = three_dc_universe()
    config = GrammarConfig(events=10, window=(2.0, 3.0))
    schedule = random_schedule(RandomSource(1), universe, config)
    for event in schedule.events:
        assert 2.0 <= event.at <= 3.0


def test_zero_events_gives_empty_schedule():
    schedule = random_schedule(
        RandomSource(0), three_dc_universe(), GrammarConfig(events=0)
    )
    assert not schedule.events


# ---------------------------------------------------------------------------
# Universes
# ---------------------------------------------------------------------------
def test_universe_from_spec_targets_workers_and_all_ordered_pairs():
    universe = ChaosUniverse.from_spec(
        small_spec(datacenters=("dc-a", "dc-b", "dc-c"))
    )
    assert "dc-a-w0" in universe.hosts
    assert all("driver" not in host for host in universe.hosts)
    assert len(universe.wan_pairs) == 6  # 3 DCs, both directions


def test_universe_from_context_probes_live_routes():
    context = make_context()
    universe = ChaosUniverse.from_context(context)
    assert set(universe.hosts) == set(context.executors)
    assert ("dc-a", "dc-b") in universe.wan_pairs
    assert ("dc-b", "dc-a") in universe.wan_pairs
    context.shutdown()


def test_single_dc_universe_redistributes_link_weights():
    universe = ChaosUniverse(
        hosts=("dc-a-w0", "dc-a-w1"), datacenters=("dc-a",), wan_pairs=()
    )
    schedule = random_schedule(
        RandomSource(4), universe, GrammarConfig(events=20)
    )
    kinds = {event.kind for event in schedule.events}
    assert kinds
    assert "degrade" not in kinds
    assert "partition" not in kinds


def test_single_dc_universe_with_only_link_weights_errors():
    universe = ChaosUniverse(
        hosts=("dc-a-w0",), datacenters=("dc-a",), wan_pairs=()
    )
    config = GrammarConfig(
        events=1, weights={"degrade": 1.0, "partition": 1.0}
    )
    with pytest.raises(ConfigurationError):
        random_schedule(RandomSource(0), universe, config)


def test_empty_universe_rejected():
    with pytest.raises(ConfigurationError):
        ChaosUniverse(hosts=(), datacenters=("dc-a",), wan_pairs=()).validate()


# ---------------------------------------------------------------------------
# GrammarConfig validation
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "config",
    [
        GrammarConfig(events=-1),
        GrammarConfig(window=(3.0, 1.0)),
        GrammarConfig(window=(-1.0, 2.0)),
        GrammarConfig(weights={"warp": 1.0}),
        GrammarConfig(weights={"crash": -1.0}),
        GrammarConfig(weights={"crash": 0.0}),
    ],
)
def test_bad_grammar_config_rejected(config):
    with pytest.raises(ConfigurationError):
        config.validate()


# ---------------------------------------------------------------------------
# random:<n>@<seed> token
# ---------------------------------------------------------------------------
def test_parse_random_token():
    assert parse_random_token("random:5@42") == (5, 42)


@pytest.mark.parametrize(
    "token",
    [
        "random:5",  # missing @seed
        "random:x@1",  # count not an integer
        "random:3@y",  # seed not an integer
        "random:0@1",  # count must be >= 1
    ],
)
def test_bad_random_token_names_the_token(token):
    with pytest.raises(ConfigurationError) as excinfo:
        parse_random_token(token)
    assert repr(token) in str(excinfo.value)
