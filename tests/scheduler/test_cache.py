"""CacheManager semantics."""

from repro.scheduler.cache import CacheManager


def test_lookup_miss_then_hit():
    cache = CacheManager()
    assert cache.lookup(1, 0) is None
    cache.put(1, 0, "host-a", [1, 2], 16.0)
    entry = cache.lookup(1, 0)
    assert entry is not None
    assert entry.host == "host-a"
    assert entry.records == [1, 2]
    assert cache.hits == 1
    assert cache.misses == 1


def test_first_writer_wins():
    cache = CacheManager()
    cache.put(1, 0, "host-a", [1], 8.0)
    cache.put(1, 0, "host-b", [2], 8.0)
    assert cache.location(1, 0) == "host-a"
    assert cache.lookup(1, 0).records == [1]


def test_partitions_are_independent():
    cache = CacheManager()
    cache.put(1, 0, "a", [], 0.0)
    cache.put(1, 1, "b", [], 0.0)
    cache.put(2, 0, "c", [], 0.0)
    assert cache.entry_count == 3
    assert cache.location(1, 1) == "b"
    assert cache.location(2, 0) == "c"
    assert not cache.has(2, 1)


def test_evict_rdd_removes_all_its_partitions():
    cache = CacheManager()
    cache.put(1, 0, "a", [], 4.0)
    cache.put(1, 1, "a", [], 4.0)
    cache.put(2, 0, "a", [], 4.0)
    cache.evict_rdd(1)
    assert not cache.has(1, 0)
    assert not cache.has(1, 1)
    assert cache.has(2, 0)


def test_cached_bytes_sums_entries():
    cache = CacheManager()
    cache.put(1, 0, "a", [], 10.0)
    cache.put(1, 1, "a", [], 20.0)
    assert cache.cached_bytes() == 30.0
