"""Inter-job stream scheduler: policies, shares, and determinism (#7).

The policy layer is pure bookkeeping on top of ``submit_job`` — these
tests pin its selection order (every tie breaks on arrival index), its
executor-pool partitioning math, and the end-to-end stream contracts
(all four policies drain any stream; a weight-1 single tenant changes
nothing about a job's outcome).
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.scheduler.job_scheduler import (
    JOB_POLICIES,
    JobStreamScheduler,
    _Queued,
    run_stream,
)
from repro.workloads.arrivals import (
    ArrivalSpec,
    JobArrival,
    JobTemplate,
    StreamSpec,
    TenantSpec,
    generate_arrivals,
)
from tests.conftest import make_context, small_spec


def _spec(policy="fifo", tenants=None, max_concurrent=2):
    return StreamSpec(
        arrival=ArrivalSpec(process="poisson", rate_per_minute=120.0,
                            num_jobs=4),
        tenants=tenants or (TenantSpec("solo"),),
        policy=policy,
        max_concurrent=max_concurrent,
    )


def _arrival(index, tenant="solo", size=1e6, home_dc="dc-a", at=0.0):
    template = JobTemplate(
        name=f"job-{index}", shaped_by="WordCount", total_bytes=size,
        home_dc=home_dc,
    )
    return JobArrival(
        index=index, tenant=tenant, arrival_time=at, template=template
    )


def _scheduler(policy="fifo", tenants=None, spec=None):
    context = make_context(spec=spec)
    return JobStreamScheduler(context, _spec(policy=policy, tenants=tenants))


def test_unknown_policy_rejected():
    context = make_context()
    with pytest.raises(ConfigurationError):
        JobStreamScheduler(context, _spec(policy="lottery"))
    context.shutdown()


def test_fifo_selects_lowest_arrival_index():
    scheduler = _scheduler("fifo")
    for index in (3, 1, 2):
        scheduler._queue.append(_Queued(_arrival(index), 0.0))
    assert scheduler._select().arrival.index == 1


def test_sjf_selects_smallest_estimated_bytes_then_index():
    scheduler = _scheduler("sjf")
    scheduler._queue.append(_Queued(_arrival(0, size=9e6), 0.0))
    scheduler._queue.append(_Queued(_arrival(1, size=2e6), 0.0))
    scheduler._queue.append(_Queued(_arrival(2, size=2e6), 0.0))
    assert scheduler._select().arrival.index == 1


def test_fair_selects_least_weighted_service_tenant():
    tenants = (TenantSpec("heavy", weight=4.0), TenantSpec("light", weight=1.0))
    scheduler = _scheduler("fair", tenants=tenants)
    scheduler._queue.append(_Queued(_arrival(0, tenant="heavy"), 0.0))
    scheduler._queue.append(_Queued(_arrival(1, tenant="light"), 0.0))
    # Equal raw service 8e6: heavy's *weighted* service is 2e6 < 8e6.
    scheduler._service["heavy"] = 8e6
    scheduler._service["light"] = 8e6
    assert scheduler._select().arrival.tenant == "heavy"
    # Tip the balance: heavy now owes more per unit weight.
    scheduler._service["heavy"] = 40e6
    assert scheduler._select().arrival.tenant == "light"


def test_fair_shares_partition_hosts_proportionally():
    tenants = (TenantSpec("big", weight=3.0), TenantSpec("small", weight=1.0))
    scheduler = _scheduler(
        "fair", tenants=tenants,
        spec=small_spec(datacenters=("dc-a", "dc-b"), workers_per_datacenter=2),
    )
    shares = scheduler._shares
    assert len(shares["big"]) == 3
    assert len(shares["small"]) == 1
    assert not (shares["big"] & shares["small"])
    assert len(shares["big"] | shares["small"]) == 4


def test_fair_shares_wrap_when_tenants_outnumber_hosts():
    tenants = tuple(TenantSpec(f"t{i}") for i in range(5))
    scheduler = _scheduler(
        "fair", tenants=tenants,
        spec=small_spec(datacenters=("dc-a",), workers_per_datacenter=2),
    )
    shares = scheduler._shares
    # Every tenant still gets exactly one host, round-robin.
    assert all(len(hosts) == 1 for hosts in shares.values())
    assert len(set().union(*shares.values())) == 2


def test_pack_confines_jobs_to_their_home_datacenter():
    scheduler = _scheduler("pack")
    context = scheduler.context
    hosts = scheduler._hosts_for(_arrival(0, home_dc="dc-b"))
    assert hosts
    assert all(
        context.topology.datacenter_of(host) == "dc-b" for host in hosts
    )


@pytest.mark.parametrize("policy", JOB_POLICIES)
def test_every_policy_drains_a_generated_stream(policy):
    tenants = (
        TenantSpec("prod", weight=4.0, share=1.0),
        TenantSpec("batch", weight=1.0, share=2.0),
    )
    spec = StreamSpec(
        arrival=ArrivalSpec(process="poisson", rate_per_minute=120.0,
                            num_jobs=5),
        tenants=tenants,
        policy=policy,
        max_concurrent=2,
    )
    context = make_context(
        spec=small_spec(datacenters=("dc-a", "dc-b"))
    )
    arrivals = generate_arrivals(
        spec, ("dc-a", "dc-b"), context.randomness.child("stream")
    )
    result = run_stream(context, spec, arrivals)
    context.shutdown()
    assert result.policy == policy
    assert result.jobs_submitted == 5
    assert result.jobs_completed == 5
    assert result.jobs_failed == 0
    assert result.duration > 0
    completed = sum(
        row["jobs_completed"] for row in result.tenants.values()
    )
    assert completed == 5


def test_empty_stream_finishes_immediately():
    context = make_context()
    result = run_stream(context, _spec(), [])
    context.shutdown()
    assert result.jobs_submitted == 0
    assert result.jobs_completed == 0
    assert result.duration == 0.0


def test_weight_one_tenant_job_is_identical_to_untenanted():
    """Byte-identity floor for the whole refactor: labelling a job with
    a weight-1 tenant must not change its timing or traffic at all."""

    def run(tenant):
        context = make_context()
        rdd = context.parallelize(
            [(i % 3, i) for i in range(24)], 4
        ).reduce_by_key(lambda a, b: a + b, num_partitions=3)
        handle = context.submit_job(rdd, "collect", tenant=tenant)
        context.sim.run_until_event(handle.process)
        snapshot = (
            context.sim.now,
            context.traffic.total_bytes,
            context.traffic.cross_dc_bytes,
            sorted(handle.process.value),
        )
        context.shutdown()
        return snapshot

    assert run(None) == run("solo")
