"""Broadcast variables: caching, traffic, and map_with_broadcast."""

import pytest

import repro.cluster  # noqa: F401  (installs broadcast support)


def test_broadcast_value_accessible_at_driver(fetch_context):
    variable = fetch_context.broadcast({"model": [1, 2, 3]})
    assert variable.value == {"model": [1, 2, 3]}
    assert variable.holders() == [fetch_context.driver_host]


def test_map_with_broadcast_applies_value(fetch_context):
    context = fetch_context
    context.write_input_file("/in", [[1, 2], [3]])
    lookup = context.broadcast(10)
    result = (
        context.text_file("/in")
        .map_with_broadcast(lambda record, factor: record * factor, lookup)
        .collect()
    )
    assert result == [10, 20, 30]


def test_broadcast_charged_once_per_host(fetch_context):
    context = fetch_context
    # 4 partitions on the same host: one fetch, three cache hits.
    context.write_input_file(
        "/in", [[i] for i in range(4)],
        placement_hosts=["dc-b-w0"] * 4,
    )
    payload = context.broadcast("m" * 10_000)
    context.text_file("/in").map_with_broadcast(
        lambda record, _value: record, payload
    ).collect()
    broadcast_bytes = context.traffic.by_tag.get("broadcast", 0.0)
    assert broadcast_bytes == pytest.approx(payload.size_bytes)
    assert "dc-b-w0" in payload.holders()


def test_broadcast_fetches_from_same_datacenter_when_possible(fetch_context):
    context = fetch_context
    # First stage pulls the value into dc-b-w0; the second stage's task
    # on dc-b-w1 must fetch from its neighbour, not across the WAN.
    context.write_input_file("/a", [[1]], placement_hosts=["dc-b-w0"])
    context.write_input_file("/b", [[2]], placement_hosts=["dc-b-w1"])
    payload = context.broadcast("x" * 50_000)
    context.text_file("/a").map_with_broadcast(
        lambda r, _v: r, payload
    ).collect()
    cross_before = context.traffic.cross_dc_by_tag.get("broadcast", 0.0)
    context.text_file("/b").map_with_broadcast(
        lambda r, _v: r, payload
    ).collect()
    cross_after = context.traffic.cross_dc_by_tag.get("broadcast", 0.0)
    assert cross_after == cross_before  # second fetch stayed in dc-b


def test_destroy_releases_executor_copies(fetch_context):
    context = fetch_context
    context.write_input_file("/in", [[1]], placement_hosts=["dc-a-w0"])
    payload = context.broadcast([1, 2, 3])
    context.text_file("/in").map_with_broadcast(
        lambda r, _v: r, payload
    ).collect()
    assert len(payload.holders()) == 2
    payload.destroy()
    assert payload.holders() == [context.driver_host]


def test_iterative_rebroadcast_pattern(push_context):
    """A k-means-style loop: new broadcast per iteration, correct math."""
    context = push_context
    points = [[(float(i), 1)] for i in range(6)]
    context.write_input_file("/points", points)
    rdd = context.text_file("/points")
    center = 0.0
    for _iteration in range(3):
        current = context.broadcast(center)
        shifted = rdd.map_with_broadcast(
            lambda record, c: (record[0] - c, record[1]), current
        )
        total = shifted.reduce(lambda a, b: (a[0] + b[0], a[1] + b[1]))
        center = center + total[0] / total[1]
    # The mean of 0..5 is 2.5; the loop converges there in one step.
    assert center == pytest.approx(2.5)
