"""TaskScheduler: slots, locality levels, delay scheduling, spreading."""

import pytest

from repro.config import SchedulingConfig
from repro.network.topology import GBPS, Topology
from repro.scheduler.task import Task
from repro.scheduler.task_scheduler import Executor, TaskScheduler
from repro.simulation import Simulator


class FakeStage:
    """A minimal stand-in for Stage: only .rdd.context.topology is used."""

    def __init__(self, topology):
        class _Ctx:
            pass

        class _Rdd:
            pass

        self.rdd = _Rdd()
        self.rdd.context = _Ctx()
        self.rdd.context.topology = topology


def build(cores=1, hosts_per_dc=2, dcs=("A", "B"), **config_kwargs):
    sim = Simulator()
    topo = Topology()
    for dc in dcs:
        topo.add_datacenter(dc)
        for index in range(hosts_per_dc):
            topo.add_host(f"{dc}{index}", dc, access_bandwidth=GBPS)
    for i, src in enumerate(dcs):
        for dst in dcs[i + 1:]:
            topo.connect_datacenters(src, dst, GBPS)
    executors = {
        name: Executor(name, cores) for name in topo.all_host_names()
    }
    launched = []

    def run_task(task, host):
        launched.append((task, host, sim.now))
        yield sim.timeout(task_duration[0])
        return host

    task_duration = [1.0]
    config = SchedulingConfig(**config_kwargs)
    scheduler = TaskScheduler(sim, topo, executors, config, run_task)
    stage = FakeStage(topo)
    return sim, scheduler, stage, launched, task_duration


def test_task_with_free_preferred_host_runs_there_immediately():
    sim, scheduler, stage, launched, _d = build()
    done = scheduler.submit(Task(stage, 0, preferred_hosts=["B1"]))
    sim.run()
    assert done.value == "B1"
    assert launched[0][2] == 0.0


def test_no_preference_task_runs_anywhere_immediately():
    sim, scheduler, stage, launched, _d = build()
    done = scheduler.submit(Task(stage, 0, preferred_hosts=[]))
    sim.run()
    assert done.triggered


def test_tasks_queue_when_slots_busy():
    sim, scheduler, stage, launched, duration = build(
        cores=1, hosts_per_dc=1, dcs=("A",)
    )
    duration[0] = 5.0
    first = scheduler.submit(Task(stage, 0, []))
    second = scheduler.submit(Task(stage, 1, []))
    sim.run()
    starts = sorted(time for _t, _h, time in launched)
    assert starts == [0.0, 5.0]


def test_locality_wait_then_same_datacenter():
    """Preferred host busy: task upgrades to DC-local after the wait."""
    sim, scheduler, stage, launched, duration = build(
        cores=1, locality_wait_host=2.0, locality_wait_datacenter=100.0
    )
    duration[0] = 50.0
    scheduler.submit(Task(stage, 0, ["A0"]))  # occupies A0
    waiting = scheduler.submit(Task(stage, 1, ["A0"]))
    sim.run(until=10.0)
    assert waiting.triggered is False or True  # it may be running
    # The second task must have launched on the other A host at t=2.
    second = [entry for entry in launched if entry[0].partition == 1]
    assert second and second[0][1] == "A1"
    assert second[0][2] == pytest.approx(2.0)


def test_locality_wait_then_anywhere():
    """Whole preferred DC busy: task escapes after host+dc waits."""
    sim, scheduler, stage, launched, duration = build(
        cores=1, locality_wait_host=1.0, locality_wait_datacenter=3.0
    )
    duration[0] = 50.0
    scheduler.submit(Task(stage, 0, ["A0"]))
    scheduler.submit(Task(stage, 1, ["A1"]))
    escapee = scheduler.submit(Task(stage, 2, ["A0", "A1"]))
    sim.run(until=10.0)
    third = [entry for entry in launched if entry[0].partition == 2]
    assert third and third[0][1] in ("B0", "B1")
    assert third[0][2] == pytest.approx(4.0)


def test_per_task_wait_override_pins_longer():
    sim, scheduler, stage, launched, duration = build(
        cores=1, locality_wait_host=1.0, locality_wait_datacenter=1.0
    )
    duration[0] = 6.0
    scheduler.submit(Task(stage, 0, ["A0"]))
    scheduler.submit(Task(stage, 1, ["A1"]))
    pinned = Task(stage, 2, ["A0", "A1"])
    pinned.locality_wait_host = 0.5
    pinned.locality_wait_datacenter = 1000.0
    scheduler.submit(pinned)
    sim.run()
    third = [entry for entry in launched if entry[0].partition == 2]
    # It waited for an A slot (freed at t=6) instead of escaping to B.
    assert third[0][1] in ("A0", "A1")
    assert third[0][2] == pytest.approx(6.0)


def test_host_local_preferred_over_earlier_non_local():
    """A host-local task beats an earlier-submitted remote-only task for
    a slot on its preferred host when both are eligible."""
    sim, scheduler, stage, launched, duration = build(cores=1)
    duration[0] = 2.0
    # Fill every slot first.
    for index, host in enumerate(("A0", "A1", "B0", "B1")):
        scheduler.submit(Task(stage, index, [host]))
    remote = scheduler.submit(Task(stage, 10, ["B0"]))
    local = scheduler.submit(Task(stage, 11, ["A0"]))
    sim.run()
    a0_tasks = [e for e in launched if e[1] == "A0"]
    # At t=2 A0 frees; the host-local task 11 takes it, not task 10.
    assert [e[0].partition for e in a0_tasks] == [0, 11]


def test_spread_across_hosts_for_no_pref_tasks():
    sim, scheduler, stage, launched, duration = build(cores=2)
    duration[0] = 10.0
    for index in range(4):
        scheduler.submit(Task(stage, index, []))
    sim.run(until=1.0)
    hosts = [host for _t, host, _time in launched]
    assert len(set(hosts)) == 4  # one per host before doubling up


def test_failing_task_body_fails_completion():
    sim, scheduler, stage, launched, _d = build()

    def exploding(task, host):
        yield sim.timeout(0.1)
        raise RuntimeError("task body crashed")

    scheduler.run_task = exploding
    done = scheduler.submit(Task(stage, 0, []))
    sim.run()
    assert done.failed
    # The slot must have been released.
    assert scheduler.total_free_slots() == 4


def test_scheduler_requires_executors():
    sim = Simulator()
    topo = Topology()
    topo.add_datacenter("A")
    topo.add_host("A0", "A")
    from repro.errors import NoEligibleExecutorError

    with pytest.raises(NoEligibleExecutorError):
        TaskScheduler(sim, topo, {}, SchedulingConfig(), lambda t, h: None)


def test_executor_validation():
    from repro.errors import SchedulerError

    with pytest.raises(SchedulerError):
        Executor("h", cores=0)
