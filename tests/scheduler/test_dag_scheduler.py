"""DAGScheduler behaviour: pipelining, placement, reuse, failure paths."""

import pytest

from tests.conftest import make_context


def install(context, partitions, path="/in"):
    context.write_input_file(path, partitions)
    return context.text_file(path)


def test_receiver_tasks_pipeline_with_producers():
    """A receiver must start before the *whole* producer stage is done.

    We give the producer stage one slow partition; the other partition's
    receiver should complete long before the slow producer finishes.
    """
    from repro.rdd.size_estimator import SizedRecord

    context = make_context(push=True)
    small = [("a", 1)]
    # A partition whose logical volume makes its producer task slow.
    big = [("b", SizedRecord("x", natural_size=5e8))]
    install(context, [small, big])
    moved = context.text_file("/in").map(lambda r: r).transfer_to("dc-b")
    moved.collect()
    spans = context.metrics.job.stages
    by_kind = {span.kind: span for span in spans}
    producer = by_kind["transfer_producer"]
    receiver = by_kind["result"]
    first_receiver_end = min(t.finished_at for t in receiver.tasks)
    last_producer_end = max(t.finished_at for t in producer.tasks)
    assert first_receiver_end < last_producer_end
    context.shutdown()


def test_map_tasks_run_where_their_blocks_live(fetch_context):
    context = fetch_context
    context.write_input_file(
        "/in", [[1], [2]], placement_hosts=["dc-a-w0", "dc-b-w1"]
    )
    context.text_file("/in").map(lambda x: x).collect()
    spans = context.metrics.job.stages
    hosts = {t.partition: t.host for t in spans[0].tasks}
    assert hosts == {0: "dc-a-w0", 1: "dc-b-w1"}


def test_reducers_prefer_aggregated_shuffle_input():
    context = make_context(push=True)
    context.write_input_file(
        "/in",
        [[(f"k{i}", 1)] * 3 for i in range(4)],
    )
    reduced = context.text_file("/in").transfer_to("dc-b").reduce_by_key(
        lambda a, b: a + b
    )
    reduced.collect()
    # Only reducers that actually receive input carry a locality
    # preference; empty partitions may run anywhere.
    partitioner = reduced.partitioner
    non_empty = {partitioner.partition(f"k{i}") for i in range(4)}
    result_span = [
        s for s in context.metrics.job.stages if s.kind == "result"
    ][0]
    for task in result_span.tasks:
        if task.partition in non_empty:
            assert context.topology.datacenter_of(task.host) == "dc-b"
    context.shutdown()


def test_completed_shuffle_stage_reused_across_jobs(fetch_context):
    context = fetch_context
    rdd = install(context, [[("a", 1), ("a", 2)], [("b", 3)]])
    reduced = rdd.reduce_by_key(lambda a, b: a + b)
    first = dict(reduced.collect())
    stages_after_first = len(context.metrics.job.stages)
    second = dict(reduced.map(lambda kv: kv).collect())
    assert first == {"a": 3, "b": 3}
    assert second == first
    # The second job must not have re-run the shuffle-map stage.
    second_job_kinds = [
        s.kind for s in context.metrics.job.stages[stages_after_first:]
    ]
    assert "shuffle_map" not in second_job_kinds


def test_collect_result_ships_to_driver(fetch_context):
    context = fetch_context
    install(context, [["x" * 1000] * 10])
    context.text_file("/in").collect()
    assert context.traffic.by_tag["result"] > 0


def test_failing_user_function_raises_to_caller(fetch_context):
    rdd = install(fetch_context, [[1, 2], [3]])

    def bad(record):
        raise ValueError("user code error")

    with pytest.raises(ValueError):
        rdd.map(bad).collect()


def test_unknown_action_rejected(fetch_context):
    from repro.errors import SchedulerError

    rdd = install(fetch_context, [[1]])
    job = fetch_context.dag_scheduler.run_job(rdd, "frobnicate")
    process = fetch_context.sim.spawn(job)
    with pytest.raises(SchedulerError):
        fetch_context.sim.run_until_event(process)


def test_stage_metrics_recorded(fetch_context):
    rdd = install(fetch_context, [[("a", 1)], [("b", 2)]])
    rdd.reduce_by_key(lambda a, b: a + b).collect()
    job = fetch_context.metrics.job
    assert job.finished_at is not None
    assert len(job.stages) == 2
    for span in job.stages:
        assert span.finished_at is not None
        assert span.tasks
    total_tasks = sum(len(span.tasks) for span in job.stages)
    assert total_tasks == 2 + fetch_context.default_parallelism


def test_push_jobs_count_no_shuffle_tag_cross_dc():
    """Under AggShuffle the reduce-side fetch is datacenter-local."""
    context = make_context(push=True)
    install(context, [[("a", 1)], [("b", 2)], [("c", 3)], [("d", 4)]])
    context.text_file("/in").reduce_by_key(lambda a, b: a + b).collect()
    cross_shuffle = context.traffic.cross_dc_by_tag.get("shuffle", 0.0)
    assert cross_shuffle == 0.0
    context.shutdown()
