"""TaskRuntime: unit-level charging and data-movement behaviour."""

import pytest

from repro.scheduler.task import Task
from repro.scheduler.task_runtime import TaskRuntime
from repro.scheduler.stage import build_stages


def runtime_for(context, rdd, host="dc-a-w0", partition=0):
    result_stage, _stages = build_stages(rdd)
    task = Task(result_stage, partition, preferred_hosts=[])
    return TaskRuntime(context, task, host)


def run_gen(context, generator):
    """Drive a runtime generator to completion on the simulator."""
    def wrapper(sim):
        value = yield from generator
        return value

    return context.sim.run_process(wrapper(context.sim))


def test_local_block_read_charges_disk_time_only(fetch_context):
    context = fetch_context
    context.write_input_file(
        "/in", [["x" * 1000]], placement_hosts=["dc-a-w0"]
    )
    rdd = context.text_file("/in")
    runtime = runtime_for(context, rdd, host="dc-a-w0")
    before = context.sim.now
    records = run_gen(context, runtime.read_input_block(rdd.block_id(0)))
    assert records == ["x" * 1000]
    assert context.sim.now > before  # disk time charged
    assert context.traffic.cross_dc_bytes == 0.0
    assert runtime.bytes_read_local > 0


def test_remote_block_read_uses_network(fetch_context):
    context = fetch_context
    context.write_input_file(
        "/in", [["y" * 1000]], placement_hosts=["dc-b-w0"]
    )
    rdd = context.text_file("/in")
    runtime = runtime_for(context, rdd, host="dc-a-w0")
    run_gen(context, runtime.read_input_block(rdd.block_id(0)))
    assert context.traffic.cross_dc_by_tag["input"] > 0
    assert runtime.bytes_transferred_in > 0


def test_same_dc_replica_preferred_over_remote(fetch_context):
    context = fetch_context
    # Two replicas: one in dc-a, one in dc-b; reader is in dc-a.
    context.dfs.namenode.replication = 2
    context.write_input_file(
        "/in", [["z" * 100]], placement_hosts=["dc-a-w1", "dc-b-w0"]
    )
    rdd = context.text_file("/in")
    runtime = runtime_for(context, rdd, host="dc-a-w0")
    run_gen(context, runtime.read_input_block(rdd.block_id(0)))
    # The read must have stayed inside dc-a.
    assert context.traffic.cross_dc_bytes == 0.0
    assert context.traffic.total_bytes > 0


def test_charge_operator_scales_with_logical_bytes(fetch_context):
    from repro.rdd.size_estimator import SizedRecord

    context = fetch_context
    context.write_input_file("/in", [[1]])
    rdd = context.text_file("/in")
    runtime = runtime_for(context, rdd)
    start = context.sim.now
    run_gen(context, runtime.charge_operator(rdd, [SizedRecord(None, 80e6)]))
    big = context.sim.now - start
    start = context.sim.now
    run_gen(context, runtime.charge_operator(rdd, [SizedRecord(None, 8e6)]))
    small = context.sim.now - start
    assert big == pytest.approx(10 * small, rel=0.01)


def test_slowdown_multiplies_cpu_charges(fetch_context):
    from repro.rdd.size_estimator import SizedRecord

    context = fetch_context
    context.write_input_file("/in", [[1]])
    rdd = context.text_file("/in")
    runtime = runtime_for(context, rdd)
    records = [SizedRecord(None, 40e6)]
    start = context.sim.now
    run_gen(context, runtime.charge_operator(rdd, records))
    normal = context.sim.now - start
    runtime.slowdown = 3.0
    start = context.sim.now
    run_gen(context, runtime.charge_operator(rdd, records))
    straggling = context.sim.now - start
    assert straggling == pytest.approx(3 * normal, rel=0.01)


def test_combine_charge_cheaper_than_operator(fetch_context):
    from repro.rdd.size_estimator import SizedRecord

    context = fetch_context
    context.write_input_file("/in", [[1]])
    rdd = context.text_file("/in")
    runtime = runtime_for(context, rdd)
    records = [SizedRecord(None, 40e6)]
    start = context.sim.now
    run_gen(context, runtime.charge_operator(rdd, records))
    full = context.sim.now - start
    start = context.sim.now
    run_gen(context, runtime.charge_combine(rdd, records))
    combine = context.sim.now - start
    assert combine < full


def test_empty_records_charge_nothing(fetch_context):
    context = fetch_context
    context.write_input_file("/in", [[1]])
    rdd = context.text_file("/in")
    runtime = runtime_for(context, rdd)
    start = context.sim.now
    run_gen(context, runtime.charge_operator(rdd, []))
    run_gen(context, runtime.charge_sort(rdd, []))
    run_gen(context, runtime.charge_combine(rdd, []))
    assert context.sim.now == start


def test_ensure_pairs_rejects_non_tuples(fetch_context):
    from repro.errors import RDDError

    context = fetch_context
    context.write_input_file("/in", [[1]])
    rdd = context.text_file("/in")
    runtime = runtime_for(context, rdd)
    with pytest.raises(RDDError):
        runtime.ensure_pairs([42], "test op")
    runtime.ensure_pairs([("k", "v")], "test op")  # fine
    runtime.ensure_pairs([], "test op")  # empty is fine


def test_cache_read_from_remote_host_charges_network(fetch_context):
    context = fetch_context
    context.write_input_file("/in", [["w" * 500]], placement_hosts=["dc-b-w0"])
    rdd = context.text_file("/in").map(lambda x: x).cache()
    rdd.collect()  # cached at dc-b-w0 (where the block lives)
    cached_host = context.cache.location(rdd.rdd_id, 0)
    assert context.topology.datacenter_of(cached_host) == "dc-b"
    before = context.traffic.cross_dc_by_tag.get("cache", 0.0)
    runtime = runtime_for(context, rdd, host="dc-a-w0")
    records = run_gen(context, runtime.materialize(rdd, 0))
    assert records == ["w" * 500]
    assert context.traffic.cross_dc_by_tag.get("cache", 0.0) > before
