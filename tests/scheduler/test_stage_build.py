"""Stage decomposition: boundaries, sharing, and transfer semantics."""


from repro.core.transfer_injection import insert_transfers
from repro.scheduler.stage import StageKind, build_stages


def install(context, partitions=None, path="/in"):
    context.write_input_file(
        path, partitions or [[("a", 1)], [("b", 2)]]
    )
    return context.text_file(path)


def test_narrow_only_job_is_single_stage(fetch_context):
    rdd = install(fetch_context).map(lambda x: x).filter(lambda x: True)
    result_stage, stages = build_stages(rdd)
    assert len(stages) == 1
    assert result_stage.kind is StageKind.RESULT
    assert not result_stage.parents


def test_shuffle_splits_into_two_stages(fetch_context):
    rdd = install(fetch_context).reduce_by_key(lambda a, b: a + b)
    result_stage, stages = build_stages(rdd)
    assert len(stages) == 2
    assert stages[0].kind is StageKind.SHUFFLE_MAP
    assert stages[1] is result_stage
    assert result_stage.parents == [stages[0]]
    assert result_stage.reads_shuffle


def test_transfer_to_creates_producer_stage(push_context):
    rdd = install(push_context).transfer_to("dc-b")
    result_stage, stages = build_stages(rdd)
    kinds = [stage.kind for stage in stages]
    assert kinds == [StageKind.TRANSFER_PRODUCER, StageKind.RESULT]
    assert result_stage.is_receiver_stage
    producer = stages[0]
    assert result_stage.required_transfers(0) == [(producer, 0)]
    assert result_stage.required_transfers(1) == [(producer, 1)]


def test_transfer_before_shuffle_gives_three_stages(push_context):
    rdd = install(push_context).transfer_to("dc-b").reduce_by_key(
        lambda a, b: a + b
    )
    _result, stages = build_stages(rdd)
    kinds = sorted(stage.kind.value for stage in stages)
    assert kinds == ["result", "shuffle_map", "transfer_producer"]
    receiver = next(s for s in stages if s.kind is StageKind.SHUFFLE_MAP)
    assert receiver.is_receiver_stage


def test_insert_transfers_rewrites_every_shuffle(fetch_context):
    rdd = install(fetch_context).reduce_by_key(lambda a, b: a + b)
    rewritten = insert_transfers(rdd)
    _result, stages = build_stages(rewritten)
    kinds = sorted(stage.kind.value for stage in stages)
    assert kinds == ["result", "shuffle_map", "transfer_producer"]


def test_insert_transfers_is_idempotent(fetch_context):
    from repro.core.transfer_injection import count_inserted_transfers

    rdd = install(fetch_context).reduce_by_key(lambda a, b: a + b)
    insert_transfers(rdd)
    insert_transfers(rdd)
    assert count_inserted_transfers(rdd) == 1


def test_insert_transfers_respects_explicit_transfer(fetch_context):
    rdd = install(fetch_context).transfer_to("dc-b").reduce_by_key(
        lambda a, b: a + b
    )
    insert_transfers(rdd)
    dep = rdd.dependencies[0]
    # The explicit transfer must not be wrapped in another one.
    assert dep.parent.transfer_dependency.destination_datacenter == "dc-b"


def test_insert_transfers_carries_pre_combine(fetch_context):
    rdd = install(fetch_context).reduce_by_key(lambda a, b: a + b)
    insert_transfers(rdd)
    transferred = rdd.dependencies[0].parent
    assert transferred.transfer_dependency.pre_combine is not None
    _result, stages = build_stages(rdd)
    receiver = next(
        s for s in stages
        if s.kind is StageKind.SHUFFLE_MAP and s.is_receiver_stage
    )
    assert receiver.combine_done


def test_group_by_key_transfer_has_no_pre_combine(fetch_context):
    rdd = install(fetch_context).group_by_key()
    insert_transfers(rdd)
    transferred = rdd.dependencies[0].parent
    assert transferred.transfer_dependency.pre_combine is None


def test_cogroup_shares_nothing_but_builds_both_sides(fetch_context):
    left = install(fetch_context, path="/l")
    right = install(fetch_context, path="/r")
    rdd = left.cogroup(right)
    _result, stages = build_stages(rdd)
    map_stages = [s for s in stages if s.kind is StageKind.SHUFFLE_MAP]
    assert len(map_stages) == 2


def test_diamond_lineage_shares_shuffle_stage(fetch_context):
    """Two consumers of the same shuffled RDD share its map stage."""
    base = install(fetch_context).reduce_by_key(lambda a, b: a + b)
    left = base.map(lambda kv: (kv[0], 1))
    right = base.map(lambda kv: (kv[0], 2))
    rdd = left.union(right)
    _result, stages = build_stages(rdd)
    map_stages = [s for s in stages if s.kind is StageKind.SHUFFLE_MAP]
    assert len(map_stages) == 1


def test_iterative_lineage_stage_count(fetch_context):
    """Two chained shuffles produce three stages."""
    rdd = (
        install(fetch_context)
        .reduce_by_key(lambda a, b: a + b)
        .map(lambda kv: (kv[1], kv[0]))
        .group_by_key()
    )
    _result, stages = build_stages(rdd)
    assert len(stages) == 3


def test_topological_order_parents_first(fetch_context):
    rdd = (
        install(fetch_context)
        .reduce_by_key(lambda a, b: a + b)
        .map(lambda kv: (kv[1], kv[0]))
        .group_by_key()
    )
    _result, stages = build_stages(rdd)
    seen = set()
    for stage in stages:
        for parent in stage.parents:
            assert parent.stage_id in seen
        seen.add(stage.stage_id)


def test_stage_names_mention_kind(fetch_context):
    rdd = install(fetch_context).reduce_by_key(lambda a, b: a + b)
    result_stage, _stages = build_stages(rdd)
    assert "result" in result_stage.name
