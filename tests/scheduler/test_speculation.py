"""Speculative execution: duplicate stragglers, first finisher wins."""

import dataclasses

from repro.cluster.context import ClusterContext
from repro.config import SchedulingConfig
from tests.conftest import quiet_config, small_spec


class OneSlowTask:
    """Straggler model: exactly the first attempt drawn becomes slow."""

    def __init__(self, factor: float = 8.0) -> None:
        self.factor = factor
        self._victim = None

    def slowdown(self, _randomness, task_id: str, attempt: int) -> float:
        if self._victim is None:
            self._victim = task_id
        return self.factor if task_id == self._victim else 1.0


def build_context(speculation: bool, straggler=None, spec_kwargs=None):
    scheduling = SchedulingConfig(
        speculation=speculation,
        speculation_multiplier=1.5,
        speculation_quantile=0.5,
        speculation_interval=1.0,
    )
    config = dataclasses.replace(quiet_config(), scheduling=scheduling)
    return ClusterContext(
        small_spec(**(spec_kwargs or {})),
        config,
        straggler_model=straggler,
    )


def big_partitions(count=8):
    from repro.rdd.size_estimator import SizedRecord

    return [[SizedRecord(f"p{i}", natural_size=2e8)] for i in range(count)]


def test_speculation_rescues_straggling_stage():
    # count() keeps the job CPU-bound so the straggler dominates.
    slow = build_context(speculation=False, straggler=OneSlowTask())
    slow.write_input_file("/in", big_partitions())
    slow.text_file("/in").map(lambda r: r).count()
    without = slow.metrics.job.duration
    slow.shutdown()

    fast = build_context(speculation=True, straggler=OneSlowTask())
    fast.write_input_file("/in", big_partitions())
    fast.text_file("/in").map(lambda r: r).count()
    with_speculation = fast.metrics.job.duration
    fast.shutdown()

    assert with_speculation < without * 0.75


def test_speculation_preserves_results():
    context = build_context(speculation=True, straggler=OneSlowTask())
    context.write_input_file(
        "/in", [[("k", i)] for i in range(8)]
    )
    result = dict(
        context.text_file("/in").reduce_by_key(lambda a, b: a + b).collect()
    )
    assert result == {"k": sum(range(8))}
    context.shutdown()


def test_no_speculation_without_stragglers():
    """Healthy stages launch no duplicates (task count stays exact)."""
    context = build_context(speculation=True)
    context.write_input_file("/in", [[i] for i in range(4)])
    context.text_file("/in").map(lambda r: r).collect()
    total_tasks = sum(
        len(span.tasks) for span in context.metrics.job.stages
    )
    assert total_tasks == 4
    context.shutdown()


def test_speculation_records_duplicate_attempts():
    context = build_context(speculation=True, straggler=OneSlowTask(12.0))
    context.write_input_file("/in", big_partitions())
    context.text_file("/in").map(lambda r: r).count()
    # The job ends when the duplicate wins; drain the simulator so the
    # losing original also finishes and is recorded.
    context.sim.run()
    total_tasks = sum(
        len(span.tasks) for span in context.metrics.job.stages
    )
    assert total_tasks > 8  # the duplicate and the loser both completed
    context.shutdown()


def test_speculation_off_by_default():
    assert SchedulingConfig().speculation is False
