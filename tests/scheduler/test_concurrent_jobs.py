"""Concurrent jobs sharing one cluster (§IV-E)."""

import pytest


def test_two_jobs_complete_with_correct_results(push_context):
    context = push_context
    context.write_input_file("/a", [[("x", 1)], [("x", 2)]])
    context.write_input_file("/b", [[("y", 10)], [("y", 20)]])
    job_a = context.submit_job(
        context.text_file("/a").reduce_by_key(lambda a, b: a + b)
    )
    job_b = context.submit_job(
        context.text_file("/b").reduce_by_key(lambda a, b: a + b)
    )
    results = context.wait_all([job_a, job_b])
    assert dict(results[0]) == {"x": 3}
    assert dict(results[1]) == {"y": 30}
    assert job_a.done and job_b.done


def test_concurrent_jobs_interleave_in_time(fetch_context):
    """Running two jobs together must not serialise them fully."""
    context = fetch_context
    parts = [[("k", i) for i in range(5)] for _ in range(4)]
    context.write_input_file("/a", parts)
    context.write_input_file("/b", parts)

    # Sequential reference.
    start = context.sim.now
    context.text_file("/a").reduce_by_key(lambda a, b: a + b).collect()
    context.text_file("/b").reduce_by_key(lambda a, b: a + b).collect()
    sequential = context.sim.now - start

    context.write_input_file("/c", parts)
    context.write_input_file("/d", parts)
    start = context.sim.now
    handles = [
        context.submit_job(
            context.text_file(path).reduce_by_key(lambda a, b: a + b)
        )
        for path in ("/c", "/d")
    ]
    context.wait_all(handles)
    concurrent = context.sim.now - start
    assert concurrent < sequential * 0.95


def test_each_job_gets_its_own_metrics(fetch_context):
    context = fetch_context
    context.write_input_file("/a", [[1], [2]])
    context.write_input_file("/b", [[3]])
    job_a = context.submit_job(context.text_file("/a"))
    job_b = context.submit_job(context.text_file("/b"))
    context.wait_all([job_a, job_b])
    assert len(job_a.metrics.job.stages) == 1
    assert len(job_b.metrics.job.stages) == 1
    tasks_a = sum(len(s.tasks) for s in job_a.metrics.job.stages)
    tasks_b = sum(len(s.tasks) for s in job_b.metrics.job.stages)
    assert tasks_a == 2
    assert tasks_b == 1
    assert job_a.duration > 0


def test_failing_concurrent_job_does_not_poison_the_other(fetch_context):
    context = fetch_context
    context.write_input_file("/good", [[1, 2]])
    context.write_input_file("/bad", [[3]])

    def explode(_record):
        raise RuntimeError("bad job")

    good = context.submit_job(context.text_file("/good"))
    bad = context.submit_job(context.text_file("/bad").map(explode))
    assert good.result() == [1, 2]
    with pytest.raises(RuntimeError):
        bad.result()


def test_submitted_job_result_idempotent(fetch_context):
    context = fetch_context
    context.write_input_file("/a", [[5]])
    handle = context.submit_job(context.text_file("/a"))
    assert handle.result() == [5]
    assert handle.result() == [5]  # second call returns cached value
