"""Zipf text generation."""

import pytest

from repro.simulation import RandomSource
from repro.workloads.text_gen import TextGenerator, zipf_probabilities


def test_probabilities_normalised_and_decreasing():
    probs = zipf_probabilities(100, exponent=1.1)
    assert probs.sum() == pytest.approx(1.0)
    assert all(probs[i] >= probs[i + 1] for i in range(99))


def test_probabilities_validation():
    with pytest.raises(ValueError):
        zipf_probabilities(0)


def test_document_counts_sum_to_token_budget():
    generator = TextGenerator(
        vocabulary_buckets=50, tokens_per_document=500
    )
    document = generator.document(RandomSource(1), "doc")
    assert sum(document.values()) == 500
    assert all(count > 0 for count in document.values())
    assert all(bucket.startswith("w") for bucket in document)


def test_documents_deterministic_per_seed():
    generator = TextGenerator()
    a = generator.document(RandomSource(3), "d")
    b = generator.document(RandomSource(3), "d")
    c = generator.document(RandomSource(4), "d")
    assert a == b
    assert a != c


def test_popular_buckets_dominate():
    generator = TextGenerator(
        vocabulary_buckets=1000, tokens_per_document=10000,
        zipf_exponent=1.2,
    )
    document = generator.document(RandomSource(7), "d")
    head = sum(
        count for bucket, count in document.items()
        if int(bucket[1:]) < 100
    )
    assert head > sum(document.values()) * 0.5


def test_bucket_bytes_scales_with_words_per_bucket():
    small = TextGenerator(words_per_bucket=10)
    big = TextGenerator(words_per_bucket=1000)
    assert big.bucket_bytes == pytest.approx(100 * small.bucket_bytes)


def test_generator_validation():
    with pytest.raises(ValueError):
        TextGenerator(vocabulary_buckets=0)
    with pytest.raises(ValueError):
        TextGenerator(tokens_per_document=0)


def test_documents_batch():
    generator = TextGenerator(vocabulary_buckets=20, tokens_per_document=50)
    docs = generator.documents(RandomSource(0), "batch", 5)
    assert len(docs) == 5
    assert len({frozenset(d.items()) for d in docs}) > 1  # not identical
