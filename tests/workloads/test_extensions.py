"""Extension workloads: KMeans (broadcast) and JoinAggregate."""

import dataclasses

import pytest

from repro.simulation import RandomSource
from repro.workloads.extensions import (
    JOIN_SPEC,
    KMEANS_SPEC,
    JoinAggregate,
    KMeans,
)
from tests.conftest import make_context


def shrink(spec, partitions=4, records=8):
    return dataclasses.replace(
        spec, input_partitions=partitions, records_per_partition=records
    )


@pytest.fixture(params=[False, True], ids=["fetch", "push"])
def push(request):
    return request.param


def test_kmeans_matches_reference(push):
    workload = KMeans(spec=shrink(KMEANS_SPEC), clusters=3, iterations=2)
    context = make_context(push=push)
    partitions = workload.generate(RandomSource(3))
    workload.install(context, partitions)
    centres = workload.run(context)
    expected = workload.reference_result(partitions)
    assert len(centres) == 3
    for got, want in zip(centres, expected):
        assert got[0] == pytest.approx(want[0], rel=1e-9)
        assert got[1] == pytest.approx(want[1], rel=1e-9)
    context.shutdown()


def test_kmeans_converges_toward_blobs():
    workload = KMeans(
        spec=shrink(KMEANS_SPEC, partitions=6, records=30),
        clusters=2,
        iterations=4,
    )
    context = make_context(push=True)
    partitions = workload.generate(RandomSource(7))
    workload.install(context, partitions)
    centres = workload.run(context)
    # True blob centres are (0, 0) and (10, 5).
    assert min(abs(c[0] - 0.0) + abs(c[1] - 0.0) for c in centres) < 2.0
    assert min(abs(c[0] - 10.0) + abs(c[1] - 5.0) for c in centres) < 2.0
    context.shutdown()


def test_kmeans_broadcasts_once_per_host_per_iteration():
    workload = KMeans(spec=shrink(KMEANS_SPEC), clusters=2, iterations=2)
    context = make_context(push=False)
    partitions = workload.generate(RandomSource(1))
    workload.install(context, partitions)
    workload.run(context)
    broadcast_bytes = context.traffic.by_tag.get("broadcast", 0.0)
    assert broadcast_bytes > 0
    context.shutdown()


def test_kmeans_validation():
    with pytest.raises(ValueError):
        KMeans(clusters=0)
    with pytest.raises(ValueError):
        KMeans(iterations=0)


def test_join_aggregate_matches_reference(push):
    workload = JoinAggregate(spec=shrink(JOIN_SPEC), num_users=30)
    context = make_context(push=push)
    partitions = workload.generate(RandomSource(5))
    workload.install(context, partitions)
    totals = workload.run(context)
    expected = workload.reference_result(partitions)
    assert set(totals) == set(expected)
    for region, value in expected.items():
        assert totals[region] == pytest.approx(value, rel=1e-9)
    context.shutdown()


def test_join_dimension_table_installed(push):
    workload = JoinAggregate(spec=shrink(JOIN_SPEC), num_users=10)
    context = make_context(push=push)
    partitions = workload.generate(RandomSource(2))
    workload.install(context, partitions)
    assert context.dfs.exists(workload.dimension_path)
    context.shutdown()


def test_join_total_conserved(push):
    workload = JoinAggregate(spec=shrink(JOIN_SPEC), num_users=10)
    context = make_context(push=push)
    partitions = workload.generate(RandomSource(4))
    workload.install(context, partitions)
    totals = workload.run(context)
    all_amounts = sum(
        amount.payload for block in partitions for _u, amount in block
    )
    assert sum(totals.values()) == pytest.approx(all_amounts, rel=1e-9)
    context.shutdown()


def test_extension_workloads_run_under_harness():
    from repro.experiments.runner import (
        ExperimentPlan,
        clear_data_cache,
        run_workload_once,
    )
    from repro.experiments.schemes import Scheme
    from tests.conftest import small_spec

    clear_data_cache()
    plan = ExperimentPlan(
        cluster=small_spec(
            datacenters=("dc-a", "dc-b", "dc-c"), workers_per_datacenter=2
        ),
        seeds=(0,),
    )
    workload = JoinAggregate(spec=shrink(JOIN_SPEC), num_users=20)
    spark = run_workload_once(workload, Scheme.SPARK, 0, plan)
    agg = run_workload_once(workload, Scheme.AGGSHUFFLE, 0, plan)
    assert spark.duration > 0 and agg.duration > 0
    assert agg.cross_dc_by_tag.get("shuffle", 0.0) == 0.0
    clear_data_cache()
