"""Table I values and spec validation."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import specs


def test_table1_wordcount():
    assert specs.WORDCOUNT.total_input_bytes == pytest.approx(3.2e9)


def test_table1_sort():
    assert specs.SORT.total_input_bytes == pytest.approx(320e6)


def test_table1_terasort():
    # 32 million records x 100 bytes.
    assert specs.TERASORT.total_input_bytes == pytest.approx(
        32_000_000 * 100
    )


def test_table1_pagerank():
    assert specs.PAGERANK_PAGES == 500_000
    assert specs.PAGERANK_ITERATIONS == 3


def test_table1_naive_bayes():
    assert specs.NAIVE_BAYES_PAGES == 100_000
    assert specs.NAIVE_BAYES_CLASSES == 100


def test_reduce_parallelism_is_eight():
    """§V-A: max parallelism of map and reduce set to 8."""
    for spec in specs.ALL_SPECS:
        assert spec.reduce_partitions == 8


def test_spec_lookup_by_name():
    assert specs.spec_by_name("terasort") is specs.TERASORT
    with pytest.raises(WorkloadError):
        specs.spec_by_name("nope")


def test_spec_validation():
    bad = specs.WorkloadSpec(
        name="bad", total_input_bytes=0, input_partitions=1,
        reduce_partitions=1, cpu_bytes_per_second=1e6,
        records_per_partition=1,
    )
    with pytest.raises(WorkloadError):
        bad.validate()


def test_bytes_per_partition():
    assert specs.SORT.bytes_per_input_partition == pytest.approx(
        320e6 / specs.SORT.input_partitions
    )


def test_terasort_bloat_factor_above_one():
    assert specs.TERASORT_BLOAT_FACTOR > 1.0
