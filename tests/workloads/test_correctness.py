"""Workload correctness: simulated results equal plain-Python references,
under both shuffle mechanisms, on scaled-down specs."""

import dataclasses

import pytest

from repro.simulation import RandomSource
from repro.workloads import (
    NAIVE_BAYES,
    PAGERANK,
    SORT,
    TERASORT,
    WORDCOUNT,
    NaiveBayes,
    PageRank,
    Sort,
    TeraSort,
    WordCount,
)
from repro.workloads.text_gen import TextGenerator
from tests.conftest import make_context


def shrink(spec, partitions=4, records=6):
    return dataclasses.replace(
        spec, input_partitions=partitions, records_per_partition=records
    )


def run_workload(workload, push, seed=0):
    context = make_context(push=push, seed=seed)
    partitions = workload.generate(RandomSource(seed))
    workload.install(context, partitions)
    result = workload.run(context)
    return context, partitions, result


@pytest.fixture(params=[False, True], ids=["fetch", "push"])
def push(request):
    return request.param


def test_wordcount_matches_reference(push):
    workload = WordCount(
        spec=shrink(WORDCOUNT, records=2),
        generator=TextGenerator(vocabulary_buckets=40, tokens_per_document=200),
    )
    context, partitions, result = run_workload(workload, push)
    counts = WordCount.result_to_counts(result)
    assert counts == workload.reference_result(partitions)
    context.shutdown()


def test_sort_produces_globally_sorted_output(push):
    workload = Sort(spec=shrink(SORT, records=10))
    context, partitions, _result = run_workload(workload, push)
    expected = workload.reference_result(partitions)
    # Reassemble output partitions in order from the DFS.
    keys = []
    for index in range(workload.spec.reduce_partitions):
        path = f"{workload.output_path}/part-{index:05d}"
        block = context.dfs.read_block(context.dfs.file_blocks(path)[0])
        keys.extend(key for key, _value in block.records)
    assert keys == expected
    context.shutdown()


def test_terasort_sorted_and_bloated(push):
    workload = TeraSort(spec=shrink(TERASORT, records=10))
    context, partitions, _result = run_workload(workload, push)
    expected = workload.reference_result(partitions)
    keys = []
    bloated_bytes = 0.0
    for index in range(workload.spec.reduce_partitions):
        path = f"{workload.output_path}/part-{index:05d}"
        block = context.dfs.read_block(context.dfs.file_blocks(path)[0])
        keys.extend(key for key, _value in block.records)
        bloated_bytes += sum(v.natural_size for _k, v in block.records)
    assert keys == expected
    raw_bytes = sum(
        value.natural_size
        for partition in partitions
        for _key, value in partition
    )
    assert bloated_bytes == pytest.approx(
        raw_bytes * workload.bloat_factor, rel=1e-6
    )
    context.shutdown()


def test_pagerank_matches_reference(push):
    workload = PageRank(spec=shrink(PAGERANK, records=20))
    context, partitions, result = run_workload(workload, push)
    ranks = PageRank.result_to_ranks(result)
    reference = workload.reference_result(partitions)
    assert set(ranks) == set(reference)
    for page, rank in reference.items():
        assert ranks[page] == pytest.approx(rank, rel=1e-9)
    context.shutdown()


def test_pagerank_iteration_count_changes_result():
    one = PageRank(spec=shrink(PAGERANK, records=20), iterations=1)
    three = PageRank(spec=shrink(PAGERANK, records=20), iterations=3)
    partitions = one.generate(RandomSource(0))
    assert one.reference_result(partitions) != three.reference_result(
        partitions
    )


def test_naive_bayes_matches_reference(push):
    workload = NaiveBayes(
        spec=shrink(NAIVE_BAYES, records=2),
        generator=TextGenerator(vocabulary_buckets=30, tokens_per_document=100),
    )
    context, partitions, result = run_workload(workload, push)
    totals = NaiveBayes.result_to_totals(result)
    assert totals == workload.reference_result(partitions)
    context.shutdown()


def test_generated_sizes_match_spec():
    """Generated partitions carry exactly the Table I byte volume."""
    for workload in (
        WordCount(spec=shrink(WORDCOUNT, records=2)),
        Sort(spec=shrink(SORT, records=5)),
        TeraSort(spec=shrink(TERASORT, records=5)),
        PageRank(spec=shrink(PAGERANK, records=10)),
        NaiveBayes(spec=shrink(NAIVE_BAYES, records=2)),
    ):
        from repro.rdd.size_estimator import SizeEstimator

        partitions = workload.generate(RandomSource(1))
        estimator = SizeEstimator()
        total = sum(estimator.estimate(p) for p in partitions)
        assert total == pytest.approx(
            workload.spec.total_input_bytes, rel=0.01
        ), workload.name


def test_generation_is_deterministic():
    workload = Sort(spec=shrink(SORT, records=5))
    a = workload.generate(RandomSource(9))
    b = workload.generate(RandomSource(9))
    assert a == b


def test_install_rejects_wrong_partition_count():
    from repro.errors import WorkloadError

    workload = Sort(spec=shrink(SORT, partitions=4, records=2))
    context = make_context()
    with pytest.raises(WorkloadError):
        workload.install(context, [[("k", None)]])
    context.shutdown()


def test_terasort_explicit_transfer_variant_is_correct():
    workload = TeraSort(spec=shrink(TERASORT, records=8))
    context = make_context(push=True)
    partitions = workload.generate(RandomSource(2))
    workload.install(context, partitions)
    rdd = workload.build_with_explicit_transfer(context, destination="dc-b")
    rdd.save_as_file("/explicit")
    keys = []
    for index in range(workload.spec.reduce_partitions):
        path = f"/explicit/part-{index:05d}"
        block = context.dfs.read_block(context.dfs.file_blocks(path)[0])
        keys.extend(key for key, _value in block.records)
    assert keys == workload.reference_result(partitions)
    context.shutdown()
