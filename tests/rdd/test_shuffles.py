"""Shuffle transformations: correctness under both shuffle mechanisms."""

from collections import Counter, defaultdict

import pytest

from tests.conftest import make_context


PAIR_PARTITIONS = [
    [("a", 1), ("b", 2), ("a", 3)],
    [("c", 4), ("a", 5)],
    [("b", 6), ("d", 7), ("d", 8)],
]


def pair_rdd(context, partitions=None, path="/pairs"):
    context.write_input_file(path, partitions or PAIR_PARTITIONS)
    return context.text_file(path)


@pytest.fixture(params=[False, True], ids=["fetch", "push"])
def context(request):
    ctx = make_context(push=request.param)
    yield ctx
    ctx.shutdown()


def test_reduce_by_key_sums(context):
    result = dict(
        pair_rdd(context).reduce_by_key(lambda a, b: a + b).collect()
    )
    expected = Counter()
    for partition in PAIR_PARTITIONS:
        for key, value in partition:
            expected[key] += value
    assert result == dict(expected)


def test_group_by_key_collects_all_values(context):
    result = {
        key: sorted(values)
        for key, values in pair_rdd(context).group_by_key().collect()
    }
    expected = defaultdict(list)
    for partition in PAIR_PARTITIONS:
        for key, value in partition:
            expected[key].append(value)
    assert result == {k: sorted(v) for k, v in expected.items()}


def test_sort_by_key_orders_globally(context):
    data = [[(9, "i"), (1, "a")], [(5, "e"), (3, "c")], [(7, "g")]]
    rdd = pair_rdd(context, data)
    result = rdd.sort_by_key(sample_keys=[1, 3, 5, 7, 9], num_partitions=2)
    collected = result.collect()
    assert [key for key, _v in collected] == [1, 3, 5, 7, 9]


def test_sort_by_key_descending(context):
    data = [[(2, "b"), (1, "a")], [(3, "c")]]
    result = pair_rdd(context, data).sort_by_key(
        sample_keys=[1, 2, 3], num_partitions=1, ascending=False
    ).collect()
    assert [key for key, _v in result] == [3, 2, 1]


def test_partition_by_respects_partitioner(context):
    from repro.rdd.partitioner import HashPartitioner

    partitioner = HashPartitioner(4)
    rdd = pair_rdd(context).partition_by(partitioner)
    assert rdd.num_partitions == 4
    assert sorted(rdd.collect()) == sorted(
        record for partition in PAIR_PARTITIONS for record in partition
    )


def test_join_matches_python(context):
    left = pair_rdd(context, [[("a", 1), ("b", 2)], [("a", 3)]], path="/l")
    right = pair_rdd(context, [[("a", "x")], [("b", "y"), ("e", "z")]], path="/r")
    result = sorted(left.join(right).collect())
    assert result == [("a", (1, "x")), ("a", (3, "x")), ("b", (2, "y"))]


def test_cogroup_includes_one_sided_keys(context):
    left = pair_rdd(context, [[("a", 1)], [("b", 2)]], path="/l")
    right = pair_rdd(context, [[("a", 9)], [("c", 7)]], path="/r")
    result = {
        key: (sorted(ls), sorted(rs))
        for key, (ls, rs) in left.cogroup(right).collect()
    }
    assert result == {
        "a": ([1], [9]),
        "b": ([2], []),
        "c": ([], [7]),
    }


def test_chained_shuffles(context):
    """reduceByKey then groupByKey over the reversed pair."""
    rdd = pair_rdd(context)
    summed = rdd.reduce_by_key(lambda a, b: a + b)
    regrouped = summed.map(lambda kv: (kv[1] % 2, kv[0])).group_by_key()
    result = {k: sorted(v) for k, v in regrouped.collect()}
    totals = Counter()
    for partition in PAIR_PARTITIONS:
        for key, value in partition:
            totals[key] += value
    expected = defaultdict(list)
    for key, total in totals.items():
        expected[total % 2].append(key)
    assert result == {k: sorted(v) for k, v in expected.items()}


def test_shuffle_after_union(context):
    left = pair_rdd(context, [[("a", 1)]], path="/l")
    right = pair_rdd(context, [[("a", 2), ("b", 3)]], path="/r")
    result = dict(
        left.union(right).reduce_by_key(lambda a, b: a + b).collect()
    )
    assert result == {"a": 3, "b": 3}


def test_reduce_by_key_with_explicit_partitions(context):
    rdd = pair_rdd(context).reduce_by_key(lambda a, b: a + b, num_partitions=7)
    assert rdd.num_partitions == 7
    assert len(rdd.collect()) == 4


def test_shuffle_requires_pair_records(context):
    context.write_input_file("/notpairs", [[1, 2, 3]])
    rdd = context.text_file("/notpairs").reduce_by_key(lambda a, b: a + b)
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        rdd.collect()


def test_iterative_reuse_of_cached_shuffle_output(context):
    """PageRank-style: repeated joins against a cached grouped RDD."""
    links = pair_rdd(
        context, [[("a", "b"), ("b", "a")], [("a", "c")]], path="/links"
    ).group_by_key().cache()
    ranks = links.map_values(lambda _v: 1.0)
    for _ in range(2):
        contribs = links.join(ranks).flat_map(
            lambda kv: [
                (dst, kv[1][1] / len(kv[1][0])) for dst in kv[1][0]
            ]
        )
        ranks = contribs.reduce_by_key(lambda a, b: a + b)
    result = dict(ranks.collect())
    # Plain-Python reference.
    adjacency = {"a": ["b", "c"], "b": ["a"]}
    reference = {k: 1.0 for k in adjacency}
    for _ in range(2):
        contribs = defaultdict(float)
        for src, neighbors in adjacency.items():
            rank = reference.get(src)
            if rank is None:
                continue
            for dst in neighbors:
                contribs[dst] += rank / len(neighbors)
        reference = dict(contribs)
    assert result == pytest.approx(reference)
