"""Narrow transformations: results match plain-Python equivalents.

Every test runs a real job on a small simulated cluster (both shuffle
mechanisms where relevant) and compares against the obvious Python
computation.
"""


from tests.conftest import make_context


def install(context, partitions, path="/in"):
    context.write_input_file(path, partitions)
    return context.text_file(path)


def test_text_file_partitions_match_blocks(fetch_context):
    rdd = install(fetch_context, [[1, 2], [3], [4, 5]])
    assert rdd.num_partitions == 3


def test_collect_preserves_partition_order(fetch_context):
    rdd = install(fetch_context, [[1, 2], [3], [4, 5]])
    assert rdd.collect() == [1, 2, 3, 4, 5]


def test_map(fetch_context):
    rdd = install(fetch_context, [[1, 2], [3, 4]])
    assert rdd.map(lambda x: x * 10).collect() == [10, 20, 30, 40]


def test_filter(fetch_context):
    rdd = install(fetch_context, [list(range(10)), list(range(10, 20))])
    result = rdd.filter(lambda x: x % 2 == 0).collect()
    assert result == [x for x in range(20) if x % 2 == 0]


def test_flat_map(fetch_context):
    rdd = install(fetch_context, [["ab", "c"], ["de"]])
    assert rdd.flat_map(list).collect() == ["a", "b", "c", "d", "e"]


def test_map_partitions(fetch_context):
    rdd = install(fetch_context, [[1, 2, 3], [4, 5]])
    result = rdd.map_partitions(lambda part: [sum(part)]).collect()
    assert result == [6, 9]


def test_chained_transformations(fetch_context):
    rdd = install(fetch_context, [list(range(6)), list(range(6, 12))])
    result = (
        rdd.map(lambda x: x + 1)
        .filter(lambda x: x % 3 == 0)
        .map(lambda x: x * x)
        .collect()
    )
    expected = [(x + 1) ** 2 for x in range(12) if (x + 1) % 3 == 0]
    assert result == expected


def test_keys_and_values(fetch_context):
    rdd = install(fetch_context, [[("a", 1), ("b", 2)]])
    assert rdd.keys().collect() == ["a", "b"]
    assert rdd.values().collect() == [1, 2]


def test_map_values(fetch_context):
    rdd = install(fetch_context, [[("a", 1), ("b", 2)]])
    assert rdd.map_values(lambda v: v * 100).collect() == [
        ("a", 100), ("b", 200),
    ]


def test_union_concatenates(fetch_context):
    left = install(fetch_context, [[1], [2]], path="/l")
    right = install(fetch_context, [[3], [4]], path="/r")
    union = left.union(right)
    assert union.num_partitions == 4
    assert union.collect() == [1, 2, 3, 4]


def test_union_then_map(fetch_context):
    left = install(fetch_context, [[1], [2]], path="/l")
    right = install(fetch_context, [[3]], path="/r")
    assert left.union(right).map(lambda x: -x).collect() == [-1, -2, -3]


def test_count_action(fetch_context):
    rdd = install(fetch_context, [[1, 2, 3], [], [4]])
    assert rdd.count() == 4


def test_save_action_writes_dfs_files(fetch_context):
    rdd = install(fetch_context, [[1, 2], [3]])
    rdd.map(lambda x: x).save_as_file("/out")
    dfs = fetch_context.dfs
    assert dfs.exists("/out/part-00000")
    assert dfs.exists("/out/part-00001")
    block = dfs.read_block(dfs.file_blocks("/out/part-00000")[0])
    assert block.records == [1, 2]


def test_parallelize_round_trips(fetch_context):
    rdd = fetch_context.parallelize(list(range(10)), num_slices=3)
    assert rdd.num_partitions == 3
    assert sorted(rdd.collect()) == list(range(10))


def test_distinct(fetch_context):
    rdd = install(fetch_context, [[1, 2, 2], [3, 1, 3]])
    assert sorted(rdd.distinct().collect()) == [1, 2, 3]


def test_cache_reuses_partitions(fetch_context):
    rdd = install(fetch_context, [[1, 2], [3]]).map(lambda x: x + 1).cache()
    first = rdd.map(lambda x: x).collect()
    assert fetch_context.cache.entry_count == 2
    second = rdd.map(lambda x: x * 2).collect()
    assert first == [2, 3, 4]
    assert second == [4, 6, 8]
    assert fetch_context.cache.hits >= 2


def test_lineage_lists_ancestors_parents_first(fetch_context):
    base = install(fetch_context, [[1]])
    mapped = base.map(lambda x: x)
    filtered = mapped.filter(lambda x: True)
    lineage = filtered.lineage()
    assert [r.rdd_id for r in lineage] == [
        base.rdd_id, mapped.rdd_id, filtered.rdd_id,
    ]


def test_results_identical_under_push_shuffle():
    for push in (False, True):
        context = make_context(push=push)
        rdd = install(context, [[1, 2], [3, 4]])
        assert rdd.map(lambda x: x * 2).collect() == [2, 4, 6, 8]
        context.shutdown()
