"""transfer_to(): the paper's transformation, explicit usage."""


from repro.rdd.transferred import TransferredRDD
from tests.conftest import make_context, small_spec


def install(context, partitions, path="/in"):
    context.write_input_file(path, partitions)
    return context.text_file(path)


def test_transfer_to_preserves_records():
    context = make_context(push=True)
    rdd = install(context, [[1, 2], [3]])
    moved = rdd.transfer_to("dc-b")
    assert isinstance(moved, TransferredRDD)
    assert moved.num_partitions == rdd.num_partitions
    assert moved.collect() == [1, 2, 3]
    context.shutdown()


def test_explicit_destination_moves_data_to_that_datacenter():
    context = make_context(push=True)
    rdd = install(context, [[("k", 1)], [("k", 2)]])
    moved = rdd.transfer_to("dc-b")
    reduced = moved.reduce_by_key(lambda a, b: a + b)
    result = dict(reduced.collect())
    assert result == {"k": 3}
    # The shuffle input must have been written on dc-b hosts.
    tracker = context.map_output_tracker
    shuffle_ids = {
        dep.shuffle_id
        for r in reduced.lineage()
        for dep in r.dependencies
        if hasattr(dep, "shuffle_id")
    }
    hosts = {
        status.host
        for shuffle_id in shuffle_ids
        for status in tracker.map_statuses(shuffle_id)
    }
    assert hosts  # at least one registered output
    for host in hosts:
        assert context.topology.datacenter_of(host) == "dc-b"
    context.shutdown()


def test_transfer_to_preferred_locations_cover_destination():
    context = make_context(push=True)
    rdd = install(context, [[1]])
    moved = rdd.transfer_to("dc-b")
    prefs = moved.preferred_locations(0)
    assert set(prefs) == set(context.topology.hosts_in("dc-b"))
    context.shutdown()


def test_transfer_to_without_destination_resolves_automatically():
    context = make_context(push=True)
    # All input pinned to dc-b: the aggregator choice must be dc-b.
    context.write_input_file(
        "/in", [[("a", 1)], [("b", 2)]],
        placement_hosts=["dc-b-w0", "dc-b-w1"],
    )
    rdd = context.text_file("/in")
    moved = rdd.transfer_to()
    assert moved.preferred_locations(0) == []  # unresolved until submit
    result = dict(moved.reduce_by_key(lambda a, b: a + b).collect())
    assert result == {"a": 1, "b": 2}
    dep = moved.transfer_dependency
    assert getattr(dep, "resolved_destinations") == ["dc-b"]
    context.shutdown()


def test_local_partitions_transfer_for_free():
    """A transfer whose data is already at the destination moves nothing."""
    context = make_context(push=True)
    context.write_input_file(
        "/in", [[1], [2]], placement_hosts=["dc-a-w0", "dc-a-w1"]
    )
    rdd = context.text_file("/in").transfer_to("dc-a")
    assert rdd.collect() == [1, 2]
    assert context.traffic.cross_dc_by_tag.get("transfer_to", 0.0) == 0.0
    context.shutdown()


def test_cross_dc_transfer_charges_traffic():
    context = make_context(push=True)
    context.write_input_file(
        "/in", [[("x", "y" * 100)]], placement_hosts=["dc-a-w0"]
    )
    rdd = context.text_file("/in").transfer_to("dc-b")
    rdd.collect()
    assert context.traffic.cross_dc_by_tag["transfer_to"] > 0
    context.shutdown()


def test_transfer_then_map_runs_at_destination():
    """The §V-B TeraSort fix: move raw data, then apply the bloating map."""
    context = make_context(push=True)
    context.write_input_file(
        "/in", [[("k1", 1)], [("k2", 2)]],
        placement_hosts=["dc-a-w0", "dc-a-w1"],
    )
    rdd = context.text_file("/in").transfer_to("dc-b")
    mapped = rdd.map(lambda kv: (kv[0], kv[1] * 10))
    result = sorted(mapped.collect())
    assert result == [("k1", 10), ("k2", 20)]
    context.shutdown()


def test_chained_transfers():
    context = make_context(push=True)
    rdd = install(context, [[1, 2]])
    moved_twice = rdd.transfer_to("dc-b").map(lambda x: x + 1).transfer_to("dc-a")
    assert moved_twice.collect() == [2, 3]
    context.shutdown()


def test_transfer_works_on_three_datacenter_cluster():
    spec = small_spec(datacenters=("d1", "d2", "d3"))
    context = make_context(push=True, spec=spec)
    context.write_input_file(
        "/in", [[("a", 1)], [("a", 2)], [("b", 3)]],
        placement_hosts=["d1-w0", "d2-w0", "d3-w0"],
    )
    result = dict(
        context.text_file("/in")
        .transfer_to("d2")
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )
    assert result == {"a": 3, "b": 3}
    context.shutdown()
