"""Extended RDD operations (coalesce, sample, aggregateByKey, ...)."""

from collections import Counter

import pytest

from repro.errors import PartitionError, RDDError
from tests.conftest import make_context


def install(context, partitions, path="/in"):
    context.write_input_file(path, partitions)
    return context.text_file(path)


@pytest.fixture(params=[False, True], ids=["fetch", "push"])
def context(request):
    ctx = make_context(push=request.param)
    yield ctx
    ctx.shutdown()


def test_coalesce_reduces_partition_count(context):
    rdd = install(context, [[1], [2], [3], [4], [5]])
    coalesced = rdd.coalesce(2)
    assert coalesced.num_partitions == 2
    assert sorted(coalesced.collect()) == [1, 2, 3, 4, 5]


def test_coalesce_noop_when_already_small(context):
    rdd = install(context, [[1], [2]])
    assert rdd.coalesce(5) is rdd


def test_coalesce_validation(context):
    rdd = install(context, [[1]])
    with pytest.raises(PartitionError):
        rdd.coalesce(0)


def test_coalesce_then_shuffle(context):
    rdd = install(context, [[("a", 1)], [("a", 2)], [("b", 3)], [("b", 4)]])
    result = dict(
        rdd.coalesce(2).reduce_by_key(lambda a, b: a + b).collect()
    )
    assert result == {"a": 3, "b": 7}


def test_sample_fraction_extremes(context):
    rdd = install(context, [list(range(50)), list(range(50, 100))])
    assert rdd.sample(0.0).collect() == []
    assert sorted(rdd.sample(1.0).collect()) == list(range(100))


def test_sample_is_deterministic_and_roughly_sized(context):
    rdd = install(context, [list(range(500))])
    first = rdd.sample(0.3, seed=1).collect()
    second = rdd.sample(0.3, seed=1).collect()
    assert first == second
    assert 80 < len(first) < 220


def test_sample_validation(context):
    rdd = install(context, [[1]])
    with pytest.raises(RDDError):
        rdd.sample(1.5)


def test_aggregate_by_key_mean_style(context):
    rdd = install(
        context, [[("a", 1), ("a", 3)], [("a", 5), ("b", 7)]]
    )
    sums_counts = rdd.aggregate_by_key(
        zero_factory=lambda: (0, 0),
        seq_op=lambda acc, v: (acc[0] + v, acc[1] + 1),
        comb_op=lambda x, y: (x[0] + y[0], x[1] + y[1]),
    )
    result = dict(sums_counts.collect())
    assert result == {"a": (9, 3), "b": (7, 1)}


def test_combine_by_key_builds_lists(context):
    rdd = install(context, [[("a", 1)], [("a", 2), ("b", 3)]])
    combined = rdd.combine_by_key(
        create_combiner=lambda v: [v],
        merge_value=lambda acc, v: acc + [v],
        merge_combiners=lambda x, y: x + y,
    )
    result = {k: sorted(v) for k, v in combined.collect()}
    assert result == {"a": [1, 2], "b": [3]}


def test_count_by_key(context):
    rdd = install(context, [[("a", 1), ("a", 2)], [("b", 9)]])
    assert rdd.count_by_key() == {"a": 2, "b": 1}


def test_reduce_action(context):
    rdd = install(context, [[1, 2, 3], [4, 5]])
    assert rdd.reduce(lambda a, b: a + b) == 15


def test_reduce_with_empty_partitions(context):
    rdd = install(context, [[], [7], []])
    assert rdd.reduce(lambda a, b: a + b) == 7


def test_reduce_empty_rdd_raises(context):
    rdd = install(context, [[], []])
    with pytest.raises(RDDError):
        rdd.reduce(lambda a, b: a + b)


def test_take_and_first(context):
    rdd = install(context, [[10, 20], [30]])
    assert rdd.take(2) == [10, 20]
    assert rdd.take(0) == []
    assert rdd.first() == 10
    with pytest.raises(RDDError):
        rdd.take(-1)


def test_first_on_empty_raises(context):
    rdd = install(context, [[], []])
    with pytest.raises(RDDError):
        rdd.first()


def test_sort_by(context):
    rdd = install(context, [["banana", "apple"], ["cherry"]])
    result = rdd.sort_by(
        key_func=lambda s: s, sample_keys=["a", "b", "c"], num_partitions=2
    )
    assert result.collect() == ["apple", "banana", "cherry"]


def test_sort_by_descending(context):
    rdd = install(context, [[3, 1], [2]])
    result = rdd.sort_by(
        key_func=lambda x: x, sample_keys=[1, 2, 3],
        num_partitions=1, ascending=False,
    )
    assert result.collect() == [3, 2, 1]


def test_zip_with_index(context):
    rdd = install(context, [["a", "b"], ["c"], ["d", "e"]])
    result = rdd.zip_with_index().collect()
    assert result == [
        ("a", 0), ("b", 1), ("c", 2), ("d", 3), ("e", 4),
    ]


def test_zip_with_index_then_filter(context):
    rdd = install(context, [list("abcdef")])
    evens = rdd.zip_with_index().filter(lambda ri: ri[1] % 2 == 0)
    assert [r for r, _i in evens.collect()] == ["a", "c", "e"]


def test_aggregate_by_key_matches_counter(context):
    data = [[("x", i) for i in range(10)], [("y", i) for i in range(5)]]
    rdd = install(context, data)
    totals = dict(
        rdd.aggregate_by_key(
            zero_factory=lambda: 0,
            seq_op=lambda acc, v: acc + v,
            comb_op=lambda a, b: a + b,
        ).collect()
    )
    expected = Counter()
    for part in data:
        for key, value in part:
            expected[key] += value
    assert totals == dict(expected)
