"""Partitioners: stability, range ordering, and balance."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdd.partitioner import (
    HashPartitioner,
    RangePartitioner,
    stable_hash,
)

keys = st.one_of(
    st.integers(), st.text(max_size=30), st.binary(max_size=30),
    st.tuples(st.integers(), st.text(max_size=10)),
)


@given(keys)
def test_stable_hash_is_deterministic(key):
    assert stable_hash(key) == stable_hash(key)
    assert 0 <= stable_hash(key) < 2 ** 31


@given(keys, st.integers(min_value=1, max_value=64))
def test_hash_partitioner_in_range(key, n):
    partitioner = HashPartitioner(n)
    index = partitioner.partition(key)
    assert 0 <= index < n


def test_hash_partitioner_spreads_keys():
    partitioner = HashPartitioner(8)
    counts = Counter(
        partitioner.partition(f"key-{i}") for i in range(8000)
    )
    assert len(counts) == 8
    for count in counts.values():
        assert 700 < count < 1300  # roughly uniform


def test_partitioner_requires_positive_count():
    with pytest.raises(ValueError):
        HashPartitioner(0)


def test_hash_partitioner_equality():
    assert HashPartitioner(4) == HashPartitioner(4)
    assert HashPartitioner(4) != HashPartitioner(8)


def test_range_partitioner_orders_partitions():
    partitioner = RangePartitioner(4, sample_keys=list(range(100)))
    previous = -1
    for key in range(100):
        index = partitioner.partition(key)
        assert index >= previous or index == previous
        previous = max(previous, index)
    assert partitioner.partition(-1000) == 0
    assert partitioner.partition(10_000) == 3


@given(
    st.lists(st.integers(-1000, 1000), min_size=2, max_size=300),
    st.integers(min_value=1, max_value=16),
)
@settings(max_examples=100, deadline=None)
def test_range_partitioner_is_monotone(sample, n):
    partitioner = RangePartitioner(n, sample)
    ordered = sorted(set(sample))
    indices = [partitioner.partition(key) for key in ordered]
    assert indices == sorted(indices)
    assert all(0 <= index < n for index in indices)


def test_range_partitioner_balances_uniform_keys():
    sample = list(range(0, 10_000, 7))
    partitioner = RangePartitioner(8, sample)
    counts = Counter(partitioner.partition(key) for key in range(10_000))
    assert len(counts) == 8
    for count in counts.values():
        assert 800 < count < 1700


def test_range_partitioner_single_partition():
    partitioner = RangePartitioner(1, [1, 2, 3])
    assert partitioner.boundaries == []
    assert partitioner.partition(99) == 0


def test_range_partitioner_empty_sample():
    partitioner = RangePartitioner(4, [])
    assert partitioner.partition("anything") == 0


def test_range_partitioner_duplicate_heavy_sample():
    partitioner = RangePartitioner(4, [5] * 100 + [6])
    # Boundaries must stay strictly increasing despite duplicates.
    assert partitioner.boundaries == sorted(set(partitioner.boundaries))
    assert partitioner.partition(4) == 0
    assert partitioner.partition(7) >= partitioner.partition(5)
