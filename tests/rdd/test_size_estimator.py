"""Logical size estimation and SizedRecord semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.rdd.size_estimator import SizeEstimator, SizedRecord, natural_size


def test_sized_record_overrides_heuristic():
    record = SizedRecord({"big": "payload"}, natural_size=1e9)
    assert natural_size(record) == 1e9


def test_sized_record_rejects_negative_size():
    with pytest.raises(ValueError):
        SizedRecord(None, natural_size=-1)


def test_sized_record_equality_and_hash():
    a = SizedRecord("x", 10)
    b = SizedRecord("x", 10)
    c = SizedRecord("x", 20)
    assert a == b
    assert a != c
    assert hash(a) == hash(b)


def test_primitive_sizes_are_positive_and_ordered():
    assert natural_size(1) > 0
    assert natural_size("hello") > natural_size(1)
    assert natural_size("a" * 100) > natural_size("a")
    assert natural_size(b"bytes") > 0
    assert natural_size(None) > 0
    assert natural_size(True) > 0


def test_container_sizes_sum_members():
    assert natural_size((1, 2)) > natural_size(1) + natural_size(2)
    assert natural_size([1, 2, 3]) > natural_size([1])
    assert natural_size({"k": 1}) > natural_size({})


def test_unknown_object_gets_base_size():
    class Opaque:
        pass

    assert natural_size(Opaque()) > 0


def test_estimator_scales_sizes():
    plain = SizeEstimator(scale_factor=1.0)
    scaled = SizeEstimator(scale_factor=1000.0)
    records = [(f"w{i}", i) for i in range(10)]
    assert scaled.estimate(records) == pytest.approx(
        1000.0 * plain.estimate(records)
    )


def test_estimator_rejects_bad_scale():
    with pytest.raises(ValueError):
        SizeEstimator(scale_factor=0)


def test_estimate_with_count():
    estimator = SizeEstimator()
    size, count = estimator.estimate_with_count([1, 2, 3])
    assert count == 3
    assert size == pytest.approx(estimator.estimate([1, 2, 3]))


@given(st.lists(st.one_of(st.integers(), st.text(max_size=20))))
def test_estimate_is_additive(records):
    estimator = SizeEstimator()
    total = estimator.estimate(records)
    parts = sum(estimator.estimate([r]) for r in records)
    assert total == pytest.approx(parts)


@given(st.lists(st.integers(), max_size=50))
def test_estimate_nonnegative(records):
    assert SizeEstimator().estimate(records) >= 0
