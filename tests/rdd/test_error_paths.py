"""RDD error paths and boundary conditions."""

import pytest

from repro.errors import PartitionError
from repro.rdd.rdd import UnionRDD
from tests.conftest import make_context


def test_hadoop_rdd_partition_out_of_range(fetch_context):
    fetch_context.write_input_file("/in", [[1], [2]])
    rdd = fetch_context.text_file("/in")
    with pytest.raises(PartitionError):
        rdd.block_id(5)


def test_parallelize_requires_positive_slices(fetch_context):
    with pytest.raises(PartitionError):
        fetch_context.parallelize([1, 2], num_slices=0)


def test_union_requires_parents(fetch_context):
    with pytest.raises(PartitionError):
        UnionRDD(fetch_context, [])


def test_union_partition_resolution_errors(fetch_context):
    fetch_context.write_input_file("/a", [[1]])
    fetch_context.write_input_file("/b", [[2]])
    union = fetch_context.text_file("/a").union(fetch_context.text_file("/b"))
    with pytest.raises(PartitionError):
        union._resolve(99)


def test_parallelize_distributes_round_robin(fetch_context):
    rdd = fetch_context.parallelize(list(range(7)), num_slices=3)
    assert rdd.num_partitions == 3
    collected = rdd.collect()
    assert sorted(collected) == list(range(7))


def test_lineage_of_diamond_graph(fetch_context):
    fetch_context.write_input_file("/in", [[("a", 1)]])
    base = fetch_context.text_file("/in").reduce_by_key(lambda a, b: a + b)
    left = base.map(lambda kv: kv)
    right = base.filter(lambda kv: True)
    union = left.union(right)
    lineage = union.lineage()
    # The shared ancestor appears exactly once.
    ids = [node.rdd_id for node in lineage]
    assert len(ids) == len(set(ids))
    assert base.rdd_id in ids


def test_transfer_to_on_shuffled_rdd(fetch_context):
    """Explicit transfer of post-shuffle data (re-aggregation)."""
    context = make_context(push=True)
    context.write_input_file("/in", [[("a", 1)], [("b", 2)]])
    reduced = context.text_file("/in").reduce_by_key(lambda a, b: a + b)
    moved = reduced.transfer_to("dc-b")
    assert sorted(moved.collect()) == [("a", 1), ("b", 2)]
    context.shutdown()


def test_keys_values_on_shuffled_output(fetch_context):
    fetch_context.write_input_file("/in", [[("a", 1), ("b", 2)]])
    reduced = fetch_context.text_file("/in").reduce_by_key(lambda a, b: a + b)
    assert sorted(reduced.keys().collect()) == ["a", "b"]
    assert sorted(reduced.values().collect()) == [1, 2]


def test_filter_preserves_partitioner(fetch_context):
    fetch_context.write_input_file("/in", [[("a", 1)]])
    reduced = fetch_context.text_file("/in").reduce_by_key(lambda a, b: a + b)
    filtered = reduced.filter(lambda kv: True)
    assert filtered.partitioner is reduced.partitioner


def test_map_does_not_preserve_partitioner(fetch_context):
    fetch_context.write_input_file("/in", [[("a", 1)]])
    reduced = fetch_context.text_file("/in").reduce_by_key(lambda a, b: a + b)
    assert reduced.map(lambda kv: kv).partitioner is None
