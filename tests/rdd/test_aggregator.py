"""Aggregator: combine semantics and equivalence with plain Python."""

from collections import Counter, defaultdict

from hypothesis import given, strategies as st

from repro.rdd.aggregator import Aggregator

pairs = st.lists(
    st.tuples(st.integers(0, 20), st.integers(-100, 100)), max_size=200
)


def test_reduce_aggregator_sums():
    aggregator = Aggregator.from_reduce_function(lambda a, b: a + b)
    combined = dict(
        aggregator.combine_values([("a", 1), ("b", 2), ("a", 3)])
    )
    assert combined == {"a": 4, "b": 2}


def test_group_aggregator_collects_lists():
    aggregator = Aggregator.group_by_key()
    combined = dict(
        aggregator.combine_values([("a", 1), ("b", 2), ("a", 3)])
    )
    assert combined == {"a": [1, 3], "b": [2]}


def test_combine_combiners_merges_partials():
    aggregator = Aggregator.from_reduce_function(lambda a, b: a + b)
    left = aggregator.combine_values([("k", 1), ("k", 2)])
    right = aggregator.combine_values([("k", 10), ("j", 5)])
    merged = dict(aggregator.combine_combiners(left + right))
    assert merged == {"k": 13, "j": 5}


def test_group_combiners_merge_lists():
    aggregator = Aggregator.group_by_key()
    left = aggregator.combine_values([("k", 1)])
    right = aggregator.combine_values([("k", 2), ("k", 3)])
    merged = dict(aggregator.combine_combiners(left + right))
    assert merged == {"k": [1, 2, 3]}


def test_empty_input_gives_empty_output():
    aggregator = Aggregator.from_reduce_function(lambda a, b: a + b)
    assert aggregator.combine_values([]) == []
    assert aggregator.combine_combiners([]) == []


@given(pairs)
def test_sum_aggregator_matches_counter(records):
    aggregator = Aggregator.from_reduce_function(lambda a, b: a + b)
    combined = dict(aggregator.combine_values(records))
    expected = Counter()
    for key, value in records:
        expected[key] += value
    assert combined == {k: v for k, v in expected.items()}


@given(pairs)
def test_group_aggregator_matches_defaultdict(records):
    aggregator = Aggregator.group_by_key()
    combined = dict(aggregator.combine_values(records))
    expected = defaultdict(list)
    for key, value in records:
        expected[key].append(value)
    assert combined == dict(expected)


@given(pairs, st.integers(min_value=1, max_value=5))
def test_split_combine_equals_whole_combine(records, splits):
    """Combining per-split then merging combiners == combining at once.

    This is the algebraic property map-side combine (and the paper's
    pre-transfer combine) relies on for correctness.
    """
    aggregator = Aggregator.from_reduce_function(lambda a, b: a + b)
    whole = dict(aggregator.combine_values(records))
    chunks = [records[i::splits] for i in range(splits)]
    partials = []
    for chunk in chunks:
        partials.extend(aggregator.combine_values(chunk))
    merged = dict(aggregator.combine_combiners(partials))
    assert merged == whole


@given(pairs, st.integers(min_value=1, max_value=5))
def test_split_group_equals_whole_group_up_to_order(records, splits):
    aggregator = Aggregator.group_by_key()
    whole = {
        k: sorted(v)
        for k, v in aggregator.combine_values(list(records))
    }
    partials = []
    for i in range(splits):
        partials.extend(aggregator.combine_values(records[i::splits]))
    merged = {
        k: sorted(v)
        for k, v in aggregator.combine_combiners(partials)
    }
    assert merged == whole
