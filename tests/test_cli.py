"""CLI smoke tests (fast paths only)."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.runner import clear_data_cache


@pytest.fixture(autouse=True)
def _clean():
    clear_data_cache()
    yield
    clear_data_cache()


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_unknown_scheme_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["run", "sort", "--scheme", "warp-drive"])


def test_run_command_prints_summary(capsys):
    code = main(["run", "sort", "--scheme", "spark"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Sort / Spark" in out
    assert "completion time" in out
    assert "stages:" in out


def test_compare_command_prints_table(capsys):
    code = main(["compare", "sort", "--seeds", "1"])
    out = capsys.readouterr().out
    assert code == 0
    for scheme in ("Spark", "Centralized", "AggShuffle"):
        assert scheme in out


def test_lineage_command_shows_transfers(capsys):
    code = main(["lineage", "sort", "--scheme", "aggshuffle"])
    out = capsys.readouterr().out
    assert code == 0
    assert "transfer#" in out
    assert "shuffle#" in out


def test_lineage_without_aggregation_has_no_transfers(capsys):
    code = main(["lineage", "sort", "--scheme", "spark"])
    out = capsys.readouterr().out
    assert code == 0
    assert "transfer#" not in out
    assert "shuffle#" in out


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        main(["run", "mystery"])


def test_profile_flag_appends_cprofile_report(capsys):
    code = main(["--profile", "5", "run", "sort", "--scheme", "spark"])
    out = capsys.readouterr().out
    assert code == 0
    # Normal output first, then the profiler table.
    assert "Sort / Spark" in out
    assert "cProfile — top 5 by cumulative time" in out
    assert "cumtime" in out


# ----------------------------------------------------------------------
# chaos specs (timed fault injection)
# ----------------------------------------------------------------------
def test_chaos_malformed_spec_names_offending_token():
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "sort", "--chaos", "blob_outage:us-east-1@5+later"])
    assert "'later'" in str(excinfo.value)


def test_chaos_unknown_kind_named():
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "sort", "--chaos", "warp:us-east-1@5"])
    assert "'warp'" in str(excinfo.value)


def test_chaos_new_kinds_accepted(capsys):
    code = main([
        "run", "sort", "--scheme", "remoteshuffle", "--seed", "0",
        "--chaos", "shuffle_worker:us-west-1@5",
        "--chaos", "blob_outage:us-east-1@3+4",
    ])
    out = capsys.readouterr().out
    assert code == 0
    # shuffle_worker applies (pool worker lost); blob_outage is skipped
    # and recorded for a backend without an object store.
    assert "chaos" in out
    assert "1/2" in out


def test_chaos_blob_outage_applies_on_blob_backend(capsys):
    code = main([
        "run", "sort", "--scheme", "blobshuffle", "--seed", "0",
        "--chaos", "blob_outage:us-east-1@3+4",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "1/1" in out


# ----------------------------------------------------------------------
# stream subcommand (multi-tenant job streams)
# ----------------------------------------------------------------------
def test_stream_command_prints_tenant_table(capsys):
    code = main([
        "stream",
        "--arrival", "poisson:120:6",
        "--tenants", "prod:4,batch:1:2",
        "--policy", "fair",
        "--scheme", "spark",
        "--max-concurrent", "2",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "prod" in out and "batch" in out
    assert "jobs" in out.lower()


def test_stream_bad_arrival_rate_names_token(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["stream", "--arrival", "poisson:xx:15"])
    message = str(excinfo.value)
    assert "--arrival" in message
    assert "'xx'" in message


def test_stream_unknown_arrival_process_named(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["stream", "--arrival", "warp:12:15"])
    assert "'warp'" in str(excinfo.value)


def test_stream_bad_tenant_weight_names_token(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["stream", "--tenants", "alpha:heavy"])
    message = str(excinfo.value)
    assert "--tenants" in message
    assert "'heavy'" in message


def test_stream_unknown_policy_rejected(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["stream", "--policy", "lottery"])
    assert "'lottery'" in str(excinfo.value)


# ----------------------------------------------------------------------
# fuzz subcommand and the chaos token expansions it feeds
# ----------------------------------------------------------------------
def test_fuzz_command_prints_campaign_summary(capsys):
    code = main([
        "fuzz", "--schedules", "5", "--seed", "3",
        "--backends", "fetch,push_aggregate",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "campaign: seed=3 schedules=5" in out
    assert "coverage" in out


def test_fuzz_unknown_backend_rejected():
    with pytest.raises(SystemExit) as excinfo:
        main(["fuzz", "--schedules", "2", "--backends", "warp"])
    assert "'warp'" in str(excinfo.value)


def test_fuzz_unknown_policy_rejected():
    with pytest.raises(SystemExit) as excinfo:
        main(["fuzz", "--schedules", "2", "--policies", "yolo"])
    assert "'yolo'" in str(excinfo.value)


def test_chaos_random_token_expands_into_events(capsys):
    code = main([
        "run", "sort", "--scheme", "spark", "--seed", "0",
        "--chaos", "random:2@5", "--flow-retry",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "chaos" in out
    assert "2 event(s)" in out


def test_chaos_random_malformed_token_named():
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "sort", "--chaos", "random:x@1"])
    assert "'random:x@1'" in str(excinfo.value)


def test_chaos_partition_spec_accepted(capsys):
    code = main([
        "run", "sort", "--scheme", "aggshuffle", "--seed", "0",
        "--chaos", "partition:us-east-1->us-west-1@5+10",
        "--flow-retry",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "1/1" in out


def test_chaos_artifact_token_replays_schedule(tmp_path, capsys):
    import json

    artifact = tmp_path / "finding.json"
    artifact.write_text(json.dumps({
        "version": 1,
        "schedule": ["partition:us-east-1->us-west-1@5+10"],
    }))
    code = main([
        "run", "sort", "--scheme", "aggshuffle", "--seed", "0",
        "--chaos", f"@{artifact}", "--flow-retry",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "1/1" in out


def test_chaos_artifact_token_missing_file_named():
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "sort", "--chaos", "@/no/such/artifact.json"])
    assert "artifact" in str(excinfo.value)
