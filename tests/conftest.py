"""Shared fixtures: small clusters and fast configurations for tests."""

from __future__ import annotations

import pytest

from repro.cluster.builder import ClusterSpec
from repro.cluster.context import ClusterContext
from repro.config import ShuffleConfig, SimulationConfig
from repro.network.topology import GBPS, MBPS


def small_spec(
    datacenters=("dc-a", "dc-b"),
    workers_per_datacenter: int = 2,
    inter_dc_bandwidth: float = 100 * MBPS,
    gateway_bandwidth=None,
) -> ClusterSpec:
    """A tiny deterministic cluster for unit/integration tests."""
    return ClusterSpec(
        datacenters=tuple(datacenters),
        workers_per_datacenter=workers_per_datacenter,
        intra_dc_bandwidth=1 * GBPS,
        inter_dc_bandwidth=inter_dc_bandwidth,
        gateway_bandwidth=gateway_bandwidth,
        driver_datacenter=datacenters[0],
    )


def quiet_config(
    push: bool = False,
    seed: int = 0,
    backend: str | None = None,
    **overrides,
) -> SimulationConfig:
    """Deterministic config: no jitter, no failures."""
    shuffle = ShuffleConfig(
        push_based=push, auto_aggregate=push, backend=backend
    )
    return SimulationConfig(seed=seed, shuffle=shuffle, jitter=None, **overrides)


def make_context(
    push: bool = False,
    seed: int = 0,
    spec=None,
    backend: str | None = None,
    **overrides,
):
    return ClusterContext(
        spec if spec is not None else small_spec(),
        quiet_config(push=push, seed=seed, backend=backend, **overrides),
    )


@pytest.fixture
def fetch_context():
    """A small fetch-based (baseline Spark) cluster context."""
    return make_context(push=False)


@pytest.fixture
def push_context():
    """A small Push/Aggregate (AggShuffle) cluster context."""
    return make_context(push=True)
