"""Inter-datacenter bandwidth billing."""

import pytest

from repro.metrics.billing import (
    PricingPolicy,
    bill_traffic,
    cost_comparison,
)
from repro.network.traffic_monitor import TrafficMonitor
from tests.conftest import make_context


def test_intra_dc_traffic_is_free():
    monitor = TrafficMonitor()
    monitor.record("us-east-1", "us-east-1", 5e9)
    report = bill_traffic(monitor)
    assert report.total_dollars == 0.0


def test_egress_priced_by_source_region():
    monitor = TrafficMonitor()
    monitor.record("us-east-1", "eu-central-1", 10e9)   # $0.02/GB
    monitor.record("sa-east-1", "us-east-1", 10e9)      # $0.16/GB
    report = bill_traffic(monitor)
    assert report.by_source["us-east-1"] == pytest.approx(0.20)
    assert report.by_source["sa-east-1"] == pytest.approx(1.60)
    assert report.total_dollars == pytest.approx(1.80)
    assert report.dominant_source() == "sa-east-1"


def test_unknown_region_uses_default_price():
    monitor = TrafficMonitor()
    monitor.record("private-dc", "us-east-1", 1e9)
    report = bill_traffic(monitor, PricingPolicy(default_per_gb=0.10))
    assert report.total_dollars == pytest.approx(0.10)


def test_custom_policy():
    monitor = TrafficMonitor()
    monitor.record("a", "b", 2e9)
    policy = PricingPolicy(egress_per_gb={"a": 1.0})
    assert bill_traffic(monitor, policy).total_dollars == pytest.approx(2.0)


def test_empty_monitor_bills_zero():
    report = bill_traffic(TrafficMonitor())
    assert report.total_dollars == 0.0
    assert report.dominant_source() == ""


def test_cost_comparison_across_schemes():
    cheap = TrafficMonitor()
    cheap.record("us-east-1", "us-west-1", 1e9)
    pricey = TrafficMonitor()
    pricey.record("sa-east-1", "us-west-1", 1e9)
    costs = cost_comparison({"agg": cheap, "spark": pricey})
    assert costs["agg"] < costs["spark"]


def test_billing_a_real_run():
    context = make_context(push=True)
    context.write_input_file("/in", [[("a", "x" * 1000)], [("b", "y" * 1000)]])
    context.text_file("/in").reduce_by_key(lambda a, b: a + b).collect()
    report = bill_traffic(context.traffic, PricingPolicy(default_per_gb=0.05))
    assert report.total_dollars >= 0.0
    if context.traffic.cross_dc_bytes > 0:
        assert report.total_dollars > 0.0
    context.shutdown()
