"""Text reporting: tables, timelines, traffic views, lineage dumps."""


from repro.metrics.collectors import JobMetrics, StageSpan
from repro.metrics.reporting import (
    format_table,
    job_report,
    lineage_dump,
    stage_timeline,
    traffic_by_cause,
    traffic_matrix,
)
from repro.network.traffic_monitor import TrafficMonitor
from tests.conftest import make_context


def test_format_table_alignment_and_separator():
    table = format_table(
        ["name", "value"], [["a", 1], ["long-name", 22]]
    )
    lines = table.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    assert len(lines) == 4
    # All rows padded to consistent widths.
    assert lines[2].split()[0] == "a"


def test_format_table_empty_rows():
    table = format_table(["a", "b"], [])
    assert "a" in table


def test_stage_timeline_renders_bars():
    job = JobMetrics(started_at=0.0, finished_at=20.0)
    job.stages.append(
        StageSpan(1, "s1", "shuffle_map", submitted_at=0.0, finished_at=10.0)
    )
    job.stages.append(
        StageSpan(2, "s2", "result", submitted_at=10.0, finished_at=20.0)
    )
    chart = stage_timeline(job, width=40)
    lines = chart.splitlines()
    assert "shuffle_map" in lines[1]
    assert "result" in lines[2]
    assert "#" in lines[1]
    # The second stage's bar starts after the first's.
    assert lines[2].index("#") > lines[1].index("#")


def test_stage_timeline_empty_job():
    assert "no stages" in stage_timeline(JobMetrics())


def test_traffic_matrix_shows_pairs():
    monitor = TrafficMonitor()
    monitor.record("a", "b", 5e6, tag="shuffle")
    monitor.record("b", "b", 1e6, tag="local")
    text = traffic_matrix(monitor, ["a", "b"])
    assert "5.0" in text
    assert "cross-DC total: 5.0 MB" in text


def test_traffic_by_cause_sorted_desc():
    monitor = TrafficMonitor()
    monitor.record("a", "b", 1e6, tag="small")
    monitor.record("a", "b", 9e6, tag="big")
    text = traffic_by_cause(monitor)
    assert text.index("big") < text.index("small")


def test_traffic_by_cause_empty():
    assert "no cross-datacenter" in traffic_by_cause(TrafficMonitor())


def test_job_report_from_real_run():
    context = make_context(push=True)
    context.write_input_file("/in", [[("a", 1)], [("b", 2)]])
    context.text_file("/in").reduce_by_key(lambda a, b: a + b).collect()
    report = job_report(
        context.metrics.job, context.traffic, ["dc-a", "dc-b"]
    )
    assert "job:" in report
    assert "src \\ dst" in report
    context.shutdown()


def test_lineage_dump_marks_boundaries_and_cache():
    context = make_context(push=True)
    context.write_input_file("/in", [[("a", 1)]])
    rdd = (
        context.text_file("/in")
        .map(lambda kv: kv)
        .cache()
        .transfer_to("dc-b")
        .reduce_by_key(lambda a, b: a + b)
    )
    dump = lineage_dump(rdd)
    assert "{source}" in dump
    assert "[cached]" in dump
    assert "transfer#" in dump
    assert "[dc-b]" in dump
    assert "shuffle#" in dump
    context.shutdown()


def test_lineage_dump_auto_destination():
    context = make_context(push=True)
    context.write_input_file("/in", [[1]])
    dump = lineage_dump(context.text_file("/in").transfer_to())
    assert "[auto]" in dump
    context.shutdown()
