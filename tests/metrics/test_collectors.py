"""MetricsCollector: job/stage/task span bookkeeping."""

from repro.metrics.collectors import MetricsCollector
from repro.scheduler.task import TaskResult


class _FakeKind:
    def __init__(self, value):
        self.value = value


class _FakeStage:
    def __init__(self, stage_id, name="stage", kind="result"):
        self.stage_id = stage_id
        self.name = name
        self.kind = _FakeKind(kind)


class _FakeTask:
    def __init__(self, stage, task_id="t0", partition=0):
        self.stage = stage
        self.task_id = task_id
        self.partition = partition


def test_job_span_recorded():
    collector = MetricsCollector()
    collector.on_job_start(10.0)
    collector.on_job_end(25.0)
    assert collector.job.duration == 15.0


def test_stage_and_task_spans():
    collector = MetricsCollector()
    stage = _FakeStage(1, "map-stage", "shuffle_map")
    collector.on_stage_start(stage, 1.0)
    task = _FakeTask(stage, "t7", partition=3)
    collector.on_task_end(
        TaskResult(
            task=task, host="h0", started_at=1.0, finished_at=4.0,
            attempts=1, shuffle_bytes_fetched=100.0, output_bytes=50.0,
        )
    )
    collector.on_stage_end(stage, 5.0)
    span = collector.job.stages[0]
    assert span.duration == 4.0
    assert span.kind == "shuffle_map"
    assert span.tasks[0].duration == 3.0
    assert span.tasks[0].partition == 3
    assert span.tasks[0].shuffle_bytes_fetched == 100.0


def test_task_for_unknown_stage_ignored():
    collector = MetricsCollector()
    stage = _FakeStage(9)
    collector.on_task_end(
        TaskResult(
            task=_FakeTask(stage), host="h", started_at=0, finished_at=1,
            attempts=1,
        )
    )
    assert collector.job.stages == []


def test_failed_attempts_counted():
    collector = MetricsCollector()
    stage = _FakeStage(1)
    collector.on_task_attempt_failed(_FakeTask(stage), "h0", 2.0)
    collector.on_task_attempt_failed(_FakeTask(stage), "h1", 3.0)
    assert collector.job.injected_failures == 2


def test_stage_durations_helper():
    collector = MetricsCollector()
    for index, (start, end) in enumerate([(0.0, 2.0), (2.0, 7.0)]):
        stage = _FakeStage(index)
        collector.on_stage_start(stage, start)
        collector.on_stage_end(stage, end)
    assert collector.job.stage_durations() == [2.0, 5.0]


def test_real_job_produces_consistent_metrics(fetch_context):
    fetch_context.write_input_file("/in", [[("a", 1)], [("b", 2)]])
    fetch_context.text_file("/in").reduce_by_key(lambda a, b: a + b).collect()
    job = fetch_context.metrics.job
    assert job.duration > 0
    for span in job.stages:
        assert span.finished_at >= span.submitted_at
        for task in span.tasks:
            assert task.finished_at >= task.started_at
            assert task.attempts == 1
