"""Statistics used by the figures: trimmed mean, median, IQR."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.stats import (
    interquartile_range,
    median,
    p95,
    p99,
    percentile,
    reduction_percent,
    summarize,
    trimmed_mean,
)

floats = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=100
)


def test_trimmed_mean_drops_min_and_max_of_ten():
    """The paper's methodology: 10 runs, drop max and min, average."""
    values = [100.0] * 8 + [0.0, 1000.0]
    assert trimmed_mean(values, 0.1) == pytest.approx(100.0)


def test_trimmed_mean_small_samples_fall_back_to_mean():
    assert trimmed_mean([1.0, 2.0], 0.1) == pytest.approx(1.5)


def test_trimmed_mean_validation():
    with pytest.raises(ValueError):
        trimmed_mean([])
    with pytest.raises(ValueError):
        trimmed_mean([1.0], trim_fraction=0.6)


def test_median_odd_and_even():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([1.0, 2.0, 3.0, 4.0]) == 2.5


def test_iqr_of_uniform_sequence():
    q25, q75 = interquartile_range([float(x) for x in range(1, 101)])
    assert q25 == pytest.approx(25.75)
    assert q75 == pytest.approx(75.25)


def test_summarize_fields_consistent():
    stats = summarize([5.0, 1.0, 3.0, 2.0, 4.0])
    assert stats.count == 5
    assert stats.minimum == 1.0
    assert stats.maximum == 5.0
    assert stats.median == 3.0
    assert stats.mean == pytest.approx(3.0)
    assert stats.q25 <= stats.median <= stats.q75
    assert stats.iqr_width == pytest.approx(stats.q75 - stats.q25)


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_reduction_percent():
    assert reduction_percent(100.0, 27.0) == pytest.approx(73.0)
    assert reduction_percent(100.0, 100.0) == 0.0
    with pytest.raises(ValueError):
        reduction_percent(0.0, 1.0)


@given(floats)
def test_trimmed_mean_within_minmax(values):
    result = trimmed_mean(values)
    assert min(values) - 1e-9 <= result <= max(values) + 1e-9


@given(floats)
def test_summary_orderings(values):
    stats = summarize(values)
    assert stats.minimum <= stats.q25 <= stats.median + 1e-9
    assert stats.median <= stats.q75 + 1e-9
    assert stats.q75 <= stats.maximum + 1e-9
    # Tolerance: summing identical floats can drift by an ULP or two.
    span = max(1.0, abs(stats.maximum), abs(stats.minimum))
    assert stats.minimum - 1e-9 * span <= stats.mean
    assert stats.mean <= stats.maximum + 1e-9 * span


@given(floats)
def test_trimming_reduces_or_keeps_spread_influence(values):
    """Adding one extreme outlier moves the trimmed mean less than the
    plain mean (for samples big enough to trim)."""
    if len(values) < 21:
        return
    outlier = max(values) * 10 + 1e6
    plain_shift = abs(
        (sum(values) + outlier) / (len(values) + 1)
        - sum(values) / len(values)
    )
    trimmed_shift = abs(
        trimmed_mean(values + [outlier]) - trimmed_mean(values)
    )
    assert trimmed_shift <= plain_shift + 1e-6


# ----------------------------------------------------------------------
# percentile / p95 / p99 (tail-latency reporting for per-tenant JCTs)
# ----------------------------------------------------------------------
def test_percentile_boundaries():
    values = [4.0, 1.0, 3.0, 2.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == median(values) == 2.5


def test_percentile_interpolates_between_ranks():
    # Position 0.95 * 3 = 2.85 between 3.0 and 4.0.
    assert percentile([1.0, 2.0, 3.0, 4.0], 95) == pytest.approx(3.85)


def test_percentile_single_element():
    for q in (0, 37.5, 95, 100):
        assert percentile([7.0], q) == 7.0


def test_percentile_rejects_out_of_range_q():
    for bad in (-0.1, 100.1, 1000):
        with pytest.raises(ValueError):
            percentile([1.0], bad)


def test_percentile_rejects_empty():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_p95_p99_conventions():
    values = list(range(1, 101))  # 1..100
    assert p95(values) == pytest.approx(percentile(values, 95))
    assert p99(values) == pytest.approx(percentile(values, 99))
    assert p95(values) == pytest.approx(95.05)
    assert p99(values) == pytest.approx(99.01)


@given(floats, st.floats(0, 100))
def test_percentile_is_bounded_and_monotone(values, q):
    ordered = sorted(values)
    result = percentile(values, q)
    assert ordered[0] <= result <= ordered[-1]
    assert percentile(values, 0) <= result <= percentile(values, 100)
