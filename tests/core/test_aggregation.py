"""Aggregator-datacenter selection from stage input distribution."""

import pytest

from repro.core.aggregation import (
    select_aggregator_datacenters,
    stage_input_bytes_by_datacenter,
)
from repro.scheduler.stage import StageKind, build_stages
from tests.conftest import make_context, small_spec


def producer_stage_for(rdd):
    _result, stages = build_stages(rdd.transfer_to())
    return next(
        s for s in stages if s.kind is StageKind.TRANSFER_PRODUCER
    )


def test_input_bytes_follow_block_placement():
    context = make_context(push=True)
    context.write_input_file(
        "/in",
        [["x" * 100], ["y" * 100], ["z" * 100]],
        placement_hosts=["dc-a-w0", "dc-a-w1", "dc-b-w0"],
    )
    stage = producer_stage_for(context.text_file("/in"))
    by_dc = stage_input_bytes_by_datacenter(stage, context)
    assert by_dc["dc-a"] == pytest.approx(2 * by_dc["dc-b"], rel=0.01)
    context.shutdown()


def test_selection_picks_largest_holder():
    context = make_context(push=True)
    context.write_input_file(
        "/in",
        [["x" * 100], ["y" * 100], ["z" * 100]],
        placement_hosts=["dc-b-w0", "dc-b-w1", "dc-a-w0"],
    )
    stage = producer_stage_for(context.text_file("/in"))
    assert select_aggregator_datacenters(stage, context) == ["dc-b"]
    context.shutdown()


def test_subset_selection_returns_k_largest():
    spec = small_spec(datacenters=("d1", "d2", "d3"))
    context = make_context(push=True, spec=spec)
    context.write_input_file(
        "/in",
        [["x" * 300], ["y" * 200], ["z" * 100]],
        placement_hosts=["d1-w0", "d2-w0", "d3-w0"],
    )
    stage = producer_stage_for(context.text_file("/in"))
    chosen = select_aggregator_datacenters(stage, context, subset_size=2)
    assert chosen == ["d1", "d2"]
    context.shutdown()


def test_selection_falls_back_to_driver_datacenter():
    context = make_context(push=True)
    rdd = context.parallelize([1, 2, 3], num_slices=2)
    stage = producer_stage_for(rdd)
    assert select_aggregator_datacenters(stage, context) == ["dc-a"]
    context.shutdown()


def test_selection_uses_cached_locations_when_available():
    context = make_context(push=True)
    context.write_input_file(
        "/in", [["x" * 50]], placement_hosts=["dc-a-w0"]
    )
    cached = context.text_file("/in").map(lambda x: x).cache()
    cached.collect()  # materialise the cache at dc-a
    # Manually relocate the cache entry to dc-b to prove it is consulted.
    entry = context.cache.lookup(cached.rdd_id, 0)
    entry.host = "dc-b-w0"
    stage = producer_stage_for(cached)
    assert select_aggregator_datacenters(stage, context) == ["dc-b"]
    context.shutdown()


def test_selection_uses_upstream_shuffle_output():
    context = make_context(push=False)
    context.write_input_file(
        "/in", [[("a", 1)], [("b", 2)]],
        placement_hosts=["dc-b-w0", "dc-b-w1"],
    )
    reduced = context.text_file("/in").reduce_by_key(lambda a, b: a + b)
    reduced.collect()  # registers the shuffle's map outputs on dc-b
    stage = producer_stage_for(reduced.map(lambda kv: kv))
    by_dc = stage_input_bytes_by_datacenter(stage, context)
    assert by_dc["dc-b"] > 0
    assert by_dc["dc-a"] == 0
    context.shutdown()


def test_subset_size_validation():
    from repro.errors import SchedulerError

    context = make_context(push=True)
    context.write_input_file("/in", [[1]])
    stage = producer_stage_for(context.text_file("/in"))
    with pytest.raises(SchedulerError):
        select_aggregator_datacenters(stage, context, subset_size=0)
    context.shutdown()
