"""The explicit developer API: push shuffle without implicit embedding.

§IV-E ("Implicit vs. Explicit Embedding"): developers may control data
placement themselves.  These tests run with ``push_based=True`` but
``auto_aggregate=False`` — no transfer is inserted unless the program
calls ``transfer_to`` itself.
"""


import pytest

from repro.cluster.context import ClusterContext
from repro.config import ShuffleConfig, SimulationConfig
from repro.scheduler.stage import StageKind, build_stages
from tests.conftest import small_spec


def explicit_context(seed=0):
    config = SimulationConfig(
        seed=seed,
        shuffle=ShuffleConfig(push_based=True, auto_aggregate=False),
        jitter=None,
    )
    return ClusterContext(small_spec(), config)


def test_no_transfer_inserted_without_explicit_call():
    context = explicit_context()
    context.write_input_file("/in", [[("a", 1)], [("b", 2)]])
    rdd = context.text_file("/in").reduce_by_key(lambda a, b: a + b)
    rdd.collect()
    _result, stages = build_stages(rdd)
    kinds = {stage.kind for stage in stages}
    assert StageKind.TRANSFER_PRODUCER not in kinds
    context.shutdown()


def test_explicit_transfer_controls_placement():
    context = explicit_context()
    context.write_input_file(
        "/in", [[("a", 1)], [("a", 2)]],
        placement_hosts=["dc-a-w0", "dc-a-w1"],
    )
    reduced = (
        context.text_file("/in")
        .transfer_to("dc-b")
        .reduce_by_key(lambda a, b: a + b)
    )
    assert dict(reduced.collect()) == {"a": 3}
    tracker = context.map_output_tracker
    shuffle_id = reduced.shuffle_dependency.shuffle_id
    for status in tracker.map_statuses(shuffle_id):
        assert context.topology.datacenter_of(status.host) == "dc-b"
    context.shutdown()


def test_cache_after_aggregation_is_datacenter_local():
    """§IV-E's caching example: persisting *after* the transfer pins the
    cached dataset inside one datacenter, so reuse never crosses the WAN."""
    context = explicit_context()
    context.write_input_file(
        "/in", [[("k", i)] for i in range(4)],
        placement_hosts=["dc-a-w0", "dc-a-w1", "dc-a-w0", "dc-a-w1"],
    )
    aggregated = (
        context.text_file("/in")
        .transfer_to("dc-b")
        .group_by_key()
        .cache()
    )
    aggregated.collect()  # materialises the cache in dc-b
    for partition in range(aggregated.num_partitions):
        entry = context.cache.lookup(aggregated.rdd_id, partition)
        # Empty reduce partitions carry no locality preference and may
        # be cached anywhere; the data-bearing ones must sit in dc-b.
        if entry is not None and entry.records:
            assert context.topology.datacenter_of(entry.host) == "dc-b"

    cross_before = context.traffic.cross_dc_bytes
    # Reuse the cached dataset twice; nothing may cross datacenters
    # except the (tiny) results heading to the dc-a driver.
    for _ in range(2):
        aggregated.map_values(len).collect()
    crossed = context.traffic.cross_dc_bytes - cross_before
    result_bytes = context.traffic.cross_dc_by_tag.get("result", 0.0)
    assert crossed == pytest.approx(min(crossed, result_bytes + 1e-6))
    context.shutdown()


def test_cache_before_aggregation_pays_wan_on_reuse():
    """The §IV-E anti-pattern: caching scattered data charges the WAN
    every time the dataset is reused from a remote task."""
    context = explicit_context()
    context.write_input_file(
        "/in", [[("k", 1)], [("k", 2)], [("k", 3)], [("k", 4)]],
    )
    scattered = context.text_file("/in").map(lambda kv: kv).cache()
    scattered.collect()
    # Force reuse from a single datacenter via an explicit transfer.
    cross_before = context.traffic.cross_dc_by_tag.get("cache", 0.0)
    scattered_sum_1 = dict(
        scattered.transfer_to("dc-b").reduce_by_key(lambda a, b: a + b).collect()
    )
    assert scattered_sum_1 == {"k": 10}
    context.shutdown()


def test_mixed_explicit_and_plain_shuffles():
    """One shuffle aggregated explicitly, a later one left fetch-based."""
    context = explicit_context()
    context.write_input_file("/in", [[("a", 1), ("b", 2)], [("a", 3)]])
    first = (
        context.text_file("/in")
        .transfer_to("dc-b")
        .reduce_by_key(lambda a, b: a + b)
    )
    second = first.map(lambda kv: (kv[1] % 2, 1)).reduce_by_key(
        lambda a, b: a + b
    )
    result = dict(second.collect())
    assert result == {0: 2}  # totals 4 and 2 are both even
    context.shutdown()
