"""The §III-B analytical model: Eq. (1), Eq. (2), and optimality."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import (
    aggregation_benefit,
    cross_dc_traffic_lower_bound,
    optimal_reducer_datacenter,
    reducer_fetch_volume,
    shard_matrix,
    total_fetch_volume,
)

sizes_strategy = st.dictionaries(
    st.sampled_from(["dc1", "dc2", "dc3", "dc4", "dc5"]),
    st.floats(0.0, 1e9),
    min_size=1,
    max_size=5,
)


def test_eq1_example_from_paper():
    """A reducer in the largest datacenter fetches (S - s1)/N."""
    sizes = {"dc1": 600.0, "dc2": 300.0, "dc3": 100.0}
    assert reducer_fetch_volume(sizes, "dc1", 4) == pytest.approx(100.0)
    assert reducer_fetch_volume(sizes, "dc3", 4) == pytest.approx(225.0)


def test_eq1_reducer_outside_all_datacenters_fetches_everything():
    sizes = {"dc1": 100.0}
    assert reducer_fetch_volume(sizes, "elsewhere", 2) == pytest.approx(50.0)


def test_eq2_lower_bound_is_total_minus_largest():
    sizes = {"dc1": 600.0, "dc2": 300.0, "dc3": 100.0}
    assert cross_dc_traffic_lower_bound(sizes) == pytest.approx(400.0)


def test_all_in_one_datacenter_needs_no_traffic():
    assert cross_dc_traffic_lower_bound({"dc1": 1e9}) == 0.0


def test_optimal_datacenter_is_largest_holder():
    sizes = {"dc1": 10.0, "dc2": 90.0, "dc3": 40.0}
    assert optimal_reducer_datacenter(sizes) == "dc2"


def test_optimal_datacenter_tie_breaks_deterministically():
    sizes = {"b": 50.0, "a": 50.0}
    assert optimal_reducer_datacenter(sizes) == "a"


def test_negative_sizes_rejected():
    with pytest.raises(ValueError):
        cross_dc_traffic_lower_bound({"dc": -1.0})
    with pytest.raises(ValueError):
        reducer_fetch_volume({"dc": -1.0}, "dc", 1)


def test_reducer_count_must_be_positive():
    with pytest.raises(ValueError):
        reducer_fetch_volume({"dc": 1.0}, "dc", 0)
    with pytest.raises(ValueError):
        total_fetch_volume({"dc": 1.0}, [])


@given(sizes_strategy)
@settings(max_examples=200)
def test_eq2_bound_achieved_by_optimal_placement(sizes):
    """Placing every reducer in the optimal DC achieves exactly S - s1."""
    best = optimal_reducer_datacenter(sizes)
    for num_reducers in (1, 3, 8):
        placement = [best] * num_reducers
        total = total_fetch_volume(sizes, placement)
        bound = cross_dc_traffic_lower_bound(sizes)
        assert total == pytest.approx(bound, abs=1e-6)


@given(sizes_strategy, st.integers(1, 4))
@settings(max_examples=100)
def test_eq2_is_a_true_lower_bound(sizes, num_reducers):
    """No placement (brute force over all assignments) beats S - s1."""
    datacenters = sorted(sizes)
    bound = cross_dc_traffic_lower_bound(sizes)
    for placement in itertools.product(datacenters, repeat=num_reducers):
        total = total_fetch_volume(sizes, list(placement))
        assert total >= bound - 1e-6


@given(sizes_strategy)
@settings(max_examples=100)
def test_optimal_choice_matches_brute_force(sizes):
    """The Eq. (1)-optimal DC minimises a single reducer's fetch volume."""
    best = optimal_reducer_datacenter(sizes)
    best_volume = reducer_fetch_volume(sizes, best, 1)
    for dc in sizes:
        assert best_volume <= reducer_fetch_volume(sizes, dc, 1) + 1e-6


def test_aggregation_benefit_monotone():
    sizes = {"dc1": 500.0, "dc2": 300.0, "dc3": 200.0}
    residuals = [
        aggregation_benefit(sizes, fraction)
        for fraction in (0.0, 0.25, 0.5, 0.75, 1.0)
    ]
    assert residuals[0] == pytest.approx(500.0)
    assert residuals[-1] == pytest.approx(0.0)
    assert residuals == sorted(residuals, reverse=True)


def test_aggregation_benefit_validates_fraction():
    with pytest.raises(ValueError):
        aggregation_benefit({"dc": 1.0}, 1.5)


def test_shard_matrix_divides_evenly():
    matrix = shard_matrix({"dc1": 80.0, "dc2": 40.0}, 4)
    assert matrix == {"dc1": 20.0, "dc2": 10.0}
    with pytest.raises(ValueError):
        shard_matrix({"dc1": 1.0}, 0)
