"""Events: firing, callbacks, and composition."""

import pytest

from repro.errors import EventAlreadyFiredError
from repro.simulation import Simulator


def test_event_starts_pending():
    sim = Simulator()
    event = sim.event("e")
    assert not event.triggered
    assert not event.ok
    assert not event.failed


def test_succeed_delivers_value():
    sim = Simulator()
    event = sim.event()
    event.succeed(42)
    sim.run()
    assert event.ok
    assert event.value == 42


def test_fail_delivers_error():
    sim = Simulator()
    event = sim.event()
    error = RuntimeError("boom")
    event.fail(error)
    sim.run()
    assert event.failed
    with pytest.raises(RuntimeError):
        _ = event.value


def test_value_before_firing_raises():
    sim = Simulator()
    event = sim.event("pending")
    with pytest.raises(EventAlreadyFiredError):
        _ = event.value


def test_double_succeed_raises():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(EventAlreadyFiredError):
        event.succeed(2)


def test_succeed_after_fail_raises():
    sim = Simulator()
    event = sim.event()
    event.fail(ValueError("x"))
    with pytest.raises(EventAlreadyFiredError):
        event.succeed(1)


def test_fail_requires_exception():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")  # type: ignore[arg-type]


def test_callbacks_run_on_delivery():
    sim = Simulator()
    event = sim.event()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    event.succeed("hello")
    assert seen == []  # not yet delivered
    sim.run()
    assert seen == ["hello"]


def test_callback_added_after_delivery_runs_immediately():
    sim = Simulator()
    event = sim.event()
    event.succeed(7)
    sim.run()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    assert seen == [7]


def test_timeout_fires_at_deadline():
    sim = Simulator()
    timeout = sim.timeout(5.0, value="done")
    sim.run()
    assert sim.now == 5.0
    assert timeout.value == "done"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_timeout_cannot_be_refired():
    sim = Simulator()
    timeout = sim.timeout(1.0)
    with pytest.raises(EventAlreadyFiredError):
        timeout.succeed()


def test_all_of_collects_values_in_order():
    sim = Simulator()
    a = sim.timeout(2.0, value="a")
    b = sim.timeout(1.0, value="b")
    both = sim.all_of([a, b])
    sim.run()
    assert both.value == ["a", "b"]
    assert sim.now == 2.0


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    combined = sim.all_of([])
    assert combined.triggered
    sim.run()
    assert combined.value == []


def test_all_of_fails_if_any_child_fails():
    sim = Simulator()
    good = sim.timeout(1.0)
    bad = sim.event()
    combined = sim.all_of([good, bad])
    bad.fail(RuntimeError("child"))
    sim.run()
    assert combined.failed


def test_any_of_fires_with_first_index_and_value():
    sim = Simulator()
    slow = sim.timeout(10.0, value="slow")
    fast = sim.timeout(1.0, value="fast")
    first = sim.any_of([slow, fast])
    sim.run_until_event(first)
    assert first.value == (1, "fast")
    assert sim.now == 1.0


def test_any_of_requires_children():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.any_of([])


def test_any_of_ignores_later_failures():
    sim = Simulator()
    fast = sim.timeout(1.0, value="ok")
    late_fail = sim.event()
    first = sim.any_of([fast, late_fail])
    sim.run()
    assert first.value == (0, "ok")
    late_fail.fail(RuntimeError("late"))
    sim.run()
    assert first.ok


def test_nested_composition():
    sim = Simulator()
    inner = sim.all_of([sim.timeout(1.0, value=1), sim.timeout(2.0, value=2)])
    outer = sim.any_of([inner, sim.timeout(10.0)])
    sim.run_until_event(outer)
    assert outer.value == (0, [1, 2])
    assert sim.now == 2.0
