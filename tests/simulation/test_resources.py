"""Resource (slots) and Store (queue) primitives."""

import pytest

from repro.errors import SimulationError
from repro.simulation import Simulator
from repro.simulation.resources import Resource, Store


def test_resource_grants_up_to_capacity_immediately():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    first = resource.acquire()
    second = resource.acquire()
    third = resource.acquire()
    assert first.triggered and second.triggered
    assert not third.triggered
    assert resource.in_use == 2
    assert resource.queue_length == 1


def test_release_wakes_fifo_waiter():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    resource.acquire()
    waiter_a = resource.acquire()
    waiter_b = resource.acquire()
    resource.release()
    assert waiter_a.triggered
    assert not waiter_b.triggered


def test_release_without_acquire_raises():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        resource.release()


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_serialises_workers():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    finish_times = []

    def worker(sim):
        yield resource.acquire()
        yield sim.timeout(3.0)
        resource.release()
        finish_times.append(sim.now)

    for _ in range(3):
        sim.spawn(worker(sim))
    sim.run()
    assert finish_times == [3.0, 6.0, 9.0]


def test_resource_parallelism_matches_capacity():
    sim = Simulator()
    resource = Resource(sim, capacity=4)
    finish_times = []

    def worker(sim):
        yield resource.acquire()
        yield sim.timeout(2.0)
        resource.release()
        finish_times.append(sim.now)

    for _ in range(8):
        sim.spawn(worker(sim))
    sim.run()
    assert finish_times == [2.0] * 4 + [4.0] * 4


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    request = store.get()
    assert request.triggered
    sim.run()
    assert request.value == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    request = store.get()
    assert not request.triggered
    store.put(99)
    sim.run()
    assert request.value == 99


def test_store_is_fifo_for_items_and_getters():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    first = store.get()
    second = store.get()
    sim.run()
    assert (first.value, second.value) == (1, 2)

    getter_a = store.get()
    getter_b = store.get()
    store.put("a")
    store.put("b")
    sim.run()
    assert (getter_a.value, getter_b.value) == ("a", "b")


def test_store_len_reflects_buffered_items():
    sim = Simulator()
    store = Store(sim)
    assert len(store) == 0
    store.put(1)
    store.put(2)
    assert len(store) == 2
    store.get()
    assert len(store) == 1
