"""Simulator kernel: clock, ordering, and process semantics."""

import pytest

from repro.errors import SimulationError
from repro.simulation import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for delay in (3.0, 1.0, 2.0):
        sim.timeout(delay).add_callback(
            lambda _e, d=delay: order.append(d)
        )
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_same_time_events_fire_fifo():
    sim = Simulator()
    order = []
    for label in range(5):
        sim.timeout(1.0).add_callback(
            lambda _e, l=label: order.append(l)
        )
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_stops_clock():
    sim = Simulator()
    fired = []
    sim.timeout(10.0).add_callback(lambda _e: fired.append(True))
    final = sim.run(until=5.0)
    assert final == 5.0
    assert not fired
    sim.run()
    assert fired


def test_run_until_past_raises():
    sim = Simulator()
    sim.timeout(3.0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_simple_process():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(2.0)
        yield sim.timeout(3.0)
        return sim.now

    assert sim.run_process(worker(sim)) == 5.0


def test_process_return_value_is_event_value():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.0)
        return "result"

    process = sim.spawn(worker(sim))
    sim.run()
    assert process.value == "result"


def test_process_waits_for_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(4.0)
        return "child-result"

    def parent(sim):
        result = yield sim.spawn(child(sim))
        return (sim.now, result)

    assert sim.run_process(parent(sim)) == (4.0, "child-result")


def test_process_exception_fails_its_event():
    sim = Simulator()

    def crasher(sim):
        yield sim.timeout(1.0)
        raise ValueError("inside process")

    process = sim.spawn(crasher(sim))
    sim.run()
    assert process.failed
    with pytest.raises(ValueError):
        _ = process.value


def test_exception_propagates_to_waiting_process():
    sim = Simulator()

    def crasher(sim):
        yield sim.timeout(1.0)
        raise ValueError("child crash")

    def parent(sim):
        try:
            yield sim.spawn(crasher(sim))
        except ValueError:
            return "caught"
        return "not caught"

    assert sim.run_process(parent(sim)) == "caught"


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad(sim):
        yield 42  # not an Event

    process = sim.spawn(bad(sim))
    sim.run()
    assert process.failed


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_interrupt_throws_into_process():
    sim = Simulator()

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except SimulationError:
            return sim.now
        return -1.0

    process = sim.spawn(sleeper(sim))
    sim.timeout(5.0).add_callback(lambda _e: process.interrupt("wake up"))
    sim.run()
    assert process.value == 5.0


def test_run_until_event_with_background_noise():
    sim = Simulator()

    def noise(sim):
        while True:
            yield sim.timeout(1.0)

    sim.spawn(noise(sim))
    target = sim.timeout(10.5)
    value = sim.run_until_event(target)
    assert sim.now == 10.5


def test_run_until_event_deadlock_detected():
    sim = Simulator()
    never = sim.event("never")
    with pytest.raises(SimulationError):
        sim.run_until_event(never)


def test_run_process_deadlock_detected():
    sim = Simulator()

    def stuck(sim):
        yield sim.event("nobody fires this")

    with pytest.raises(SimulationError):
        sim.run_process(stuck(sim))


def test_many_processes_complete():
    sim = Simulator()
    results = []

    def worker(sim, index):
        yield sim.timeout(float(index % 7))
        results.append(index)

    for index in range(200):
        sim.spawn(worker(sim, index))
    sim.run()
    assert sorted(results) == list(range(200))


def test_processed_events_counter_increases():
    sim = Simulator()
    sim.timeout(1.0)
    sim.timeout(2.0)
    sim.run()
    assert sim.processed_events >= 2
