"""Seeded random streams: determinism and independence."""

from hypothesis import given, strategies as st

from repro.simulation import RandomSource


def test_same_seed_same_draws():
    a = RandomSource(7)
    b = RandomSource(7)
    assert [a.uniform("s", 0, 1) for _ in range(10)] == [
        b.uniform("s", 0, 1) for _ in range(10)
    ]


def test_different_seeds_differ():
    a = RandomSource(1)
    b = RandomSource(2)
    assert [a.uniform("s", 0, 1) for _ in range(5)] != [
        b.uniform("s", 0, 1) for _ in range(5)
    ]


def test_streams_are_independent():
    """Draws on one stream must not perturb another stream."""
    a = RandomSource(3)
    b = RandomSource(3)
    # Interleave extra draws on an unrelated stream in `a` only.
    a_values = []
    for _ in range(5):
        a.uniform("noise", 0, 1)
        a_values.append(a.uniform("target", 0, 1))
    b_values = [b.uniform("target", 0, 1) for _ in range(5)]
    assert a_values == b_values


def test_child_sources_are_independent_of_parent():
    parent = RandomSource(9)
    child = parent.child("x")
    reference = RandomSource(9).child("x")
    parent.uniform("anything", 0, 1)
    assert child.uniform("s", 0, 1) == reference.uniform("s", 0, 1)


def test_chance_extremes():
    source = RandomSource(0)
    assert all(source.chance("always", 1.0) for _ in range(20))
    assert not any(source.chance("never", 0.0) for _ in range(20))


def test_chance_clamps_out_of_range():
    source = RandomSource(0)
    assert source.chance("big", 2.0)
    assert not source.chance("small", -1.0)


def test_choice_and_shuffled_preserve_elements():
    source = RandomSource(5)
    items = list(range(30))
    assert source.choice("c", items) in items
    shuffled = source.shuffled("s", items)
    assert sorted(shuffled) == items
    assert items == list(range(30))  # input untouched


@given(st.integers(min_value=1, max_value=50))
def test_zipf_indices_within_range(vocabulary_size):
    source = RandomSource(11)
    draws = list(source.zipf_indices("z", 100, vocabulary_size))
    assert len(draws) == 100
    assert all(0 <= index < vocabulary_size for index in draws)


def test_zipf_is_skewed_toward_low_ranks():
    source = RandomSource(13)
    draws = list(source.zipf_indices("z", 5000, 100, exponent=1.2))
    low = sum(1 for d in draws if d < 10)
    high = sum(1 for d in draws if d >= 90)
    assert low > high * 2


def test_zipf_rejects_empty_vocabulary():
    source = RandomSource(0)
    try:
        list(source.zipf_indices("z", 1, 0))
        raised = False
    except ValueError:
        raised = True
    assert raised


@given(st.integers(), st.text(max_size=20))
def test_gauss_and_expovariate_deterministic(seed, name):
    a = RandomSource(seed)
    b = RandomSource(seed)
    assert a.gauss(name, 0, 1) == b.gauss(name, 0, 1)
    assert a.expovariate(name, 2.0) == b.expovariate(name, 2.0)
