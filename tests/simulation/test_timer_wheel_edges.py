"""Timer-wheel edge cases: lazy cancellation after firing, bucket
rollover around ``run(until=...)`` horizons, and past-time scheduling."""

import pytest

from repro.errors import SimulationError
from repro.simulation.kernel import Simulator
from repro.simulation.timer_wheel import TimerHandle, TimerWheel


# ---------------------------------------------------------------------------
# Lazy cancellation of an already-fired timer
# ---------------------------------------------------------------------------


def test_cancel_after_fire_is_harmless():
    sim = Simulator()
    fired = []
    handle = sim.call_later(1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.0]
    # The timer already fired; cancelling now must be a silent no-op.
    handle.cancel()
    assert handle.cancelled
    sim.run()
    assert fired == [1.0]


def test_cancelled_timer_never_fires_and_costs_no_delivery():
    sim = Simulator()
    fired = []
    keep = sim.call_later(2.0, lambda: fired.append("keep"))
    drop = sim.call_later(1.0, lambda: fired.append("drop"))
    drop.cancel()
    before = sim.processed_events
    sim.run()
    assert fired == ["keep"]
    assert not keep.cancelled
    # Only the surviving timer was delivered; the cancelled one was
    # purged at drain time, not dispatched as a no-op.
    assert sim.processed_events == before + 1


def test_all_cancelled_batch_skips_to_next_instant():
    wheel = TimerWheel(0.05)
    a, b = TimerHandle(lambda: None), TimerHandle(lambda: None)
    later = TimerHandle(lambda: None)
    wheel.push(1.0, 0, a)
    wheel.push(1.0, 1, b)
    wheel.push(2.0, 2, later)
    a.cancel()
    b.cancel()
    batch = []
    # pop_batch must not report an empty batch for the dead instant.
    assert wheel.pop_batch(batch) == 2.0
    assert batch == [later]
    assert wheel.pop_batch([]) is None


# ---------------------------------------------------------------------------
# Bucket rollover at the wheel horizon
# ---------------------------------------------------------------------------


def test_run_until_parks_mid_bucket_then_resumes_in_order():
    # Two timers land in the *same* bucket (granularity 0.05); the run
    # horizon splits the bucket, so the remainder must be parked and
    # resumed without loss or reordering.
    sim = Simulator(timer_granularity=0.05)
    fired = []
    sim.call_at(0.101, lambda: fired.append(0.101))
    sim.call_at(0.104, lambda: fired.append(0.104))
    sim.run(until=0.102)
    assert fired == [0.101]
    assert sim.now == 0.102
    sim.run()
    assert fired == [0.101, 0.104]


def test_earlier_timer_scheduled_after_parking_fires_first():
    # After parking mid-bucket, schedule a new timer into an *earlier*
    # bucket than the parked remainder: the wheel must notice the newer
    # bucket precedes the suspended one (the _suspend_active path).
    sim = Simulator(timer_granularity=1.0)
    fired = []
    sim.call_at(10.2, lambda: fired.append(10.2))
    sim.call_at(10.8, lambda: fired.append(10.8))
    sim.run(until=10.5)
    assert fired == [10.2]
    early = sim.call_later(0.1, lambda: fired.append("early"))
    assert not early.cancelled
    sim.run()
    assert fired == [10.2, "early", 10.8]


def test_same_instant_entries_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for tag in ("a", "b", "c"):
        sim.call_at(5.0, lambda tag=tag: fired.append(tag))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_push_into_active_bucket_keeps_sorted_order():
    # While draining a bucket, a callback schedules another timer into
    # the same bucket at a later sub-bucket time: it must fire after the
    # current entry, in time order.
    sim = Simulator(timer_granularity=1.0)
    fired = []

    def first():
        fired.append("first")
        sim.call_at(7.9, lambda: fired.append("second"))

    sim.call_at(7.1, first)
    sim.run()
    assert fired == ["first", "second"]


# ---------------------------------------------------------------------------
# call_at in the past
# ---------------------------------------------------------------------------


def test_call_at_in_the_past_raises():
    sim = Simulator()
    sim.call_later(1.0, lambda: None)
    sim.run()
    assert sim.now == 1.0
    with pytest.raises(SimulationError, match="past"):
        sim.call_at(0.5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError, match="negative"):
        sim.call_later(-0.1, lambda: None)


def test_call_at_now_fires_this_instant():
    sim = Simulator()
    fired = []
    sim.call_at(0.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [0.0]
