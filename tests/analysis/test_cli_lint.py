"""``repro lint`` CLI: exit codes, JSON output, config errors."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def fixture_tree(tmp_path):
    """A tiny project: one clean module, one violating module."""
    pkg = tmp_path / "src" / "repro" / "scheduler"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text("x = 1\n")
    (pkg / "dirty.py").write_text("import random\n")
    (tmp_path / "pyproject.toml").write_text("[tool.repro-lint]\n")
    return tmp_path


def test_exit_zero_on_clean_file(fixture_tree, capsys):
    clean = fixture_tree / "src" / "repro" / "scheduler" / "clean.py"
    config = fixture_tree / "pyproject.toml"
    status = main(["lint", str(clean), "--config", str(config)])
    assert status == 0
    assert "clean: no findings" in capsys.readouterr().out


def test_exit_one_on_findings(fixture_tree, capsys):
    status = main(
        [
            "lint",
            str(fixture_tree / "src"),
            "--config",
            str(fixture_tree / "pyproject.toml"),
        ]
    )
    assert status == 1
    out = capsys.readouterr().out
    assert "DET001" in out
    assert "dirty.py" in out


def test_exit_zero_when_all_findings_suppressed(fixture_tree, capsys):
    dirty = fixture_tree / "src" / "repro" / "scheduler" / "dirty.py"
    dirty.write_text(
        "import random  # repro-lint: allow[DET001] fixture exercises rng\n"
    )
    status = main(
        [
            "lint",
            str(fixture_tree / "src"),
            "--config",
            str(fixture_tree / "pyproject.toml"),
        ]
    )
    assert status == 0
    out = capsys.readouterr().out
    assert "1 suppressed" in out


def test_exit_two_on_bad_config(fixture_tree, capsys):
    (fixture_tree / "pyproject.toml").write_text(
        '[tool.repro-lint]\nno-such-key = ["x"]\n'
    )
    status = main(
        [
            "lint",
            str(fixture_tree / "src"),
            "--config",
            str(fixture_tree / "pyproject.toml"),
        ]
    )
    assert status == 2
    assert "no-such-key" in capsys.readouterr().err


def test_json_output_is_machine_readable(fixture_tree, capsys):
    status = main(
        [
            "lint",
            str(fixture_tree / "src"),
            "--json",
            "--config",
            str(fixture_tree / "pyproject.toml"),
        ]
    )
    assert status == 1
    payload = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in payload] == ["DET001"]


def test_repo_source_tree_is_lint_clean():
    """The acceptance gate itself: `repro lint src/repro` exits 0."""
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    source = root / "src" / "repro"
    if not source.is_dir():  # pragma: no cover - sdist layouts
        pytest.skip("source tree not present")
    status = main(
        ["lint", str(source), "--config", str(root / "pyproject.toml")]
    )
    assert status == 0
