"""Per-rule fixtures: each rule catches its target and nothing else."""

from repro.analysis.engine import LintConfig, LintEngine

SENSITIVE = "repro.scheduler.fixture"  # matches ordering_sensitive glob
ACCOUNTING = "repro.metrics.fixture"  # matches accounting_modules glob
PLAIN = "repro.workloads.fixture"  # matches neither


def rules_in(source, module=SENSITIVE, config=None):
    engine = LintEngine(config)
    return [
        f.rule
        for f in engine.lint_source(source, path="fx.py", module=module)
        if not f.suppressed
    ]


# ---------------------------------------------------------------------------
# DET001 — RNG outside repro.simulation.random_source
# ---------------------------------------------------------------------------


def test_det001_flags_random_import():
    assert "DET001" in rules_in("import random\n", module=PLAIN)


def test_det001_flags_numpy_random_attribute():
    src = "import numpy as np\nx = np.random.default_rng()\n"
    assert "DET001" in rules_in(src, module=PLAIN)


def test_det001_allows_the_random_source_module():
    assert rules_in("import random\n", module="repro.simulation.random_source") == []


# ---------------------------------------------------------------------------
# DET002 — wall clock in simulation paths
# ---------------------------------------------------------------------------


def test_det002_flags_time_time():
    assert "DET002" in rules_in("import time\nnow = time.time()\n")


def test_det002_flags_bare_perf_counter_import():
    src = "from time import perf_counter\nstart = perf_counter()\n"
    assert "DET002" in rules_in(src)


def test_det002_flags_datetime_now():
    src = "import datetime\nstamp = datetime.datetime.now()\n"
    assert "DET002" in rules_in(src)


def test_det002_respects_wallclock_allowed():
    config = LintConfig(wallclock_allowed=(SENSITIVE,))
    assert rules_in("import time\nnow = time.time()\n", config=config) == []


# ---------------------------------------------------------------------------
# DET003 — unordered set iteration in ordering-sensitive modules
# ---------------------------------------------------------------------------


def test_det003_flags_for_over_set_literal():
    src = "for x in {1, 2, 3}:\n    print(x)\n"
    assert "DET003" in rules_in(src)


def test_det003_flags_set_typed_name():
    src = "s = set()\ns.add(1)\nfor x in s:\n    print(x)\n"
    assert "DET003" in rules_in(src)


def test_det003_flags_set_comprehension_source():
    src = "items = [y for y in {1, 2}]\n"
    assert "DET003" in rules_in(src)


def test_det003_flags_set_union_result():
    src = "a = set()\nb = set()\nfor x in a | b:\n    print(x)\n"
    assert "DET003" in rules_in(src)


def test_det003_accepts_sorted_iteration():
    src = "s = set()\nfor x in sorted(s):\n    print(x)\n"
    assert "DET003" not in rules_in(src)


def test_det003_ignores_insensitive_modules():
    src = "for x in {1, 2, 3}:\n    print(x)\n"
    assert "DET003" not in rules_in(src, module=PLAIN)


def test_det003_nested_function_tracks_its_own_names():
    # `s` in the outer scope is a set; the inner `s` is a list.
    src = (
        "s = set()\n"
        "def inner():\n"
        "    s = [1, 2]\n"
        "    for x in s:\n"
        "        print(x)\n"
    )
    assert "DET003" not in rules_in(src)


# ---------------------------------------------------------------------------
# DET004 — id() in ordering positions
# ---------------------------------------------------------------------------


def test_det004_flags_id_as_sort_key():
    src = "items = sorted(objs, key=lambda o: id(o))\n"
    assert "DET004" in rules_in(src)


def test_det004_flags_bare_id_as_key():
    src = "items = sorted(objs, key=id)\n"
    assert "DET004" in rules_in(src)


def test_det004_flags_id_as_dict_key():
    src = "table = {id(obj): obj}\n"
    assert "DET004" in rules_in(src)


def test_det004_flags_id_in_comparison():
    src = "flag = id(a) < id(b)\n"
    assert "DET004" in rules_in(src)


def test_det004_allows_id_outside_ordering():
    src = "label = f'obj-{id(obj)}'\n"
    assert "DET004" not in rules_in(src)


# ---------------------------------------------------------------------------
# ACC001 — float += accumulation in accounting modules
# ---------------------------------------------------------------------------


def test_acc001_flags_float_augassign_in_loop():
    src = (
        "total = 0.0\n"
        "for v in values:\n"
        "    total += v\n"
    )
    assert "ACC001" in rules_in(src, module=ACCOUNTING)


def test_acc001_ignores_integer_counters():
    src = "count = 0\nfor v in values:\n    count += 1\n"
    assert "ACC001" not in rules_in(src, module=ACCOUNTING)


def test_acc001_ignores_non_accounting_modules():
    src = "total = 0.0\nfor v in values:\n    total += v\n"
    assert "ACC001" not in rules_in(src, module=PLAIN)


def test_acc001_ignores_accumulation_outside_loops():
    src = "total = 0.0\ntotal += delta\n"
    assert "ACC001" not in rules_in(src, module=ACCOUNTING)


# ---------------------------------------------------------------------------
# PERF001 — configured hot-path classes must define __slots__
# ---------------------------------------------------------------------------


def test_perf001_flags_missing_slots():
    config = LintConfig(slots_classes=(f"{PLAIN}:Hot",))
    src = "class Hot:\n    def __init__(self):\n        self.x = 1\n"
    assert "PERF001" in rules_in(src, module=PLAIN, config=config)


def test_perf001_accepts_slots():
    config = LintConfig(slots_classes=(f"{PLAIN}:Hot",))
    src = "class Hot:\n    __slots__ = ('x',)\n"
    assert "PERF001" not in rules_in(src, module=PLAIN, config=config)


def test_perf001_accepts_dataclass_slots_keyword():
    config = LintConfig(slots_classes=(f"{PLAIN}:Hot",))
    src = (
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True, slots=True)\n"
        "class Hot:\n    x: int = 1\n"
    )
    assert "PERF001" not in rules_in(src, module=PLAIN, config=config)


def test_perf001_rejects_dataclass_without_slots_keyword():
    config = LintConfig(slots_classes=(f"{PLAIN}:Hot",))
    src = (
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True)\n"
        "class Hot:\n    x: int = 1\n"
    )
    assert "PERF001" in rules_in(src, module=PLAIN, config=config)


def test_perf001_reports_stale_config_entry():
    config = LintConfig(slots_classes=(f"{PLAIN}:Gone",))
    src = "class Hot:\n    __slots__ = ('x',)\n"
    assert "PERF001" in rules_in(src, module=PLAIN, config=config)


def test_perf001_ignores_unlisted_classes():
    src = "class Cold:\n    def __init__(self):\n        self.x = 1\n"
    assert "PERF001" not in rules_in(src, module=PLAIN)
