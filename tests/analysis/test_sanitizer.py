"""Runtime invariant sanitizer: detection, transparency, enablement.

Two obligations, tested separately: the checks *fire* on bad state
(fed synthetic violations directly), and a sanitized end-to-end run is
byte-identical to an unsanitized one while every check family actually
executes (a silently-dead hook cannot pass).
"""

import dataclasses

import pytest

from repro.analysis.sanitizer import (
    InvariantViolation,
    Sanitizer,
    disable,
    enable,
    get_sanitizer,
    sanitized,
)
from repro.experiments.runner import ExperimentPlan, clear_data_cache, run_matrix
from repro.experiments.schemes import Scheme
from repro.metrics.tenants import TenantLedger
from repro.network.traffic_monitor import TrafficMonitor
from repro.workloads import workload_by_name
from repro.workloads.arrivals import ArrivalSpec, StreamSpec, TenantSpec
from tests.conftest import small_spec


@pytest.fixture(autouse=True)
def _clean():
    disable()
    clear_data_cache()
    yield
    disable()
    clear_data_cache()


# ---------------------------------------------------------------------------
# Individual checks fire on synthetic violations
# ---------------------------------------------------------------------------


def test_check_rates_accepts_feasible_solve():
    sanitizer = Sanitizer()
    sanitizer.check_rates(
        {1: 50.0, 2: 50.0}, {1: ("wan",), 2: ("wan",)}, {"wan": 100.0}
    )
    assert sanitizer.checks["rates"] == 1
    assert sanitizer.checks["capacity"] == 1


def test_check_rates_rejects_overcommitted_link():
    sanitizer = Sanitizer()
    with pytest.raises(InvariantViolation, match="capacity"):
        sanitizer.check_rates(
            {1: 80.0, 2: 80.0}, {1: ("wan",), 2: ("wan",)}, {"wan": 100.0}
        )


def test_check_rates_rejects_nan_negative_and_infinite():
    sanitizer = Sanitizer()
    for bad in (float("nan"), -1.0, float("inf")):
        with pytest.raises(InvariantViolation):
            sanitizer.check_rates({1: bad}, {1: ()}, {})


def test_check_rates_skips_uncapacitated_links():
    sanitizer = Sanitizer()
    sanitizer.check_rates(
        {1: 1e12}, {1: ("mystery",)}, {"known": 10.0}
    )  # no entry for "mystery": nothing to conserve


def test_check_remaining_rejects_negative_bytes():
    sanitizer = Sanitizer()
    sanitizer.check_remaining(1, 0.0)
    with pytest.raises(InvariantViolation, match="remaining"):
        sanitizer.check_remaining(1, -1e-6)


def test_check_time_rejects_backwards_clock():
    sanitizer = Sanitizer()
    sanitizer.check_time(5.0, 5.0)  # same-instant batches are fine
    sanitizer.check_time(5.0, 6.0)
    with pytest.raises(InvariantViolation, match="backwards"):
        sanitizer.check_time(6.0, 5.0)
    with pytest.raises(InvariantViolation, match="NaN"):
        sanitizer.check_time(0.0, float("nan"))


def test_check_ledger_reconciles_settled_charges():
    sanitizer = Sanitizer()
    ledger = TenantLedger()
    monitor = TrafficMonitor()
    ledger.account("prod", 1, 100.0, wan=True)
    ledger.account("prod", 2, 25.0, wan=False)  # still in flight
    monitor.record("dc-a", "dc-b", 100.0, tenant="prod")
    sanitizer.check_ledger(ledger, monitor, iter([2]))
    assert sanitizer.checks["ledger"] == 1


def test_reconcile_excludes_flows_still_in_flight_at_run_end():
    """Campaign finding (seed 0, schedule #98): a speculative loser's
    fetch stays active when the winning attempt completes the job — the
    flow was counter-charged at issue but the monitor only records
    completions.  reconcile_run must exclude still-active flows; a
    *cancelled* flow whose charge was never refunded is a real leak."""
    from repro.analysis.sanitizer import reconcile_run
    from tests.conftest import make_context

    context = make_context()
    backend = context.shuffle_service.backend
    flow = context.fabric.transfer("dc-a-w0", "dc-b-w0", 1000.0, tag="shuffle")
    backend._account_flow("dc-a-w0", "dc-b-w0", 1000.0, shuffle_id=0)
    assert reconcile_run(context) == []
    # Cancelling removes the flow from the active set without refunding
    # the issue-time charge — now it IS an accounting violation.
    context.fabric.cancel(flow)
    violations = reconcile_run(context)
    assert any("wan_bytes" in violation for violation in violations)


def test_check_ledger_rejects_mismatched_bytes():
    sanitizer = Sanitizer()
    ledger = TenantLedger()
    monitor = TrafficMonitor()
    ledger.account("prod", 1, 100.0, wan=True)
    monitor.record("dc-a", "dc-b", 99.0, tenant="prod")
    with pytest.raises(InvariantViolation, match="ledger"):
        sanitizer.check_ledger(ledger, monitor, iter([]))


# ---------------------------------------------------------------------------
# Enablement plumbing
# ---------------------------------------------------------------------------


def test_get_sanitizer_is_none_by_default():
    assert get_sanitizer() is None


def test_env_flag_installs_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    disable()  # re-arm the lazy env check under the patched env
    assert get_sanitizer() is not None
    monkeypatch.delenv("REPRO_SANITIZE")
    disable()
    assert get_sanitizer() is None


def test_enable_and_context_manager():
    installed = enable()
    assert get_sanitizer() is installed
    disable()
    with sanitized() as scoped:
        assert get_sanitizer() is scoped
        assert scoped.total_checks == 0
    assert get_sanitizer() is None


# ---------------------------------------------------------------------------
# End-to-end: transparent and actually checking
# ---------------------------------------------------------------------------


def _stream_plan():
    return ExperimentPlan(
        cluster=small_spec(datacenters=("dc-a", "dc-b")),
        seeds=(3,),
        stream=StreamSpec(
            arrival=ArrivalSpec(
                process="poisson", rate_per_minute=120.0, num_jobs=5
            ),
            tenants=(
                TenantSpec("prod", weight=2.0, share=1.0),
                TenantSpec("batch", weight=1.0, share=1.0),
            ),
            policy="fair",
            max_concurrent=2,
        ),
    )


def _comparable(result):
    data = dataclasses.asdict(result)
    data["fabric_perf"] = {
        key: value
        for key, value in data["fabric_perf"].items()
        if key != "solver_seconds"
    }
    return data


def test_sanitized_stream_is_byte_identical_and_checks_run():
    workloads = [workload_by_name("wordcount")]
    plain = run_matrix(workloads, [Scheme.SPARK], _stream_plan())
    clear_data_cache()
    with sanitized() as sanitizer:
        checked = run_matrix(workloads, [Scheme.SPARK], _stream_plan())
    assert [_comparable(r) for r in plain] == [_comparable(r) for r in checked]
    # Every invariant family actually executed during the run.
    assert sanitizer.checks["rates"] > 0
    assert sanitizer.checks["capacity"] > 0
    assert sanitizer.checks["time"] > 0
    assert sanitizer.checks["ledger"] > 0
