"""Engine self-tests: pragmas, config loading, selection, output.

The linter lints the linter's users, so these tests pin the engine's
contract on small fixture snippets: where a pragma applies, what makes
it invalid, how ``[tool.repro-lint]`` is read, and the exit-code
semantics the CLI builds on.
"""

import json

import pytest

from repro.analysis.engine import (
    LintConfig,
    LintEngine,
    format_findings,
    iter_python_files,
    known_rules,
    lint_paths,
    load_config,
    module_name_for,
)
from repro.errors import ConfigurationError

# A DET001 violation in an ordering/rng-sensitive module name.
VIOLATION = "import random\nrandom.random()\n"
MODULE = "repro.scheduler.fixture"


def lint(source, module=MODULE, config=None):
    return LintEngine(config).lint_source(source, path="fx.py", module=module)


# ---------------------------------------------------------------------------
# Pragmas
# ---------------------------------------------------------------------------


def test_same_line_pragma_suppresses_with_reason():
    src = "import random  # repro-lint: allow[DET001] fixture needs raw rng\n"
    findings = lint(src)
    assert [f.rule for f in findings] == ["DET001"]
    assert findings[0].suppressed
    assert findings[0].reason == "fixture needs raw rng"


def test_comment_only_pragma_shields_next_line():
    src = (
        "# repro-lint: allow[DET001] fixture needs raw rng\n"
        "import random\n"
    )
    findings = lint(src)
    assert [f.suppressed for f in findings] == [True]


def test_pragma_without_reason_is_unsuppressable_lnt001():
    src = "import random  # repro-lint: allow[DET001]\n"
    findings = lint(src)
    rules = sorted(f.rule for f in findings)
    assert rules == ["DET001", "LNT001"]
    # Neither the original finding nor LNT001 is suppressed.
    assert not any(f.suppressed for f in findings)


def test_lnt001_cannot_suppress_itself():
    src = (
        "# repro-lint: allow[*]\n"  # reasonless, tries to allow everything
        "import random\n"
    )
    findings = lint(src)
    assert "LNT001" in {f.rule for f in findings}
    assert not any(f.suppressed for f in findings)


def test_unknown_rule_in_pragma_is_lnt002():
    src = "x = 1  # repro-lint: allow[NOPE123] because reasons\n"
    findings = lint(src)
    assert [f.rule for f in findings] == ["LNT002"]


def test_star_pragma_covers_every_rule():
    src = "import random  # repro-lint: allow[*] quarantined fixture\n"
    findings = lint(src)
    assert all(f.suppressed for f in findings)


def test_multi_rule_pragma():
    src = (
        "import random, time  "
        "# repro-lint: allow[DET001,DET002] fixture exercises both\n"
    )
    findings = lint(src)
    assert findings and all(f.suppressed for f in findings)


def test_pragma_text_inside_docstring_is_inert():
    src = '"""Example: # repro-lint: allow[NOPE] docs only."""\nx = 1\n'
    assert lint(src) == []


def test_syntax_error_reports_lnt003():
    findings = lint("def broken(:\n")
    assert [f.rule for f in findings] == ["LNT003"]


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


def test_load_config_reads_repro_lint_section(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        "[tool.repro-lint]\n"
        'rng-allowed = ["myproj.rng"]\n'
        "slots-classes = [\n"
        '    "myproj.core:Thing",  # hot path\n'
        '    "myproj.core:Other",\n'
        "]\n"
    )
    config = load_config(pyproject)
    assert config.rng_allowed == ("myproj.rng",)
    assert config.slots_classes == ("myproj.core:Thing", "myproj.core:Other")
    # Untouched keys keep their defaults.
    assert "repro.scheduler.*" in config.ordering_sensitive


def test_load_config_rejects_unknown_key(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text('[tool.repro-lint]\nrng-alowed = ["typo"]\n')
    with pytest.raises(ConfigurationError, match="rng-alowed"):
        load_config(pyproject)


def test_engine_rejects_unknown_rule_in_select():
    with pytest.raises(ConfigurationError, match="NOPE123"):
        LintEngine(LintConfig(select=("NOPE123",)))


def test_select_restricts_rules():
    config = LintConfig(select=("DET002",))
    # DET001 violation, but only DET002 selected.
    assert lint(VIOLATION, config=config) == []


def test_known_rules_lists_the_catalogue():
    assert set(known_rules()) >= {
        "DET001",
        "DET002",
        "DET003",
        "DET004",
        "ACC001",
        "PERF001",
    }


def test_module_name_for_src_layout():
    from pathlib import Path

    assert module_name_for(Path("src/repro/network/fabric.py")) == (
        "repro.network.fabric"
    )
    assert module_name_for(Path("src/repro/network/__init__.py")) == (
        "repro.network"
    )


# ---------------------------------------------------------------------------
# Paths and output
# ---------------------------------------------------------------------------


def test_lint_paths_walks_and_excludes(tmp_path):
    (tmp_path / "keep.py").write_text(VIOLATION)
    (tmp_path / "skip.py").write_text(VIOLATION)
    config = LintConfig(exclude=("*skip.py",))
    paths = list(iter_python_files([tmp_path], config.exclude))
    assert [p.name for p in paths] == ["keep.py"]
    findings = lint_paths([tmp_path], config)
    assert findings
    assert all("keep.py" in f.path for f in findings)


def test_format_findings_human_and_json():
    findings = lint(VIOLATION)
    human = format_findings(findings)
    assert "DET001" in human
    assert "finding(s)" in human
    payload = json.loads(format_findings(findings, as_json=True))
    assert payload and payload[0]["rule"] == "DET001"
    assert format_findings([]) == "clean: no findings"


def test_format_findings_hides_suppressed_by_default():
    src = "import random  # repro-lint: allow[DET001] fixture\n"
    findings = lint(src)
    assert "DET001" not in format_findings(findings).splitlines()[0]
    shown = format_findings(findings, show_suppressed=True)
    assert "suppressed: fixture" in shown
