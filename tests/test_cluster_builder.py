"""Cluster specifications and topology building (Fig. 6)."""

import pytest

from repro.cluster.builder import (
    EC2_REGIONS,
    ClusterSpec,
    build_topology,
    ec2_six_region_spec,
    two_datacenter_spec,
)
from repro.errors import ConfigurationError
from repro.network.topology import MBPS


def test_fig6_cluster_shape():
    """Six regions, four workers each, master in N. Virginia."""
    spec = ec2_six_region_spec()
    assert len(spec.datacenters) == 6
    assert spec.workers_per_datacenter == 4
    assert spec.resolved_driver_datacenter == "us-east-1"
    assert len(spec.worker_names()) == 24


def test_fig6_topology_builds_and_validates():
    topology = build_topology(ec2_six_region_spec())
    # 24 workers + 1 dedicated driver host.
    assert len(topology.all_host_names()) == 25
    assert topology.datacenter_of("us-east-1-driver") == "us-east-1"
    # Full WAN mesh.
    for src in EC2_REGIONS:
        for dst in EC2_REGIONS:
            if src != dst:
                assert topology.wan_link(src, dst) is not None


def test_wan_latencies_are_region_specific():
    topology = build_topology(ec2_six_region_spec())
    nearby = topology.wan_link("us-east-1", "us-west-1").latency
    far = topology.wan_link("sa-east-1", "ap-southeast-1").latency
    assert far > nearby


def test_gateways_installed_by_default():
    spec = ec2_six_region_spec()
    topology = build_topology(spec)
    for name in spec.datacenters:
        dc = topology.datacenters[name]
        assert dc.wan_in is not None
        assert dc.wan_out is not None
        assert dc.wan_in.capacity == pytest.approx(spec.gateway_bandwidth)


def test_gateways_can_be_disabled():
    spec = ClusterSpec(datacenters=("a", "b"), gateway_bandwidth=None)
    topology = build_topology(spec)
    assert topology.datacenters["a"].wan_in is None
    route = topology.route("a-w0", "b-w0")
    assert len(route) == 3  # up, wan, down


def test_driver_host_name_convention():
    spec = two_datacenter_spec()
    assert spec.driver_host_name == "dc-a-driver"


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        ClusterSpec(datacenters=()).validate()
    with pytest.raises(ConfigurationError):
        ClusterSpec(datacenters=("a", "a")).validate()
    with pytest.raises(ConfigurationError):
        ClusterSpec(datacenters=("a",), workers_per_datacenter=0).validate()
    with pytest.raises(ConfigurationError):
        ClusterSpec(
            datacenters=("a",), driver_datacenter="missing"
        ).validate()


def test_single_datacenter_cluster_builds():
    spec = ClusterSpec(datacenters=("solo",), workers_per_datacenter=2)
    topology = build_topology(spec)
    assert topology.route("solo-w0", "solo-w1")


def test_custom_bandwidths_respected():
    spec = ClusterSpec(
        datacenters=("a", "b"),
        inter_dc_bandwidth=42 * MBPS,
        gateway_bandwidth=84 * MBPS,
    )
    topology = build_topology(spec)
    assert topology.wan_link("a", "b").capacity == pytest.approx(42 * MBPS)
    assert topology.datacenters["a"].wan_out.capacity == pytest.approx(
        84 * MBPS
    )
