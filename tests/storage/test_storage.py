"""Storage substrate: blocks, namenode metadata, datanodes, disk model."""

import pytest

from repro.errors import (
    BlockNotFoundError,
    FileExistsInDFSError,
    FileNotFoundInDFSError,
)
from repro.storage import Block, DataNode, DiskModel, NameNode


# ----------------------------------------------------------------------
# Block
# ----------------------------------------------------------------------
def test_block_record_count_and_repr():
    block = Block("b1", records=[1, 2, 3], size_bytes=300.0)
    assert block.record_count == 3
    assert "b1" in repr(block)


# ----------------------------------------------------------------------
# DataNode
# ----------------------------------------------------------------------
def test_datanode_put_get_remove():
    node = DataNode("host1")
    block = Block("b1", records=["x"], size_bytes=10.0)
    node.put(block)
    assert node.has("b1")
    assert node.get("b1") is block
    assert node.used_bytes == 10.0
    assert node.bytes_written == 10.0
    node.remove("b1")
    assert not node.has("b1")
    # bytes_written is cumulative, used_bytes reflects current content.
    assert node.bytes_written == 10.0
    assert node.used_bytes == 0.0


def test_datanode_missing_block_raises():
    node = DataNode("host1")
    with pytest.raises(BlockNotFoundError):
        node.get("nope")


def test_datanode_block_ids():
    node = DataNode("host1")
    node.put(Block("a"))
    node.put(Block("b"))
    assert sorted(node.block_ids()) == ["a", "b"]


# ----------------------------------------------------------------------
# NameNode
# ----------------------------------------------------------------------
def test_namenode_file_lifecycle():
    namenode = NameNode()
    namenode.create_file("/f")
    assert namenode.exists("/f")
    namenode.append_block("/f", "b0", ["h1"])
    namenode.append_block("/f", "b1", ["h2"])
    assert namenode.file_blocks("/f") == ["b0", "b1"]
    assert namenode.block_locations("b0") == ["h1"]
    removed = namenode.delete_file("/f")
    assert removed == ["b0", "b1"]
    assert not namenode.exists("/f")
    with pytest.raises(BlockNotFoundError):
        namenode.block_locations("b0")


def test_namenode_duplicate_create_raises():
    namenode = NameNode()
    namenode.create_file("/f")
    with pytest.raises(FileExistsInDFSError):
        namenode.create_file("/f")


def test_namenode_missing_file_raises():
    namenode = NameNode()
    with pytest.raises(FileNotFoundInDFSError):
        namenode.file_blocks("/missing")
    with pytest.raises(FileNotFoundInDFSError):
        namenode.delete_file("/missing")
    with pytest.raises(FileNotFoundInDFSError):
        namenode.append_block("/missing", "b", ["h"])


def test_namenode_block_needs_replica():
    namenode = NameNode()
    namenode.create_file("/f")
    with pytest.raises(ValueError):
        namenode.append_block("/f", "b", [])


def test_replica_placement_round_robin():
    namenode = NameNode(replication=2)
    hosts = ["h0", "h1", "h2"]
    assert namenode.choose_replica_hosts(hosts, 0) == ["h0", "h1"]
    assert namenode.choose_replica_hosts(hosts, 1) == ["h1", "h2"]
    assert namenode.choose_replica_hosts(hosts, 2) == ["h2", "h0"]


def test_replication_capped_by_candidates():
    namenode = NameNode(replication=5)
    assert namenode.choose_replica_hosts(["only"], 3) == ["only"]


def test_replication_must_be_positive():
    with pytest.raises(ValueError):
        NameNode(replication=0)


# ----------------------------------------------------------------------
# DiskModel
# ----------------------------------------------------------------------
def test_disk_times_scale_with_bytes():
    disk = DiskModel(
        read_bytes_per_second=100e6,
        write_bytes_per_second=50e6,
        seek_seconds=0.001,
    )
    assert disk.read_time(100e6) == pytest.approx(1.001)
    assert disk.write_time(100e6) == pytest.approx(2.001)
    assert disk.read_time(0) == 0.0
    assert disk.write_time(0) == 0.0


def test_disk_rejects_negative_sizes():
    disk = DiskModel()
    with pytest.raises(ValueError):
        disk.read_time(-1)
    with pytest.raises(ValueError):
        disk.write_time(-1)
