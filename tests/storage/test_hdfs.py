"""DistributedFileSystem facade: writing, reading, locality."""

import pytest

from repro.errors import BlockNotFoundError, FileNotFoundInDFSError
from repro.storage import DistributedFileSystem


def make_dfs(replication=1):
    return DistributedFileSystem(
        ["h0", "h1", "h2", "h3"], replication=replication
    )


def test_write_creates_one_block_per_partition():
    dfs = make_dfs()
    dfs.write_file(
        "/data",
        partitions=[[1, 2], [3], [4, 5, 6]],
        partition_sizes=[20.0, 10.0, 30.0],
        placement_hosts=["h0", "h1", "h2"],
    )
    blocks = dfs.file_blocks("/data")
    assert len(blocks) == 3
    assert dfs.file_size("/data") == pytest.approx(60.0)
    assert dfs.block_locations(blocks[0]) == ["h0"]
    assert dfs.block_locations(blocks[1]) == ["h1"]


def test_placement_round_robins_over_hosts():
    dfs = make_dfs()
    dfs.write_file(
        "/data",
        partitions=[[i] for i in range(6)],
        partition_sizes=[1.0] * 6,
        placement_hosts=["h0", "h1"],
    )
    locations = [dfs.block_locations(b)[0] for b in dfs.file_blocks("/data")]
    assert locations == ["h0", "h1", "h0", "h1", "h0", "h1"]


def test_read_block_prefers_requested_host():
    dfs = make_dfs(replication=2)
    dfs.write_file(
        "/data", [[1]], [8.0], placement_hosts=["h0", "h1", "h2"]
    )
    block_id = dfs.file_blocks("/data")[0]
    locations = dfs.block_locations(block_id)
    assert len(locations) == 2
    block = dfs.read_block(block_id, from_host=locations[1])
    assert block.records == [1]


def test_read_block_falls_back_to_any_replica():
    dfs = make_dfs()
    dfs.write_file("/data", [[1]], [8.0], placement_hosts=["h3"])
    block_id = dfs.file_blocks("/data")[0]
    block = dfs.read_block(block_id, from_host="h0")
    assert block.records == [1]


def test_partition_size_mismatch_rejected():
    dfs = make_dfs()
    with pytest.raises(ValueError):
        dfs.write_file("/bad", [[1], [2]], [1.0], placement_hosts=["h0"])


def test_delete_file_removes_blocks_everywhere():
    dfs = make_dfs(replication=2)
    dfs.write_file("/data", [[1]], [8.0], placement_hosts=["h0", "h1"])
    block_id = dfs.file_blocks("/data")[0]
    dfs.delete_file("/data")
    assert not dfs.exists("/data")
    with pytest.raises(BlockNotFoundError):
        dfs.read_block(block_id)
    with pytest.raises(FileNotFoundInDFSError):
        dfs.file_blocks("/data")


def test_block_ids_are_unique_across_files():
    dfs = make_dfs()
    dfs.write_file("/a", [[1]], [1.0], placement_hosts=["h0"])
    dfs.write_file("/b", [[2]], [1.0], placement_hosts=["h0"])
    assert dfs.file_blocks("/a") != dfs.file_blocks("/b")


def test_replication_places_multiple_copies():
    dfs = make_dfs(replication=3)
    dfs.write_file(
        "/data", [[1]], [8.0], placement_hosts=["h0", "h1", "h2", "h3"]
    )
    block_id = dfs.file_blocks("/data")[0]
    assert len(dfs.block_locations(block_id)) == 3
