"""Stateful property tests: metadata stores under random operation mixes.

Hypothesis drives random sequences of operations against the namenode
and cache manager while a simple Python model tracks the expected state;
any divergence is a bug with a minimal reproducing sequence.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
import hypothesis.strategies as st

from repro.errors import (
    FileExistsInDFSError,
    FileNotFoundInDFSError,
)
from repro.scheduler.cache import CacheManager
from repro.storage.namenode import NameNode


class NameNodeMachine(RuleBasedStateMachine):
    """NameNode vs a dict-of-lists model."""

    paths = Bundle("paths")

    def __init__(self):
        super().__init__()
        self.namenode = NameNode()
        self.model = {}
        self.block_counter = 0

    @rule(target=paths, name=st.sampled_from("abcdefgh"))
    def create(self, name):
        path = f"/{name}"
        if path in self.model:
            with pytest.raises(FileExistsInDFSError):
                self.namenode.create_file(path)
        else:
            self.namenode.create_file(path)
            self.model[path] = []
        return path

    @rule(path=paths, host=st.sampled_from(["h0", "h1", "h2"]))
    def append_block(self, path, host):
        block_id = f"blk{self.block_counter}"
        self.block_counter += 1
        if path in self.model:
            self.namenode.append_block(path, block_id, [host])
            self.model[path].append((block_id, host))
        else:
            with pytest.raises(FileNotFoundInDFSError):
                self.namenode.append_block(path, block_id, [host])

    @rule(path=paths)
    def delete(self, path):
        if path in self.model:
            removed = self.namenode.delete_file(path)
            assert removed == [b for b, _h in self.model[path]]
            del self.model[path]
        else:
            with pytest.raises(FileNotFoundInDFSError):
                self.namenode.delete_file(path)

    @invariant()
    def namespace_matches_model(self):
        assert sorted(self.namenode.list_files()) == sorted(self.model)
        for path, blocks in self.model.items():
            assert self.namenode.file_blocks(path) == [b for b, _h in blocks]
            for block_id, host in blocks:
                assert self.namenode.block_locations(block_id) == [host]


class CacheMachine(RuleBasedStateMachine):
    """CacheManager vs a dict model with first-writer-wins semantics."""

    def __init__(self):
        super().__init__()
        self.cache = CacheManager()
        self.model = {}

    @rule(
        rdd=st.integers(0, 5),
        partition=st.integers(0, 3),
        host=st.sampled_from(["h0", "h1"]),
        size=st.floats(0, 100),
    )
    def put(self, rdd, partition, host, size):
        self.cache.put(rdd, partition, host, [rdd, partition], size)
        self.model.setdefault((rdd, partition), (host, size))

    @rule(rdd=st.integers(0, 5), partition=st.integers(0, 3))
    def lookup(self, rdd, partition):
        entry = self.cache.lookup(rdd, partition)
        expected = self.model.get((rdd, partition))
        if expected is None:
            assert entry is None
        else:
            assert entry is not None
            assert (entry.host, entry.size_bytes) == expected

    @rule(rdd=st.integers(0, 5))
    def evict(self, rdd):
        self.cache.evict_rdd(rdd)
        self.model = {
            key: value for key, value in self.model.items() if key[0] != rdd
        }

    @invariant()
    def counts_match(self):
        assert self.cache.entry_count == len(self.model)
        assert self.cache.cached_bytes() == pytest.approx(
            sum(size for _host, size in self.model.values())
        )


TestNameNodeStateful = NameNodeMachine.TestCase
TestNameNodeStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)

TestCacheStateful = CacheMachine.TestCase
TestCacheStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
