"""Parallel experiment harness: identical output to the sequential path.

Every (workload, scheme, seed) cell is an independent, seeded,
deterministic simulation, so fanning the matrix out over a process pool
must change *nothing* about the results — same ordering, same float
values, same derived figure statistics.  ``solver_seconds`` inside the
fabric perf counters is wall-clock time and is excluded from the
comparison; every other counter is deterministic and compared exactly.
"""

import dataclasses

import pytest

from repro.experiments.figures import fig7_job_completion_times
from repro.experiments.runner import (
    ExperimentPlan,
    clear_data_cache,
    run_matrix,
    run_matrix_parallel,
    run_matrix_sharded,
)
from repro.experiments.schemes import Scheme
from repro.failures.chaos import ChaosEvent, ChaosSchedule
from repro.workloads import workload_by_name


@pytest.fixture(autouse=True)
def _clean():
    clear_data_cache()
    yield
    clear_data_cache()


def _small_matrix(runner, **kwargs):
    plan = ExperimentPlan(seeds=(0, 1))
    workloads = [workload_by_name("wordcount")]
    schemes = [Scheme.SPARK, Scheme.AGGSHUFFLE]
    return runner(workloads, schemes, plan, **kwargs)


def _comparable(result):
    """RunResult as a dict minus the wall-clock perf field."""
    data = dataclasses.asdict(result)
    data["fabric_perf"] = {
        key: value
        for key, value in data["fabric_perf"].items()
        if key != "solver_seconds"
    }
    return data


def test_parallel_matrix_is_identical_to_sequential():
    sequential = _small_matrix(run_matrix)
    clear_data_cache()
    parallel = _small_matrix(run_matrix_parallel, jobs=2)
    assert len(sequential) == len(parallel)
    for seq, par in zip(sequential, parallel):
        assert _comparable(seq) == _comparable(par)
    # The derived figure statistics are byte-identical.
    assert repr(fig7_job_completion_times(sequential)) == repr(
        fig7_job_completion_times(parallel)
    )


def test_jobs_of_one_falls_back_to_sequential_runner():
    results = _small_matrix(run_matrix_parallel, jobs=1)
    assert len(results) == 4
    assert [r.scheme for r in results] == [
        Scheme.SPARK,
        Scheme.SPARK,
        Scheme.AGGSHUFFLE,
        Scheme.AGGSHUFFLE,
    ]
    assert [r.seed for r in results] == [0, 1, 0, 1]


def test_parallel_results_preserve_matrix_order():
    parallel = _small_matrix(run_matrix_parallel, jobs=2)
    assert [(r.workload, r.scheme, r.seed) for r in parallel] == [
        ("WordCount", Scheme.SPARK, 0),
        ("WordCount", Scheme.SPARK, 1),
        ("WordCount", Scheme.AGGSHUFFLE, 0),
        ("WordCount", Scheme.AGGSHUFFLE, 1),
    ]


# ---------------------------------------------------------------------------
# Sharded harness: contiguous shards + parent-side dataset generation
# ---------------------------------------------------------------------------
def test_sharded_matrix_is_identical_to_serial_and_parallel():
    sequential = _small_matrix(run_matrix)
    clear_data_cache()
    parallel = _small_matrix(run_matrix_parallel, jobs=2)
    clear_data_cache()
    sharded = _small_matrix(run_matrix_sharded, jobs=2)
    clear_data_cache()
    # An uneven shard split must not change anything either.
    sharded_odd = _small_matrix(run_matrix_sharded, jobs=2, shards=3)
    assert len(sequential) == len(parallel) == len(sharded) == len(sharded_odd)
    for seq, par, sha, odd in zip(sequential, parallel, sharded, sharded_odd):
        assert _comparable(seq) == _comparable(par)
        assert _comparable(seq) == _comparable(sha)
        assert _comparable(seq) == _comparable(odd)
    assert repr(fig7_job_completion_times(sequential)) == repr(
        fig7_job_completion_times(sharded)
    )


def test_sharded_jobs_of_one_runs_sequentially():
    results = _small_matrix(run_matrix_sharded, jobs=1)
    assert [(r.scheme, r.seed) for r in results] == [
        (Scheme.SPARK, 0),
        (Scheme.SPARK, 1),
        (Scheme.AGGSHUFFLE, 0),
        (Scheme.AGGSHUFFLE, 1),
    ]


def test_sharded_chaos_axis_expands_and_matches_sequential():
    """The chaos axis multiplies the matrix (scheme x chaos x seed) and
    stays byte-identical between the sequential and sharded paths."""
    degrade = ChaosSchedule(
        (
            ChaosEvent(
                at=1.0,
                kind="degrade",
                target="us-east-1->us-west-1",
                factor=0.5,
                duration=0.0,
            ),
        )
    )
    chaos_axis = [None, degrade]
    plan = ExperimentPlan(seeds=(0,))
    workloads = [workload_by_name("wordcount")]
    schemes = [Scheme.SPARK]
    sequential = run_matrix_sharded(
        workloads, schemes, plan, jobs=1, chaos=chaos_axis
    )
    clear_data_cache()
    sharded = run_matrix_sharded(
        workloads, schemes, plan, jobs=2, chaos=chaos_axis
    )
    assert len(sequential) == len(sharded) == 2
    for seq, sha in zip(sequential, sharded):
        assert _comparable(seq) == _comparable(sha)
    # The degrade variant actually fired its event.
    assert sequential[0].chaos_events_applied == 0
    assert sequential[1].chaos_events_applied == 1
