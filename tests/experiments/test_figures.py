"""Figure aggregation functions over synthetic RunResults."""

import pytest

from repro.experiments.figures import (
    fig7_job_completion_times,
    fig8_cross_dc_traffic,
    fig9_stage_breakdown,
    headline_numbers,
)
from repro.experiments.runner import RunResult, StageRecord
from repro.experiments.schemes import Scheme


def result(workload, scheme, seed, duration, traffic, stages=(), tags=None):
    return RunResult(
        workload=workload,
        scheme=scheme,
        seed=seed,
        duration=duration,
        job_duration=duration,
        centralize_duration=0.0,
        cross_dc_megabytes=traffic,
        total_megabytes=traffic,
        cross_dc_by_tag=tags or {},
        stages=list(stages),
    )


def synthetic_results():
    rows = []
    for seed in range(10):
        noise = seed * 0.5
        rows.append(result("Sort", Scheme.SPARK, seed, 100 + noise, 150))
        rows.append(result("Sort", Scheme.AGGSHUFFLE, seed, 60 + noise, 50))
        rows.append(
            result(
                "Sort", Scheme.CENTRALIZED, seed, 120 + noise, 400,
                tags={"centralize": 260.0},
            )
        )
    return rows


def test_fig7_summaries_have_expected_schemes():
    figure = fig7_job_completion_times(synthetic_results())
    assert set(figure["Sort"]) == {"Spark", "AggShuffle", "Centralized"}
    spark = figure["Sort"]["Spark"]
    assert spark.count == 10
    assert 100 <= spark.trimmed <= 105


def test_fig8_uses_centralize_tag_for_centralized():
    figure = fig8_cross_dc_traffic(synthetic_results())
    assert figure["Sort"]["Spark"] == pytest.approx(150.0)
    assert figure["Sort"]["AggShuffle"] == pytest.approx(50.0)
    # Paper semantics: Centralized bar = aggregation traffic only.
    assert figure["Sort"]["Centralized"] == pytest.approx(260.0)


def test_fig8_filters_to_requested_workloads():
    rows = synthetic_results() + [
        result("WordCount", Scheme.SPARK, 0, 10, 10)
    ]
    figure = fig8_cross_dc_traffic(rows)
    assert "WordCount" not in figure


def test_fig9_aggregates_stage_positions():
    stages_a = [
        StageRecord("s0", "shuffle_map", 0.0, 10.0),
        StageRecord("s1", "result", 10.0, 5.0),
    ]
    stages_b = [
        StageRecord("s0", "shuffle_map", 0.0, 14.0),
        StageRecord("s1", "result", 14.0, 7.0),
    ]
    rows = [
        result("Sort", Scheme.SPARK, 0, 15, 0, stages=stages_a),
        result("Sort", Scheme.SPARK, 1, 21, 0, stages=stages_b),
    ]
    figure = fig9_stage_breakdown(rows)
    spark_stages = figure["Sort"]["Spark"]
    assert len(spark_stages) == 2
    assert spark_stages[0].mean == pytest.approx(12.0)
    assert spark_stages[1].mean == pytest.approx(6.0)


def test_headline_numbers_reductions():
    headline = headline_numbers(synthetic_results())
    sort = headline["Sort"]
    assert sort["jct_reduction_pct"] == pytest.approx(40.0, abs=1.0)
    assert sort["traffic_reduction_pct"] == pytest.approx(66.7, abs=1.0)
    assert sort["spark_jct"] > sort["aggshuffle_jct"]


def test_headline_skips_incomplete_workloads():
    rows = [result("Lonely", Scheme.SPARK, 0, 10, 10)]
    assert headline_numbers(rows) == {}
