"""The Iridium-style input-redistribution baseline (extension)."""

import dataclasses

import pytest

from repro.experiments.iridium import (
    datacenter_bandwidth_scores,
    iridium_redistribute,
    plan_redistribution,
)
from repro.experiments.runner import (
    ExperimentPlan,
    clear_data_cache,
    run_workload_once,
)
from repro.experiments.schemes import Scheme
from repro.workloads import SORT, Sort
from tests.conftest import make_context, small_spec


@pytest.fixture(autouse=True)
def _clean():
    clear_data_cache()
    yield
    clear_data_cache()


def three_dc_context():
    return make_context(
        spec=small_spec(
            datacenters=("d1", "d2", "d3"), workers_per_datacenter=2
        )
    )


def test_bandwidth_scores_equal_on_homogeneous_cluster():
    context = three_dc_context()
    scores = datacenter_bandwidth_scores(context)
    values = list(scores.values())
    assert len(scores) == 3
    assert max(values) == pytest.approx(min(values))
    context.shutdown()


def test_plan_moves_surplus_blocks():
    context = three_dc_context()
    # All six blocks pinned to d1: two thirds must move away.
    context.write_input_file(
        "/in", [[i] for i in range(6)],
        placement_hosts=["d1-w0", "d1-w1"] * 3,
    )
    moves = plan_redistribution(context, "/in")
    assert len(moves) == 4
    destinations = {
        context.topology.datacenter_of(host) for _b, host in moves
    }
    assert destinations == {"d2", "d3"}
    context.shutdown()


def test_redistribution_balances_holdings():
    context = three_dc_context()
    context.write_input_file(
        "/in", [["x" * 50] for _ in range(6)],
        placement_hosts=["d1-w0", "d1-w1"] * 3,
    )
    elapsed = iridium_redistribute(context, "/in")
    assert elapsed > 0
    held = {"d1": 0, "d2": 0, "d3": 0}
    for block_id in context.dfs.file_blocks("/in"):
        dc = context.topology.datacenter_of(
            context.dfs.block_locations(block_id)[0]
        )
        held[dc] += 1
    assert held == {"d1": 2, "d2": 2, "d3": 2}
    assert context.traffic.cross_dc_by_tag["redistribute"] > 0
    context.shutdown()


def test_balanced_input_needs_no_moves():
    context = three_dc_context()
    context.write_input_file(
        "/in", [[1], [2], [3]],
        placement_hosts=["d1-w0", "d2-w0", "d3-w0"],
    )
    assert plan_redistribution(context, "/in") == []
    assert iridium_redistribute(context, "/in") == 0.0
    context.shutdown()


def test_iridium_scheme_runs_through_harness():
    plan = ExperimentPlan(
        cluster=small_spec(
            datacenters=("dc-a", "dc-b", "dc-c"), workers_per_datacenter=2
        ),
        seeds=(0,),
    )
    workload = Sort(spec=dataclasses.replace(
        SORT, input_partitions=6, records_per_partition=10
    ))
    result = run_workload_once(workload, Scheme.IRIDIUM, 0, plan)
    assert result.scheme is Scheme.IRIDIUM
    assert result.duration > 0
    # The redistribution phase appears as the first stage record.
    assert result.stages[0].name == "redistribute-input"


def test_records_survive_redistribution():
    context = three_dc_context()
    context.write_input_file(
        "/in", [[("k", i)] for i in range(6)],
        placement_hosts=["d1-w0", "d1-w1"] * 3,
    )
    iridium_redistribute(context, "/in")
    result = dict(
        context.text_file("/in").reduce_by_key(lambda a, b: a + b).collect()
    )
    assert result == {"k": sum(range(6))}
    context.shutdown()
