"""Seed plumbing for multi-tenant stream cells (#7, satellite).

A stream cell draws its whole job-arrival schedule from one seeded
``RandomSource`` child, so identical seeds must reproduce identical
schedules — and therefore byte-identical ``RunResult`` payloads
(tenants, stream summary, traffic, everything except the wall-clock
``solver_seconds`` counter) — no matter which runner executes the cell:
serial ``run_matrix``, the process-pool ``run_matrix_parallel``, or the
contiguous-shard ``run_matrix_sharded``.
"""

import dataclasses

import pytest

from repro.experiments.runner import (
    ExperimentPlan,
    clear_data_cache,
    run_matrix,
    run_matrix_parallel,
    run_matrix_sharded,
)
from repro.experiments.schemes import Scheme
from repro.workloads import workload_by_name
from repro.workloads.arrivals import (
    ArrivalSpec,
    StreamSpec,
    TenantSpec,
    generate_arrivals,
)
from repro.simulation.random_source import RandomSource
from tests.conftest import small_spec


@pytest.fixture(autouse=True)
def _clean():
    clear_data_cache()
    yield
    clear_data_cache()


def _stream_plan():
    return ExperimentPlan(
        cluster=small_spec(datacenters=("dc-a", "dc-b")),
        seeds=(0, 1),
        stream=StreamSpec(
            arrival=ArrivalSpec(
                process="poisson", rate_per_minute=120.0, num_jobs=6
            ),
            tenants=(
                TenantSpec("prod", weight=4.0, share=1.0),
                TenantSpec("batch", weight=1.0, share=2.0),
            ),
            policy="fair",
            max_concurrent=2,
        ),
    )


def _run(runner, **kwargs):
    workloads = [workload_by_name("wordcount")]
    return runner(workloads, [Scheme.SPARK], _stream_plan(), **kwargs)


def _comparable(result):
    """RunResult as a dict minus the wall-clock perf field."""
    data = dataclasses.asdict(result)
    data["fabric_perf"] = {
        key: value
        for key, value in data["fabric_perf"].items()
        if key != "solver_seconds"
    }
    return data


def test_arrival_schedules_reproduce_from_seed():
    spec = _stream_plan().stream
    datacenters = ("dc-a", "dc-b")
    first = generate_arrivals(spec, datacenters, RandomSource(7).child("s"))
    again = generate_arrivals(spec, datacenters, RandomSource(7).child("s"))
    assert first == again
    other = generate_arrivals(spec, datacenters, RandomSource(8).child("s"))
    assert first != other
    # Arrival times are strictly ordered and tenants all belong to spec.
    times = [a.arrival_time for a in first]
    assert times == sorted(times)
    assert {a.tenant for a in first} <= {"prod", "batch"}


def test_stream_cells_identical_across_runners():
    serial = _run(run_matrix)
    clear_data_cache()
    parallel = _run(run_matrix_parallel, jobs=2)
    clear_data_cache()
    sharded = _run(run_matrix_sharded, jobs=2)
    assert len(serial) == len(parallel) == len(sharded) == 2
    for seq, par, sha in zip(serial, parallel, sharded):
        assert _comparable(seq) == _comparable(par)
        assert _comparable(seq) == _comparable(sha)
    # The stream actually ran: every job completed, tenants populated.
    for result in serial:
        assert result.stream["jobs_completed"] == 6
        assert set(result.tenants) == {"prod", "batch"}
        for row in result.tenants.values():
            assert row["bytes"] == row["monitor_bytes"]
            assert row["wan_bytes"] == row["monitor_wan_bytes"]
    # Different seeds draw different schedules -> different outcomes.
    assert _comparable(serial[0]) != _comparable(serial[1])
