"""Placement, centralization, schemes, and the run matrix."""

import dataclasses

import pytest

from repro.cluster.builder import ec2_six_region_spec
from repro.experiments.centralize import centralize_input
from repro.experiments.placement import (
    single_datacenter_placement,
    skewed_block_placement,
    uniform_block_placement,
)
from repro.experiments.runner import (
    ExperimentPlan,
    clear_data_cache,
    generated_input,
    run_workload_once,
)
from repro.experiments.schemes import Scheme, config_for_scheme
from repro.simulation import RandomSource
from repro.workloads import SORT, Sort, WORDCOUNT
from tests.conftest import make_context, small_spec


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------
def test_skewed_placement_favours_hot_datacenter():
    spec = ec2_six_region_spec()
    hosts = skewed_block_placement(
        spec, RandomSource(0), num_blocks=600, hot_weight=8.0
    )
    hot = sum(1 for host in hosts if host.startswith("us-east-1"))
    # Expected share 8/13 ~ 0.615.
    assert 0.5 < hot / 600 < 0.75


def test_skewed_placement_deterministic():
    spec = ec2_six_region_spec()
    a = skewed_block_placement(spec, RandomSource(5), 50)
    b = skewed_block_placement(spec, RandomSource(5), 50)
    assert a == b


def test_skewed_placement_round_robins_hosts_within_dc():
    spec = ec2_six_region_spec()
    hosts = skewed_block_placement(spec, RandomSource(1), 200)
    east = [h for h in hosts if h.startswith("us-east-1")]
    # All four workers used.
    assert len({h for h in east}) == 4


def test_skewed_placement_validation():
    spec = ec2_six_region_spec()
    with pytest.raises(ValueError):
        skewed_block_placement(spec, RandomSource(0), 0)
    with pytest.raises(ValueError):
        skewed_block_placement(spec, RandomSource(0), 5, hot_weight=0.5)


def test_uniform_and_single_dc_placements():
    spec = ec2_six_region_spec()
    uniform = uniform_block_placement(spec, 24)
    assert len(set(uniform)) == 24
    pinned = single_datacenter_placement(spec, 8, "sa-east-1")
    assert all(h.startswith("sa-east-1") for h in pinned)


# ----------------------------------------------------------------------
# Centralize
# ----------------------------------------------------------------------
def test_centralize_moves_all_blocks_to_destination():
    context = make_context()
    context.write_input_file(
        "/in", [[1], [2], [3], [4]],
        placement_hosts=["dc-a-w0", "dc-b-w0", "dc-b-w1", "dc-a-w1"],
    )
    elapsed = centralize_input(context, "/in", "dc-a")
    assert elapsed > 0
    for block_id in context.dfs.file_blocks("/in"):
        host = context.dfs.block_locations(block_id)[0]
        assert context.topology.datacenter_of(host) == "dc-a"
    # Records survive the relocation.
    records = sorted(
        record
        for block_id in context.dfs.file_blocks("/in")
        for record in context.dfs.read_block(block_id).records
    )
    assert records == [1, 2, 3, 4]
    assert context.traffic.cross_dc_by_tag["centralize"] > 0
    context.shutdown()


def test_centralize_local_blocks_stay_put():
    context = make_context()
    context.write_input_file(
        "/in", [[1]], placement_hosts=["dc-a-w0"]
    )
    centralize_input(context, "/in", "dc-a")
    assert context.traffic.cross_dc_by_tag.get("centralize", 0.0) == 0.0
    host = context.dfs.block_locations(context.dfs.file_blocks("/in")[0])[0]
    assert host == "dc-a-w0"
    context.shutdown()


def test_centralize_unknown_datacenter_rejected():
    context = make_context()
    context.write_input_file("/in", [[1]])
    with pytest.raises(Exception):
        centralize_input(context, "/in", "nowhere")
    context.shutdown()


# ----------------------------------------------------------------------
# Schemes and runner
# ----------------------------------------------------------------------
def test_scheme_configs():
    for scheme in Scheme:
        config = config_for_scheme(scheme, WORDCOUNT, seed=3)
        assert config.seed == 3
        assert config.cost.cpu_bytes_per_second == (
            WORDCOUNT.cpu_bytes_per_second
        )
        if scheme is Scheme.AGGSHUFFLE:
            assert config.shuffle.push_based
            assert config.shuffle.auto_aggregate
        else:
            assert not config.shuffle.push_based


def test_generated_input_cached_per_workload_and_seed():
    clear_data_cache()
    workload = Sort(spec=dataclasses.replace(
        SORT, input_partitions=4, records_per_partition=3
    ))
    first = generated_input(workload, 1)
    second = generated_input(workload, 1)
    assert first is second
    different = generated_input(workload, 2)
    assert different is not first
    clear_data_cache()


def small_plan(seeds=(0,)):
    return ExperimentPlan(
        cluster=small_spec(
            datacenters=("dc-a", "dc-b", "dc-c"),
            workers_per_datacenter=2,
        ),
        seeds=seeds,
    )


def small_sort():
    return Sort(spec=dataclasses.replace(
        SORT, input_partitions=6, records_per_partition=10
    ))


def test_run_workload_once_returns_complete_result():
    clear_data_cache()
    result = run_workload_once(small_sort(), Scheme.SPARK, 0, small_plan())
    assert result.workload == "Sort"
    assert result.scheme is Scheme.SPARK
    assert result.duration > 0
    assert result.stages
    assert result.centralize_duration == 0.0
    clear_data_cache()


def test_centralized_run_includes_centralize_stage():
    clear_data_cache()
    result = run_workload_once(
        small_sort(), Scheme.CENTRALIZED, 0, small_plan()
    )
    assert result.centralize_duration > 0
    assert result.stages[0].name == "centralize-input"
    clear_data_cache()


def test_runs_are_deterministic():
    clear_data_cache()
    a = run_workload_once(small_sort(), Scheme.AGGSHUFFLE, 0, small_plan())
    b = run_workload_once(small_sort(), Scheme.AGGSHUFFLE, 0, small_plan())
    assert a.duration == b.duration
    assert a.cross_dc_megabytes == b.cross_dc_megabytes
    clear_data_cache()


def test_seeds_vary_results():
    clear_data_cache()
    a = run_workload_once(small_sort(), Scheme.SPARK, 0, small_plan())
    b = run_workload_once(small_sort(), Scheme.SPARK, 1, small_plan())
    assert a.duration != b.duration
    clear_data_cache()
