"""Fig. 1 and Fig. 2 motivating timelines, reproduced exactly.

The paper's numbers (§III-A): mappers finish at t=4 and t=8, the WAN
link has 1/4 the datacenter capacity, fetch-based transfers start when
stage N+1 begins (t=10) and share the link until t=18; pushed transfers
start at t=4 / t=8 and finish by t=12, letting reducers start at t=14
instead of t=18.
"""

import pytest

from repro.experiments.motivation import (
    fetch_failure_recovery,
    fetch_timeline,
    push_failure_recovery,
    push_timeline,
)


def test_fig1a_fetch_transfers_start_after_barrier():
    timeline = fetch_timeline()
    assert timeline.transfer_starts == [10.0, 10.0]


def test_fig1a_fetch_shared_link_finishes_at_18():
    timeline = fetch_timeline()
    assert timeline.shuffle_input_ready == pytest.approx(18.0)
    assert timeline.reduce_start == pytest.approx(18.0)


def test_fig1b_push_transfers_start_at_map_completion():
    timeline = push_timeline()
    assert timeline.transfer_starts == [4.0, 8.0]


def test_fig1b_push_transfers_finish_by_12():
    timeline = push_timeline()
    assert timeline.transfer_ends == [
        pytest.approx(8.0), pytest.approx(12.0),
    ]


def test_fig1_reducers_start_at_14_vs_18():
    """The headline of Fig. 1: reducers start 4 time units earlier."""
    fetch = fetch_timeline()
    push = push_timeline()
    assert push.reduce_start == pytest.approx(14.0)
    assert fetch.reduce_start == pytest.approx(18.0)
    assert fetch.reduce_start - push.reduce_start == pytest.approx(4.0)


def test_fig1_push_finishes_job_earlier():
    assert push_timeline().reduce_end < fetch_timeline().reduce_end


def test_fig2_fetch_recovery_pays_wan_refetch():
    recovery = fetch_failure_recovery()
    # Re-reading one unit over the 1/4-capacity WAN link takes 4 s.
    assert recovery.recovery_read_seconds == pytest.approx(4.0)


def test_fig2_push_recovery_reads_locally():
    recovery = push_failure_recovery()
    assert recovery.recovery_read_seconds < 1.0


def test_fig2_push_recovers_sooner():
    fetch = fetch_failure_recovery()
    push = push_failure_recovery()
    assert push.recovered_at < fetch.recovered_at
    saved = (
        fetch.recovery_read_seconds - push.recovery_read_seconds
    )
    assert saved == pytest.approx(3.5)
