"""NetworkFabric: flow timing under sharing, caps, and capacity changes."""

import pytest

from repro.network.fabric import NetworkFabric, ideal_transfer_time
from repro.network.topology import GBPS, MBPS, Topology
from repro.simulation import Simulator


def build(latency=0.0, wan_mbps=100, gateways=None, flow_cap=None):
    sim = Simulator()
    topo = Topology()
    topo.add_datacenter("A")
    topo.add_datacenter("B")
    for name in ("a1", "a2"):
        topo.add_host(name, "A", access_bandwidth=GBPS, access_latency=0.0)
    for name in ("b1", "b2"):
        topo.add_host(name, "B", access_bandwidth=GBPS, access_latency=0.0)
    topo.connect_datacenters("A", "B", wan_mbps * MBPS, latency=latency)
    if gateways is not None:
        topo.set_gateway("A", gateways * MBPS)
        topo.set_gateway("B", gateways * MBPS)
    fabric = NetworkFabric(sim, topo, wan_flow_cap=flow_cap)
    return sim, topo, fabric


def run_transfers(sim, fabric, transfers):
    """Start transfers (src, dst, size, start_time); return finish times."""
    finished = {}

    def one(sim, index, src, dst, size, start):
        if start > 0:
            yield sim.timeout(start)
        yield fabric.transfer(src, dst, size)
        finished[index] = sim.now

    for index, spec in enumerate(transfers):
        sim.spawn(one(sim, index, *spec))
    sim.run()
    return finished


def test_single_flow_duration_is_size_over_bottleneck():
    sim, _topo, fabric = build(wan_mbps=100)  # 12.5 MB/s
    finished = run_transfers(sim, fabric, [("a1", "b1", 12_500_000, 0.0)])
    assert finished[0] == pytest.approx(1.0)


def test_two_flows_share_wan_link_fairly():
    sim, _topo, fabric = build(wan_mbps=100)
    finished = run_transfers(
        sim, fabric,
        [("a1", "b1", 12_500_000, 0.0), ("a2", "b2", 12_500_000, 0.0)],
    )
    assert finished[0] == pytest.approx(2.0)
    assert finished[1] == pytest.approx(2.0)


def test_staggered_flows_speed_up_after_departure():
    """Flow 2 starts halfway through flow 1's solo run."""
    sim, _topo, fabric = build(wan_mbps=100)
    finished = run_transfers(
        sim, fabric,
        [("a1", "b1", 12_500_000, 0.0), ("a2", "b2", 12_500_000, 0.5)],
    )
    # Flow 1: solo 0.5s (6.25MB), then shares; both drain together.
    assert finished[0] == pytest.approx(1.5, rel=1e-3)
    assert finished[1] == pytest.approx(2.0, rel=1e-3)


def test_intra_dc_transfer_uses_full_access_bandwidth():
    sim, _topo, fabric = build()
    finished = run_transfers(sim, fabric, [("a1", "a2", 125_000_000, 0.0)])
    assert finished[0] == pytest.approx(1.0)  # 1 Gbps = 125 MB/s


def test_same_host_transfer_completes_immediately():
    sim, _topo, fabric = build()
    finished = run_transfers(sim, fabric, [("a1", "a1", 1e9, 0.0)])
    assert finished[0] == pytest.approx(0.0)


def test_zero_byte_transfer_costs_latency_only():
    sim, _topo, fabric = build(latency=0.2)
    finished = run_transfers(sim, fabric, [("a1", "b1", 0.0, 0.0)])
    assert finished[0] == pytest.approx(0.2)


def test_latency_added_to_transfer_time():
    sim, _topo, fabric = build(latency=0.1, wan_mbps=100)
    finished = run_transfers(sim, fabric, [("a1", "b1", 12_500_000, 0.0)])
    assert finished[0] == pytest.approx(1.1)


def test_negative_size_rejected():
    sim, _topo, fabric = build()
    with pytest.raises(ValueError):
        fabric.transfer("a1", "b1", -1.0)


def test_gateway_limits_aggregate_ingress():
    """Two flows from different sources into one DC share its gateway."""
    sim, _topo, fabric = build(wan_mbps=1000, gateways=100)
    finished = run_transfers(
        sim, fabric,
        [("a1", "b1", 12_500_000, 0.0), ("a2", "b2", 12_500_000, 0.0)],
    )
    # Gateway 100 Mbps shared: 25 MB over 12.5 MB/s = 2 s.
    assert finished[0] == pytest.approx(2.0)


def test_wan_flow_cap_limits_single_flow():
    sim, _topo, fabric = build(wan_mbps=1000, flow_cap=25 * MBPS)
    finished = run_transfers(sim, fabric, [("a1", "b1", 12_500_000, 0.0)])
    # Capped at 25 Mbps = 3.125 MB/s -> 4 s despite the fast link.
    assert finished[0] == pytest.approx(4.0)


def test_wan_flow_cap_ignores_intra_dc_flows():
    sim, _topo, fabric = build(flow_cap=1 * MBPS)
    finished = run_transfers(sim, fabric, [("a1", "a2", 125_000_000, 0.0)])
    assert finished[0] == pytest.approx(1.0)


def test_capacity_change_midway_adjusts_rate():
    sim, topo, fabric = build(wan_mbps=100)

    def scenario(sim):
        done = fabric.transfer("a1", "b1", 25_000_000)  # 2s at 12.5MB/s
        yield sim.timeout(1.0)
        topo.wan_link("A", "B").set_capacity(200 * MBPS)
        fabric.notify_capacity_change()
        yield done
        return sim.now

    # First second moves 12.5 MB; remaining 12.5 MB at 25 MB/s = 0.5 s.
    assert sim.run_process(scenario(sim)) == pytest.approx(1.5)


def test_traffic_recorded_per_datacenter_pair():
    sim, _topo, fabric = build()
    run_transfers(
        sim, fabric,
        [("a1", "b1", 1000.0, 0.0), ("a1", "a2", 500.0, 0.0)],
    )
    monitor = fabric.monitor
    assert monitor.total_bytes == pytest.approx(1500.0)
    assert monitor.cross_dc_bytes == pytest.approx(1000.0)
    assert monitor.by_pair[("A", "B")] == pytest.approx(1000.0)
    assert monitor.by_pair[("A", "A")] == pytest.approx(500.0)


def test_many_small_flows_complete():
    sim, _topo, fabric = build(wan_mbps=100)
    transfers = [("a1", "b1", 100_000.0, i * 0.01) for i in range(50)]
    finished = run_transfers(sim, fabric, transfers)
    assert len(finished) == 50
    assert fabric.active_flow_count == 0


def test_completed_flow_records_kept():
    sim, _topo, fabric = build()
    run_transfers(sim, fabric, [("a1", "b1", 1000.0, 0.0)])
    assert len(fabric.completed_flows) == 1
    flow = fabric.completed_flows[0]
    assert flow.src_host == "a1"
    assert flow.finished_at is not None


def test_ideal_transfer_time_lower_bound():
    _sim, topo, _fabric = build(latency=0.1, wan_mbps=100)
    ideal = ideal_transfer_time(topo, "a1", "b1", 12_500_000)
    assert ideal == pytest.approx(1.1)
