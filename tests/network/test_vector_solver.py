"""Vectorized solver vs. the scalar oracle, and duplicate-link semantics.

The numpy CSR kernel in :mod:`repro.network.vector_solver` must agree
with the scalar progressive-filling solver to 1e-9 relative on arbitrary
topologies — including routes that traverse the same link twice, flows
with empty (unconstrained, ``inf``) routes, and degenerate single-link
meshes.  The scalar solver is the oracle; these tests are the contract
that lets the fabric's vector drive trust the kernel.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.fair_share import max_min_fair_rates, verify_allocation
from repro.network.incremental import IncrementalFairShare
from repro.network.topology import Link
from repro.network.vector_solver import max_min_fair_rates_numpy


def _assert_rates_match(scalar, vectorized, rel=1e-9):
    assert scalar.keys() == vectorized.keys()
    for flow_id, expected in scalar.items():
        got = vectorized[flow_id]
        if math.isinf(expected):
            assert math.isinf(got), f"{flow_id}: {got} != inf"
        else:
            assert got == pytest.approx(expected, rel=rel, abs=1e-9), (
                f"{flow_id}: vectorized {got} != scalar {expected}"
            )


# ----------------------------------------------------------------------
# Exact cases
# ----------------------------------------------------------------------
def test_matches_classic_three_flow_example():
    flows = {"f1": ["a", "b"], "f2": ["a"], "f3": ["b"]}
    links = {"a": 10.0, "b": 4.0}
    _assert_rates_match(
        max_min_fair_rates(flows, links),
        max_min_fair_rates_numpy(flows, links),
    )


def test_empty_route_is_infinite():
    rates = max_min_fair_rates_numpy({"free": [], "pinned": ["l"]}, {"l": 8.0})
    assert math.isinf(rates["free"])
    assert rates["pinned"] == pytest.approx(8.0)


def test_all_empty_routes():
    rates = max_min_fair_rates_numpy({"a": [], "b": []}, {})
    assert math.isinf(rates["a"]) and math.isinf(rates["b"])


def test_no_flows():
    assert max_min_fair_rates_numpy({}, {"l": 1.0}) == {}


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        max_min_fair_rates_numpy({"f": ["l"]}, {"l": 0.0})


def test_duplicate_link_consumes_capacity_twice():
    """A route crossing the same link twice gets half the solo rate and
    both solvers agree — the multi-traversal semantics documented in
    fair_share."""
    flows = {"relay": ["wan", "wan"], "plain": ["wan"]}
    links = {"wan": 9.0}
    scalar = max_min_fair_rates(flows, links)
    # Filling raises both at share s until 2s + s = 9 -> s = 3.
    assert scalar["relay"] == pytest.approx(3.0)
    assert scalar["plain"] == pytest.approx(3.0)
    _assert_rates_match(scalar, max_min_fair_rates_numpy(flows, links))
    # verify_allocation charges per occurrence, so the solution it sees
    # exactly fills the link.
    verify_allocation(flows, links, scalar)


# ----------------------------------------------------------------------
# Property-based equivalence (the oracle contract)
# ----------------------------------------------------------------------
@st.composite
def _scenarios(draw):
    """Random topologies with duplicate-link routes and inf-route flows."""
    num_links = draw(st.integers(min_value=1, max_value=7))
    links = {f"l{i}": draw(st.floats(0.5, 100.0)) for i in range(num_links)}
    num_flows = draw(st.integers(min_value=0, max_value=10))
    flows = {}
    for i in range(num_flows):
        route = draw(
            st.lists(
                st.sampled_from(sorted(links)),
                min_size=0,  # empty -> unconstrained (inf)
                max_size=num_links + 2,  # > num_links forces duplicates
            )
        )
        flows[f"f{i}"] = route
    return flows, links


@given(_scenarios())
@settings(max_examples=300, deadline=None)
def test_vectorized_matches_scalar_oracle(scenario):
    flows, links = scenario
    _assert_rates_match(
        max_min_fair_rates(flows, links),
        max_min_fair_rates_numpy(flows, links),
    )


@given(_scenarios())
@settings(max_examples=150, deadline=None)
def test_vectorized_allocation_is_feasible(scenario):
    flows, links = scenario
    constrained = {f: r for f, r in flows.items() if r}
    rates = max_min_fair_rates_numpy(flows, links)
    if constrained:
        verify_allocation(
            constrained,
            {l: c for l, c in links.items()},
            {f: rates[f] for f in constrained},
        )


# ----------------------------------------------------------------------
# Duplicate links through the incremental engine (regression: the old
# remove_flow raised KeyError unwinding the second occurrence)
# ----------------------------------------------------------------------
def test_incremental_engine_handles_duplicate_links():
    engine = IncrementalFairShare()
    wan = Link("wan", 10.0, is_wan=True)
    side = Link("side", 50.0)
    engine.add_flow(1, [wan, side, wan])
    engine.add_flow(2, [wan])
    engine.solve({1, 2})
    scalar = max_min_fair_rates(*engine.solver_inputs())
    assert engine.rate(1) == pytest.approx(scalar[1])
    assert engine.rate(2) == pytest.approx(scalar[2])
    # 2*r1 + r2 = 10 with r1 = r2 -> both 10/3.
    assert engine.rate(1) == pytest.approx(10.0 / 3.0)
    engine.remove_flow(1)  # must not KeyError on the repeated link
    engine.solve({2})
    assert engine.rate(2) == pytest.approx(10.0)
    engine.remove_flow(2)
    assert engine.flow_count == 0
