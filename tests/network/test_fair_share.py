"""Max-min fair allocation: exact cases plus property-based checks."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.fair_share import max_min_fair_rates, verify_allocation


def test_single_flow_gets_bottleneck():
    rates = max_min_fair_rates({"f": ["a", "b"]}, {"a": 10.0, "b": 4.0})
    assert rates["f"] == pytest.approx(4.0)


def test_two_flows_share_one_link_equally():
    rates = max_min_fair_rates(
        {"f1": ["l"], "f2": ["l"]}, {"l": 10.0}
    )
    assert rates["f1"] == pytest.approx(5.0)
    assert rates["f2"] == pytest.approx(5.0)


def test_unconstrained_flow_is_infinite():
    rates = max_min_fair_rates({"free": []}, {})
    assert math.isinf(rates["free"])


def test_classic_three_flow_example():
    """f1 crosses both links, f2 only link a, f3 only link b.

    Link a capacity 10, link b capacity 4: filling freezes f1 and f3 at
    2 on link b; f2 then takes the rest of link a (8).
    """
    rates = max_min_fair_rates(
        {"f1": ["a", "b"], "f2": ["a"], "f3": ["b"]},
        {"a": 10.0, "b": 4.0},
    )
    assert rates["f1"] == pytest.approx(2.0)
    assert rates["f3"] == pytest.approx(2.0)
    assert rates["f2"] == pytest.approx(8.0)


def test_asymmetric_shares_follow_bottlenecks():
    rates = max_min_fair_rates(
        {"long": ["thin", "fat"], "short": ["fat"]},
        {"thin": 1.0, "fat": 100.0},
    )
    assert rates["long"] == pytest.approx(1.0)
    assert rates["short"] == pytest.approx(99.0)


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        max_min_fair_rates({"f": ["l"]}, {"l": 0.0})


def test_equal_flows_get_equal_rates():
    flows = {f"f{i}": ["shared"] for i in range(7)}
    rates = max_min_fair_rates(flows, {"shared": 7.0})
    for rate in rates.values():
        assert rate == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Property-based checks
# ----------------------------------------------------------------------
@st.composite
def _scenarios(draw):
    num_links = draw(st.integers(min_value=1, max_value=6))
    links = {f"l{i}": draw(st.floats(0.5, 100.0)) for i in range(num_links)}
    num_flows = draw(st.integers(min_value=1, max_value=8))
    flows = {}
    for i in range(num_flows):
        route = draw(
            st.lists(
                st.sampled_from(sorted(links)),
                min_size=1,
                max_size=num_links,
                unique=True,
            )
        )
        flows[f"f{i}"] = route
    return flows, links


@given(_scenarios())
@settings(max_examples=200, deadline=None)
def test_allocation_is_feasible_and_work_conserving(scenario):
    flows, links = scenario
    rates = max_min_fair_rates(flows, links)
    # verify_allocation asserts: no link overcommitted, and every flow
    # is bottlenecked at a saturated link (work conservation).
    verify_allocation(flows, links, rates)


@given(_scenarios())
@settings(max_examples=200, deadline=None)
def test_rates_are_positive(scenario):
    flows, links = scenario
    rates = max_min_fair_rates(flows, links)
    for flow_id in flows:
        assert rates[flow_id] > 0


@given(_scenarios())
@settings(max_examples=100, deadline=None)
def test_max_min_fairness_property(scenario):
    """No flow can be raised without lowering an equal-or-smaller flow.

    Equivalent check: for every flow there is a saturated link on its
    route where it has the (weakly) largest rate among crossing flows.
    """
    flows, links = scenario
    rates = max_min_fair_rates(flows, links)
    usage = {link: 0.0 for link in links}
    for flow_id, route in flows.items():
        for link in route:
            usage[link] += rates[flow_id]
    for flow_id, route in flows.items():
        has_witness = False
        for link in route:
            saturated = usage[link] >= links[link] * (1 - 1e-6)
            if not saturated:
                continue
            crossing = [f for f, r in flows.items() if link in r]
            if all(rates[flow_id] >= rates[other] - 1e-6 for other in crossing):
                has_witness = True
                break
        assert has_witness, f"{flow_id} could be raised"


@given(st.integers(min_value=1, max_value=20), st.floats(1.0, 1000.0))
def test_n_identical_flows_split_evenly(n, capacity):
    flows = {i: ["link"] for i in range(n)}
    rates = max_min_fair_rates(flows, {"link": capacity})
    for rate in rates.values():
        assert rate == pytest.approx(capacity / n, rel=1e-6)
