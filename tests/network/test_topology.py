"""Topology: construction, routes, gateways, and validation."""

import pytest

from repro.errors import ConfigurationError, NoRouteError, UnknownHostError
from repro.network.topology import GBPS, MBPS, Link, Topology


def build_two_dc() -> Topology:
    topo = Topology()
    topo.add_datacenter("east")
    topo.add_datacenter("west")
    topo.add_host("e1", "east")
    topo.add_host("e2", "east")
    topo.add_host("w1", "west")
    topo.connect_datacenters("east", "west", 100 * MBPS, latency=0.05)
    return topo


def test_same_host_route_is_empty():
    topo = build_two_dc()
    assert topo.route("e1", "e1") == []


def test_intra_dc_route_uses_access_links():
    topo = build_two_dc()
    route = topo.route("e1", "e2")
    assert [link.name for link in route] == ["e1:up", "e2:down"]


def test_cross_dc_route_includes_wan_link():
    topo = build_two_dc()
    names = [link.name for link in topo.route("e1", "w1")]
    assert names == ["e1:up", "wan:east->west", "w1:down"]


def test_cross_dc_route_with_gateways():
    topo = build_two_dc()
    topo.set_gateway("east", 200 * MBPS)
    topo.set_gateway("west", 200 * MBPS)
    names = [link.name for link in topo.route("e1", "w1")]
    assert names == [
        "e1:up", "gw:east:out", "wan:east->west", "gw:west:in", "w1:down",
    ]


def test_wan_links_are_directional_pairs():
    topo = build_two_dc()
    forward = topo.wan_link("east", "west")
    backward = topo.wan_link("west", "east")
    assert forward is not backward
    assert forward.is_wan and backward.is_wan


def test_route_latency_sums_links():
    topo = build_two_dc()
    latency = topo.route_latency("e1", "w1")
    assert latency == pytest.approx(0.05 + 2 * 0.0005)


def test_is_cross_datacenter():
    topo = build_two_dc()
    assert topo.is_cross_datacenter("e1", "w1")
    assert not topo.is_cross_datacenter("e1", "e2")


def test_unknown_host_raises():
    topo = build_two_dc()
    with pytest.raises(UnknownHostError):
        topo.host("nope")
    with pytest.raises(UnknownHostError):
        topo.hosts_in("nope")


def test_missing_wan_link_raises():
    topo = Topology()
    topo.add_datacenter("a")
    topo.add_datacenter("b")
    topo.add_host("a1", "a")
    topo.add_host("b1", "b")
    with pytest.raises(NoRouteError):
        topo.route("a1", "b1")


def test_validate_detects_missing_links_and_empty_dcs():
    topo = Topology()
    topo.add_datacenter("a")
    topo.add_datacenter("b")
    topo.add_host("a1", "a")
    topo.add_host("b1", "b")
    with pytest.raises(ConfigurationError):
        topo.validate()
    topo.connect_datacenters("a", "b", 1 * GBPS)
    topo.validate()
    topo.add_datacenter("empty")
    topo.connect_datacenters("a", "empty", 1 * GBPS)
    topo.connect_datacenters("b", "empty", 1 * GBPS)
    with pytest.raises(ConfigurationError):
        topo.validate()


def test_duplicate_names_rejected():
    topo = Topology()
    topo.add_datacenter("a")
    with pytest.raises(ConfigurationError):
        topo.add_datacenter("a")
    topo.add_host("h", "a")
    with pytest.raises(ConfigurationError):
        topo.add_host("h", "a")


def test_self_connection_rejected():
    topo = Topology()
    topo.add_datacenter("a")
    with pytest.raises(ConfigurationError):
        topo.connect_datacenters("a", "a", 1 * GBPS)


def test_link_capacity_validation():
    with pytest.raises(ConfigurationError):
        Link("bad", capacity=0)
    with pytest.raises(ConfigurationError):
        Link("bad", capacity=10, latency=-1)
    link = Link("ok", capacity=10)
    with pytest.raises(ConfigurationError):
        link.set_capacity(-5)
    link.set_capacity(20)
    assert link.capacity == 20
    assert link.base_capacity == 10


def test_route_is_memoized_per_host_pair():
    topo = build_two_dc()
    first = topo.route("e1", "w1")
    second = topo.route("e1", "w1")
    assert first is second  # same cached object
    assert topo.route_cache_misses == 1
    assert topo.route_cache_hits == 1


def test_route_cache_invalidated_by_construction():
    topo = build_two_dc()
    cached = topo.route("e1", "e2")
    topo.add_host("e3", "east")
    fresh = topo.route("e1", "e2")
    assert fresh is not cached
    assert [link.name for link in fresh] == [link.name for link in cached]
    topo.set_gateway("east", 100 * MBPS)
    assert topo.route("e1", "w1")[1].name == "gw:east:out"


def test_route_cache_preserves_capacity_mutations():
    """Jitter mutates Link objects in place; cached routes must see it."""
    topo = build_two_dc()
    route = topo.route("e1", "w1")
    topo.wan_link("east", "west").set_capacity(42 * MBPS)
    wan = [link for link in topo.route("e1", "w1") if link.is_wan][0]
    assert wan.capacity == 42 * MBPS
    assert topo.route("e1", "w1") is route
