"""Weighted max-min fair share: all three solvers must agree to 1e-9.

Per-tenant WAN quotas make every flow carry a weight; the scalar
progressive-filling oracle, the incremental engine, and the numpy CSR
kernel (and the cascade plans built on it) all thread weights through
their fill loops.  These tests pin the semantics — rate ratios follow
weight ratios on shared bottlenecks, duplicate-link routes charge per
occurrence times weight — and the equivalence contract on random
topologies with random non-uniform weights.

Also the byte-identity guarantee: unit weights (or no weights) must
take the *exact* unweighted code path, so pre-refactor single-job runs
reproduce bit-for-bit.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.fabric import NetworkFabric
from repro.network.fair_share import max_min_fair_rates, verify_allocation
from repro.network.incremental import IncrementalFairShare
from repro.network.topology import GBPS, MBPS, Link, Topology
from repro.network.vector_solver import max_min_fair_rates_numpy
from repro.simulation import Simulator


def _assert_rates_match(scalar, vectorized, rel=1e-9):
    assert scalar.keys() == vectorized.keys()
    for flow_id, expected in scalar.items():
        got = vectorized[flow_id]
        if math.isinf(expected):
            assert math.isinf(got), f"{flow_id}: {got} != inf"
        else:
            assert got == pytest.approx(expected, rel=rel, abs=1e-9), (
                f"{flow_id}: vectorized {got} != scalar {expected}"
            )


# ----------------------------------------------------------------------
# Exact semantics
# ----------------------------------------------------------------------
def test_weights_split_a_shared_bottleneck():
    """Two flows, weights 2:1, one 9-unit link -> rates 6 and 3."""
    flows = {"heavy": ["wan"], "light": ["wan"]}
    links = {"wan": 9.0}
    weights = {"heavy": 2.0, "light": 1.0}
    rates = max_min_fair_rates(flows, links, flow_weights=weights)
    assert rates["heavy"] == pytest.approx(6.0)
    assert rates["light"] == pytest.approx(3.0)
    _assert_rates_match(
        rates, max_min_fair_rates_numpy(flows, links, flow_weights=weights)
    )


def test_weighted_duplicate_link_charges_per_occurrence():
    """A twice-crossing route consumes 2 x weight x level on the link."""
    flows = {"relay": ["wan", "wan"], "plain": ["wan"]}
    links = {"wan": 10.0}
    weights = {"relay": 2.0, "plain": 1.0}
    rates = max_min_fair_rates(flows, links, flow_weights=weights)
    # Level h: relay draws 2h, crossing twice -> 4h + 1h = 10 -> h = 2.
    assert rates["relay"] == pytest.approx(4.0)
    assert rates["plain"] == pytest.approx(2.0)
    verify_allocation(flows, links, rates)
    _assert_rates_match(
        rates, max_min_fair_rates_numpy(flows, links, flow_weights=weights)
    )


def test_weighted_empty_route_is_infinite():
    rates = max_min_fair_rates(
        {"free": [], "pinned": ["l"]},
        {"l": 8.0},
        flow_weights={"free": 3.0, "pinned": 2.0},
    )
    assert math.isinf(rates["free"])
    assert rates["pinned"] == pytest.approx(8.0)


def test_nonpositive_weight_rejected():
    for bad in (0.0, -1.0):
        with pytest.raises(ValueError):
            max_min_fair_rates(
                {"f": ["l"]}, {"l": 1.0}, flow_weights={"f": bad}
            )
        with pytest.raises(ValueError):
            max_min_fair_rates_numpy(
                {"f": ["l"]}, {"l": 1.0}, flow_weights={"f": bad}
            )


def test_unit_weights_are_byte_identical_to_unweighted():
    """weights absent, None, or all 1.0 -> the exact unweighted result."""
    flows = {"f1": ["a", "b"], "f2": ["a"], "f3": ["b", "b"], "f4": []}
    links = {"a": 10.0, "b": 4.0}
    baseline = max_min_fair_rates(flows, links)
    unit = max_min_fair_rates(
        flows, links, flow_weights={f: 1.0 for f in flows}
    )
    assert unit == baseline or all(
        unit[f] == baseline[f] or (math.isinf(unit[f]) and math.isinf(baseline[f]))
        for f in flows
    )
    assert max_min_fair_rates(flows, links, flow_weights=None) == baseline


def test_equal_weights_match_unweighted_shape():
    """Uniform non-1 weights rescale nothing: max-min is scale-free."""
    flows = {"f1": ["a", "b"], "f2": ["a"], "f3": ["b"]}
    links = {"a": 10.0, "b": 4.0}
    _assert_rates_match(
        max_min_fair_rates(flows, links),
        max_min_fair_rates(
            flows, links, flow_weights={f: 5.0 for f in flows}
        ),
    )


# ----------------------------------------------------------------------
# Property-based: the three-solver weighted contract
# ----------------------------------------------------------------------
@st.composite
def _weighted_scenarios(draw):
    """Random topologies, duplicate-link routes, non-uniform weights."""
    num_links = draw(st.integers(min_value=1, max_value=7))
    links = {f"l{i}": draw(st.floats(0.5, 100.0)) for i in range(num_links)}
    num_flows = draw(st.integers(min_value=0, max_value=10))
    flows = {}
    weights = {}
    for i in range(num_flows):
        flows[f"f{i}"] = draw(
            st.lists(
                st.sampled_from(sorted(links)),
                min_size=0,
                max_size=num_links + 2,  # > num_links forces duplicates
            )
        )
        weights[f"f{i}"] = draw(st.floats(0.05, 20.0))
    return flows, links, weights


@given(_weighted_scenarios())
@settings(max_examples=300, deadline=None)
def test_weighted_vectorized_matches_scalar_oracle(scenario):
    flows, links, weights = scenario
    _assert_rates_match(
        max_min_fair_rates(flows, links, flow_weights=weights),
        max_min_fair_rates_numpy(flows, links, flow_weights=weights),
    )


@given(_weighted_scenarios())
@settings(max_examples=150, deadline=None)
def test_weighted_allocation_is_feasible(scenario):
    flows, links, weights = scenario
    constrained = {f: r for f, r in flows.items() if r}
    rates = max_min_fair_rates_numpy(flows, links, flow_weights=weights)
    if constrained:
        verify_allocation(
            constrained, dict(links), {f: rates[f] for f in constrained}
        )


@given(_weighted_scenarios())
@settings(max_examples=100, deadline=None)
def test_weighted_incremental_engine_matches_oracle(scenario):
    flows, links, weights = scenario
    engine = IncrementalFairShare()
    link_objects = {
        name: Link(name, capacity) for name, capacity in links.items()
    }
    for flow_id, route in flows.items():
        engine.add_flow(
            flow_id,
            tuple(link_objects[name] for name in route),
            weight=weights[flow_id],
        )
    engine.solve(set(flows))
    expected = max_min_fair_rates(
        {f: tuple(r) for f, r in flows.items()},
        dict(links),
        flow_weights=weights,
    )
    got = {flow_id: engine.rate(flow_id) for flow_id in flows}
    _assert_rates_match(expected, got)


# ----------------------------------------------------------------------
# Fabric drives: weighted flows through vector / incremental / global
# ----------------------------------------------------------------------
def _build(drive):
    sim = Simulator()
    topo = Topology()
    for dc in ("A", "B", "C"):
        topo.add_datacenter(dc)
    for host, dc in (("a1", "A"), ("a2", "A"), ("b1", "B"), ("c1", "C")):
        topo.add_host(host, dc, access_bandwidth=GBPS, access_latency=0.0)
    topo.connect_datacenters("A", "B", 100 * MBPS, latency=0.0)
    topo.connect_datacenters("A", "C", 100 * MBPS, latency=0.0)
    fabric = NetworkFabric(sim, topo, drive=drive)
    fabric.set_tenant_weight("gold", 3.0)
    fabric.set_tenant_weight("bronze", 1.0)
    return sim, fabric


def _run_weighted_scenario(drive):
    sim, fabric = _build(drive)
    completions = {}

    def track(label, event):
        event.add_callback(
            lambda _e, label=label: completions.setdefault(label, sim.now)
        )

    track("g1", fabric.transfer("a1", "b1", 40e6, tag="x", tenant="gold"))
    track("b1", fabric.transfer("a2", "b1", 40e6, tag="x", tenant="bronze"))
    # A staggered bronze arrival and a cross-path gold flow, so plans
    # are perturbed mid-flight under weighting.
    sim.call_later(
        0.5,
        lambda: track(
            "b2", fabric.transfer("a1", "b1", 20e6, tag="x", tenant="bronze")
        ),
    )
    sim.call_later(
        0.7,
        lambda: track(
            "g2", fabric.transfer("a2", "c1", 30e6, tag="x", tenant="gold")
        ),
    )
    sim.run()
    assert fabric.active_flow_count == 0
    return completions


def test_weighted_drives_agree():
    oracle = _run_weighted_scenario("global")
    assert set(oracle) == {"g1", "b1", "b2", "g2"}
    for drive in ("vector", "incremental"):
        got = _run_weighted_scenario(drive)
        for label, expected in oracle.items():
            assert got[label] == pytest.approx(expected, rel=1e-9), (
                f"{drive}: {label} finished at {got[label]}, "
                f"global says {expected}"
            )
    # Weighting is visible: gold's concurrent flow beats bronze's.
    assert oracle["g1"] < oracle["b1"]


def test_unit_weight_tenants_do_not_change_completions():
    """Tenanted flows at weight 1.0 ride the unweighted solver path and
    finish at exactly the untenanted times (byte-identity guarantee)."""

    def run(tenant):
        sim = Simulator()
        topo = Topology()
        topo.add_datacenter("A")
        topo.add_datacenter("B")
        topo.add_host("a1", "A", access_bandwidth=GBPS, access_latency=0.0)
        topo.add_host("b1", "B", access_bandwidth=GBPS, access_latency=0.0)
        topo.connect_datacenters("A", "B", 100 * MBPS, latency=0.0)
        fabric = NetworkFabric(sim, topo, drive="vector")
        done = []
        for size in (10e6, 25e6, 40e6):
            event = fabric.transfer("a1", "b1", size, tag="x", tenant=tenant)
            event.add_callback(lambda _e: done.append(sim.now))
        sim.run()
        return done

    assert run("") == run("solo")
