"""The vector (cascade-plan) drive vs. the global oracle drive.

The cascade drive precomputes entire departure schedules and fires them
as bare timers — zero re-solves between perturbations.  These tests pin
the hard part: a perturbation landing *mid-plan* (arrival, cancel,
capacity change) must replay the affected plans to recover exact
remaining bytes, and every completion time must match the global
re-solve-everything drive to 1e-9 relative.  Also covered: the per-flow
WAN cap, and plan invalidation after a component has *split* (a plan
member unreachable from the perturbed link must still be re-planned).
"""

import pytest

from repro.network.fabric import NetworkFabric
from repro.network.topology import GBPS, MBPS, Topology
from repro.simulation import Simulator

DRIVES = ("vector", "incremental", "global")


def _build(drive, wan_flow_cap=None):
    sim = Simulator()
    topo = Topology()
    for dc in ("A", "B", "C"):
        topo.add_datacenter(dc)
    for host, dc in (("a1", "A"), ("a2", "A"), ("b1", "B"), ("c1", "C")):
        topo.add_host(host, dc, access_bandwidth=GBPS, access_latency=0.0)
    topo.connect_datacenters("A", "B", 100 * MBPS, latency=0.0)
    topo.connect_datacenters("A", "C", 100 * MBPS, latency=0.0)
    fabric = NetworkFabric(sim, topo, drive=drive, wan_flow_cap=wan_flow_cap)
    return sim, topo, fabric


def _run_scenario(scenario, drive, wan_flow_cap=None):
    """Run ``scenario`` under ``drive``; returns {label: completion time}."""
    sim, topo, fabric = _build(drive, wan_flow_cap=wan_flow_cap)
    completions = {}

    def track(label, event):
        event.add_callback(
            lambda _e, label=label: completions.setdefault(label, sim.now)
        )

    scenario(sim, topo, fabric, track)
    sim.run()
    assert fabric.active_flow_count == 0
    return completions


def _assert_equivalent(scenario, wan_flow_cap=None):
    oracle = _run_scenario(scenario, "global", wan_flow_cap=wan_flow_cap)
    assert oracle  # scenario must complete something
    for drive in ("vector", "incremental"):
        got = _run_scenario(scenario, drive, wan_flow_cap=wan_flow_cap)
        assert got.keys() == oracle.keys()
        for label, expected in oracle.items():
            assert got[label] == pytest.approx(expected, rel=1e-9), (
                f"{drive}: {label} finished at {got[label]}, "
                f"global says {expected}"
            )


# ----------------------------------------------------------------------
# Equivalence under perturbations landing mid-plan
# ----------------------------------------------------------------------
def test_burst_churn_matches_global():
    """A same-route burst (the UniformPlan path): 8 distinct sizes
    cascading out of one 100 Mbps WAN link."""

    def scenario(sim, topo, fabric, track):
        for index in range(8):
            track(index, fabric.transfer("a1", "b1", 1e6 * (index + 1)))

    _assert_equivalent(scenario)


def test_arrival_mid_plan():
    """A late arrival must invalidate the in-flight plan and re-plan
    with the survivors' exact remaining bytes."""

    def scenario(sim, topo, fabric, track):
        for index in range(4):
            track(index, fabric.transfer("a1", "b1", 4e6 * (index + 1)))

        def late(sim):
            yield sim.timeout(0.25)
            track("late", fabric.transfer("a1", "b1", 6e6))
            yield sim.timeout(0.10)
            track("later", fabric.transfer("a2", "b1", 2e6))

        sim.spawn(late(sim))

    _assert_equivalent(scenario)


def test_cancel_mid_plan():
    """Cancelling a plan member mid-flight: the refund must equal the
    global drive's, and the survivors speed up identically."""

    def refunds(drive):
        sim, topo, fabric = _build(drive)
        completions = {}
        events = [
            fabric.transfer("a1", "b1", 8e6 * (index + 1)) for index in range(3)
        ]
        for index, event in enumerate(events[1:], start=1):
            event.add_callback(
                lambda _e, i=index: completions.setdefault(i, sim.now)
            )
        refund = {}

        def cancel(sim):
            yield sim.timeout(0.2)
            refund["bytes"] = fabric.cancel(events[0])

        sim.spawn(cancel(sim))
        sim.run()
        assert fabric.active_flow_count == 0
        return refund["bytes"], completions

    oracle_refund, oracle_done = refunds("global")
    # 3 flows share 100 Mbps for 0.2 s -> flow 0 moved ~0.83 MB of 8 MB.
    assert 0 < oracle_refund < 8e6
    for drive in ("vector", "incremental"):
        refund, done = refunds(drive)
        assert refund == pytest.approx(oracle_refund, rel=1e-9)
        for label, expected in oracle_done.items():
            assert done[label] == pytest.approx(expected, rel=1e-9)


def test_capacity_change_mid_plan():
    """A WAN capacity drop mid-cascade reschedules every member."""

    def scenario(sim, topo, fabric, track):
        for index in range(5):
            track(index, fabric.transfer("a1", "b1", 3e6 * (index + 1)))
        wan = next(l for l in topo.wan_links() if "A->B" in l.name)

        def squeeze(sim):
            yield sim.timeout(0.3)
            fabric.set_link_capacity(wan, 40 * MBPS)
            yield sim.timeout(0.4)
            fabric.set_link_capacity(wan, 150 * MBPS)

        sim.spawn(squeeze(sim))

    _assert_equivalent(scenario)


def test_wan_flow_cap_respected():
    """Per-flow WAN caps become virtual ``cap:`` links; a lone flow on a
    100 Mbps link capped at 30 Mbps takes size/cap seconds."""

    def scenario(sim, topo, fabric, track):
        track("capped", fabric.transfer("a1", "b1", 3e6))
        for index in range(3):
            track(index, fabric.transfer("a1", "c1", 2e6 * (index + 1)))

    _assert_equivalent(scenario, wan_flow_cap=30 * MBPS)
    solo = _run_scenario(
        lambda sim, topo, fabric, track: track(
            "capped", fabric.transfer("a1", "b1", 3e6)
        ),
        "vector",
        wan_flow_cap=30 * MBPS,
    )
    assert solo["capped"] == pytest.approx(3e6 / (30 * MBPS), rel=1e-9)


def test_replan_reaches_split_plan_members():
    """Regression for plan invalidation after a component split.

    Flows A (a1->b1), B (a1->c1), C (a2->c1) form one component: A-B
    share ``a1:up``, B-C share the A->C WAN.  B drains first, splitting
    the component.  A capacity change on the A->B WAN then touches only
    A — but A's (dead) plan still spans C, so the worklist must re-plan
    C too, or C would coast on a cancelled schedule forever.
    """

    def scenario(sim, topo, fabric, track):
        track("A", fabric.transfer("a1", "b1", 20e6))
        track("B", fabric.transfer("a1", "c1", 1e6))
        track("C", fabric.transfer("a2", "c1", 20e6))
        wan_ab = next(l for l in topo.wan_links() if "A->B" in l.name)

        def squeeze(sim):
            yield sim.timeout(0.5)  # well after B has drained
            fabric.set_link_capacity(wan_ab, 25 * MBPS)

        sim.spawn(squeeze(sim))

    _assert_equivalent(scenario)


# ----------------------------------------------------------------------
# Plan bookkeeping
# ----------------------------------------------------------------------
def test_vector_drive_departures_need_no_solves():
    """The tentpole claim: a burst admitted at one instant costs exactly
    one solve; all 12 departures ride precomputed timers."""
    sim, topo, fabric = _build("vector")
    for index in range(12):
        fabric.transfer("a1", "b1", 1e6 * (index + 1))
    sim.run()
    assert fabric.active_flow_count == 0
    assert fabric.perf.solves == 1
    assert fabric.perf.flows_touched == 12


def test_drive_flag_resolution():
    sim, topo, fabric = _build("vector")
    assert fabric.drive == "vector"
    assert NetworkFabric(Simulator(), topo).drive == "vector"
    assert NetworkFabric(Simulator(), topo, incremental=True).drive == (
        "incremental"
    )
    assert NetworkFabric(Simulator(), topo, incremental=False).drive == (
        "global"
    )
    with pytest.raises(ValueError):
        NetworkFabric(Simulator(), topo, drive="warp")
