"""The incremental fair-share engine: equivalence and scoping.

The max-min allocation is unique, so the component-scoped incremental
engine must produce rates *identical* (within float tolerance) to a
from-scratch :func:`max_min_fair_rates` solve at every instant, for
arbitrary arrival/departure/jitter sequences — that equivalence is the
safety net under the whole perf optimisation and is property-tested
here.  The scoping tests then pin the perf contract itself: events in
one connected component must not touch flows in another, and jitter on
idle links must not solve anything.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.fabric import NetworkFabric
from repro.network.fair_share import max_min_fair_rates, verify_allocation
from repro.network.topology import GBPS, MBPS, Topology
from repro.simulation import Simulator

HOSTS = ["A0", "A1", "B0", "B1", "C0", "C1"]
WAN_PAIRS = [("A", "B"), ("A", "C"), ("B", "C")]


def build_mesh(incremental=True):
    """Three fully-meshed DCs, two hosts each (one shared component)."""
    sim = Simulator()
    topo = Topology()
    for dc in ("A", "B", "C"):
        topo.add_datacenter(dc)
        for index in range(2):
            topo.add_host(
                f"{dc}{index}", dc, access_bandwidth=GBPS, access_latency=0.0
            )
    for src, dst in WAN_PAIRS:
        topo.connect_datacenters(src, dst, 100 * MBPS, latency=0.0)
    fabric = NetworkFabric(sim, topo, incremental=incremental)
    return sim, topo, fabric


def build_pairs(num_pairs=3, incremental=True):
    """Disjoint DC pairs (P0a-P0b, P1a-P1b, ...): one component each."""
    sim = Simulator()
    topo = Topology()
    for pair in range(num_pairs):
        for side in ("a", "b"):
            dc = f"P{pair}{side}"
            topo.add_datacenter(dc)
            topo.add_host(
                f"{dc}0", dc, access_bandwidth=GBPS, access_latency=0.0
            )
            topo.add_host(
                f"{dc}1", dc, access_bandwidth=GBPS, access_latency=0.0
            )
        topo.connect_datacenters(
            f"P{pair}a", f"P{pair}b", 100 * MBPS, latency=0.0
        )
    fabric = NetworkFabric(sim, topo, incremental=incremental)
    return sim, topo, fabric


def spawn_transfers(sim, fabric, transfers, finished=None):
    def one(sim, index, src, dst, size, start):
        if start > 0:
            yield sim.timeout(start)
        yield fabric.transfer(src, dst, size)
        if finished is not None:
            finished[index] = sim.now

    for index, (src, dst, size, start) in enumerate(transfers):
        sim.spawn(one(sim, index, src, dst, size, start))


def assert_rates_match_scratch_solve(fabric):
    """The engine's frozen rates equal a from-scratch global solve."""
    routes, capacities = fabric.solver_inputs()
    if not routes:
        return
    expected = max_min_fair_rates(routes, capacities)
    actual = {
        flow_id: flow.rate for flow_id, flow in fabric._flows.items()
    }
    for flow_id, rate in expected.items():
        assert actual[flow_id] == pytest.approx(rate, rel=1e-9), (
            f"flow {flow_id}: incremental {actual[flow_id]} "
            f"!= scratch {rate}"
        )
    verify_allocation(routes, capacities, actual, tolerance=1e-6)


transfers_strategy = st.lists(
    st.tuples(
        st.sampled_from(HOSTS),
        st.sampled_from(HOSTS),
        st.floats(1.0, 50e6),
        st.floats(0.0, 5.0),
    ),
    min_size=1,
    max_size=20,
)

jitter_strategy = st.lists(
    st.tuples(
        st.sampled_from(range(len(WAN_PAIRS) * 2)),  # directed link index
        st.floats(0.3, 3.0),  # capacity scale factor
        st.floats(0.1, 6.0),  # when
    ),
    max_size=8,
)


def _directed_wan_links(topo):
    links = []
    for src, dst in WAN_PAIRS:
        links.append(topo.wan_link(src, dst))
        links.append(topo.wan_link(dst, src))
    return links


def _apply_ops(sim, topo, fabric, transfers, jitters):
    """Drive a full arrival/jitter schedule; yield settled checkpoints."""
    spawn_transfers(sim, fabric, transfers)
    links = _directed_wan_links(topo)
    events = sorted({start for _s, _d, _sz, start in transfers})
    jitters = sorted(jitters, key=lambda op: op[2])
    checkpoints = sorted(
        {t + 0.0371 for t in events} | {when + 0.0371 for _l, _f, when in jitters}
    )
    jitter_index = 0
    for checkpoint in checkpoints:
        while (
            jitter_index < len(jitters)
            and jitters[jitter_index][2] <= checkpoint
        ):
            link_index, factor, when = jitters[jitter_index]
            jitter_index += 1
            if when > sim.now:
                sim.run(until=when)
            link = links[link_index]
            link.set_capacity(
                min(300 * MBPS, max(10 * MBPS, link.capacity * factor))
            )
            fabric.notify_capacity_change(changed_links=[link])
        sim.run(until=checkpoint)
        # Settle any same-instant recompute trigger before observing.
        sim.run(until=checkpoint)
        yield checkpoint
    sim.run()


@given(transfers_strategy, jitter_strategy)
@settings(max_examples=40, deadline=None)
def test_incremental_rates_equal_scratch_solve(transfers, jitters):
    """After arbitrary arrival/departure/jitter sequences the engine's
    rates are the unique max-min allocation (checked against a global
    from-scratch solve plus verify_allocation)."""
    sim, topo, fabric = build_mesh(incremental=True)
    for _checkpoint in _apply_ops(sim, topo, fabric, transfers, jitters):
        assert_rates_match_scratch_solve(fabric)
    assert fabric.active_flow_count == 0
    assert len(fabric.completed_flows) == len(transfers)


@given(transfers_strategy, jitter_strategy)
@settings(max_examples=25, deadline=None)
def test_incremental_completions_match_global_path(transfers, jitters):
    """Completion times are identical between the incremental engine and
    the legacy global re-solve drive."""
    finish = {}
    for incremental in (True, False):
        sim, topo, fabric = build_mesh(incremental=incremental)
        finished = {}
        spawn_transfers(sim, fabric, transfers, finished)
        links = _directed_wan_links(topo)

        def jitter_proc(sim, links=links, fabric=fabric):
            for link_index, factor, when in sorted(
                jitters, key=lambda op: op[2]
            ):
                if when > sim.now:
                    yield sim.timeout(when - sim.now)
                link = links[link_index]
                link.set_capacity(
                    min(300 * MBPS, max(10 * MBPS, link.capacity * factor))
                )
                fabric.notify_capacity_change(changed_links=[link])

        sim.spawn(jitter_proc(sim))
        sim.run()
        finish[incremental] = finished
    assert finish[True].keys() == finish[False].keys()
    for index in finish[True]:
        assert finish[True][index] == pytest.approx(
            finish[False][index], rel=1e-6, abs=1e-9
        )


def test_disjoint_component_not_touched_by_arrival():
    """A flow arriving on pair 1 must not re-solve pair 0's component."""
    sim, _topo, fabric = build_pairs(num_pairs=2)
    fabric.transfer("P0a0", "P0b0", 50e6)
    sim.run(until=0.1)
    touched_before = fabric.perf.flows_touched
    fabric.transfer("P1a0", "P1b0", 50e6)
    sim.run(until=0.2)
    # Only the new flow's (singleton) component was solved.
    assert fabric.perf.flows_touched == touched_before + 1


def test_lan_flow_does_not_resolve_wan_component():
    """An intra-DC flow's component excludes the WAN and its flows."""
    sim, _topo, fabric = build_pairs(num_pairs=1)
    fabric.transfer("P0a0", "P0b0", 50e6)  # WAN flow
    sim.run(until=0.1)
    touched_before = fabric.perf.flows_touched
    fabric.transfer("P0a1", "P0a0", 50e6)  # LAN-only, distinct hosts
    sim.run(until=0.2)
    assert fabric.perf.flows_touched == touched_before + 1


def test_jitter_on_idle_link_is_noop():
    """Perturbing a link with zero active flows must not solve anything."""
    sim, topo, fabric = build_pairs(num_pairs=2)
    fabric.transfer("P0a0", "P0b0", 50e6)
    sim.run(until=0.1)
    solves_before = fabric.perf.solves
    noops_before = fabric.perf.jitter_noops
    idle = topo.wan_link("P1a", "P1b")
    idle.set_capacity(50 * MBPS)
    fabric.notify_capacity_change(changed_links=[idle])
    sim.run(until=0.2)
    assert fabric.perf.solves == solves_before
    assert fabric.perf.jitter_noops == noops_before + 1


def test_jitter_on_busy_link_rescopes_to_its_component():
    sim, topo, fabric = build_pairs(num_pairs=2)
    fabric.transfer("P0a0", "P0b0", 50e6)
    fabric.transfer("P1a0", "P1b0", 50e6)
    sim.run(until=0.1)
    touched_before = fabric.perf.flows_touched
    busy = topo.wan_link("P0a", "P0b")
    busy.set_capacity(50 * MBPS)
    fabric.notify_capacity_change(changed_links=[busy])
    sim.run(until=0.2)
    assert fabric.perf.flows_touched == touched_before + 1  # pair 0 only


def test_same_instant_capacity_changes_coalesce_into_one_solve():
    sim, topo, fabric = build_pairs(num_pairs=1)
    fabric.transfer("P0a0", "P0b0", 50e6)
    fabric.transfer("P0a1", "P0b1", 50e6)
    sim.run(until=0.1)
    solves_before = fabric.perf.solves
    forward = topo.wan_link("P0a", "P0b")
    forward.set_capacity(60 * MBPS)
    fabric.notify_capacity_change(changed_links=[forward])
    fabric.notify_capacity_change(changed_links=[forward])
    sim.run(until=0.2)
    assert fabric.perf.solves == solves_before + 1


def test_unscoped_capacity_change_still_supported():
    """notify_capacity_change() without links re-reads every carried
    link (legacy call pattern) and still produces correct rates."""
    sim, topo, fabric = build_pairs(num_pairs=1)

    def scenario(sim):
        done = fabric.transfer("P0a0", "P0b0", 25_000_000)  # 2 s at 12.5 MB/s
        yield sim.timeout(1.0)
        topo.wan_link("P0a", "P0b").set_capacity(200 * MBPS)
        fabric.notify_capacity_change()
        yield done
        return sim.now

    assert sim.run_process(scenario(sim)) == pytest.approx(1.5)


def test_current_rate_is_constant_time_lookup():
    sim, _topo, fabric = build_pairs(num_pairs=1)
    event = fabric.transfer("P0a0", "P0b0", 25_000_000)
    sim.run(until=0.5)
    assert fabric.current_rate(event) == pytest.approx(100 * MBPS)
    assert event in fabric._flow_by_event  # O(1) back-pointer, no scan
    sim.run()
    assert fabric.current_rate(event) == 0.0
    assert event not in fabric._flow_by_event


def test_zero_byte_transfer_not_recorded_in_traffic_matrix():
    sim, _topo, fabric = build_pairs(num_pairs=1)
    fabric.transfer("P0a0", "P0b0", 0.0, tag="empty")
    fabric.transfer("P0a0", "P0a0", 0.0, tag="same-host")
    sim.run()
    assert fabric.monitor.flow_count == 0
    assert fabric.monitor.total_bytes == 0.0
    assert not fabric.monitor.by_pair
    # The flows themselves still completed (control-plane events fire).
    assert len(fabric.completed_flows) == 2


def test_perf_snapshot_includes_route_cache_stats():
    sim, _topo, fabric = build_pairs(num_pairs=1)
    fabric.transfer("P0a0", "P0b0", 1e6)
    fabric.transfer("P0a0", "P0b0", 1e6)  # same pair: cached route
    sim.run()
    snapshot = fabric.perf_snapshot()
    assert snapshot["route_cache_misses"] >= 1.0
    assert snapshot["route_cache_hits"] >= 1.0
    assert snapshot["solves"] >= 1.0
    assert snapshot["peak_active_flows"] == 2.0
