"""Property-based checks of the flow fabric.

Conservation laws that must hold for arbitrary flow populations:
* every transfer completes and is accounted exactly once;
* no flow finishes faster than its solo bottleneck time;
* all flows drain by the time the work-conserving bound elapses.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.fabric import NetworkFabric, ideal_transfer_time
from repro.network.topology import GBPS, MBPS, Topology
from repro.simulation import Simulator


def build(num_hosts_per_dc=2):
    sim = Simulator()
    topo = Topology()
    for dc in ("A", "B", "C"):
        topo.add_datacenter(dc)
        for index in range(num_hosts_per_dc):
            topo.add_host(
                f"{dc}{index}", dc,
                access_bandwidth=GBPS, access_latency=0.0,
            )
    for src, dst in (("A", "B"), ("A", "C"), ("B", "C")):
        topo.connect_datacenters(src, dst, 100 * MBPS, latency=0.0)
    return sim, topo, NetworkFabric(sim, topo)


transfers_strategy = st.lists(
    st.tuples(
        st.sampled_from(["A0", "A1", "B0", "B1", "C0", "C1"]),
        st.sampled_from(["A0", "A1", "B0", "B1", "C0", "C1"]),
        st.floats(1.0, 50e6),
        st.floats(0.0, 5.0),
    ),
    min_size=1,
    max_size=20,
)


@given(transfers_strategy)
@settings(max_examples=50, deadline=None)
def test_every_transfer_completes_and_is_accounted(transfers):
    sim, _topo, fabric = build()
    completions = []

    def one(sim, src, dst, size, start):
        if start > 0:
            yield sim.timeout(start)
        flow = yield fabric.transfer(src, dst, size)
        completions.append(flow)

    for src, dst, size, start in transfers:
        sim.spawn(one(sim, src, dst, size, start))
    sim.run()
    assert len(completions) == len(transfers)
    assert fabric.active_flow_count == 0
    total_requested = sum(size for _s, _d, size, _t in transfers)
    assert fabric.monitor.total_bytes == pytest.approx(total_requested)


@given(transfers_strategy)
@settings(max_examples=50, deadline=None)
def test_no_flow_beats_its_solo_bottleneck(transfers):
    sim, topo, fabric = build()
    durations = {}

    def one(sim, index, src, dst, size, start):
        if start > 0:
            yield sim.timeout(start)
        begun = sim.now
        yield fabric.transfer(src, dst, size)
        durations[index] = (sim.now - begun, src, dst, size)

    for index, (src, dst, size, start) in enumerate(transfers):
        sim.spawn(one(sim, index, src, dst, size, start))
    sim.run()
    for duration, src, dst, size in durations.values():
        floor = ideal_transfer_time(topo, src, dst, size)
        assert duration >= floor * (1 - 1e-6)


@given(transfers_strategy)
@settings(max_examples=30, deadline=None)
def test_work_conserving_upper_bound(transfers):
    """All flows drain within sum(sizes)/slowest-bottleneck after the
    last arrival — a loose but absolute work-conservation bound."""
    sim, topo, fabric = build()

    def one(sim, src, dst, size, start):
        if start > 0:
            yield sim.timeout(start)
        yield fabric.transfer(src, dst, size)

    for src, dst, size, start in transfers:
        sim.spawn(one(sim, src, dst, size, start))
    finished_at = sim.run()
    last_arrival = max(start for _s, _d, _size, start in transfers)
    slowest = 100 * MBPS  # the narrowest link anywhere in the topology
    cross_bytes = sum(size for _s, _d, size, _t in transfers)
    bound = last_arrival + cross_bytes / slowest + 1.0
    assert finished_at <= bound


@given(st.floats(1.0, 100e6), st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_parallel_identical_flows_share_time_linearly(size, count):
    """n identical flows over one bottleneck take ~n x the solo time."""
    sim, topo, fabric = build()
    done = []

    def one(sim):
        yield fabric.transfer("A0", "B0", size)
        done.append(sim.now)

    for _ in range(count):
        sim.spawn(one(sim))
    sim.run()
    solo = ideal_transfer_time(topo, "A0", "B0", size)
    assert max(done) == pytest.approx(solo * count, rel=1e-3)
