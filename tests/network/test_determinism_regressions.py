"""Regression pins for the nondeterminism fixes surfaced by DET003/ACC001.

Each test targets one concrete fix:

* the progressive-filling solvers iterate ``active`` in the caller's
  ``flow_routes`` insertion order (dict-as-ordered-set), never hash
  order, so the returned rate dict's key order cannot vary with
  ``PYTHONHASHSEED`` — and string flow ids (whose hashes *are*
  randomized) still produce identical payloads;
* the vector drive sorts its plan worklists (previously iterated as a
  ``set`` of plan objects, i.e. memory-address order, which leaked into
  timer sequence numbers) — pinned by running the identical stream
  twice in one process, where allocation addresses differ between runs;
* billing reduces with ``fsum`` so dollar totals are independent of the
  order flows were recorded in.
"""

import dataclasses

import pytest

from repro.experiments.runner import ExperimentPlan, clear_data_cache, run_matrix
from repro.experiments.schemes import Scheme
from repro.metrics.billing import bill_traffic
from repro.network.fair_share import max_min_fair_rates
from repro.network.traffic_monitor import TrafficMonitor
from repro.workloads import workload_by_name
from repro.workloads.arrivals import ArrivalSpec, StreamSpec, TenantSpec
from tests.conftest import small_spec


# ---------------------------------------------------------------------------
# Solver iteration order (fair_share.py DET003 fix)
# ---------------------------------------------------------------------------


def test_solver_returns_rates_in_route_insertion_order():
    routes = {"f3": ["wan"], "f1": ["wan"], "f2": ["wan"]}
    rates = max_min_fair_rates(routes, {"wan": 90.0})
    assert list(rates) == ["f3", "f1", "f2"]
    assert all(rate == pytest.approx(30.0) for rate in rates.values())


def test_solver_rates_equal_under_permuted_insertion():
    capacities = {"wan": 100.0, "lan-a": 60.0, "lan-b": 45.0}
    routes = {
        "alpha": ["lan-a", "wan"],
        "bravo": ["lan-b", "wan"],
        "charlie": ["wan"],
        "delta": ["lan-a"],
    }
    forward = max_min_fair_rates(dict(routes), capacities)
    reversed_routes = dict(reversed(list(routes.items())))
    backward = max_min_fair_rates(reversed_routes, capacities)
    # Bit-identical rates per flow regardless of admission order.
    assert {f: forward[f] for f in routes} == {f: backward[f] for f in routes}


def test_weighted_solver_is_insertion_order_deterministic():
    routes = {"b": ["wan"], "a": ["wan"]}
    weights = {"a": 3.0, "b": 1.0}
    rates = max_min_fair_rates(routes, {"wan": 80.0}, flow_weights=weights)
    assert list(rates) == ["b", "a"]
    assert rates["a"] == pytest.approx(60.0)
    assert rates["b"] == pytest.approx(20.0)


# ---------------------------------------------------------------------------
# Billing accumulation order (billing.py ACC001 fix)
# ---------------------------------------------------------------------------


def test_billing_totals_are_recording_order_independent():
    # Values chosen so a naive running float sum differs between orders.
    flows = [
        ("ap-southeast-2", "us-east-1", 1e9 / 3.0),
        ("us-east-1", "eu-central-1", 1e9 / 7.0),
        ("sa-east-1", "us-east-1", 1e9 / 11.0),
        ("eu-central-1", "ap-southeast-1", 1e9 / 13.0),
        ("us-east-1", "us-east-1", 5e8),  # intra-dc: free, ignored
    ] * 9
    forward, backward = TrafficMonitor(), TrafficMonitor()
    for src, dst, size in flows:
        forward.record(src, dst, size)
    for src, dst, size in reversed(flows):
        backward.record(src, dst, size)
    a, b = bill_traffic(forward), bill_traffic(backward)
    assert a.total_dollars == b.total_dollars  # exact, not approx
    assert a.by_source == b.by_source
    assert a.by_pair == b.by_pair
    assert a.total_dollars > 0


# ---------------------------------------------------------------------------
# Fabric plan worklists (fabric.py DET003 fix)
# ---------------------------------------------------------------------------


@pytest.fixture(autouse=True)
def _clean_cache():
    clear_data_cache()
    yield
    clear_data_cache()


def _stream_plan():
    return ExperimentPlan(
        cluster=small_spec(datacenters=("dc-a", "dc-b")),
        seeds=(11,),
        stream=StreamSpec(
            arrival=ArrivalSpec(
                process="poisson", rate_per_minute=120.0, num_jobs=4
            ),
            tenants=(TenantSpec("t", weight=1.0, share=1.0),),
            policy="fifo",
            max_concurrent=2,
        ),
    )


def _comparable(result):
    data = dataclasses.asdict(result)
    data["fabric_perf"] = {
        key: value
        for key, value in data["fabric_perf"].items()
        if key != "solver_seconds"
    }
    return data


def test_repeated_stream_runs_are_byte_identical_in_process():
    """Object addresses differ between in-process runs, so any residual
    memory-address ordering (the bug the plan-worklist sort fixed) would
    diverge here."""
    workloads = [workload_by_name("wordcount")]
    first = run_matrix(workloads, [Scheme.SPARK], _stream_plan())
    clear_data_cache()
    second = run_matrix(workloads, [Scheme.SPARK], _stream_plan())
    assert [_comparable(r) for r in first] == [_comparable(r) for r in second]
