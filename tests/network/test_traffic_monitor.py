"""TrafficMonitor aggregation semantics."""

import pytest

from repro.network.traffic_monitor import TrafficMonitor


def test_intra_dc_traffic_not_counted_as_cross():
    monitor = TrafficMonitor()
    monitor.record("a", "a", 100.0, tag="x")
    assert monitor.total_bytes == 100.0
    assert monitor.cross_dc_bytes == 0.0
    assert monitor.by_tag["x"] == 100.0
    assert monitor.cross_dc_by_tag.get("x", 0.0) == 0.0


def test_cross_dc_traffic_counted_by_pair_and_tag():
    monitor = TrafficMonitor()
    monitor.record("a", "b", 10.0, tag="shuffle")
    monitor.record("a", "b", 5.0, tag="shuffle")
    monitor.record("b", "a", 7.0, tag="input")
    assert monitor.cross_dc_bytes == pytest.approx(22.0)
    assert monitor.by_pair[("a", "b")] == pytest.approx(15.0)
    assert monitor.by_pair[("b", "a")] == pytest.approx(7.0)
    assert monitor.cross_dc_by_tag["shuffle"] == pytest.approx(15.0)


def test_directional_accounting_helpers():
    monitor = TrafficMonitor()
    monitor.record("a", "b", 10.0)
    monitor.record("a", "c", 20.0)
    monitor.record("c", "a", 5.0)
    monitor.record("a", "a", 99.0)
    assert monitor.cross_dc_bytes_from("a") == pytest.approx(30.0)
    assert monitor.cross_dc_bytes_into("a") == pytest.approx(5.0)


def test_megabyte_conversion():
    monitor = TrafficMonitor()
    monitor.record("a", "b", 2_500_000.0)
    assert monitor.cross_dc_megabytes == pytest.approx(2.5)


def test_untagged_flows_skip_tag_maps():
    monitor = TrafficMonitor()
    monitor.record("a", "b", 10.0, tag="")
    assert monitor.by_tag == {}


def test_snapshot_and_reset():
    monitor = TrafficMonitor()
    monitor.record("a", "b", 10.0, tag="t")
    snap = monitor.snapshot()
    assert snap["cross_dc_bytes"] == 10.0
    assert snap["flow_count"] == 1.0
    monitor.reset()
    assert monitor.total_bytes == 0.0
    assert monitor.flow_count == 0
