"""Bandwidth jitter: bounds, determinism, and fabric coupling."""

import pytest

from repro.network.fabric import NetworkFabric
from repro.network.jitter import BandwidthJitter, JitterSpec, StaticBandwidth
from repro.network.topology import GBPS, MBPS, Topology
from repro.simulation import RandomSource, Simulator


def build():
    sim = Simulator()
    topo = Topology()
    topo.add_datacenter("A")
    topo.add_datacenter("B")
    topo.add_host("a1", "A", access_bandwidth=GBPS, access_latency=0.0)
    topo.add_host("b1", "B", access_bandwidth=GBPS, access_latency=0.0)
    topo.connect_datacenters("A", "B", 200 * MBPS, latency=0.0)
    fabric = NetworkFabric(sim, topo)
    return sim, topo, fabric


def test_spec_validation():
    with pytest.raises(ValueError):
        JitterSpec(low=0, high=100).validate()
    with pytest.raises(ValueError):
        JitterSpec(low=100, high=50).validate()
    with pytest.raises(ValueError):
        JitterSpec(period=0).validate()
    with pytest.raises(ValueError):
        JitterSpec(max_step_fraction=0).validate()
    JitterSpec().validate()


def test_capacities_stay_within_band():
    sim, topo, fabric = build()
    spec = JitterSpec(low=80 * MBPS, high=300 * MBPS, period=1.0)
    jitter = BandwidthJitter(
        sim, fabric, topo.wan_links(), spec, RandomSource(1)
    )
    jitter.start()
    observed = []

    def sampler(sim):
        for _ in range(50):
            yield sim.timeout(1.0)
            observed.extend(link.capacity for link in topo.wan_links())

    sim.spawn(sampler(sim))
    sim.run(until=55)
    jitter.stop()
    assert observed
    for capacity in observed:
        assert spec.low <= capacity <= spec.high


def test_jitter_is_deterministic_per_seed():
    def capacities_after(seed):
        sim, topo, fabric = build()
        jitter = BandwidthJitter(
            sim, fabric, topo.wan_links(),
            JitterSpec(period=1.0), RandomSource(seed),
        )
        jitter.start()
        sim.run(until=10)
        jitter.stop()
        return [link.capacity for link in topo.wan_links()]

    assert capacities_after(5) == capacities_after(5)
    assert capacities_after(5) != capacities_after(6)


def test_jitter_changes_transfer_times():
    """A long transfer under jitter differs from the static case."""
    def transfer_time(with_jitter):
        sim, topo, fabric = build()
        if with_jitter:
            jitter = BandwidthJitter(
                sim, fabric, topo.wan_links(),
                JitterSpec(low=80 * MBPS, high=300 * MBPS, period=0.5),
                RandomSource(42),
            )
            jitter.start()
        done = fabric.transfer("a1", "b1", 100_000_000)
        sim.run_until_event(done)
        return sim.now

    static = transfer_time(False)
    jittered = transfer_time(True)
    assert static == pytest.approx(4.0)  # 100 MB at 25 MB/s
    assert jittered != pytest.approx(4.0)
    # Band [80, 300] Mbps bounds the possible duration.
    assert 100e6 / (300 * MBPS) <= jittered <= 100e6 / (80 * MBPS)


def test_only_wan_links_are_perturbed():
    sim, topo, fabric = build()
    access = topo.host("a1").uplink
    before = access.capacity
    jitter = BandwidthJitter(
        sim, fabric,
        list(topo.wan_links()) + [access],
        JitterSpec(period=1.0),
        RandomSource(0),
    )
    jitter.start()
    sim.run(until=5)
    jitter.stop()
    assert access.capacity == before


def test_start_is_idempotent():
    sim, topo, fabric = build()
    jitter = BandwidthJitter(
        sim, fabric, topo.wan_links(), JitterSpec(period=1.0), RandomSource(0)
    )
    jitter.start()
    capacity = next(iter(topo.wan_links())).capacity
    jitter.start()
    assert next(iter(topo.wan_links())).capacity == capacity
    jitter.stop()


def test_degrade_survives_jitter_resample():
    """A chaos degrade factor persists across jitter ticks.

    Regression: jitter used to walk the *effective* capacity and clamp
    it back into [low, high], silently erasing any degrade within one
    period — so ``degrade`` chaos was a no-op on jittered clusters.
    """
    sim, topo, fabric = build()
    link = topo.wan_link("A", "B")
    spec = JitterSpec(low=80 * MBPS, high=300 * MBPS, period=1.0)
    jitter = BandwidthJitter(
        sim, fabric, topo.wan_links(), spec, RandomSource(3)
    )
    jitter.start()
    fabric.set_link_degrade(link, 0.01)
    sim.run(until=10)
    # Ten resamples later the effective capacity still carries the
    # degrade: 1% of a nominal value inside the jitter band.
    assert link.degrade_factor == pytest.approx(0.01)
    assert spec.low <= link.nominal_capacity <= spec.high
    assert link.capacity == pytest.approx(link.nominal_capacity * 0.01)
    assert link.capacity < spec.low
    fabric.set_link_degrade(link, 1.0)
    assert link.capacity == pytest.approx(link.nominal_capacity)
    jitter.stop()


def test_static_bandwidth_pins_capacity():
    _sim, topo, _fabric = build()
    StaticBandwidth(topo.wan_links(), 123 * MBPS)
    for link in topo.wan_links():
        assert link.capacity == pytest.approx(123 * MBPS)
    with pytest.raises(ValueError):
        StaticBandwidth(topo.wan_links(), 0)
