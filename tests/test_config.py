"""Configuration objects: validation and derived helpers."""

import dataclasses

import pytest

from repro.config import (
    CostModel,
    FailureConfig,
    SchedulingConfig,
    ShuffleConfig,
    SimulationConfig,
    agg_shuffle_config,
    fetch_config,
)
from repro.errors import ConfigurationError


def test_cost_model_times():
    cost = CostModel(cpu_bytes_per_second=10e6, sort_factor=2.0,
                     combine_factor=0.5, shuffle_write_factor=0.1)
    assert cost.compute_time(10e6) == pytest.approx(1.0)
    assert cost.sort_time(10e6) == pytest.approx(2.0)
    assert cost.combine_time(10e6) == pytest.approx(0.5)
    assert cost.shuffle_write_time(10e6) == pytest.approx(0.1)


def test_cost_model_per_record_overhead():
    cost = CostModel(cpu_bytes_per_second=1e6, seconds_per_record=0.01)
    assert cost.compute_time(0, records=10) == pytest.approx(0.1)


def test_cost_model_rejects_negative():
    with pytest.raises(ValueError):
        CostModel().compute_time(-1)
    with pytest.raises(ValueError):
        CostModel().compute_time(1, records=-1)


def test_shuffle_config_validation():
    with pytest.raises(ConfigurationError):
        ShuffleConfig(push_based=False, auto_aggregate=True).validate()
    with pytest.raises(ConfigurationError):
        ShuffleConfig(aggregation_subset_size=0).validate()
    ShuffleConfig(push_based=True, auto_aggregate=True).validate()


def test_simulation_config_validation():
    with pytest.raises(ConfigurationError):
        dataclasses.replace(SimulationConfig(), cores_per_host=0).validate()
    with pytest.raises(ConfigurationError):
        dataclasses.replace(SimulationConfig(), scale_factor=0).validate()
    SimulationConfig().validate()


def test_fetch_and_agg_presets():
    fetch = fetch_config(seed=5)
    assert not fetch.shuffle.push_based
    assert fetch.seed == 5
    agg = agg_shuffle_config()
    assert agg.shuffle.push_based and agg.shuffle.auto_aggregate


def test_with_helpers_do_not_mutate():
    base = SimulationConfig()
    reseeded = base.with_seed(9)
    assert base.seed == 0 and reseeded.seed == 9
    reshuffled = base.with_shuffle(ShuffleConfig(push_based=True))
    assert not base.shuffle.push_based
    assert reshuffled.shuffle.push_based


def test_default_scheduling_values_documented():
    scheduling = SchedulingConfig()
    assert scheduling.reducer_pref_fraction == pytest.approx(0.2)
    assert scheduling.max_task_attempts >= 1
    assert scheduling.receiver_datacenter_wait > (
        scheduling.locality_wait_datacenter
    )


def test_failure_config_defaults_off():
    assert FailureConfig().reducer_failure_probability == 0.0
