"""Iterative k-means with broadcast centroids on the Fig. 6 cluster.

Shows two engine features working together in a geo-distributed
setting:

* broadcast variables — the centroid model is shipped from the driver
  once per datacenter per iteration, not once per task;
* Push/Aggregate shuffles — per-cluster partial sums are pushed into
  the aggregator datacenter instead of being fetched over the WAN.

Run:  python examples/kmeans_broadcast.py
"""

from repro import ClusterContext, agg_shuffle_config, ec2_six_region_spec
from repro.simulation import RandomSource
from repro.workloads import KMeans


def main():
    workload = KMeans(clusters=4, iterations=3)
    context = ClusterContext(ec2_six_region_spec(), agg_shuffle_config(seed=0))
    partitions = workload.generate(RandomSource(0))
    workload.install(context, partitions)

    centres = workload.run(context)
    reference = workload.reference_result(partitions)

    print("k-means on 800 MB of points across six EC2 regions")
    print("-" * 56)
    print(f"{'cluster':<8}{'centre (engine)':>22}{'centre (reference)':>24}")
    for index, (got, want) in enumerate(zip(centres, reference)):
        print(
            f"{index:<8}({got[0]:7.2f}, {got[1]:6.2f})      "
            f"({want[0]:7.2f}, {want[1]:6.2f})"
        )
    broadcast_mb = context.traffic.by_tag.get("broadcast", 0.0) / 1e6
    cross_broadcast_mb = (
        context.traffic.cross_dc_by_tag.get("broadcast", 0.0) / 1e6
    )
    print("-" * 56)
    print(f"simulated time      : {context.sim.now:8.1f} s")
    print(f"broadcast traffic   : {broadcast_mb:8.2f} MB "
          f"({cross_broadcast_mb:.2f} MB across datacenters)")
    print(f"cross-DC total      : {context.traffic.cross_dc_megabytes:8.1f} MB")
    context.shutdown()


if __name__ == "__main__":
    main()
