"""Iterative analytics: why aggregation compounds over iterations.

PageRank re-shuffles the (cached) link structure every iteration.  With
fetch-based shuffle the cached links sit scattered across datacenters,
so every iteration pays wide-area traffic again; with Push/Aggregate
the first shuffle lands everything in one datacenter and the remaining
iterations run locally — the paper reports a 91.3 % cross-datacenter
traffic reduction for PageRank (§V-C).

This example sweeps the iteration count and prints the traffic per
scheme, showing the divergence grow with iterations.

Run:  python examples/iterative_pagerank.py
"""

from repro.experiments import Scheme, run_workload_once
from repro.experiments.runner import ExperimentPlan, clear_data_cache
from repro.workloads import PAGERANK, PageRank


def traffic_for(iterations: int, scheme: Scheme) -> float:
    workload = PageRank(spec=PAGERANK, iterations=iterations)
    plan = ExperimentPlan(seeds=(0,))
    result = run_workload_once(workload, scheme, 0, plan)
    return result.cross_dc_megabytes


def main():
    print("PageRank cross-datacenter traffic vs iteration count")
    print(f"{'iterations':>10} {'Spark (MB)':>12} {'AggShuffle (MB)':>16} "
          f"{'reduction':>10}")
    for iterations in (1, 2, 3, 4):
        clear_data_cache()
        spark = traffic_for(iterations, Scheme.SPARK)
        agg = traffic_for(iterations, Scheme.AGGSHUFFLE)
        reduction = 100 * (spark - agg) / spark
        print(f"{iterations:>10} {spark:>12.1f} {agg:>16.1f} "
              f"{reduction:>9.1f}%")
    print("\nAggShuffle pays the edge push once; Spark re-shuffles the")
    print("scattered cached links every iteration.")


if __name__ == "__main__":
    main()
