"""Quickstart: a geo-distributed word count with Push/Aggregate shuffle.

Builds a two-datacenter cluster, writes a small keyed dataset spread
over both datacenters, and runs ``reduce_by_key`` twice — once with
Spark's stock fetch-based shuffle and once with the paper's AggShuffle
(implicit ``transfer_to`` before every shuffle) — then compares job
completion time and cross-datacenter traffic.

Run:  python examples/quickstart.py
"""

from repro import (
    ClusterContext,
    agg_shuffle_config,
    fetch_config,
    two_datacenter_spec,
)

WORDS = "the quick brown fox jumps over the lazy dog the fox".split()


def run(config, label):
    context = ClusterContext(two_datacenter_spec(), config)
    # Four input blocks, round-robined over every worker in both DCs.
    partitions = [
        [(word, 1) for word in WORDS],
        [(word, 1) for word in WORDS[::-1]],
        [(word, 1) for word in WORDS[::2]],
        [(word, 1) for word in WORDS[1::2]],
    ]
    context.write_input_file("/words", partitions)

    counts = (
        context.text_file("/words")
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )

    duration = context.metrics.job.duration
    cross_dc = context.traffic.cross_dc_megabytes
    context.shutdown()
    print(f"{label:<12} JCT = {duration:6.2f} s   "
          f"cross-DC = {cross_dc * 1000:7.1f} KB")
    return dict(counts)


def main():
    print("Word count on a 2-datacenter cluster")
    print("-" * 52)
    fetch_counts = run(fetch_config(seed=7), "Spark")
    push_counts = run(agg_shuffle_config(seed=7), "AggShuffle")
    assert fetch_counts == push_counts, "both mechanisms must agree"
    print("-" * 52)
    top = sorted(push_counts.items(), key=lambda kv: -kv[1])[:3]
    print("top words:", ", ".join(f"{w}={c}" for w, c in top))


if __name__ == "__main__":
    main()
