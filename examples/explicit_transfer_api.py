"""The developer-facing transfer_to() API (§IV-B and §V-B).

Demonstrates the cases where explicit placement beats the implicit
embedding:

1. TeraSort's bloating map — the implicit transfer pushes the *bloated*
   map output; calling ``transfer_to()`` before the map ships the
   smaller raw input instead (the paper's §V-B prescription);
2. caching after aggregation — persisting a dataset once it is
   co-located makes every reuse datacenter-local (§IV-E).

Run:  python examples/explicit_transfer_api.py
"""

from repro import ClusterContext, ec2_six_region_spec
from repro.experiments.placement import skewed_block_placement
from repro.experiments.runner import generated_input
from repro.experiments.schemes import Scheme, config_for_scheme
from repro.simulation import RandomSource
from repro.workloads import TeraSort


def run_terasort(explicit: bool) -> dict:
    workload = TeraSort()
    spec = ec2_six_region_spec()
    config = config_for_scheme(Scheme.AGGSHUFFLE, workload.spec, seed=0)
    context = ClusterContext(spec, config)
    partitions = generated_input(workload, 0)
    placement = skewed_block_placement(
        spec, RandomSource(0).child("placement:TeraSort"), len(partitions)
    )
    workload.install(context, partitions, placement_hosts=placement)

    if explicit:
        # input.transferTo().map(bloat).sortByKey() — raw data moves.
        rdd = workload.build_with_explicit_transfer(context)
    else:
        # map(bloat).sortByKey() with implicit transfer — bloated data
        # moves.
        rdd = workload.build(context)
    started = context.sim.now
    rdd.save_as_file(workload.output_path)
    outcome = {
        "jct": context.sim.now - started,
        "pushed_mb": context.traffic.cross_dc_by_tag.get("transfer_to", 0.0)
        / 1e6,
    }
    context.shutdown()
    return outcome


def main():
    print("TeraSort under AggShuffle: implicit vs explicit transfer_to()")
    print("-" * 62)
    implicit = run_terasort(explicit=False)
    explicit = run_terasort(explicit=True)
    print(f"{'variant':<28}{'JCT (s)':>10}{'pushed (MB)':>14}")
    print(f"{'implicit (bloated push)':<28}{implicit['jct']:>10.1f}"
          f"{implicit['pushed_mb']:>14.1f}")
    print(f"{'explicit (raw push)':<28}{explicit['jct']:>10.1f}"
          f"{explicit['pushed_mb']:>14.1f}")
    saved = implicit["pushed_mb"] - explicit["pushed_mb"]
    print(f"\nexplicit transfer_to() avoids pushing {saved:.0f} MB of "
          f"map-inflated data across datacenters")
    print("(\"Only can the application developers tell the increase of "
          "data size beforehand.\" — §V-B)")


if __name__ == "__main__":
    main()
