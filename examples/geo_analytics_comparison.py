"""Compare the three systems of the paper's evaluation on one workload.

Runs HiBench WordCount (3.2 GB of text, Table I) on the six-region EC2
cluster of Fig. 6 under Spark, Centralized, and AggShuffle, printing per
scheme the job completion time, the cross-datacenter traffic by cause,
and the per-stage timeline — a miniature of Fig. 7/8/9 for one
workload.

Run:  python examples/geo_analytics_comparison.py [workload]
      (workload: wordcount | sort | terasort | pagerank | naivebayes)
"""

import sys

from repro.experiments import Scheme, run_workload_once
from repro.experiments.runner import ExperimentPlan
from repro.workloads import workload_by_name


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "wordcount"
    plan = ExperimentPlan(seeds=(0,))
    print(f"{name} on the Fig. 6 cluster (6 EC2 regions, 24 workers)")
    print("=" * 64)
    for scheme in Scheme:
        result = run_workload_once(workload_by_name(name), scheme, 0, plan)
        print(f"\n{scheme.value}")
        print(f"  job completion time : {result.duration:8.1f} s")
        print(f"  cross-DC traffic    : {result.cross_dc_megabytes:8.1f} MB")
        for tag, megabytes in sorted(result.cross_dc_by_tag.items()):
            print(f"    {tag:<12}: {megabytes:8.1f} MB")
        print("  stages:")
        for stage in result.stages:
            bar = "#" * max(1, int(stage.duration / 2))
            print(
                f"    t={stage.started_at:7.1f}  {stage.duration:7.1f} s  "
                f"{stage.kind:<17} {bar}"
            )


if __name__ == "__main__":
    main()
