"""Cascade plans: precomputed departure schedules for the vector drive.

The incremental drive (PR 1) re-solves the dirty connected component on
*every* departure — one Python BFS, one scalar solve, one deadline-heap
reshuffle per flow that drains.  But between external perturbations
(arrivals, cancels, capacity changes) a component's future is fully
determined: max-min fair sharing is a piecewise-linear fluid system, so
the entire sequence of departures can be computed up front.  A
:class:`CascadePlan` is that precomputation — the segment boundaries,
per-segment rates, and which flows drain at each boundary.  Departures
then fire as bare precomputed timers
(:meth:`~repro.simulation.kernel.Simulator.call_at`) with **zero**
re-solves; a perturbation invalidates the affected plans (lazily
cancelling their timers) and replays them up to *now* to recover each
member's exact remaining bytes before re-planning.

Two plan shapes:

* :class:`UniformPlan` — when every flow in the component has the same
  route signature (the dominant shuffle pattern: a burst of fetches
  between one host pair), the whole cascade collapses to a cumulative
  sum over the size-sorted remaining bytes: with ``k`` flows left the
  shared rate is ``min(C*/k, cap)`` where
  ``C* = min_j capacity_j / multiplicity_j`` over the shared route, so
  each departure gap costs ``(e_i - e_{i-1}) / rate(k)`` seconds.
  Because every alive flow always runs at the same rate, the plan
  stores only 1-D per-segment arrays — no per-flow rate matrix at all;
* :class:`GeneralPlan` — one :func:`~repro.network.vector_solver.
  progressive_fill` per departure round on the component's CSR arrays,
  with the full (segments x flows) rate matrix.

Replay is exact: each plan keeps the cumulative bytes delivered at
every segment boundary, so ``remaining_at(pos, t)`` is one
``searchsorted`` plus a fused multiply-add — the vector drive's
equivalent of the incremental drive's lazy ``_charge``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.network.vector_solver import build_csr, progressive_fill

# Departures within this relative window collapse into one segment (and
# one timer); keeps float noise from splitting simultaneous drains.
_TIE = 1e-12


class CascadePlan:
    """One component's precomputed future (base class; see subclasses).

    ``bounds`` are time offsets from ``base`` (``bounds[0] == 0``);
    segment ``k`` spans ``bounds[k]`` to ``bounds[k+1]``, and the flows
    at positions ``departs[k]`` drain exactly at ``bounds[k+1]``.
    Positions index ``flow_ids`` — the plan's own member order, which
    need not match the caller's (``UniformPlan`` sorts members into
    departure order so each ``departs[k]`` is a contiguous range).
    """

    __slots__ = (
        "flow_ids",
        "pos_of",
        "base",
        "init_remaining",
        "bounds",
        "departs",
        "timers",
        "alive",
    )

    def __init__(
        self,
        flow_ids: List[int],
        base: float,
        init_remaining: np.ndarray,
        bounds: np.ndarray,
        departs: List[List[int]],
    ) -> None:
        self.flow_ids = flow_ids
        self.pos_of = {fid: pos for pos, fid in enumerate(flow_ids)}
        self.base = base
        self.init_remaining = init_remaining
        self.bounds = bounds
        self.departs = departs
        self.timers: list = []
        self.alive = True

    def _segment(self, offset: float) -> int:
        k = int(np.searchsorted(self.bounds, offset, side="right")) - 1
        last = len(self.departs) - 1
        if k < 0:
            return 0
        if k > last:
            return last
        return k

    def depart_times(self) -> List[float]:
        """Absolute simulated time of each departure segment boundary."""
        return (self.base + self.bounds[1:]).tolist()


class UniformPlan(CascadePlan):
    """Closed-form cascade for identical-route components.

    All alive members share one rate per segment, so replay state is
    three 1-D arrays: segment bounds, segment rates, and the common
    cumulative bytes delivered at each boundary.
    """

    __slots__ = ("seg_rates", "_cum")

    def __init__(
        self,
        flow_ids: List[int],
        base: float,
        init_remaining: np.ndarray,
        bounds: np.ndarray,
        seg_rates: np.ndarray,
        departs: List[List[int]],
    ) -> None:
        super().__init__(flow_ids, base, init_remaining, bounds, departs)
        self.seg_rates = seg_rates
        # _cum[k]: bytes every still-alive member has delivered by the
        # time segment k starts.
        cum = np.empty(len(bounds))
        cum[0] = 0.0
        np.cumsum(seg_rates * np.diff(bounds), out=cum[1:])
        self._cum = cum

    def _delivered(self, offset: float) -> Tuple[int, float]:
        k = self._segment(offset)
        return k, self._cum[k] + self.seg_rates[k] * (offset - self.bounds[k])

    def remaining_at(self, pos: int, now: float) -> float:
        _k, delivered = self._delivered(now - self.base)
        remaining = self.init_remaining[pos] - delivered
        return float(remaining) if remaining > 0.0 else 0.0

    def rate_at(self, pos: int, now: float) -> float:
        k, delivered = self._delivered(now - self.base)
        if self.init_remaining[pos] - delivered > 0.0:
            return float(self.seg_rates[k])
        return 0.0

    def initial_rate(self, pos: int) -> float:
        return float(self.seg_rates[0])


class GeneralPlan(CascadePlan):
    """Iterative cascade with the full (segments x flows) rate matrix."""

    __slots__ = ("rates", "_cum")

    def __init__(
        self,
        flow_ids: List[int],
        base: float,
        init_remaining: np.ndarray,
        bounds: np.ndarray,
        rates: np.ndarray,
        departs: List[List[int]],
    ) -> None:
        super().__init__(flow_ids, base, init_remaining, bounds, departs)
        self.rates = rates
        # _cum[k, pos]: bytes delivered to pos before segment k starts.
        cum = np.empty((rates.shape[0] + 1, rates.shape[1]))
        cum[0] = 0.0
        np.cumsum(rates * np.diff(bounds)[:, None], axis=0, out=cum[1:])
        self._cum = cum

    def remaining_at(self, pos: int, now: float) -> float:
        offset = now - self.base
        k = self._segment(offset)
        remaining = (
            self.init_remaining[pos]
            - self._cum[k, pos]
            - self.rates[k, pos] * (offset - self.bounds[k])
        )
        return float(remaining) if remaining > 0.0 else 0.0

    def rate_at(self, pos: int, now: float) -> float:
        return float(self.rates[self._segment(now - self.base), pos])

    def initial_rate(self, pos: int) -> float:
        return float(self.rates[0, pos])


# ----------------------------------------------------------------------
# Schedule builders
# ----------------------------------------------------------------------
def _uniform_schedule(
    sorted_remaining: np.ndarray, c_star: float, cap: float
) -> Tuple[np.ndarray, np.ndarray, List[List[int]]]:
    """Closed-form cascade over size-sorted remaining bytes."""
    count = len(sorted_remaining)
    gaps = np.diff(sorted_remaining, prepend=0.0)
    alive = count - np.arange(count)
    stage_rates = np.minimum(c_star / alive, cap)
    ends = np.cumsum(gaps / stage_rates)
    # Group stages whose departure instants coincide (within the tie
    # window) into single segments.
    breaks = np.flatnonzero(np.diff(ends) > _TIE * np.maximum(1.0, ends[1:]))
    starts = np.concatenate(([0], breaks + 1))
    stops = np.concatenate((breaks, [count - 1]))
    bounds = np.concatenate(([0.0], ends[stops]))
    departs = [
        list(range(start, stop + 1))
        for start, stop in zip(starts.tolist(), stops.tolist())
    ]
    return bounds, stage_rates[starts], departs


def _general_schedule(
    remaining: np.ndarray,
    routes: Sequence[np.ndarray],
    capacities: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, List[List[int]]]:
    """Iterative cascade: one progressive fill per departure round."""
    indices, indptr, flow_of_entry = build_csr(routes)
    count = len(routes)
    active = np.ones(count, dtype=bool)
    live_remaining = remaining.copy()
    bounds = [0.0]
    rate_rows = []
    departs = []
    elapsed = 0.0
    while active.any():
        rates = progressive_fill(
            indices, indptr, flow_of_entry, capacities, active, weights=weights
        )
        step = np.full(count, np.inf)
        step[active] = live_remaining[active] / rates[active]
        shortest = float(step.min())
        departing = active & (step <= shortest * (1.0 + _TIE))
        elapsed += shortest
        live_remaining -= rates * shortest
        np.clip(live_remaining, 0.0, None, out=live_remaining)
        live_remaining[departing] = 0.0
        rate_rows.append(rates)
        bounds.append(elapsed)
        departs.append(np.flatnonzero(departing).tolist())
        active &= ~departing
    return np.asarray(bounds), np.asarray(rate_rows), departs


def build_plan(
    flow_ids: Sequence[int],
    remaining: Sequence[float],
    routes: Mapping[int, Tuple[str, ...]],
    capacities: Mapping[str, float],
    base: float,
    weights: Optional[Mapping[int, float]] = None,
) -> CascadePlan:
    """Plan one component's full departure schedule.

    ``flow_ids`` must be sorted (determinism); ``routes``/``capacities``
    are the engine's solver inputs for exactly these flows — shared link
    names plus the per-flow virtual ``cap:<fid>`` WAN-cap links.  The
    returned plan's ``flow_ids`` may be a reordering of the input.
    ``weights`` (flow id -> weighted-fair-share weight, absent flows
    weigh 1.0) selects the weighted fill; ``None`` keeps the exact
    unweighted path.
    """
    init_remaining = np.asarray(remaining, dtype=float)

    def split(fid: int) -> Tuple[Tuple[str, ...], float]:
        route = routes[fid]
        if route and route[-1] == f"cap:{fid}":
            return route[:-1], capacities[route[-1]]
        return route, np.inf

    shared0, cap0 = split(flow_ids[0])
    uniform = bool(shared0) and all(
        split(fid) == (shared0, cap0) for fid in flow_ids[1:]
    )
    if uniform and weights:
        # The closed form assumes every alive member runs at the same
        # rate, which holds only when all weights are equal (weighted
        # max-min with equal weights reduces to the unweighted
        # allocation — the shared fair level just rescales).
        weight0 = weights.get(flow_ids[0], 1.0)
        uniform = all(
            weights.get(fid, 1.0) == weight0 for fid in flow_ids[1:]
        )
    if uniform:
        multiplicity: Dict[str, int] = {}
        for name in shared0:
            multiplicity[name] = multiplicity.get(name, 0) + 1
        c_star = min(
            capacities[name] / count for name, count in multiplicity.items()
        )
        # Reorder members into departure (size) order so every
        # departure batch is a contiguous position range.
        order = np.argsort(init_remaining, kind="stable")
        sorted_remaining = init_remaining[order]
        members = [flow_ids[index] for index in order.tolist()]
        bounds, seg_rates, departs = _uniform_schedule(
            sorted_remaining, c_star, cap0
        )
        return UniformPlan(
            members, base, sorted_remaining, bounds, seg_rates, departs
        )
    interned: Dict[Hashable, int] = {}
    link_caps: List[float] = []
    index_routes: List[np.ndarray] = []
    for fid in flow_ids:
        route = routes[fid]
        row = np.empty(len(route), dtype=np.intp)
        for position, name in enumerate(route):
            index = interned.get(name)
            if index is None:
                index = len(interned)
                interned[name] = index
                link_caps.append(capacities[name])
            row[position] = index
        index_routes.append(row)
    weight_array: Optional[np.ndarray] = None
    if weights:
        weight_array = np.asarray(
            [float(weights.get(fid, 1.0)) for fid in flow_ids]
        )
        if np.any(weight_array <= 0):
            raise ValueError("flow weights must be > 0")
    bounds, rates, departs = _general_schedule(
        init_remaining, index_routes, np.asarray(link_caps), weight_array
    )
    return GeneralPlan(
        list(flow_ids), base, init_remaining, bounds, rates, departs
    )
