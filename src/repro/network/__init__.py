"""Flow-level wide-area network model.

The model has three layers:

* :mod:`repro.network.topology` — datacenters, hosts, and directed links
  (host access links plus one WAN link per ordered datacenter pair).
* :mod:`repro.network.fair_share` — the progressive-filling max-min fair
  bandwidth allocator, shared by all concurrent flows.
* :mod:`repro.network.fabric` — the :class:`NetworkFabric` simulation
  component: start a transfer, get an event that fires on completion, with
  rates recomputed whenever flows start/finish or link capacity jitters.

Cross-datacenter traffic accounting (Fig. 8 of the paper) lives in
:mod:`repro.network.traffic_monitor`; the stochastic WAN bandwidth
fluctuation of §V-A lives in :mod:`repro.network.jitter`.
"""

from repro.network.topology import Datacenter, Host, Link, Topology
from repro.network.fair_share import max_min_fair_rates, verify_allocation
from repro.network.fabric import Flow, NetworkFabric
from repro.network.incremental import IncrementalFairShare
from repro.network.jitter import BandwidthJitter, JitterSpec
from repro.network.traffic_monitor import TrafficMonitor

__all__ = [
    "Datacenter",
    "Host",
    "Link",
    "Topology",
    "max_min_fair_rates",
    "verify_allocation",
    "Flow",
    "NetworkFabric",
    "IncrementalFairShare",
    "BandwidthJitter",
    "JitterSpec",
    "TrafficMonitor",
]
