"""Max-min fair bandwidth allocation via progressive filling.

Given a set of flows, each traversing a set of links, and per-link
capacities, the progressive-filling algorithm raises every unfrozen flow's
rate uniformly until some link saturates; flows through that link freeze at
the current fair share, the link's residual capacity is removed, and the
process repeats.  The result is the unique max-min fair allocation.

The solver is pure (no simulation state), which makes it easy to
property-test: rates never exceed capacity on any link, every flow is
bottlenecked somewhere, and raising one flow's rate would require lowering
a flow with an equal-or-smaller rate.

Multi-traversal semantics: a route is a *sequence*, and a flow whose
route lists the same link k times consumes ``k * rate`` of that link's
capacity — the crossing count, the freeze step, and
:func:`verify_allocation`'s usage accounting all charge per occurrence,
so the three are mutually consistent.  (Think of a relay bouncing off
the same WAN uplink twice.)  Callers that want plain set semantics
should dedupe the route before handing it to the solver.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set

FlowId = Hashable
LinkId = Hashable

# Tolerance for floating-point comparisons inside the solver.
_EPSILON = 1e-12


def max_min_fair_rates(
    flow_routes: Mapping[FlowId, Sequence[LinkId]],
    link_capacities: Mapping[LinkId, float],
    flow_weights: Optional[Mapping[FlowId, float]] = None,
) -> Dict[FlowId, float]:
    """Compute the max-min fair rate for every flow.

    Args:
        flow_routes: flow id -> the link ids the flow traverses.  A flow
            with an empty route is unconstrained and gets ``float('inf')``.
        link_capacities: link id -> capacity (bytes/second).
        flow_weights: optional flow id -> weight (> 0; flows absent from
            the mapping weigh 1.0).  Under *weighted* max-min fairness
            every unfrozen flow's rate is its weight times a shared fair
            level, so a weight-2 tenant drains twice as fast as a
            weight-1 tenant across every link they share.  ``None`` (or
            an empty mapping) takes the exact unweighted code path, so
            unweighted callers remain bit-identical.

    Returns:
        flow id -> allocated rate in bytes/second.
    """
    if flow_weights:
        return _weighted_max_min_fair_rates(
            flow_routes, link_capacities, flow_weights
        )
    rates: Dict[FlowId, float] = {}
    # Unconstrained flows are infinitely fast at this abstraction level.
    # ``active`` is a dict-as-ordered-set (DET003): iteration follows the
    # caller's ``flow_routes`` insertion order instead of hash order, so
    # the returned dict's key order cannot vary with PYTHONHASHSEED.
    active: Dict[FlowId, None] = {}
    for flow_id, route in flow_routes.items():
        if route:
            active[flow_id] = None
        else:
            rates[flow_id] = float("inf")
    if not active:
        return rates

    # Residual capacity and *active-flow count* per link, maintained
    # incrementally as flows freeze — this keeps each filling round at
    # O(links + active-route-length) instead of rebuilding per-link flow
    # sets.
    residual: Dict[LinkId, float] = {}
    crossing: Dict[LinkId, int] = {}
    saturation_floor: Dict[LinkId, float] = {}
    for flow_id in active:
        for link_id in flow_routes[flow_id]:
            if link_id not in residual:
                capacity = link_capacities[link_id]
                if capacity <= 0:
                    raise ValueError(f"link {link_id!r} has capacity <= 0")
                residual[link_id] = float(capacity)
                crossing[link_id] = 0
                saturation_floor[link_id] = _EPSILON * max(1.0, capacity)
            crossing[link_id] += 1

    allocated: Dict[FlowId, float] = {flow_id: 0.0 for flow_id in active}
    link_ids = list(residual)
    # Progressive filling: repeat until every flow froze at some bottleneck.
    while active:
        bottleneck_share = None
        for link_id in link_ids:
            count = crossing[link_id]
            if count == 0:
                continue
            share = residual[link_id] / count
            if bottleneck_share is None or share < bottleneck_share:
                bottleneck_share = share
        if bottleneck_share is None:  # pragma: no cover - defensive
            break

        saturated: Set[LinkId] = set()
        for link_id in link_ids:
            count = crossing[link_id]
            if count == 0:
                continue
            remaining = residual[link_id] - bottleneck_share * count
            if remaining < 0:
                remaining = 0.0
            residual[link_id] = remaining
            if remaining <= saturation_floor[link_id]:
                saturated.add(link_id)

        frozen: List[FlowId] = []
        for flow_id in active:
            allocated[flow_id] += bottleneck_share
            for link_id in flow_routes[flow_id]:
                if link_id in saturated:
                    frozen.append(flow_id)
                    break
        if not frozen:
            # Numerical corner: freeze everything at the minimum share to
            # guarantee termination.  In exact arithmetic this cannot happen.
            frozen = list(active)
        for flow_id in frozen:
            active.pop(flow_id, None)
            for link_id in flow_routes[flow_id]:
                crossing[link_id] -= 1

    rates.update(allocated)
    return rates


def _weighted_max_min_fair_rates(
    flow_routes: Mapping[FlowId, Sequence[LinkId]],
    link_capacities: Mapping[LinkId, float],
    flow_weights: Mapping[FlowId, float],
) -> Dict[FlowId, float]:
    """Weighted progressive filling (see :func:`max_min_fair_rates`).

    Structure mirrors the unweighted path: the per-link *crossing count*
    becomes the per-occurrence **weight sum**, the filling level is the
    shared fair level (lambda), and each unfrozen flow accrues
    ``lambda_increment * weight`` per round.  An integer carrier count
    is kept alongside the float weight sum so links whose carriers all
    froze drop out exactly (no float-residue links surviving rounds).
    """
    rates: Dict[FlowId, float] = {}
    # Dict-as-ordered-set — see max_min_fair_rates (DET003).
    active: Dict[FlowId, None] = {}
    weights: Dict[FlowId, float] = {}
    for flow_id, route in flow_routes.items():
        if route:
            weight = float(flow_weights.get(flow_id, 1.0))
            if weight <= 0:
                raise ValueError(f"flow {flow_id!r} has weight <= 0")
            weights[flow_id] = weight
            active[flow_id] = None
        else:
            rates[flow_id] = float("inf")
    if not active:
        return rates

    residual: Dict[LinkId, float] = {}
    crossing: Dict[LinkId, float] = {}
    carriers: Dict[LinkId, int] = {}
    saturation_floor: Dict[LinkId, float] = {}
    for flow_id in active:
        weight = weights[flow_id]
        for link_id in flow_routes[flow_id]:
            if link_id not in residual:
                capacity = link_capacities[link_id]
                if capacity <= 0:
                    raise ValueError(f"link {link_id!r} has capacity <= 0")
                residual[link_id] = float(capacity)
                crossing[link_id] = 0.0
                carriers[link_id] = 0
                saturation_floor[link_id] = _EPSILON * max(1.0, capacity)
            crossing[link_id] += weight
            carriers[link_id] += 1

    allocated: Dict[FlowId, float] = {flow_id: 0.0 for flow_id in active}
    link_ids = list(residual)
    while active:
        bottleneck_share = None
        for link_id in link_ids:
            if carriers[link_id] == 0:
                continue
            share = residual[link_id] / crossing[link_id]
            if bottleneck_share is None or share < bottleneck_share:
                bottleneck_share = share
        if bottleneck_share is None:  # pragma: no cover - defensive
            break

        saturated: Set[LinkId] = set()
        for link_id in link_ids:
            if carriers[link_id] == 0:
                continue
            remaining = residual[link_id] - bottleneck_share * crossing[link_id]
            if remaining < 0:
                remaining = 0.0
            residual[link_id] = remaining
            if remaining <= saturation_floor[link_id]:
                saturated.add(link_id)

        frozen: List[FlowId] = []
        for flow_id in active:
            allocated[flow_id] += bottleneck_share * weights[flow_id]
            for link_id in flow_routes[flow_id]:
                if link_id in saturated:
                    frozen.append(flow_id)
                    break
        if not frozen:
            # Numerical corner: freeze everything to guarantee
            # termination (cannot happen in exact arithmetic).
            frozen = list(active)
        for flow_id in frozen:
            active.pop(flow_id, None)
            weight = weights[flow_id]
            for link_id in flow_routes[flow_id]:
                carriers[link_id] -= 1
                if carriers[link_id] == 0:
                    crossing[link_id] = 0.0
                else:
                    crossing[link_id] -= weight

    rates.update(allocated)
    return rates


def verify_allocation(
    flow_routes: Mapping[FlowId, Sequence[LinkId]],
    link_capacities: Mapping[LinkId, float],
    rates: Mapping[FlowId, float],
    tolerance: float = 1e-6,
) -> None:
    """Assert feasibility and work conservation of an allocation.

    Used by the test suite; raises AssertionError with a diagnostic when
    the allocation overcommits a link or leaves a link that could still
    admit more traffic for every flow crossing it.

    Usage is charged per route *occurrence*: a flow listing a link twice
    contributes ``2 * rate`` to that link, matching the solver's
    multi-traversal semantics (see the module docstring).
    """
    usage: Dict[LinkId, float] = {link_id: 0.0 for link_id in link_capacities}
    for flow_id, route in flow_routes.items():
        for link_id in route:
            usage[link_id] += rates[flow_id]
    for link_id, used in usage.items():
        capacity = link_capacities[link_id]
        assert used <= capacity * (1 + tolerance) + tolerance, (
            f"link {link_id!r} overcommitted: {used} > {capacity}"
        )
    # Work conservation: every constrained flow crosses >= 1 saturated link.
    saturated = {
        link_id
        for link_id, used in usage.items()
        if used >= link_capacities[link_id] * (1 - tolerance) - tolerance
    }
    for flow_id, route in flow_routes.items():
        if not route:
            continue
        assert any(link_id in saturated for link_id in route), (
            f"flow {flow_id!r} is not bottlenecked anywhere"
        )
