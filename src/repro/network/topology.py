"""Network topology: datacenters, hosts, and directed links.

The topology mirrors the paper's deployment (Fig. 6): a handful of
datacenters, each containing a few hosts.  Within a datacenter every host
has a full-duplex access link (modelled as separate *uplink* and
*downlink*) of roughly 1 Gbps.  Every ordered pair of datacenters is
connected by a dedicated WAN link whose capacity is much smaller (80–300
Mbps in the paper's measurements) and may fluctuate over time.

A route between two hosts is the ordered list of links a flow traverses:

* same host: no links (the fabric completes such transfers immediately);
* same datacenter: ``[src.uplink, dst.downlink]``;
* different datacenters: ``[src.uplink, wan(src_dc, dst_dc), dst.downlink]``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError, NoRouteError, UnknownHostError

# Unit helpers ---------------------------------------------------------------
GBPS = 1_000_000_000 / 8.0  # bytes per second in one gigabit per second
MBPS = 1_000_000 / 8.0  # bytes per second in one megabit per second

# Effective capacity of a partitioned link, in bytes/second.  The solver
# cannot represent a zero-capacity link (flows would never drain and the
# fair-share maths divides by capacity), so a partition pins the link to
# a floor so small that any real flow misses its health deadline and
# takes the retry/blacklist path instead.
PARTITION_CAPACITY_FLOOR = 1.0


class Link:
    """A directed link with a (mutable) capacity in bytes/second."""

    __slots__ = (
        "name",
        "capacity",
        "base_capacity",
        "nominal_capacity",
        "degrade_factor",
        "partitioned",
        "latency",
        "is_wan",
    )

    def __init__(
        self,
        name: str,
        capacity: float,
        latency: float = 0.0,
        is_wan: bool = False,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"link {name}: capacity must be > 0")
        if latency < 0:
            raise ConfigurationError(f"link {name}: latency must be >= 0")
        self.name = name
        self.capacity = float(capacity)
        self.base_capacity = float(capacity)
        # What the owning bandwidth process (jitter / static pin) last
        # set, before any chaos degrade.  ``capacity`` — what the solver
        # sees — is ``nominal_capacity * degrade_factor``, so a jitter
        # resample and a chaos degrade compose instead of overwriting
        # each other.
        self.nominal_capacity = float(capacity)
        self.degrade_factor = 1.0
        self.partitioned = False
        self.latency = float(latency)
        self.is_wan = is_wan

    def _recompute_capacity(self) -> None:
        if self.partitioned:
            self.capacity = PARTITION_CAPACITY_FLOOR
        else:
            self.capacity = self.nominal_capacity * self.degrade_factor

    def set_capacity(self, capacity: float) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"link {self.name}: capacity must be > 0")
        self.nominal_capacity = float(capacity)
        self._recompute_capacity()

    def set_degrade_factor(self, factor: float) -> None:
        """Scale the effective capacity by ``factor`` (chaos degrade).

        Persists across ``set_capacity`` calls until reset to 1.0, so a
        concurrent jitter process cannot silently undo a degrade.
        """
        if factor <= 0:
            raise ConfigurationError(
                f"link {self.name}: degrade factor must be > 0"
            )
        self.degrade_factor = float(factor)
        self._recompute_capacity()

    def set_partitioned(self, down: bool) -> None:
        """Drop (or heal) this directed link out of the fabric.

        While partitioned the effective capacity is pinned to
        ``PARTITION_CAPACITY_FLOOR`` no matter what jitter or degrade do;
        both keep updating ``nominal_capacity``/``degrade_factor`` so the
        heal restores whatever capacity the link would otherwise have.
        """
        self.partitioned = bool(down)
        self._recompute_capacity()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.capacity * 8 / 1e6:.0f} Mbps>"


class Datacenter:
    """A named datacenter holding a set of hosts.

    ``wan_in`` / ``wan_out`` are optional *gateway* links modelling the
    region's shared WAN border capacity: every flow entering (leaving)
    the datacenter crosses them in addition to its pair link, so a
    region's aggregate WAN throughput is bounded even when many distinct
    remote regions are involved.
    """

    __slots__ = ("name", "hosts", "wan_in", "wan_out")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hosts: List[Host] = []
        self.wan_in: Optional[Link] = None
        self.wan_out: Optional[Link] = None

    @property
    def host_names(self) -> List[str]:
        return [host.name for host in self.hosts]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Datacenter {self.name} hosts={len(self.hosts)}>"


class Host:
    """A worker machine: access links plus identity within a datacenter."""

    __slots__ = ("name", "datacenter", "uplink", "downlink")

    def __init__(self, name: str, datacenter: Datacenter, uplink: Link, downlink: Link) -> None:
        self.name = name
        self.datacenter = datacenter
        self.uplink = uplink
        self.downlink = downlink

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name}@{self.datacenter.name}>"


class Topology:
    """The full network graph plus route computation."""

    def __init__(self) -> None:
        self.datacenters: Dict[str, Datacenter] = {}
        self.hosts: Dict[str, Host] = {}
        self._wan_links: Dict[Tuple[str, str], Link] = {}
        # Routes are static per host pair (jitter changes capacities,
        # never paths), so they are computed once and memoized.  Any
        # construction call invalidates the cache.
        self._route_cache: Dict[Tuple[str, str], List[Link]] = {}
        self._latency_cache: Dict[Tuple[str, str], float] = {}
        self.route_cache_hits = 0
        self.route_cache_misses = 0

    def _invalidate_routes(self) -> None:
        self._route_cache.clear()
        self._latency_cache.clear()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_datacenter(self, name: str) -> Datacenter:
        if name in self.datacenters:
            raise ConfigurationError(f"duplicate datacenter {name!r}")
        datacenter = Datacenter(name)
        self.datacenters[name] = datacenter
        self._invalidate_routes()
        return datacenter

    def add_host(
        self,
        name: str,
        datacenter_name: str,
        access_bandwidth: float = 1.0 * GBPS,
        access_latency: float = 0.0005,
    ) -> Host:
        """Add a host with symmetric access links into ``datacenter_name``."""
        if name in self.hosts:
            raise ConfigurationError(f"duplicate host {name!r}")
        if datacenter_name not in self.datacenters:
            raise UnknownHostError(f"unknown datacenter {datacenter_name!r}")
        datacenter = self.datacenters[datacenter_name]
        uplink = Link(f"{name}:up", access_bandwidth, access_latency)
        downlink = Link(f"{name}:down", access_bandwidth, access_latency)
        host = Host(name, datacenter, uplink, downlink)
        datacenter.hosts.append(host)
        self.hosts[name] = host
        self._invalidate_routes()
        return host

    def connect_datacenters(
        self,
        src_name: str,
        dst_name: str,
        bandwidth: float,
        latency: float = 0.05,
        symmetric: bool = True,
    ) -> None:
        """Install WAN link(s) between two datacenters."""
        for missing in (src_name, dst_name):
            if missing not in self.datacenters:
                raise UnknownHostError(f"unknown datacenter {missing!r}")
        if src_name == dst_name:
            raise ConfigurationError("cannot connect a datacenter to itself")
        self._wan_links[(src_name, dst_name)] = Link(
            f"wan:{src_name}->{dst_name}", bandwidth, latency, is_wan=True
        )
        if symmetric:
            self._wan_links[(dst_name, src_name)] = Link(
                f"wan:{dst_name}->{src_name}", bandwidth, latency, is_wan=True
            )
        self._invalidate_routes()

    def set_gateway(
        self, datacenter_name: str, bandwidth: float, latency: float = 0.0
    ) -> None:
        """Install shared WAN ingress/egress gateway links for a DC."""
        if datacenter_name not in self.datacenters:
            raise UnknownHostError(f"unknown datacenter {datacenter_name!r}")
        datacenter = self.datacenters[datacenter_name]
        datacenter.wan_out = Link(
            f"gw:{datacenter_name}:out", bandwidth, latency, is_wan=False
        )
        datacenter.wan_in = Link(
            f"gw:{datacenter_name}:in", bandwidth, latency, is_wan=False
        )
        self._invalidate_routes()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise UnknownHostError(f"unknown host {name!r}") from None

    def datacenter_of(self, host_name: str) -> str:
        return self.host(host_name).datacenter.name

    def wan_link(self, src_dc: str, dst_dc: str) -> Link:
        try:
            return self._wan_links[(src_dc, dst_dc)]
        except KeyError:
            raise NoRouteError(
                f"no WAN link from {src_dc!r} to {dst_dc!r}"
            ) from None

    def wan_links(self) -> Iterable[Link]:
        return self._wan_links.values()

    def route(self, src_host: str, dst_host: str) -> List[Link]:
        """The ordered list of links a flow from src to dst traverses.

        Memoized: repeated calls for the same pair return the same list
        object — treat it as read-only.
        """
        key = (src_host, dst_host)
        cached = self._route_cache.get(key)
        if cached is not None:
            self.route_cache_hits += 1
            return cached
        self.route_cache_misses += 1
        route = self._compute_route(src_host, dst_host)
        self._route_cache[key] = route
        return route

    def _compute_route(self, src_host: str, dst_host: str) -> List[Link]:
        src = self.host(src_host)
        dst = self.host(dst_host)
        if src is dst:
            return []
        if src.datacenter is dst.datacenter:
            return [src.uplink, dst.downlink]
        wan = self.wan_link(src.datacenter.name, dst.datacenter.name)
        links = [src.uplink]
        if src.datacenter.wan_out is not None:
            links.append(src.datacenter.wan_out)
        links.append(wan)
        if dst.datacenter.wan_in is not None:
            links.append(dst.datacenter.wan_in)
        links.append(dst.downlink)
        return links

    def route_latency(self, src_host: str, dst_host: str) -> float:
        """Total propagation latency of the pair's route (memoized —
        link latencies are immutable, so this never goes stale)."""
        key = (src_host, dst_host)
        latency = self._latency_cache.get(key)
        if latency is None:
            latency = sum(link.latency for link in self.route(src_host, dst_host))
            self._latency_cache[key] = latency
        return latency

    def is_cross_datacenter(self, src_host: str, dst_host: str) -> bool:
        return self.datacenter_of(src_host) != self.datacenter_of(dst_host)

    def all_host_names(self) -> List[str]:
        return list(self.hosts)

    def hosts_in(self, datacenter_name: str) -> List[str]:
        if datacenter_name not in self.datacenters:
            raise UnknownHostError(f"unknown datacenter {datacenter_name!r}")
        return self.datacenters[datacenter_name].host_names

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the topology is fully connected at the WAN level."""
        names = list(self.datacenters)
        for src in names:
            for dst in names:
                if src == dst:
                    continue
                if (src, dst) not in self._wan_links:
                    raise ConfigurationError(
                        f"missing WAN link {src!r} -> {dst!r}"
                    )
        for datacenter in self.datacenters.values():
            if not datacenter.hosts:
                raise ConfigurationError(
                    f"datacenter {datacenter.name!r} has no hosts"
                )
