"""The network fabric: flow-level transfer simulation.

:class:`NetworkFabric` is the component every other subsystem uses to move
bytes.  A call to :meth:`NetworkFabric.transfer` registers a fluid flow on
its route and returns an event that fires when the last byte (plus
propagation latency) arrives.  All concurrent flows share links according
to max-min fairness; rates are recomputed whenever

* a flow starts,
* a flow finishes, or
* a link capacity changes (bandwidth jitter).

Between recomputations every flow progresses linearly at its current rate,
so the fabric only needs to wake at the earliest projected completion.
Stale wake-ups (scheduled before a recomputation) are detected with a
version counter and ignored.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional

from repro.network.fair_share import max_min_fair_rates
from repro.network.topology import Link, Topology
from repro.network.traffic_monitor import TrafficMonitor
from repro.simulation.event import Event
from repro.simulation.kernel import Simulator

# A flow is considered drained when the remaining bytes fall below this
# fraction of its size (with an absolute floor for tiny flows).  The
# threshold must be relative: float rounding on a multi-megabyte flow
# leaves ~1e-9 of its size unaccounted, far above any absolute epsilon.
_DRAIN_RELATIVE = 1e-9
_DRAIN_FLOOR = 1e-6


def _drain_threshold(size_bytes: float) -> float:
    return max(_DRAIN_FLOOR, _DRAIN_RELATIVE * size_bytes)


class Flow:
    """One in-flight transfer between two hosts."""

    __slots__ = (
        "flow_id",
        "src_host",
        "dst_host",
        "size_bytes",
        "remaining",
        "route",
        "tag",
        "completion",
        "rate",
        "started_at",
        "finished_at",
    )

    def __init__(
        self,
        flow_id: int,
        src_host: str,
        dst_host: str,
        size_bytes: float,
        route: List[Link],
        tag: str,
        completion: Event,
        started_at: float,
    ) -> None:
        self.flow_id = flow_id
        self.src_host = src_host
        self.dst_host = dst_host
        self.size_bytes = float(size_bytes)
        self.remaining = float(size_bytes)
        self.route = route
        self.tag = tag
        self.completion = completion
        self.rate = 0.0
        self.started_at = started_at
        self.finished_at: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Flow {self.flow_id} {self.src_host}->{self.dst_host} "
            f"{self.remaining:.0f}/{self.size_bytes:.0f}B @{self.rate:.0f}B/s>"
        )


class NetworkFabric:
    """Schedules fluid flows over a :class:`Topology` with fair sharing."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        monitor: Optional[TrafficMonitor] = None,
        wan_flow_cap: Optional[float] = None,
    ) -> None:
        """``wan_flow_cap`` bounds any single WAN-crossing flow's rate
        (bytes/second), modelling TCP throughput over high-RTT paths —
        a single stream cannot fill an inter-region link even when the
        link itself is idle."""
        self.sim = sim
        self.topology = topology
        self.monitor = monitor if monitor is not None else TrafficMonitor()
        self.wan_flow_cap = wan_flow_cap
        self._flows: Dict[int, Flow] = {}
        self._flow_ids = itertools.count()
        self._last_update = sim.now
        self._wake_version = 0
        self._recompute_pending = False
        self.completed_flows: List[Flow] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def transfer(
        self,
        src_host: str,
        dst_host: str,
        size_bytes: float,
        tag: str = "",
    ) -> Event:
        """Start moving ``size_bytes`` from src to dst.

        Returns an event firing with the :class:`Flow` once the transfer
        (including propagation latency) completes.  Same-host transfers and
        empty payloads complete after the route latency alone.
        """
        if size_bytes < 0:
            raise ValueError(f"negative transfer size: {size_bytes}")
        flow_id = next(self._flow_ids)
        route = self.topology.route(src_host, dst_host)
        latency = sum(link.latency for link in route)
        completion = self.sim.event(name=f"flow{flow_id}:done")
        flow = Flow(
            flow_id,
            src_host,
            dst_host,
            size_bytes,
            route,
            tag,
            completion,
            started_at=self.sim.now,
        )
        if not route or size_bytes <= _DRAIN_FLOOR:
            self._finish_flow(flow, extra_delay=latency)
            return completion
        self._advance_progress()
        self._flows[flow_id] = flow
        # Batch rate recomputation: a reducer starting dozens of fetch
        # flows in one instant triggers a single solve, not one each.
        self._schedule_recompute()
        return flow.completion

    def _schedule_recompute(self) -> None:
        if self._recompute_pending:
            return
        self._recompute_pending = True
        trigger = self.sim.event(name="fabric:recompute")
        trigger.add_callback(self._run_recompute)
        trigger.succeed(None)

    def _run_recompute(self, _event) -> None:
        self._recompute_pending = False
        self._advance_progress()
        self._reschedule()

    @property
    def active_flow_count(self) -> int:
        return len(self._flows)

    def active_flows(self) -> List[Flow]:
        return list(self._flows.values())

    def current_rate(self, flow_event: Event) -> float:
        """The instantaneous rate of the flow owning ``flow_event``."""
        for flow in self._flows.values():
            if flow.completion is flow_event:
                return flow.rate
        return 0.0

    def notify_capacity_change(self) -> None:
        """Re-solve rates after link capacities changed (jitter)."""
        if not self._flows:
            return
        self._advance_progress()
        self._reschedule()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _advance_progress(self) -> None:
        """Charge each active flow for the time elapsed at its old rate."""
        elapsed = self.sim.now - self._last_update
        self._last_update = self.sim.now
        if elapsed <= 0:
            return
        for flow in self._flows.values():
            flow.remaining -= flow.rate * elapsed
            if flow.remaining < 0:
                flow.remaining = 0.0

    def _recompute_rates(self) -> None:
        routes: Dict[int, List[str]] = {}
        capacities: Dict[str, float] = {}
        for flow_id, flow in self._flows.items():
            names = [link.name for link in flow.route]
            for link in flow.route:
                capacities[link.name] = link.capacity
            # The TCP cap is a virtual per-flow link on WAN routes.
            if self.wan_flow_cap is not None and any(
                link.is_wan for link in flow.route
            ):
                cap_name = f"cap:{flow_id}"
                names.append(cap_name)
                capacities[cap_name] = self.wan_flow_cap
            routes[flow_id] = names
        rates = max_min_fair_rates(routes, capacities)
        for flow_id, flow in self._flows.items():
            flow.rate = rates[flow_id]

    def _reschedule(self) -> None:
        """Complete drained flows, re-solve rates, and plan the next wake."""
        # Retire every flow that drained by now (possibly several at once).
        drained = [
            flow
            for flow in self._flows.values()
            if flow.remaining <= _drain_threshold(flow.size_bytes)
        ]
        for flow in drained:
            del self._flows[flow.flow_id]
            latency = sum(link.latency for link in flow.route)
            self._finish_flow(flow, extra_delay=latency)

        if not self._flows:
            self._wake_version += 1
            return

        self._recompute_rates()
        horizon = min(
            flow.remaining / flow.rate
            for flow in self._flows.values()
            if flow.rate > 0
        )
        # Guard against a zero horizon caused by floating-point residue.
        max_rate = max(flow.rate for flow in self._flows.values())
        horizon = max(horizon, _DRAIN_FLOOR / max_rate)
        self._wake_version += 1
        version = self._wake_version
        wake = self.sim.timeout(horizon, name=f"fabric:wake@{version}")
        wake.add_callback(lambda _event: self._on_wake(version))

    def _on_wake(self, version: int) -> None:
        if version != self._wake_version:
            return  # superseded by a newer reschedule
        self._advance_progress()
        self._reschedule()

    def _finish_flow(self, flow: Flow, extra_delay: float) -> None:
        flow.finished_at = self.sim.now + extra_delay
        src_dc = self.topology.datacenter_of(flow.src_host)
        dst_dc = self.topology.datacenter_of(flow.dst_host)
        self.monitor.record(src_dc, dst_dc, flow.size_bytes, flow.tag)
        self.completed_flows.append(flow)
        if extra_delay > 0:
            done = self.sim.timeout(extra_delay)
            done.add_callback(lambda _event: flow.completion.succeed(flow))
        else:
            flow.completion.succeed(flow)


def ideal_transfer_time(
    topology: Topology, src_host: str, dst_host: str, size_bytes: float
) -> float:
    """Lower-bound transfer time assuming the flow is alone on its route."""
    route = topology.route(src_host, dst_host)
    latency = sum(link.latency for link in route)
    if not route or size_bytes <= 0:
        return latency
    bottleneck = min(link.capacity for link in route)
    if bottleneck <= 0 or math.isinf(bottleneck):  # pragma: no cover
        return latency
    return latency + size_bytes / bottleneck
