"""The network fabric: flow-level transfer simulation.

:class:`NetworkFabric` is the component every other subsystem uses to move
bytes.  A call to :meth:`NetworkFabric.transfer` registers a fluid flow on
its route and returns an event that fires when the last byte (plus
propagation latency) arrives.  All concurrent flows share links according
to max-min fairness; rates are recomputed whenever

* a flow starts,
* a flow finishes, or
* a link capacity changes (bandwidth jitter).

Between recomputations every flow progresses linearly at its current rate.

Three solver drives exist:

* **vector** (default) — on each perturbation the affected components'
  entire departure schedules are precomputed as
  :class:`~repro.network.cascade.CascadePlan`\\ s (numpy closed form for
  uniform-route components, CSR progressive filling otherwise);
  departures then fire as bare precomputed timers with **zero**
  re-solves, and a later perturbation replays the plan to recover each
  member's exact remaining bytes;
* **incremental** (``incremental=True`` / ``drive="incremental"``) —
  the PR 1 :class:`repro.network.incremental.IncrementalFairShare`
  engine re-solves only the connected component of flows and links an
  event touches, charges progress lazily per flow, and keeps projected
  completions in a deadline heap, so the per-event cost scales with the
  component, not the population;
* **global** (``incremental=False`` / ``drive="global"``) — the
  original from-scratch re-solve of every active flow on every event,
  kept as the baseline for the equivalence tests and the speedup
  microbenchmarks.

All three produce the same (unique) max-min allocation; same-instant
flow arrivals and capacity changes are coalesced into a single solve.
Stale wake-ups are detected with a version counter and ignored.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.sanitizer import get_sanitizer
from repro.metrics.perf import FabricPerfCounters
from repro.metrics.tenants import TenantLedger
from repro.network.cascade import CascadePlan, build_plan
from repro.network.fair_share import max_min_fair_rates
from repro.network.incremental import IncrementalFairShare
from repro.network.topology import Link, Topology
from repro.network.traffic_monitor import TrafficMonitor
from repro.simulation.event import Event
from repro.simulation.kernel import Simulator

# A flow is considered drained when the remaining bytes fall below this
# fraction of its size (with an absolute floor for tiny flows).  The
# threshold must be relative: float rounding on a multi-megabyte flow
# leaves ~1e-9 of its size unaccounted, far above any absolute epsilon.
_DRAIN_RELATIVE = 1e-9
_DRAIN_FLOOR = 1e-6


def _drain_threshold(size_bytes: float) -> float:
    return max(_DRAIN_FLOOR, _DRAIN_RELATIVE * size_bytes)


class Flow:
    """One in-flight transfer between two hosts."""

    __slots__ = (
        "flow_id",
        "src_host",
        "dst_host",
        "size_bytes",
        "remaining",
        "route",
        "latency",
        "tag",
        "tenant",
        "weight",
        "completion",
        "rate",
        "started_at",
        "finished_at",
        "charged_at",
        "epoch",
    )

    def __init__(
        self,
        flow_id: int,
        src_host: str,
        dst_host: str,
        size_bytes: float,
        route: List[Link],
        latency: float,
        tag: str,
        completion: Event,
        started_at: float,
        tenant: str = "",
        weight: float = 1.0,
    ) -> None:
        self.flow_id = flow_id
        self.src_host = src_host
        self.dst_host = dst_host
        self.size_bytes = float(size_bytes)
        self.remaining = float(size_bytes)
        self.route = route
        # Total propagation latency of the route, precomputed once.
        self.latency = latency
        self.tag = tag
        # Owning tenant ("" for untenanted traffic) and its
        # weighted-fair-share weight, resolved at admission.
        self.tenant = tenant
        self.weight = weight
        self.completion = completion
        self.rate = 0.0
        self.started_at = started_at
        self.finished_at: Optional[float] = None
        # ``remaining`` is exact as of ``charged_at``; the incremental
        # drive charges lazily, only when the flow's rate changes.
        self.charged_at = started_at
        # Bumped whenever the rate (and hence projected deadline)
        # changes; stale deadline-heap entries carry an old epoch.
        self.epoch = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Flow {self.flow_id} {self.src_host}->{self.dst_host} "
            f"{self.remaining:.0f}/{self.size_bytes:.0f}B @{self.rate:.0f}B/s>"
        )


class NetworkFabric:
    """Schedules fluid flows over a :class:`Topology` with fair sharing."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        monitor: Optional[TrafficMonitor] = None,
        wan_flow_cap: Optional[float] = None,
        incremental: Optional[bool] = None,
        drive: Optional[str] = None,
    ) -> None:
        """``wan_flow_cap`` bounds any single WAN-crossing flow's rate
        (bytes/second), modelling TCP throughput over high-RTT paths —
        a single stream cannot fill an inter-region link even when the
        link itself is idle.

        ``drive`` selects the solver drive (``"vector"`` when omitted);
        the legacy ``incremental`` flag keeps working as shorthand for
        ``drive="incremental"`` / ``drive="global"``.
        """
        if drive is None:
            if incremental is None:
                drive = "vector"
            else:
                drive = "incremental" if incremental else "global"
        if drive not in ("vector", "incremental", "global"):
            raise ValueError(f"unknown fabric drive: {drive!r}")
        self.sim = sim
        self.topology = topology
        self.monitor = monitor if monitor is not None else TrafficMonitor()
        self.wan_flow_cap = wan_flow_cap
        self.perf = FabricPerfCounters()
        # Runtime invariant sanitizer (None unless REPRO_SANITIZE /
        # --sanitize): checks capacity conservation and rate sanity
        # after every solve.  Captured once, so the off case costs one
        # attribute load + None test per solve.
        self.sanitizer = get_sanitizer()
        # tenant -> weighted-fair-share weight (> 0); flows issued for a
        # tenant absent from the registry weigh 1.0.  Populated by the
        # inter-job scheduler; untouched (empty) for single-job runs so
        # the solvers stay on the bit-identical unweighted path.
        self.tenant_weights: Dict[str, float] = {}
        # Creation-time per-tenant byte accounting (admission charges,
        # cancel refunds); reconciles exactly with the traffic monitor's
        # per-tenant totals once all flows have landed.
        self.tenant_ledger = TenantLedger()
        self.drive = drive
        incremental = drive != "global"
        self._incremental = incremental
        # link name -> health-advised capacity ceiling (circuit-breaker
        # hints); shared by reference with the incremental engine so a
        # mutation here clamps its next capacity read.
        self._capacity_hints: Dict[str, float] = {}
        self._engine: Optional[IncrementalFairShare] = (
            IncrementalFairShare(
                wan_flow_cap=wan_flow_cap,
                counters=self.perf,
                hints=self._capacity_hints,
            )
            if incremental
            else None
        )
        self._flows: Dict[int, Flow] = {}
        self._flow_by_event: Dict[Event, Flow] = {}
        self._flow_ids = itertools.count()
        self._last_update = sim.now
        self._wake_version = 0
        self._recompute_pending = False
        # Event batching (incremental drive): seeds of the next solve.
        self._dirty_flows: Set[int] = set()
        self._dirty_links: Set[str] = set()
        self._dirty_all = False
        # Deadline heap of (projected finish, flow id, epoch) —
        # incremental drive only.
        self._deadlines: List[Tuple[float, int, int]] = []
        # flow id -> its live CascadePlan — vector drive only.
        self._plans: Dict[int, CascadePlan] = {}
        self.completed_flows: List[Flow] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def transfer(
        self,
        src_host: str,
        dst_host: str,
        size_bytes: float,
        tag: str = "",
        tenant: str = "",
    ) -> Event:
        """Start moving ``size_bytes`` from src to dst.

        Returns an event firing with the :class:`Flow` once the transfer
        (including propagation latency) completes.  Same-host transfers and
        empty payloads complete after the route latency alone.  ``tenant``
        attributes the bytes to a tenant and picks up that tenant's
        fair-share weight from :attr:`tenant_weights`.
        """
        if size_bytes < 0:
            raise ValueError(f"negative transfer size: {size_bytes}")
        flow_id = next(self._flow_ids)
        route = self.topology.route(src_host, dst_host)
        latency = self.topology.route_latency(src_host, dst_host)
        completion = self.sim.event(name=f"flow{flow_id}:done")
        weight = self.tenant_weights.get(tenant, 1.0) if tenant else 1.0
        flow = Flow(
            flow_id,
            src_host,
            dst_host,
            size_bytes,
            route,
            latency,
            tag,
            completion,
            started_at=self.sim.now,
            tenant=tenant,
            weight=weight,
        )
        if tenant and size_bytes > 0:
            # Admission-time tenant accounting (mirrors the shuffle
            # counters: charged here, refunded on cancel) — must
            # reconcile with the monitor's completion-time records.
            self.tenant_ledger.account(
                tenant,
                flow_id,
                size_bytes,
                wan=self.topology.datacenter_of(src_host)
                != self.topology.datacenter_of(dst_host),
            )
        if not route or size_bytes <= _DRAIN_FLOOR:
            self._finish_flow(flow, extra_delay=latency)
            return completion
        self._flows[flow_id] = flow
        self._flow_by_event[completion] = flow
        self.perf.note_admission(len(self._flows))
        if self._engine is not None:
            self._engine.add_flow(flow_id, route, weight=weight)
            self._dirty_flows.add(flow_id)
        else:
            self._advance_progress()
        # Batch rate recomputation: a reducer starting dozens of fetch
        # flows in one instant triggers a single solve, not one each.
        self._schedule_recompute()
        return flow.completion

    @property
    def active_flow_count(self) -> int:
        return len(self._flows)

    def active_flow_ids(self) -> Tuple[int, ...]:
        """The in-flight flow ids (sanitizer reconciliation excludes
        them: their admission charges have no monitor record yet)."""
        return tuple(self._flows)

    def active_flows(self) -> List[Flow]:
        """The in-flight flows, with ``remaining`` charged up to now."""
        if self.drive == "vector":
            for flow in self._flows.values():
                self._sync_flow(flow)
        elif self._engine is not None:
            for flow in self._flows.values():
                self._charge(flow)
        return list(self._flows.values())

    def current_rate(self, flow_event: Event) -> float:
        """The instantaneous rate of the flow owning ``flow_event``."""
        flow = self._flow_by_event.get(flow_event)
        if flow is None:
            return 0.0
        if self.drive == "vector":
            self._sync_flow(flow)
        return flow.rate

    def notify_capacity_change(
        self, changed_links: Optional[Iterable[Link]] = None
    ) -> None:
        """Re-solve rates after link capacities changed (jitter).

        Pass the perturbed ``changed_links`` to scope the re-solve to
        the components they carry; a change touching only idle links is
        then a no-op.  Without the argument every carried link is
        re-read (legacy behaviour).  Same-instant changes coalesce with
        pending arrivals/departures into one solve.
        """
        if not self._flows:
            if changed_links is not None:
                self.perf.jitter_noops += 1
            return
        if self._engine is None:
            self._advance_progress()
            self._reschedule_global()
            return
        if changed_links is None:
            self._dirty_all = True
            self._schedule_recompute()
            return
        touched = False
        for link in changed_links:
            if self._engine.update_capacity(link):
                self._dirty_links.add(link.name)
                touched = True
        if touched:
            self._schedule_recompute()
        else:
            self.perf.jitter_noops += 1

    def set_link_capacity(self, link: Link, capacity: float) -> None:
        """Set one link's capacity and re-solve its component.

        The one-stop entry point for runtime capacity changes (chaos
        WAN degradation/flaps, operational re-provisioning): mutates the
        link and scopes the fair-share re-solve to it, exactly like a
        jitter resample.
        """
        link.set_capacity(capacity)
        self.notify_capacity_change(changed_links=(link,))

    def set_link_degrade(self, link: Link, factor: float) -> None:
        """Apply a multiplicative chaos degrade to one link and re-solve.

        Unlike :meth:`set_link_capacity`, the factor overlays whatever
        nominal capacity the link's bandwidth process (jitter, static
        pin) maintains — a later jitter resample keeps the degrade.
        Reset with ``factor=1.0``.
        """
        link.set_degrade_factor(factor)
        self.notify_capacity_change(changed_links=(link,))

    def set_link_partition(self, link: Link, down: bool) -> None:
        """Partition (or heal) one directed link and re-solve.

        A partitioned link's effective capacity collapses to the
        partition floor regardless of its nominal capacity or degrade
        factor; in-flight flows stall until their health deadline fires
        and the retry machinery re-routes them.  Healing restores the
        capacity jitter/degrade currently prescribe.
        """
        link.set_partitioned(down)
        self.notify_capacity_change(changed_links=(link,))

    def set_capacity_hint(self, link: Link, rate: float) -> None:
        """Clamp the solver's view of ``link`` to ``rate`` bytes/second
        without touching the link itself (chaos and jitter keep owning
        the real capacity).  Used by the circuit breaker to model
        endpoint backoff on a sick path; a hint at or above the real
        capacity is a no-op by construction."""
        self._capacity_hints[link.name] = rate
        self.notify_capacity_change(changed_links=(link,))

    def clear_capacity_hint(self, link: Link) -> None:
        if self._capacity_hints.pop(link.name, None) is not None:
            self.notify_capacity_change(changed_links=(link,))

    def cancel(self, flow_event: Event) -> Optional[float]:
        """Abort the in-flight flow owning ``flow_event``.

        Returns the bytes it had delivered by now (recorded with the
        traffic monitor under the flow's tag, so monitor totals keep
        matching what actually crossed the links), or ``None`` when the
        flow already departed — its completion event is pending (only
        propagation latency remains) and the caller should await it
        instead.  The completion event of a cancelled flow never fires.
        """
        flow = self._flow_by_event.get(flow_event)
        if flow is None:
            return None
        if self.drive == "vector":
            # Replay the plan up to now for the exact delivered bytes,
            # then invalidate it: the survivors' schedules change once
            # the cancelled flow's share frees up, so they re-enter the
            # next resolve as dirty seeds.
            self._sync_flow(flow)
            plan = self._plans.get(flow.flow_id)
            if plan is not None:
                self._invalidate_plan(plan)
                self._dirty_flows.update(
                    fid for fid in plan.flow_ids if fid in self._flows
                )
                self._dirty_flows.discard(flow.flow_id)
        elif self._engine is not None:
            self._charge(flow)
        else:
            self._advance_progress()
        del self._flows[flow.flow_id]
        del self._flow_by_event[flow.completion]
        if self._engine is not None:
            self._engine.remove_flow(flow.flow_id)
            self._dirty_links.update(link.name for link in flow.route)
        # Freed capacity redistributes to the survivors (global drive
        # re-solves everything; stale deadline-heap entries for the
        # removed id are skipped on pop).
        self._schedule_recompute()
        flow.finished_at = self.sim.now
        delivered = flow.size_bytes - flow.remaining
        if delivered < 0:
            delivered = 0.0
        src_dc = self.topology.datacenter_of(flow.src_host)
        dst_dc = self.topology.datacenter_of(flow.dst_host)
        if flow.tenant:
            # Refund the bytes that never crossed the links: the charge
            # becomes exactly the delivered value the monitor records,
            # so admission-time totals reconcile with completion-time
            # records to the last bit.
            self.tenant_ledger.settle(flow.flow_id, delivered)
        if delivered > 0:
            self.monitor.record(
                src_dc, dst_dc, delivered, flow.tag, tenant=flow.tenant
            )
        return delivered

    def set_tenant_weight(self, tenant: str, weight: float) -> None:
        """Register ``tenant``'s fair-share weight (> 0).

        Applies to flows admitted *after* the call; in-flight flows
        keep the weight they were admitted with.
        """
        if not tenant:
            raise ValueError("tenant name must be non-empty")
        if weight <= 0:
            raise ValueError(f"tenant {tenant!r} has weight <= 0")
        self.tenant_weights[tenant] = float(weight)

    def solver_inputs(self) -> Tuple[Dict[int, Tuple[str, ...]], Dict[str, float]]:
        """The global (routes, capacities) dicts describing the current
        active set — feed to :func:`max_min_fair_rates` to cross-check
        allocations (used by the equivalence tests)."""
        if self._engine is not None:
            return self._engine.solver_inputs()
        return self._build_solver_inputs()

    def solver_weights(self) -> Optional[Dict[int, float]]:
        """The active set's flow-weight mapping, or ``None`` when every
        active flow weighs 1.0 (the unweighted fast path)."""
        if self._engine is not None:
            return self._engine.solver_weights()
        weights = {
            flow_id: flow.weight
            for flow_id, flow in self._flows.items()
            if flow.weight != 1.0
        }
        return weights or None

    def perf_snapshot(self) -> Dict[str, float]:
        """Perf counters plus the topology's route-cache statistics."""
        snapshot = self.perf.as_dict()
        snapshot["route_cache_hits"] = float(self.topology.route_cache_hits)
        snapshot["route_cache_misses"] = float(self.topology.route_cache_misses)
        return snapshot

    # ------------------------------------------------------------------
    # Shared internals
    # ------------------------------------------------------------------
    def _schedule_recompute(self) -> None:
        if self._recompute_pending:
            return
        self._recompute_pending = True
        trigger = self.sim.event(name="fabric:recompute")
        trigger.add_callback(self._run_recompute)
        trigger.succeed(None)

    def _run_recompute(self, _event) -> None:
        self._recompute_pending = False
        self.perf.events += 1
        if self._engine is None:
            self._advance_progress()
            self._reschedule_global()
        elif self.drive == "vector":
            self._resolve_dirty_vector()
        else:
            self._resolve_dirty()

    def _finish_flow(self, flow: Flow, extra_delay: float) -> None:
        if self.sanitizer is not None:
            # Every flow funnels through here exactly once on every
            # drive, so the remaining-bytes invariant is always
            # exercised even on runs with no mid-plan perturbations.
            self.sanitizer.check_remaining(flow.flow_id, flow.remaining)
        flow.finished_at = self.sim.now + extra_delay
        if flow.size_bytes > 0:
            # Zero-byte transfers are control-plane no-ops; recording
            # them would pollute the traffic matrices with empty entries.
            src_dc = self.topology.datacenter_of(flow.src_host)
            dst_dc = self.topology.datacenter_of(flow.dst_host)
            self.monitor.record(
                src_dc, dst_dc, flow.size_bytes, flow.tag, tenant=flow.tenant
            )
        self.completed_flows.append(flow)
        if extra_delay > 0:
            done = self.sim.timeout(extra_delay)
            done.add_callback(lambda _event: flow.completion.succeed(flow))
        else:
            flow.completion.succeed(flow)

    # ------------------------------------------------------------------
    # Vector drive (cascade plans)
    # ------------------------------------------------------------------
    def _sync_flow(self, flow: Flow) -> None:
        """Refresh ``remaining``/``rate`` from the flow's live plan.

        The vector drive never touches Flow objects between
        perturbations (their state lives in the plan arrays), so every
        external read goes through this replay.
        """
        plan = self._plans.get(flow.flow_id)
        if plan is None or not plan.alive:
            return
        now = self.sim.now
        pos = plan.pos_of[flow.flow_id]
        flow.remaining = plan.remaining_at(pos, now)
        flow.rate = plan.rate_at(pos, now)
        flow.charged_at = now
        if self.sanitizer is not None:
            self.sanitizer.check_remaining(flow.flow_id, flow.remaining)

    def _invalidate_plan(self, plan: CascadePlan) -> None:
        """Kill a plan: lazily cancel its timers and replay every
        still-active member up to now so ``remaining`` is exact before
        the re-plan."""
        if not plan.alive:
            return
        plan.alive = False
        for handle in plan.timers:
            handle.cancel()
        now = self.sim.now
        for pos, flow_id in enumerate(plan.flow_ids):
            flow = self._flows.get(flow_id)
            if flow is None:
                continue
            flow.remaining = plan.remaining_at(pos, now)
            flow.rate = plan.rate_at(pos, now)
            flow.charged_at = now
            if self._plans.get(flow_id) is plan:
                del self._plans[flow_id]

    def _resolve_dirty_vector(self) -> None:
        """Invalidate perturbed plans, retire drained flows, and build
        fresh cascade plans per connected component."""
        engine = self._engine
        assert engine is not None
        if self._dirty_all:
            self._dirty_links |= engine.refresh_capacities()
            self._dirty_all = False
        dirty_flows, self._dirty_flows = self._dirty_flows, set()
        dirty_links, self._dirty_links = self._dirty_links, set()
        # repro-lint: allow[DET002] measures real solver cost for the perf counters; never feeds simulated time
        started = time.perf_counter()
        # Seed set only (no union BFS — each component is discovered
        # exactly once during partitioning below).
        seeds = {f for f in dirty_flows if f in self._flows}
        for name in dirty_links:
            seeds.update(engine.flows_on(name))
        # A plan may span flows a component BFS no longer reaches (the
        # component split mid-plan); the whole plan dies, so all its
        # still-active members get re-planned too.  Plans are iterated
        # in flow-id order (flow_ids is sorted, so [0] is the plan's
        # minimum): a raw set of plan objects would iterate in
        # memory-address order and leak it into the seed set's history.
        for plan in sorted(
            {
                self._plans[flow_id]
                for flow_id in seeds
                if flow_id in self._plans
            },
            key=lambda p: p.flow_ids[0],
        ):
            members = [f for f in plan.flow_ids if f in self._flows]
            self._invalidate_plan(plan)
            seeds.update(members)
        if not seeds:
            return
        # One plan per connected component; sorted worklist iteration
        # keeps plan construction (and therefore timer sequence
        # numbers) fully deterministic.
        visited: Set[int] = set()
        now = self.sim.now
        worklist = sorted(seeds)
        cursor = 0
        while cursor < len(worklist):
            seed = worklist[cursor]
            cursor += 1
            if seed in visited or seed not in self._flows:
                continue
            component = engine.component((seed,), ())
            visited |= component
            # Invalidate plans of flows pulled in via connectivity that
            # were not dirty seeds themselves (charges them to now).
            # Such a plan may span members this component BFS cannot
            # reach (it split mid-plan) — queue them for re-planning.
            # Sorted plan order keeps the worklist append order (and so
            # component planning order and timer sequence numbers) a
            # pure function of the flow ids, not of object addresses.
            for plan in sorted(
                {self._plans[f] for f in component if f in self._plans},
                key=lambda p: p.flow_ids[0],
            ):
                for flow_id in plan.flow_ids:
                    if (
                        flow_id not in component
                        and flow_id not in visited
                        and flow_id in self._flows
                    ):
                        worklist.append(flow_id)
                self._invalidate_plan(plan)
            # Retire members that drained exactly by now (e.g. a
            # capacity perturbation landing on a departure instant,
            # before the departure timer fired within the same batch).
            for flow_id in sorted(component):
                flow = self._flows[flow_id]
                if flow.remaining <= _drain_threshold(flow.size_bytes):
                    component.discard(flow_id)
                    self._depart(flow)
            if not component:
                continue
            members = sorted(component)
            remaining = [self._flows[f].remaining for f in members]
            routes, capacities = engine.subproblem(members)
            plan = build_plan(
                members,
                remaining,
                routes,
                capacities,
                now,
                weights=engine.weights_for(members),
            )
            for pos, flow_id in enumerate(plan.flow_ids):
                flow = self._flows[flow_id]
                flow.rate = plan.initial_rate(pos)
                flow.charged_at = now
                flow.epoch += 1
                self._plans[flow_id] = plan
            if self.sanitizer is not None:
                self.sanitizer.check_rates(
                    {
                        flow_id: plan.initial_rate(pos)
                        for pos, flow_id in enumerate(plan.flow_ids)
                    },
                    routes,
                    capacities,
                )
            for index, depart_time in enumerate(plan.depart_times()):
                plan.timers.append(
                    self.sim.call_at(
                        depart_time,
                        self._make_depart_timer(plan, index),
                    )
                )
            self.perf.solves += 1
            self.perf.flows_touched += len(members)
        # repro-lint: allow[DET002] measures real solver cost for the perf counters; never feeds simulated time
        self.perf.solver_seconds += time.perf_counter() - started

    def _make_depart_timer(self, plan: CascadePlan, segment: int):
        """The departure callback for one plan segment boundary."""

        def fire() -> None:
            if not plan.alive:  # pragma: no cover - timers are cancelled
                return
            self.perf.events += 1
            now = self.sim.now
            flows = self._flows
            plans = self._plans
            flow_ids = plan.flow_ids
            for pos in plan.departs[segment]:
                flow_id = flow_ids[pos]
                flow = flows.get(flow_id)
                if flow is None:
                    continue
                flow.remaining = 0.0
                flow.charged_at = now
                if plans.get(flow_id) is plan:
                    del plans[flow_id]
                self._depart(flow)
            # No re-solve: the plan already models the post-departure
            # rates of every surviving member.

        return fire

    # ------------------------------------------------------------------
    # Incremental drive
    # ------------------------------------------------------------------
    def _charge(self, flow: Flow) -> None:
        """Charge the flow for time elapsed at its current rate."""
        elapsed = self.sim.now - flow.charged_at
        if elapsed > 0:
            flow.remaining -= flow.rate * elapsed
            if flow.remaining < 0:
                flow.remaining = 0.0
            flow.charged_at = self.sim.now
            if self.sanitizer is not None:
                self.sanitizer.check_remaining(flow.flow_id, flow.remaining)

    def _depart(self, flow: Flow) -> None:
        """Remove a drained flow from the graph and complete it."""
        del self._flows[flow.flow_id]
        del self._flow_by_event[flow.completion]
        assert self._engine is not None
        self._engine.remove_flow(flow.flow_id)
        self._finish_flow(flow, extra_delay=flow.latency)

    def _resolve_dirty(self) -> None:
        """Charge, retire, and re-solve the dirty connected component."""
        engine = self._engine
        assert engine is not None
        if self._dirty_all:
            self._dirty_links |= engine.refresh_capacities()
            self._dirty_all = False
        dirty_flows, self._dirty_flows = self._dirty_flows, set()
        dirty_links, self._dirty_links = self._dirty_links, set()
        component = engine.component(dirty_flows, dirty_links)
        if not component:
            self._schedule_wake()
            return
        for flow_id in component:
            self._charge(self._flows[flow_id])
        for flow_id in [
            flow_id
            for flow_id in component
            if self._flows[flow_id].remaining
            <= _drain_threshold(self._flows[flow_id].size_bytes)
        ]:
            component.discard(flow_id)
            self._depart(self._flows[flow_id])
        if component:
            engine.solve(component)
            now = self.sim.now
            for flow_id in component:
                flow = self._flows[flow_id]
                flow.rate = engine.rate(flow_id)
                flow.epoch += 1
                heapq.heappush(
                    self._deadlines,
                    (now + flow.remaining / flow.rate, flow_id, flow.epoch),
                )
            if self.sanitizer is not None:
                members = sorted(component)
                routes, capacities = engine.subproblem(members)
                self.sanitizer.check_rates(
                    {f: engine.rate(f) for f in members}, routes, capacities
                )
        self._schedule_wake()

    def _schedule_wake(self) -> None:
        """Plan the next wake at the earliest live projected completion."""
        heap = self._deadlines
        while heap:
            _deadline, flow_id, epoch = heap[0]
            flow = self._flows.get(flow_id)
            if flow is None or flow.epoch != epoch:
                heapq.heappop(heap)
                continue
            break
        self._wake_version += 1
        if not heap:
            return
        deadline, flow_id, _epoch = heap[0]
        head = self._flows[flow_id]
        delay = deadline - self.sim.now
        # Progress floor: guarantee the head flow moves at least
        # _DRAIN_FLOOR bytes per wake so float residue cannot stall the
        # clock (mirrors the legacy horizon floor).
        floor = _DRAIN_FLOOR / head.rate if head.rate > 0 else _DRAIN_FLOOR
        if delay < floor:
            delay = floor
        version = self._wake_version
        wake = self.sim.timeout(delay, name=f"fabric:wake@{version}")
        wake.add_callback(lambda _event: self._on_wake(version))

    def _on_wake(self, version: int) -> None:
        if version != self._wake_version:
            return  # superseded by a newer reschedule
        self.perf.events += 1
        now = self.sim.now
        # Entries within a few ulps of now are due; early pops are safe
        # (an undrained flow is simply re-queued at its true deadline).
        horizon = now + 1e-12 * max(1.0, now)
        heap = self._deadlines
        departures = False
        while heap:
            deadline, flow_id, epoch = heap[0]
            flow = self._flows.get(flow_id)
            if flow is None or flow.epoch != epoch:
                heapq.heappop(heap)
                continue
            if deadline > horizon:
                break
            heapq.heappop(heap)
            self._charge(flow)
            if flow.remaining <= _drain_threshold(flow.size_bytes):
                self._dirty_links.update(link.name for link in flow.route)
                self._depart(flow)
                departures = True
            else:
                flow.epoch += 1
                heapq.heappush(
                    heap, (now + flow.remaining / flow.rate, flow_id, flow.epoch)
                )
        if departures:
            # Departures free capacity: re-solve their components (the
            # trigger coalesces with any same-instant arrivals).
            self._schedule_recompute()
        else:
            self._schedule_wake()

    # ------------------------------------------------------------------
    # Legacy global drive (baseline; also the reference in tests)
    # ------------------------------------------------------------------
    def _advance_progress(self) -> None:
        """Charge each active flow for the time elapsed at its old rate."""
        elapsed = self.sim.now - self._last_update
        self._last_update = self.sim.now
        if elapsed <= 0:
            return
        for flow in self._flows.values():
            flow.remaining -= flow.rate * elapsed
            if flow.remaining < 0:
                flow.remaining = 0.0

    def _build_solver_inputs(
        self,
    ) -> Tuple[Dict[int, Tuple[str, ...]], Dict[str, float]]:
        routes: Dict[int, Tuple[str, ...]] = {}
        capacities: Dict[str, float] = {}
        hints = self._capacity_hints
        for flow_id, flow in self._flows.items():
            names = [link.name for link in flow.route]
            for link in flow.route:
                capacity = link.capacity
                hint = hints.get(link.name)
                if hint is not None and hint < capacity:
                    capacity = hint
                capacities[link.name] = capacity
            # The TCP cap is a virtual per-flow link on WAN routes.
            if self.wan_flow_cap is not None and any(
                link.is_wan for link in flow.route
            ):
                cap_name = f"cap:{flow_id}"
                names.append(cap_name)
                capacities[cap_name] = self.wan_flow_cap
            routes[flow_id] = tuple(names)
        return routes, capacities

    def _recompute_rates(self) -> None:
        # repro-lint: allow[DET002] measures real solver cost for the perf counters; never feeds simulated time
        started = time.perf_counter()
        routes, capacities = self._build_solver_inputs()
        rates = max_min_fair_rates(
            routes, capacities, flow_weights=self.solver_weights()
        )
        for flow_id, flow in self._flows.items():
            flow.rate = rates[flow_id]
        if self.sanitizer is not None:
            self.sanitizer.check_rates(rates, routes, capacities)
        self.perf.solves += 1
        self.perf.flows_touched += len(self._flows)
        # repro-lint: allow[DET002] measures real solver cost for the perf counters; never feeds simulated time
        self.perf.solver_seconds += time.perf_counter() - started

    def _reschedule_global(self) -> None:
        """Complete drained flows, re-solve rates, and plan the next wake."""
        # Retire every flow that drained by now (possibly several at once).
        drained = [
            flow
            for flow in self._flows.values()
            if flow.remaining <= _drain_threshold(flow.size_bytes)
        ]
        for flow in drained:
            del self._flows[flow.flow_id]
            del self._flow_by_event[flow.completion]
            self._finish_flow(flow, extra_delay=flow.latency)

        if not self._flows:
            self._wake_version += 1
            return

        self._recompute_rates()
        horizon = min(
            flow.remaining / flow.rate
            for flow in self._flows.values()
            if flow.rate > 0
        )
        # Guard against a zero horizon caused by floating-point residue.
        max_rate = max(flow.rate for flow in self._flows.values())
        horizon = max(horizon, _DRAIN_FLOOR / max_rate)
        self._wake_version += 1
        version = self._wake_version
        wake = self.sim.timeout(horizon, name=f"fabric:wake@{version}")
        wake.add_callback(lambda _event: self._on_wake_global(version))

    def _on_wake_global(self, version: int) -> None:
        if version != self._wake_version:
            return  # superseded by a newer reschedule
        self.perf.events += 1
        self._advance_progress()
        self._reschedule_global()


def ideal_transfer_time(
    topology: Topology, src_host: str, dst_host: str, size_bytes: float
) -> float:
    """Lower-bound transfer time assuming the flow is alone on its route."""
    route = topology.route(src_host, dst_host)
    latency = sum(link.latency for link in route)
    if not route or size_bytes <= 0:
        return latency
    bottleneck = min(link.capacity for link in route)
    if bottleneck <= 0 or math.isinf(bottleneck):  # pragma: no cover
        return latency
    return latency + size_bytes / bottleneck
