"""Incremental max-min fair-share engine.

The naive fabric re-solves *all* active flows on every arrival,
departure, and capacity change — O(flows x route-length) per event and
O(N^2) over a run.  This engine maintains the flow<->link bipartite
graph incrementally so each event only re-solves the **connected
component** of flows and links it actually touches:

* flows in disjoint components keep their frozen rates (a LAN-only
  flow in ``us-west`` never triggers a re-solve of the Tokyo<->Virginia
  WAN component);
* the route and capacity dictionaries are maintained across solves —
  adding a flow inserts its (precomputed, memoized) route once, and a
  component solve slices sub-dicts instead of rebuilding the world;
* a capacity change on a link with zero active flows is a no-op.

The solver itself is the unchanged pure progressive-filling
:func:`repro.network.fair_share.max_min_fair_rates`; because the
max-min allocation is unique and components are independent constraint
systems, component-scoped solving provably yields the same rates as a
global from-scratch solve (property-tested in
``tests/network/test_incremental_fair_share.py``).

The per-flow WAN rate cap is modelled exactly as in the global path: a
virtual ``cap:<flow-id>`` link crossed only by that flow.  Virtual cap
links never connect components.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.metrics.perf import FabricPerfCounters
from repro.network.fair_share import max_min_fair_rates
from repro.network.topology import Link

FlowId = int


class IncrementalFairShare:
    """Flow<->link graph plus component-scoped max-min solving."""

    def __init__(
        self,
        wan_flow_cap: Optional[float] = None,
        counters: Optional[FabricPerfCounters] = None,
        hints: Optional[Dict[str, float]] = None,
    ) -> None:
        self.wan_flow_cap = wan_flow_cap
        self.counters = counters if counters is not None else FabricPerfCounters()
        # link name -> health-advised capacity ceiling (shared with the
        # fabric, which mutates it); clamps every capacity read so an
        # open circuit breaker can throttle a sick path below its
        # nominal bandwidth without touching the Link object.
        self._hints: Dict[str, float] = hints if hints is not None else {}
        # flow id -> full solver route (shared link names + optional
        # virtual cap link), built once at admission and reused by every
        # subsequent solve.
        self._routes: Dict[FlowId, Tuple[str, ...]] = {}
        # flow id -> the *shared* link names only (graph edges).
        self._shared: Dict[FlowId, Tuple[str, ...]] = {}
        # shared link name -> ids of flows currently crossing it.
        self._link_flows: Dict[str, Set[FlowId]] = {}
        # shared link name -> Link object (to refresh capacities).
        self._links: Dict[str, Link] = {}
        # link name (shared or virtual cap) -> current capacity; kept in
        # lockstep with the graph instead of being rebuilt per solve.
        self._capacities: Dict[str, float] = {}
        self._rates: Dict[FlowId, float] = {}
        # flow id -> fair-share weight; ``_non_unit`` counts flows whose
        # weight != 1.0 so the all-unit case hands the solvers *no*
        # weight mapping at all and stays on the bit-identical
        # unweighted code path.
        self._weights: Dict[FlowId, float] = {}
        self._non_unit = 0

    def _effective_capacity(self, link: Link) -> float:
        hint = self._hints.get(link.name)
        capacity = link.capacity
        if hint is not None and hint < capacity:
            return hint
        return capacity

    # ------------------------------------------------------------------
    # Graph maintenance
    # ------------------------------------------------------------------
    def add_flow(
        self, flow_id: FlowId, route: Sequence[Link], weight: float = 1.0
    ) -> None:
        """Register a flow; capacities of newly-carried links are read
        fresh from the :class:`Link` objects (they may have jittered
        while idle).  ``weight`` is the flow's weighted-fair-share
        weight (tenant weight; > 0)."""
        if weight <= 0:
            raise ValueError(f"flow {flow_id!r} has weight <= 0")
        self._weights[flow_id] = weight
        if weight != 1.0:
            self._non_unit += 1
        names: List[str] = []
        for link in route:
            name = link.name
            names.append(name)
            carriers = self._link_flows.get(name)
            if carriers is None:
                self._link_flows[name] = {flow_id}
                self._links[name] = link
                self._capacities[name] = self._effective_capacity(link)
            else:
                carriers.add(flow_id)
        self._shared[flow_id] = tuple(names)
        if self.wan_flow_cap is not None and any(l.is_wan for l in route):
            cap_name = f"cap:{flow_id}"
            names.append(cap_name)
            self._capacities[cap_name] = self.wan_flow_cap
        self._routes[flow_id] = tuple(names)
        self._rates[flow_id] = 0.0

    def remove_flow(self, flow_id: FlowId) -> None:
        # dict.fromkeys dedupes while keeping order: a route may cross
        # the same link twice, but the carrier set must be unwound once.
        for name in dict.fromkeys(self._shared.pop(flow_id)):
            carriers = self._link_flows[name]
            carriers.discard(flow_id)
            if not carriers:
                del self._link_flows[name]
                del self._links[name]
                del self._capacities[name]
        self._capacities.pop(f"cap:{flow_id}", None)
        del self._routes[flow_id]
        del self._rates[flow_id]
        if self._weights.pop(flow_id) != 1.0:
            self._non_unit -= 1

    def update_capacity(self, link: Link) -> bool:
        """Absorb a capacity change.  Returns True when the link carries
        active flows (a re-solve of its component is needed); an idle
        link is a pure no-op — its fresh capacity is read at the next
        admission that crosses it."""
        if link.name not in self._link_flows:
            return False
        self._capacities[link.name] = self._effective_capacity(link)
        return True

    def refresh_capacities(self) -> Set[str]:
        """Re-read every carried link's capacity (unscoped notification);
        returns the carried link names, all considered dirty."""
        for name, link in self._links.items():
            self._capacities[name] = self._effective_capacity(link)
        return set(self._links)

    # ------------------------------------------------------------------
    # Component solving
    # ------------------------------------------------------------------
    def component(
        self, seed_flows: Iterable[FlowId], seed_links: Iterable[str]
    ) -> Set[FlowId]:
        """Every flow connected (via shared links) to the seeds."""
        stack: List[FlowId] = [f for f in seed_flows if f in self._routes]
        for name in seed_links:
            stack.extend(self._link_flows.get(name, ()))
        component: Set[FlowId] = set()
        seen_links: Set[str] = set()
        while stack:
            flow_id = stack.pop()
            if flow_id in component:
                continue
            component.add(flow_id)
            for name in self._shared[flow_id]:
                if name in seen_links:
                    continue
                seen_links.add(name)
                for other in self._link_flows[name]:
                    if other not in component:
                        stack.append(other)
        return component

    def subproblem(
        self, flow_ids: Iterable[FlowId]
    ) -> Tuple[Dict[FlowId, Tuple[str, ...]], Dict[str, float]]:
        """The (routes, capacities) solver inputs restricted to
        ``flow_ids`` — the constraint system the vector drive's cascade
        planner consumes."""
        routes = {flow_id: self._routes[flow_id] for flow_id in flow_ids}
        capacities = {
            name: self._capacities[name]
            for names in routes.values()
            for name in names
        }
        return routes, capacities

    def flows_on(self, name: str) -> Iterable[FlowId]:
        """The flows currently crossing link ``name`` (possibly none)."""
        return self._link_flows.get(name, ())

    def weights_for(
        self, flow_ids: Iterable[FlowId]
    ) -> Optional[Dict[FlowId, float]]:
        """The weight mapping for ``flow_ids`` — or ``None`` when every
        registered flow weighs 1.0, so callers hand the solvers nothing
        and stay on the bit-identical unweighted path."""
        if not self._non_unit:
            return None
        return {flow_id: self._weights[flow_id] for flow_id in flow_ids}

    def solve(self, flow_ids: Set[FlowId]) -> None:
        """Re-solve exactly ``flow_ids`` (one or more full components)
        against the maintained capacity dict; other flows keep their
        frozen rates."""
        if not flow_ids:
            return
        # repro-lint: allow[DET002] measures real solver cost for the perf counters; never feeds simulated time
        started = perf_counter()
        routes, capacities = self.subproblem(flow_ids)
        rates = max_min_fair_rates(
            routes, capacities, flow_weights=self.weights_for(flow_ids)
        )
        self._rates.update(rates)
        counters = self.counters
        counters.solves += 1
        counters.flows_touched += len(flow_ids)
        # repro-lint: allow[DET002] measures real solver cost for the perf counters; never feeds simulated time
        counters.solver_seconds += perf_counter() - started

    def rate(self, flow_id: FlowId) -> float:
        return self._rates[flow_id]

    # ------------------------------------------------------------------
    # Introspection (tests, verification)
    # ------------------------------------------------------------------
    def solver_inputs(self) -> Tuple[Dict[FlowId, Tuple[str, ...]], Dict[str, float]]:
        """Copies of the global (routes, capacities) solver inputs —
        feed them to :func:`max_min_fair_rates` to cross-check the
        incremental rates against a from-scratch solve."""
        return dict(self._routes), dict(self._capacities)

    def solver_weights(self) -> Optional[Dict[FlowId, float]]:
        """The non-unit flow weights, or ``None`` when all flows weigh
        1.0 (absent flows weigh 1.0 by solver contract)."""
        if not self._non_unit:
            return None
        return {
            flow_id: weight
            for flow_id, weight in self._weights.items()
            if weight != 1.0
        }

    @property
    def flow_count(self) -> int:
        return len(self._routes)
