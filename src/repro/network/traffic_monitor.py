"""Traffic accounting, most importantly cross-datacenter bytes (Fig. 8).

The monitor is deliberately passive: the fabric reports every finished
flow, and the monitor aggregates by datacenter pair and by caller-supplied
tag (e.g. ``"shuffle"``, ``"transfer_to"``, ``"input"``).
"""

from __future__ import annotations

from collections import defaultdict
from math import fsum
from typing import Dict, List, Tuple

MB = 1_000_000.0


class TrafficMonitor:
    """Aggregates transferred bytes by datacenter pair and by tag."""

    def __init__(self) -> None:
        self.total_bytes = 0.0
        self.cross_dc_bytes = 0.0
        self.by_pair: Dict[Tuple[str, str], float] = defaultdict(float)
        self.by_tag: Dict[str, float] = defaultdict(float)
        self.cross_dc_by_tag: Dict[str, float] = defaultdict(float)
        # Per-tenant records are kept as per-flow entries and reduced
        # with math.fsum on read: exact and accumulation-order-free, so
        # they reconcile bit-for-bit with the admission-time
        # TenantLedger (which sums the identical multiset).  Untenanted
        # runs never touch these.
        self._tenant_entries: Dict[str, List[float]] = defaultdict(list)
        self._tenant_wan_entries: Dict[str, List[float]] = defaultdict(list)
        self.flow_count = 0

    def record(
        self,
        src_dc: str,
        dst_dc: str,
        size_bytes: float,
        tag: str = "",
        tenant: str = "",
    ) -> None:
        """Account one finished flow (``tenant`` attributes multi-tenant
        traffic; untenanted flows leave the tenant matrices alone)."""
        self.flow_count += 1
        self.total_bytes += size_bytes
        self.by_pair[(src_dc, dst_dc)] += size_bytes
        if tag:
            self.by_tag[tag] += size_bytes
        if tenant:
            self._tenant_entries[tenant].append(size_bytes)
        if src_dc != dst_dc:
            self.cross_dc_bytes += size_bytes
            if tag:
                self.cross_dc_by_tag[tag] += size_bytes
            if tenant:
                self._tenant_wan_entries[tenant].append(size_bytes)

    @property
    def by_tenant(self) -> Dict[str, float]:
        """Delivered bytes per tenant (exact, order-independent sum)."""
        return {
            tenant: fsum(entries)
            for tenant, entries in self._tenant_entries.items()
        }

    @property
    def cross_dc_by_tenant(self) -> Dict[str, float]:
        """Cross-datacenter delivered bytes per tenant."""
        return {
            tenant: fsum(entries)
            for tenant, entries in self._tenant_wan_entries.items()
        }

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    @property
    def cross_dc_megabytes(self) -> float:
        return self.cross_dc_bytes / MB

    def cross_dc_bytes_from(self, datacenter: str) -> float:
        return sum(
            size
            for (src, dst), size in self.by_pair.items()
            if src == datacenter and dst != datacenter
        )

    def cross_dc_bytes_into(self, datacenter: str) -> float:
        return sum(
            size
            for (src, dst), size in self.by_pair.items()
            if dst == datacenter and src != datacenter
        )

    def snapshot(self) -> Dict[str, float]:
        """A flat summary used by the experiment harness."""
        return {
            "total_bytes": self.total_bytes,
            "cross_dc_bytes": self.cross_dc_bytes,
            "cross_dc_megabytes": self.cross_dc_megabytes,
            "flow_count": float(self.flow_count),
        }

    def reset(self) -> None:
        self.__init__()
