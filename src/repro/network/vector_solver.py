"""Vectorized max-min fair allocation over a CSR link-incidence matrix.

This is the numpy twin of the scalar progressive-filling solver in
:mod:`repro.network.fair_share`.  Flows and links are dense integer
indices; a flow's route is a slice of the ``indices`` array (CSR
layout: flow ``f`` traverses ``indices[indptr[f]:indptr[f+1]]``,
multiplicity preserved — a route may cross the same link twice and
then consumes capacity per traversal, exactly like the scalar solver).

Each filling round is pure array work: the per-link *crossing count*
is a ``bincount`` over the active flows' route entries, the bottleneck
share is a masked minimum of ``residual / crossing``, saturation is a
compare, and the flows frozen by a saturated link fall out of a
``logical_or.reduceat`` over the route slices.  The scalar solver
stays the property-tested oracle: :func:`max_min_fair_rates_numpy`
must agree with it to 1e-9 relative on arbitrary topologies (see
``tests/network/test_vector_solver.py``).

The module also hosts the *cascade* kernel used by the fabric's vector
drive: given the remaining bytes of every flow in a component, it
plays the fluid model forward through successive departures entirely
in numpy, producing the component's full departure schedule in one
call — the event loop then fires precomputed completion timers instead
of re-solving per departure (see :mod:`repro.network.cascade`).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Sequence, Tuple

import numpy as np

# Same tolerance family as the scalar solver.
_EPSILON = 1e-12


def progressive_fill(
    indices: np.ndarray,
    indptr: np.ndarray,
    flow_of_entry: np.ndarray,
    capacities: np.ndarray,
    active: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Max-min rates for the ``active`` flows of one constraint system.

    Args:
        indices: concatenated link ids per flow (CSR data, multiplicity
            preserved).  Every flow must have a non-empty route.
        indptr: CSR offsets, ``len == num_flows + 1``.
        flow_of_entry: flow id per position of ``indices`` (i.e.
            ``np.repeat(arange(F), np.diff(indptr))``, precomputed by
            the caller since it is reusable across calls).
        capacities: per-link capacity array (bytes/second, > 0 for
            every link referenced by an active flow).
        active: boolean mask of flows to solve; inactive flows get rate
            0 and consume nothing.
        weights: optional per-flow weight array (> 0) for *weighted*
            max-min fairness: a flow's rate is its weight times a
            shared fair level.  ``None`` keeps the exact unweighted
            code path (bit-identical for weight-1 callers).

    Returns:
        rates array (num_flows,), zero for inactive flows.
    """
    if weights is not None:
        return _progressive_fill_weighted(
            indices, indptr, flow_of_entry, capacities, active, weights
        )
    num_links = len(capacities)
    rates = np.zeros(len(indptr) - 1)
    if not active.any():
        return rates
    active = active.copy()
    entry_active = active[flow_of_entry]
    crossing = np.bincount(
        indices[entry_active], minlength=num_links
    ).astype(float)
    residual = capacities.astype(float, copy=True)
    floor = _EPSILON * np.maximum(1.0, residual)
    while True:
        carried = crossing > 0.0
        if not carried.any():
            break
        bottleneck = np.min(residual[carried] / crossing[carried])
        rates[active] += bottleneck
        residual -= bottleneck * crossing
        np.maximum(residual, 0.0, out=residual)
        saturated = residual <= floor
        # A flow freezes when any link on its route saturates.  The
        # reduceat runs over *all* flows (segments are non-empty by
        # contract); the active mask scopes the result.
        frozen = active & np.logical_or.reduceat(
            saturated[indices], indptr[:-1]
        )
        if not frozen.any():
            # Numerical corner: freeze everything at the minimum share
            # to guarantee termination (cannot happen in exact
            # arithmetic) — mirrors the scalar solver.
            frozen = active.copy()
        active &= ~frozen
        if not active.any():
            break
        frozen_entries = frozen[flow_of_entry] & entry_active
        crossing -= np.bincount(
            indices[frozen_entries], minlength=num_links
        )
        entry_active &= ~frozen_entries
        np.maximum(crossing, 0.0, out=crossing)
    return rates


def _progressive_fill_weighted(
    indices: np.ndarray,
    indptr: np.ndarray,
    flow_of_entry: np.ndarray,
    capacities: np.ndarray,
    active: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Weighted twin of the unweighted fill loop above.

    The per-link crossing *count* becomes the per-occurrence weight
    sum; an integer carrier count rides along so a link whose carriers
    all froze drops out exactly instead of surviving on float residue.
    """
    num_links = len(capacities)
    rates = np.zeros(len(indptr) - 1)
    if not active.any():
        return rates
    active = active.copy()
    entry_active = active[flow_of_entry]
    entry_weight = weights[flow_of_entry]
    carriers = np.bincount(indices[entry_active], minlength=num_links)
    crossing = np.bincount(
        indices[entry_active],
        weights=entry_weight[entry_active],
        minlength=num_links,
    )
    residual = capacities.astype(float, copy=True)
    floor = _EPSILON * np.maximum(1.0, residual)
    while True:
        carried = carriers > 0
        if not carried.any():
            break
        bottleneck = np.min(residual[carried] / crossing[carried])
        rates[active] += bottleneck * weights[active]
        residual -= bottleneck * crossing
        np.maximum(residual, 0.0, out=residual)
        saturated = residual <= floor
        frozen = active & np.logical_or.reduceat(
            saturated[indices], indptr[:-1]
        )
        if not frozen.any():
            frozen = active.copy()
        active &= ~frozen
        if not active.any():
            break
        frozen_entries = frozen[flow_of_entry] & entry_active
        carriers -= np.bincount(indices[frozen_entries], minlength=num_links)
        crossing -= np.bincount(
            indices[frozen_entries],
            weights=entry_weight[frozen_entries],
            minlength=num_links,
        )
        entry_active &= ~frozen_entries
        crossing[carriers <= 0] = 0.0
        np.maximum(crossing, 0.0, out=crossing)
    return rates


def build_csr(
    routes: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate per-flow link-id arrays into (indices, indptr, flow_of_entry)."""
    lengths = np.fromiter(
        (len(route) for route in routes), dtype=np.intp, count=len(routes)
    )
    indptr = np.zeros(len(routes) + 1, dtype=np.intp)
    np.cumsum(lengths, out=indptr[1:])
    if len(routes):
        indices = np.concatenate(routes)
    else:
        indices = np.zeros(0, dtype=np.intp)
    flow_of_entry = np.repeat(np.arange(len(routes), dtype=np.intp), lengths)
    return indices, indptr, flow_of_entry


def max_min_fair_rates_numpy(
    flow_routes: Mapping[Hashable, Sequence[Hashable]],
    link_capacities: Mapping[Hashable, float],
    flow_weights: Optional[Mapping[Hashable, float]] = None,
) -> Dict[Hashable, float]:
    """Drop-in vectorized equivalent of :func:`~repro.network.
    fair_share.max_min_fair_rates` (same dict API, same semantics:
    empty routes get ``inf``, capacity is consumed per traversal for
    routes crossing a link more than once, optional per-flow weights
    for weighted fairness — flows absent from the mapping weigh 1.0)."""
    rates: Dict[Hashable, float] = {}
    constrained = []
    for flow_id, route in flow_routes.items():
        if route:
            constrained.append(flow_id)
        else:
            rates[flow_id] = float("inf")
    if not constrained:
        return rates

    link_ids: Dict[Hashable, int] = {}
    capacities = []
    routes = []
    for flow_id in constrained:
        row = np.empty(len(flow_routes[flow_id]), dtype=np.intp)
        for position, link in enumerate(flow_routes[flow_id]):
            index = link_ids.get(link)
            if index is None:
                capacity = float(link_capacities[link])
                if capacity <= 0:
                    raise ValueError(f"link {link!r} has capacity <= 0")
                index = len(link_ids)
                link_ids[link] = index
                capacities.append(capacity)
            row[position] = index
        routes.append(row)

    weight_array: Optional[np.ndarray] = None
    if flow_weights:
        weight_array = np.empty(len(constrained))
        for position, flow_id in enumerate(constrained):
            weight = float(flow_weights.get(flow_id, 1.0))
            if weight <= 0:
                raise ValueError(f"flow {flow_id!r} has weight <= 0")
            weight_array[position] = weight

    indices, indptr, flow_of_entry = build_csr(routes)
    solved = progressive_fill(
        indices,
        indptr,
        flow_of_entry,
        np.asarray(capacities),
        np.ones(len(constrained), dtype=bool),
        weights=weight_array,
    )
    for position, flow_id in enumerate(constrained):
        rates[flow_id] = float(solved[position])
    return rates
