"""Stochastic bandwidth fluctuation on WAN links.

The paper measures EC2 inter-region capacity varying between roughly
80 Mbps and 300 Mbps over time (§V-A, citing Flutter and Bellini).  We
model each WAN link's capacity as a mean-reverting random walk sampled on
a fixed period: every ``period`` seconds the capacity moves a bounded
random step toward a fresh uniform target, clipped to ``[low, high]``.
This produces the temporally correlated "jitter" that inflates baseline
variance in Fig. 7 while staying simple and fully seeded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.network.fabric import NetworkFabric
from repro.network.topology import Link, MBPS
from repro.simulation.kernel import Simulator
from repro.simulation.random_source import RandomSource


@dataclass(frozen=True)
class JitterSpec:
    """Parameters of the WAN bandwidth fluctuation process."""

    low: float = 80 * MBPS
    high: float = 300 * MBPS
    period: float = 5.0
    # Fraction of the [low, high] span a single step may move.
    max_step_fraction: float = 0.35

    def validate(self) -> None:
        if self.low <= 0 or self.high <= self.low:
            raise ValueError("jitter requires 0 < low < high")
        if self.period <= 0:
            raise ValueError("jitter period must be positive")
        if not 0 < self.max_step_fraction <= 1:
            raise ValueError("max_step_fraction must be in (0, 1]")


class BandwidthJitter:
    """A simulation process that perturbs WAN link capacities over time."""

    def __init__(
        self,
        sim: Simulator,
        fabric: NetworkFabric,
        links: Iterable[Link],
        spec: JitterSpec,
        randomness: Optional[RandomSource] = None,
        require_wan_flag: bool = True,
    ) -> None:
        """``require_wan_flag`` keeps the default behaviour of touching
        only links marked ``is_wan``; pass False to jitter an explicit
        link list (e.g. region gateway links)."""
        spec.validate()
        self.sim = sim
        self.fabric = fabric
        if require_wan_flag:
            self.links = [link for link in links if link.is_wan]
        else:
            self.links = list(links)
        self.spec = spec
        self.randomness = randomness if randomness is not None else RandomSource(0)
        self._running = False

    def start(self) -> None:
        """Initialise capacities and begin the periodic resampling loop."""
        if self._running:
            return
        self._running = True
        for link in self.links:
            link.set_capacity(
                self.randomness.uniform(
                    f"jitter:init:{link.name}", self.spec.low, self.spec.high
                )
            )
        self.sim.spawn(self._loop(), name="bandwidth-jitter")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        span = self.spec.high - self.spec.low
        max_step = span * self.spec.max_step_fraction
        while self._running:
            yield self.sim.timeout(self.spec.period)
            if not self._running:
                return
            for link in self.links:
                target = self.randomness.uniform(
                    f"jitter:target:{link.name}", self.spec.low, self.spec.high
                )
                # Walk the *nominal* capacity: a concurrent chaos
                # degrade scales the effective capacity underneath and
                # must neither perturb the walk nor be undone by it.
                delta = target - link.nominal_capacity
                if delta > max_step:
                    delta = max_step
                elif delta < -max_step:
                    delta = -max_step
                new_capacity = min(
                    self.spec.high,
                    max(self.spec.low, link.nominal_capacity + delta),
                )
                link.set_capacity(new_capacity)
            # Scoped notification: the fabric re-solves only components
            # carried by the perturbed links, and skips the solve
            # entirely when every one of them is idle.  All links are
            # resampled above regardless, keeping the random-walk state
            # (and hence determinism) independent of flow activity.
            self.fabric.notify_capacity_change(changed_links=self.links)


class StaticBandwidth:
    """Pin every WAN link to a fixed capacity (used for deterministic tests)."""

    def __init__(self, links: Iterable[Link], capacity: float) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        for link in links:
            link.set_capacity(capacity)
