"""Slot-based, locality-aware task scheduling (delay scheduling).

Mirrors the Spark standalone behaviour the paper relies on:

* every worker host is an :class:`Executor` with a fixed number of cores;
* a task prefers specific hosts (``preferred_hosts``); it is placed there
  immediately if a slot is free, falls back to a *same-datacenter* host
  after ``locality_wait_host`` seconds, and to *any* host after an
  additional ``locality_wait_datacenter`` seconds;
* tasks with no preference run anywhere immediately, and free slots are
  offered most-free-host first, spreading no-preference tasks across the
  cluster — which is precisely how the stock scheduler scatters reducers
  across datacenters when shuffle input is scattered (§II-B), and packs
  them into the aggregator datacenter when it is not (§III-C).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

from repro.config import SchedulingConfig
from repro.errors import NoEligibleExecutorError, SchedulerError
from repro.network.topology import Topology
from repro.scheduler.task import Task, TaskResult
from repro.simulation.event import Event
from repro.simulation.kernel import Simulator

# Locality levels, smaller is better.
_HOST_LOCAL = 0
_DC_LOCAL = 1
_ANY = 2

# run_task(task, host) is a generator returning a TaskResult.
TaskBody = Callable[[Task, str], object]


class Executor:
    """A worker host's slots."""

    def __init__(self, host: str, cores: int) -> None:
        if cores < 1:
            raise SchedulerError(f"executor {host}: cores must be >= 1")
        self.host = host
        self.cores = cores
        self.busy = 0
        self.tasks_run = 0

    @property
    def free(self) -> int:
        return self.cores - self.busy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Executor {self.host} {self.busy}/{self.cores}>"


class _PendingEntry:
    __slots__ = ("task", "completion", "sequence")

    def __init__(self, task: Task, completion: Event, sequence: int) -> None:
        self.task = task
        self.completion = completion
        self.sequence = sequence


class _RunningRecord:
    """One launched attempt: enough state to relaunch it on executor loss."""

    __slots__ = ("entry", "host", "process", "lost")

    def __init__(self, entry: _PendingEntry, host: str) -> None:
        self.entry = entry
        self.host = host
        self.process = None
        self.lost = False


class TaskScheduler:
    """Places tasks on executors and runs them via a caller-supplied body."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        executors: Dict[str, Executor],
        config: SchedulingConfig,
        run_task: TaskBody,
        blacklist=None,
    ) -> None:
        if not executors:
            raise NoEligibleExecutorError("no executors registered")
        self.sim = sim
        self.topology = topology
        self.executors = executors
        self.config = config
        self.run_task = run_task
        # Optional BlacklistTracker consulted at placement (excludeOn-
        # Failure); None or a disabled tracker leaves dispatch untouched.
        self.blacklist = blacklist
        self._pending: List[_PendingEntry] = []
        # Launched-but-unfinished attempts, in launch order (a list, not
        # a set: executor removal iterates it and must be deterministic).
        self._running: List[_RunningRecord] = []
        self._sequence = itertools.count()
        self._wake_planned_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, task: Task) -> Event:
        """Queue a task; returns an event firing with its TaskResult."""
        task.submit_time = self.sim.now
        completion = self.sim.event(name=f"{task.task_id}:done")
        self._pending.append(
            _PendingEntry(task, completion, next(self._sequence))
        )
        self._dispatch()
        return completion

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def running_count(self) -> int:
        return len(self._running)

    def total_free_slots(self) -> int:
        return sum(executor.free for executor in self.executors.values())

    def remove_executor(self, host: str) -> int:
        """Take one executor out of service (executor crash / host loss).

        Attempts currently running on it are interrupted and silently
        requeued — the waiter's completion event stays pending, exactly
        as Spark's driver relaunches tasks of a lost executor without
        failing the stage.  Returns the number of relaunched attempts.
        Removing the last executor is refused: no slot could ever run
        the relaunched work, so the simulation would deadlock.
        """
        if host not in self.executors:
            return 0
        if len(self.executors) == 1:
            raise SchedulerError(
                f"cannot remove {host!r}: it is the last executor"
            )
        del self.executors[host]
        relaunched = 0
        for record in list(self._running):
            if record.host == host and not record.lost:
                record.lost = True
                relaunched += 1
                record.process.interrupt(f"executor {host} lost")
        # Pending tasks that preferred the dead host re-dispatch on the
        # survivors (their locality waits keep ticking unchanged).
        self._dispatch()
        return relaunched

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        """Greedily match free slots to eligible pending tasks."""
        while self._pending:
            assignment = self._best_assignment()
            if assignment is None:
                break
            entry, host = assignment
            self._pending.remove(entry)
            self._launch(entry, host)
        self._plan_wakeup()

    def _best_assignment(self) -> Optional[Tuple[_PendingEntry, str]]:
        """The (task, host) pair with the best locality, if any.

        Hosts with more free slots are preferred within a locality level,
        spreading load like Spark standalone's ``spreadOut``.
        """
        free_hosts = [
            executor.host
            for executor in self.executors.values()
            if executor.free > 0
        ]
        if not free_hosts:
            return None
        best: Optional[Tuple[int, int, int, _PendingEntry, str]] = None
        for entry in self._pending:
            vetoed = self._vetoed_hosts(entry.task)
            allowed = self._allowed_hosts(entry.task)
            for host in free_hosts:
                if allowed is not None and host not in allowed:
                    continue
                if vetoed is not None and host in vetoed:
                    self.blacklist.counters.placements_vetoed += 1
                    continue
                level = self._eligibility(entry.task, host)
                if level is None:
                    continue
                # Rank: locality level, then submission order, then spread.
                key = (
                    level,
                    entry.sequence,
                    -self.executors[host].free,
                )
                if best is None or key < best[:3]:
                    best = (*key, entry, host)
        if best is None:
            return None
        return best[3], best[4]

    def _allowed_hosts(self, task: Task) -> Optional[frozenset]:
        """The executor-pool share ``task`` is confined to, or None.

        Anti-starvation override (mirrors the blacklist veto): when no
        allowed host is a live executor — e.g. the share's hosts all
        died — the restriction is ignored so the job keeps making
        progress on the survivors instead of deadlocking.
        """
        allowed = task.allowed_hosts
        if not allowed:
            return None
        if not any(host in self.executors for host in allowed):
            return None
        return allowed

    def _vetoed_hosts(self, task: Task) -> Optional[set]:
        """The hosts the blacklist excludes for ``task``, or None.

        Anti-starvation override: when *every* live executor is
        excluded, the blacklist is ignored for this task — a wedged
        exclusion list must never deadlock the dispatcher.
        """
        blacklist = self.blacklist
        if blacklist is None or not blacklist.enabled:
            return None
        stage = getattr(task, "stage", None)
        stage_id = stage.stage_id if stage is not None else None
        vetoed = {
            host
            for host in self.executors
            if blacklist.is_excluded(host, stage_id)
        }
        if not vetoed or len(vetoed) >= len(self.executors):
            return None
        return vetoed

    def _task_waits(self, task: Task) -> Tuple[float, float]:
        host_wait = (
            task.locality_wait_host
            if task.locality_wait_host is not None
            else self.config.locality_wait_host
        )
        dc_wait = (
            task.locality_wait_datacenter
            if task.locality_wait_datacenter is not None
            else self.config.locality_wait_datacenter
        )
        return host_wait, dc_wait

    def _eligibility(self, task: Task, host: str) -> Optional[int]:
        """The locality level at which ``task`` may run on ``host`` now."""
        if not task.preferred_hosts:
            return _ANY
        if host in task.preferred_hosts:
            return _HOST_LOCAL
        if not any(pref in self.executors for pref in task.preferred_hosts):
            # Every preferred host is dead (e.g. a datacenter outage
            # took the elected aggregator): waiting out the locality
            # tiers cannot help, so run anywhere now and let the read
            # path escalate to re-election instead of stalling.
            return _ANY
        host_wait, dc_wait = self._task_waits(task)
        waited = self.sim.now - task.submit_time
        if waited >= host_wait:
            host_dc = self.topology.datacenter_of(host)
            if host_dc in task.preferred_datacenters:
                return _DC_LOCAL
        if waited >= host_wait + dc_wait:
            return _ANY
        return None

    def _launch(self, entry: _PendingEntry, host: str) -> None:
        executor = self.executors[host]
        executor.busy += 1
        executor.tasks_run += 1
        record = _RunningRecord(entry, host)
        self._running.append(record)
        record.process = self.sim.spawn(
            self._run_wrapper(record),
            name=f"{entry.task.task_id}@{host}",
        )

    def _finish_attempt(self, record: _RunningRecord) -> None:
        self._running.remove(record)
        executor = self.executors.get(record.host)
        if executor is not None:
            executor.busy -= 1

    def _run_wrapper(self, record: _RunningRecord):
        entry = record.entry
        try:
            result = yield from self.run_task(entry.task, record.host)
        except BaseException as error:  # noqa: BLE001 - propagate to waiter
            self._finish_attempt(record)
            if record.lost:
                # The executor died under this attempt: requeue rather
                # than fail, the completion's waiter never notices.
                entry.task.recovery = True
                entry.task.submit_time = self.sim.now
                entry.sequence = next(self._sequence)
                self._pending.append(entry)
                self._dispatch()
                return
            self._dispatch()
            entry.completion.fail(error)
            return
        self._finish_attempt(record)
        self._dispatch()
        entry.completion.succeed(result)

    # ------------------------------------------------------------------
    # Locality-wait wakeups
    # ------------------------------------------------------------------
    def _plan_wakeup(self) -> None:
        """Schedule a re-dispatch when a pending task's wait tier expires."""
        if not self._pending or self.total_free_slots() == 0:
            return
        next_time: Optional[float] = None
        for entry in self._pending:
            submitted = entry.task.submit_time
            if not entry.task.preferred_hosts:
                continue
            wait_host, wait_dc = self._task_waits(entry.task)
            for threshold in (
                submitted + wait_host,
                submitted + wait_host + wait_dc,
            ):
                if threshold > self.sim.now:
                    if next_time is None or threshold < next_time:
                        next_time = threshold
                    break
        # A blacklist expiry can unblock a vetoed placement even though
        # no locality tier is pending.
        if self.blacklist is not None and self.blacklist.enabled:
            expiry = self.blacklist.next_expiry()
            if expiry is not None and expiry > self.sim.now:
                if next_time is None or expiry < next_time:
                    next_time = expiry
        if next_time is None:
            return
        if self._wake_planned_at is not None and (
            self._wake_planned_at <= next_time
            and self._wake_planned_at > self.sim.now
        ):
            return  # an earlier-or-equal wake is already scheduled
        self._wake_planned_at = next_time
        wake = self.sim.timeout(next_time - self.sim.now, name="sched:wake")
        wake.add_callback(lambda _event: self._on_wake())

    def _on_wake(self) -> None:
        self._wake_planned_at = None
        self._dispatch()
