"""TaskRuntime: the execution engine running *inside* one task attempt.

Every ``RDD.compute`` generator receives a TaskRuntime and uses it to

* materialise parent partitions (``materialize``), which recurses through
  narrow dependencies, consults the cache, and stops at stage boundaries;
* read input blocks (``read_input_block``): local replicas cost disk
  time, remote replicas a network flow (closest replica wins);
* read shuffle input (``shuffle_read``): all shards are fetched with
  *concurrent* flows — the bursty all-to-all pattern of §II-B — while
  host-local shards cost only disk time.  In push mode the tracker simply
  points at receiver hosts, so the identical code becomes a mostly
  datacenter-local read;
* pull a staged transfer partition (``transfer_read``): a single flow
  from the origin host, a no-op when the partition is already local;
* charge operator CPU/sort time from logical byte volumes.
"""

from __future__ import annotations

from typing import Any, List, TYPE_CHECKING

from repro.errors import RDDError
from repro.rdd.dependencies import ShuffleDependency, TransferDependency
from repro.rdd.rdd import RDD

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.context import ClusterContext
    from repro.scheduler.task import Task


class TaskRuntime:
    """Per-attempt execution context bound to one host."""

    def __init__(self, context: "ClusterContext", task: "Task", host: str) -> None:
        self.context = context
        self.task = task
        self.host = host
        self.sim = context.sim
        # Multiplies CPU charges; >1 models a straggling attempt.
        self.slowdown = 1.0
        # Metrics accumulated over this attempt.
        self.shuffle_bytes_fetched = 0.0
        self.bytes_read_local = 0.0
        self.bytes_transferred_in = 0.0

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def materialize(self, rdd: RDD, index: int):
        """Produce the records of ``rdd`` partition ``index`` (generator)."""
        cache = self.context.cache
        if rdd.cached:
            entry = cache.lookup(rdd.rdd_id, index)
            if entry is not None:
                if entry.host != self.host:
                    yield self.context.fabric.transfer(
                        entry.host, self.host, entry.size_bytes, tag="cache"
                    )
                    self.bytes_transferred_in += entry.size_bytes
                return list(entry.records)
        records = yield from rdd.compute(index, self)
        if rdd.cached:
            size = self.context.estimator.estimate(records)
            cache.put(rdd.rdd_id, index, self.host, list(records), size)
        return records

    # ------------------------------------------------------------------
    # Data sources
    # ------------------------------------------------------------------
    def read_input_block(self, block_id: str):
        """Read a DFS block, preferring local then same-DC replicas."""
        dfs = self.context.dfs
        topology = self.context.topology
        locations = dfs.block_locations(block_id)
        block = dfs.read_block(block_id, from_host=self.host)
        if self.host in locations:
            yield self.sim.timeout(
                self.context.config.disk.read_time(block.size_bytes)
            )
            self.bytes_read_local += block.size_bytes
            return list(block.records)
        my_dc = topology.datacenter_of(self.host)
        same_dc = [
            host for host in locations
            if topology.datacenter_of(host) == my_dc
        ]
        source = same_dc[0] if same_dc else locations[0]
        yield self.context.fabric.transfer(
            source, self.host, block.size_bytes, tag="input"
        )
        self.bytes_transferred_in += block.size_bytes
        return list(block.records)

    def read_driver_data(self, records: List[Any]):
        """Ship parallelized driver data to this task's host."""
        size = self.context.estimator.estimate(records)
        yield self.context.fabric.transfer(
            self.context.driver_host, self.host, size, tag="driver"
        )
        return list(records)

    def shuffle_read(self, dep: ShuffleDependency, reduce_index: int):
        """Fetch this reducer's shards from every map output location."""
        tracker = self.context.map_output_tracker
        store = self.context.shuffle_store
        statuses = tracker.map_statuses(dep.shuffle_id)
        records: List[Any] = []
        flows = []
        local_bytes = 0.0
        for status in statuses:
            shard = store.get_shard(
                dep.shuffle_id, status.map_index, reduce_index
            )
            records.extend(shard.records)
            if shard.size_bytes <= 0:
                continue
            if status.host == self.host:
                local_bytes += shard.size_bytes
            else:
                flows.append(
                    self.context.fabric.transfer(
                        status.host, self.host, shard.size_bytes, tag="shuffle"
                    )
                )
                self.shuffle_bytes_fetched += shard.size_bytes
        if local_bytes > 0:
            yield self.sim.timeout(
                self.context.config.disk.read_time(local_bytes)
            )
            self.bytes_read_local += local_bytes
        if flows:
            yield self.sim.all_of(flows)
        return records

    def transfer_read(self, dep: TransferDependency, index: int):
        """Pull a staged partition from its origin host (receiver task)."""
        staged = self.context.transfer_tracker.get(dep.transfer_id, index)
        if staged.host != self.host and staged.size_bytes > 0:
            yield self.context.fabric.transfer(
                staged.host, self.host, staged.size_bytes, tag="transfer_to"
            )
            self.bytes_transferred_in += staged.size_bytes
        return list(staged.records)

    # ------------------------------------------------------------------
    # Time charging
    # ------------------------------------------------------------------
    def charge_operator(self, rdd: RDD, input_records: List[Any]):
        """CPU time for one narrow/aggregation operator (generator)."""
        size, count = self.context.estimator.estimate_with_count(input_records)
        seconds = self.context.config.cost.compute_time(size, count)
        seconds *= self.slowdown
        if seconds > 0:
            yield self.sim.timeout(seconds)

    def charge_combine(self, rdd: RDD, input_records: List[Any]):
        """Cheaper per-byte charge for in-memory merge/combine passes."""
        size, count = self.context.estimator.estimate_with_count(input_records)
        seconds = (
            self.context.config.cost.combine_time(size, count) * self.slowdown
        )
        if seconds > 0:
            yield self.sim.timeout(seconds)

    def charge_shuffle_write(self, logical_bytes: float):
        seconds = (
            self.context.config.cost.shuffle_write_time(logical_bytes)
            * self.slowdown
        )
        if seconds > 0:
            yield self.sim.timeout(seconds)

    def charge_sort(self, rdd: RDD, input_records: List[Any]):
        size, count = self.context.estimator.estimate_with_count(input_records)
        seconds = self.context.config.cost.sort_time(size, count) * self.slowdown
        if seconds > 0:
            yield self.sim.timeout(seconds)

    def charge_cpu_bytes(self, logical_bytes: float):
        seconds = (
            self.context.config.cost.compute_time(logical_bytes) * self.slowdown
        )
        if seconds > 0:
            yield self.sim.timeout(seconds)

    def charge_disk_write(self, logical_bytes: float):
        seconds = self.context.config.disk.write_time(logical_bytes)
        if seconds > 0:
            yield self.sim.timeout(seconds)

    # ------------------------------------------------------------------
    def estimate(self, records: List[Any]) -> float:
        return self.context.estimator.estimate(records)

    def ensure_pairs(self, records: List[Any], operation: str) -> None:
        """Shuffle operations need (key, value) tuples; fail loudly."""
        for record in records[:1]:
            if not (isinstance(record, tuple) and len(record) == 2):
                raise RDDError(
                    f"{operation} requires (key, value) records, got "
                    f"{type(record).__name__}"
                )
