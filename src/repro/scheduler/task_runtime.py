"""TaskRuntime: the execution engine running *inside* one task attempt.

Every ``RDD.compute`` generator receives a TaskRuntime and uses it to

* materialise parent partitions (``materialize``), which recurses through
  narrow dependencies, consults the cache, and stops at stage boundaries;
* read input blocks (``read_input_block``): local replicas cost disk
  time, remote replicas a network flow (closest replica wins);
* read shuffle input (``shuffle_read``) and staged transfer partitions
  (``transfer_read``): both delegate to the context's
  :class:`~repro.shuffle.service.ShuffleService`, so how the bytes move
  (per-shard fetch, push/aggregate, per-datacenter pre-merge, ...) is
  the active backend's decision — the runtime and RDD layers are
  strategy-agnostic;
* charge operator CPU/sort time from logical byte volumes.
"""

from __future__ import annotations

from typing import Any, List, TYPE_CHECKING

from repro.errors import RDDError
from repro.rdd.dependencies import ShuffleDependency, TransferDependency
from repro.rdd.rdd import RDD

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.context import ClusterContext
    from repro.scheduler.task import Task


class TaskRuntime:
    """Per-attempt execution context bound to one host."""

    def __init__(self, context: ClusterContext, task: Task, host: str) -> None:
        self.context = context
        self.task = task
        self.host = host
        self.sim = context.sim
        # Multiplies CPU charges; >1 models a straggling attempt.
        self.slowdown = 1.0
        # Metrics accumulated over this attempt.
        self.shuffle_bytes_fetched = 0.0
        self.bytes_read_local = 0.0
        self.bytes_transferred_in = 0.0

    @property
    def tenant(self) -> str:
        """The owning tenant of this attempt's job ("" single-job)."""
        return self.task.stage.tenant or ""

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def materialize(self, rdd: RDD, index: int):
        """Produce the records of ``rdd`` partition ``index`` (generator)."""
        cache = self.context.cache
        if rdd.cached:
            entry = cache.lookup(rdd.rdd_id, index)
            if entry is not None:
                if entry.host != self.host:
                    yield self.context.fabric.transfer(
                        entry.host, self.host, entry.size_bytes, tag="cache",
                        tenant=self.tenant,
                    )
                    self.bytes_transferred_in += entry.size_bytes
                return list(entry.records)
        records = yield from rdd.compute(index, self)
        if rdd.cached:
            size = self.context.estimator.estimate(records)
            cache.put(rdd.rdd_id, index, self.host, list(records), size)
        return records

    # ------------------------------------------------------------------
    # Data sources
    # ------------------------------------------------------------------
    def read_input_block(self, block_id: str):
        """Read a DFS block, preferring local then same-DC replicas."""
        dfs = self.context.dfs
        topology = self.context.topology
        locations = dfs.block_locations(block_id)
        block = dfs.read_block(block_id, from_host=self.host)
        if self.host in locations:
            yield self.sim.timeout(
                self.context.config.disk.read_time(block.size_bytes)
            )
            self.bytes_read_local += block.size_bytes
            return list(block.records)
        my_dc = topology.datacenter_of(self.host)
        same_dc = [
            host for host in locations
            if topology.datacenter_of(host) == my_dc
        ]
        self.bytes_transferred_in += block.size_bytes
        if self.context.config.health.flow_retry_enabled:
            # Replica-rotating retry: a deadline miss re-issues the read
            # from the next replica (same-DC replicas first), so a
            # degraded path is sidestepped whenever dfs_replication left
            # a copy elsewhere.
            from repro.failures.health import transfer_with_retry

            sources = same_dc + [
                host for host in locations if host not in same_dc
            ]
            yield from transfer_with_retry(
                self.context, sources, self.host, block.size_bytes,
                tag="input", tenant=self.tenant,
            )
        else:
            source = same_dc[0] if same_dc else locations[0]
            yield self.context.fabric.transfer(
                source, self.host, block.size_bytes, tag="input",
                tenant=self.tenant,
            )
        return list(block.records)

    def read_driver_data(self, records: List[Any]):
        """Ship parallelized driver data to this task's host."""
        size = self.context.estimator.estimate(records)
        yield self.context.fabric.transfer(
            self.context.driver_host, self.host, size, tag="driver",
            tenant=self.tenant,
        )
        return list(records)

    def shuffle_read(self, dep: ShuffleDependency, reduce_index: int):
        """Read this reducer's input through the active shuffle backend."""
        records = yield from self.context.shuffle_service.shuffle_read(
            self, dep, reduce_index
        )
        return records

    def transfer_read(self, dep: TransferDependency, index: int):
        """Pull a staged partition from its origin host (receiver task)."""
        records = yield from self.context.shuffle_service.transfer_read(
            self, dep, index
        )
        return records

    # ------------------------------------------------------------------
    # Time charging
    # ------------------------------------------------------------------
    def charge_operator(self, rdd: RDD, input_records: List[Any]):
        """CPU time for one narrow/aggregation operator (generator)."""
        size, count = self.context.estimator.estimate_with_count(input_records)
        seconds = self.context.config.cost.compute_time(size, count)
        seconds *= self.slowdown
        if seconds > 0:
            yield self.sim.timeout(seconds)

    def charge_combine(self, rdd: RDD, input_records: List[Any]):
        """Cheaper per-byte charge for in-memory merge/combine passes."""
        size, count = self.context.estimator.estimate_with_count(input_records)
        seconds = (
            self.context.config.cost.combine_time(size, count) * self.slowdown
        )
        if seconds > 0:
            yield self.sim.timeout(seconds)

    def charge_shuffle_write(self, logical_bytes: float):
        seconds = (
            self.context.config.cost.shuffle_write_time(logical_bytes)
            * self.slowdown
        )
        if seconds > 0:
            yield self.sim.timeout(seconds)

    def charge_sort(self, rdd: RDD, input_records: List[Any]):
        size, count = self.context.estimator.estimate_with_count(input_records)
        seconds = self.context.config.cost.sort_time(size, count) * self.slowdown
        if seconds > 0:
            yield self.sim.timeout(seconds)

    def charge_cpu_bytes(self, logical_bytes: float):
        seconds = (
            self.context.config.cost.compute_time(logical_bytes) * self.slowdown
        )
        if seconds > 0:
            yield self.sim.timeout(seconds)

    def charge_disk_write(self, logical_bytes: float):
        seconds = self.context.config.disk.write_time(logical_bytes)
        if seconds > 0:
            yield self.sim.timeout(seconds)

    # ------------------------------------------------------------------
    def estimate(self, records: List[Any]) -> float:
        return self.context.estimator.estimate(records)

    def ensure_pairs(self, records: List[Any], operation: str) -> None:
        """Shuffle operations need (key, value) tuples; fail loudly."""
        for record in records[:1]:
            if not (isinstance(record, tuple) and len(record) == 2):
                raise RDDError(
                    f"{operation} requires (key, value) records, got "
                    f"{type(record).__name__}"
                )
