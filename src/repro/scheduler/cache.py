"""CacheManager: cluster-wide registry of persisted RDD partitions.

``rdd.cache()`` marks an RDD; the first task to compute one of its
partitions registers the records here, pinned to the computing host.
Later reads are free when local and a network flow when remote — which is
exactly why caching *scattered* data is expensive in wide-area analytics
(§IV-E) and caching *after aggregation* is cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class CachedPartition:
    host: str
    records: List[Any]
    size_bytes: float


class CacheManager:
    """(rdd id, partition) -> cached records at a host."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[int, int], CachedPartition] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, rdd_id: int, partition: int) -> Optional[CachedPartition]:
        entry = self._entries.get((rdd_id, partition))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def has(self, rdd_id: int, partition: int) -> bool:
        return (rdd_id, partition) in self._entries

    def location(self, rdd_id: int, partition: int) -> Optional[str]:
        entry = self._entries.get((rdd_id, partition))
        return entry.host if entry is not None else None

    def put(
        self,
        rdd_id: int,
        partition: int,
        host: str,
        records: List[Any],
        size_bytes: float,
    ) -> None:
        # First writer wins: repeated computation of the same partition
        # (e.g. by a retried task) must not move the cached copy around.
        self._entries.setdefault(
            (rdd_id, partition),
            CachedPartition(host=host, records=records, size_bytes=size_bytes),
        )

    def evict_host(self, host: str) -> None:
        """Drop every cached partition held by ``host`` (host failure)."""
        self._entries = {
            key: entry for key, entry in self._entries.items()
            if entry.host != host
        }

    def evict_rdd(self, rdd_id: int) -> None:
        self._entries = {
            key: value for key, value in self._entries.items() if key[0] != rdd_id
        }

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def cached_bytes(self) -> float:
        return sum(entry.size_bytes for entry in self._entries.values())
