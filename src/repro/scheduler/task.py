"""Task descriptions and results."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduler.stage import Stage

_task_ids = itertools.count()


class Task:
    """One unit of placed work: compute one partition of one stage."""

    # PERF001 hot-path class: one instance per (partition, attempt), so
    # streams allocate tens of thousands; __slots__ also rejects typo'd
    # attribute writes from the schedulers.
    __slots__ = (
        "task_id",
        "stage",
        "partition",
        "preferred_hosts",
        "action",
        "submit_time",
        "attempts",
        "recovery",
        "locality_wait_host",
        "locality_wait_datacenter",
        "allowed_hosts",
    )

    def __init__(
        self,
        stage: Stage,
        partition: int,
        preferred_hosts: List[str],
        action: Optional[str] = None,
    ) -> None:
        self.task_id = f"t{next(_task_ids)}"
        self.stage = stage
        self.partition = partition
        self.preferred_hosts = list(preferred_hosts)
        # Only result-stage tasks carry an action ("collect"/"count"/"save").
        self.action = action
        self.submit_time: float = 0.0
        self.attempts = 0
        # True once this task is recovery work: a retry after an
        # injected failure or FetchFailed, a relaunch after an executor
        # loss, or a lineage-resubmitted parent partition.  The shuffle
        # backends tag this task's flows as recovery bytes.
        self.recovery = False
        # Optional per-task delay-scheduling overrides.  Receiver tasks
        # use a very long datacenter wait so they stay in the aggregator
        # datacenter even when its slots are momentarily busy.
        self.locality_wait_host: Optional[float] = None
        self.locality_wait_datacenter: Optional[float] = None
        # Multi-tenant executor-pool partition: when set, the task may
        # only run on these hosts (the inter-job scheduler's share for
        # its job).  None means the whole cluster, as before.
        self.allowed_hosts: Optional[frozenset] = None

    @property
    def preferred_datacenters(self) -> List[str]:
        topology = self.stage.rdd.context.topology
        seen: List[str] = []
        for host in self.preferred_hosts:
            dc = topology.datacenter_of(host)
            if dc not in seen:
                seen.append(dc)
        return seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Task {self.task_id} {self.stage.name}[{self.partition}] "
            f"prefs={self.preferred_hosts}>"
        )


@dataclass
class TaskResult:
    """What a finished task reports back to the DAG scheduler."""

    task: Task
    host: str
    started_at: float
    finished_at: float
    attempts: int
    records: Optional[List[Any]] = None  # result-stage output only
    shuffle_bytes_fetched: float = 0.0
    shuffle_bytes_refetched: float = 0.0
    output_bytes: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at
