"""DAGScheduler: runs a job's stage graph on the simulator.

Responsibilities (mirroring Spark's DAGScheduler plus the paper's
modifications):

* hand the lineage to the shuffle service for backend-specific
  rewriting (the push backend embeds implicit ``transfer_to`` before
  every shuffle, §IV-D; other backends leave it unchanged) — the
  scheduler itself is strategy-agnostic;
* build the stage DAG (shuffle *and* transfer boundaries);
* submit stages parents-first; shuffle parents are barriers, while
  transfer-producer parents are *pipelined*: each receiver task becomes
  runnable the instant its producer task finishes;
* resolve aggregator datacenters when a transfer-producer stage is
  submitted, from the distribution of its input (§IV-D);
* compute task placement preferences: receiver tasks prefer every host
  of the aggregator datacenter; reducers prefer hosts holding at least a
  configured fraction of their input; map tasks prefer their input
  block/cache replicas;
* collect result-stage output and assemble the action's return value.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.aggregation import select_aggregator_datacenters
from repro.errors import FetchFailedError, SchedulerError, StageRecoveryError
from repro.rdd.dependencies import (
    NarrowDependency,
    RangeDependency,
    ShuffleDependency,
    TransferDependency,
)
from repro.rdd.rdd import RDD
from repro.scheduler.stage import Stage, StageKind, build_stages
from repro.scheduler.task import Task, TaskResult
from repro.simulation.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.context import ClusterContext


class DAGScheduler:
    """One per cluster context; ``run_job`` is a simulation process."""

    def __init__(
        self,
        context: ClusterContext,
        metrics=None,
        tenant: Optional[str] = None,
        allowed_hosts: Optional[frozenset] = None,
    ) -> None:
        self.context = context
        self.sim = context.sim
        # Each scheduler instance drives one job at a time; concurrent
        # jobs use separate instances (ClusterContext.submit_job) with
        # their own metrics collectors.
        self.metrics = metrics if metrics is not None else context.metrics
        # Multi-tenant identity: stamped onto every stage so the data
        # path attributes (and fair-share-weights) the job's flows; the
        # optional host share confines its tasks to the slice of the
        # executor pool the inter-job scheduler granted.
        self.tenant = tenant
        self.allowed_hosts = allowed_hosts
        self._stage_processes: Dict[int, object] = {}
        self._task_done_events: Dict[int, List[Event]] = {}
        # Lineage recovery state (per job): in-flight parent-stage
        # resubmissions (so concurrent FetchFailed consumers join one
        # recovery instead of racing) and per-stage resubmit counts
        # (bounded by SchedulingConfig.max_stage_retries).
        self._active_recoveries: Dict[int, object] = {}
        self._stage_resubmits: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Job entry point (a generator to be spawned on the simulator)
    # ------------------------------------------------------------------
    def run_job(self, final_rdd: RDD, action: str, save_path: Optional[str] = None):
        final_rdd = self.context.shuffle_service.prepare_job(final_rdd)
        result_stage, stages = build_stages(final_rdd)
        if self.tenant is not None:
            for stage in stages:
                stage.tenant = self.tenant
        if action == "save":
            result_stage.save_path = save_path  # type: ignore[attr-defined]
        # Per-job state: stage processes and per-task completion events.
        self._stage_processes = {}
        self._active_recoveries = {}
        self._stage_resubmits = {}
        self._task_done_events = {
            stage.stage_id: [
                self.sim.event(name=f"stage{stage.stage_id}:task{p}")
                for p in range(stage.num_partitions)
            ]
            for stage in stages
        }
        self._action = action
        metrics = self.metrics
        metrics.on_job_start(self.sim.now)
        process = self._ensure_stage_running(result_stage)
        results: List[TaskResult] = yield process
        metrics.on_job_end(self.sim.now)
        return self._assemble(action, results)

    # ------------------------------------------------------------------
    # Stage orchestration
    # ------------------------------------------------------------------
    def _ensure_stage_running(self, stage: Stage):
        existing = self._stage_processes.get(stage.stage_id)
        if existing is not None:
            return existing
        process = self.sim.spawn(
            self._stage_process(stage), name=stage.name
        )
        self._stage_processes[stage.stage_id] = process
        return process

    def _stage_process(self, stage: Stage):
        context = self.context
        # Reuse already-complete outputs (iterative jobs, shared lineage).
        if self._stage_already_complete(stage):
            for event in self._task_done_events[stage.stage_id]:
                event.succeed(None)
            return []

        # Launch parents; shuffle-map parents are barriers.
        barrier = []
        for parent in stage.parents:
            parent_process = self._ensure_stage_running(parent)
            if parent.kind is not StageKind.TRANSFER_PRODUCER:
                barrier.append(parent_process)
        if barrier:
            yield self.sim.all_of(barrier)

        # Register the outgoing shuffle before any task can complete.
        if stage.kind is StageKind.SHUFFLE_MAP:
            dep = stage.outgoing_dep
            assert isinstance(dep, ShuffleDependency)
            context.shuffle_service.register_shuffle(
                dep.shuffle_id, stage.num_partitions
            )
        # Resolve the aggregator datacenter(s) at producer submission
        # time, from the map-input distribution (§IV-D).
        if stage.kind is StageKind.TRANSFER_PRODUCER:
            self._resolve_destination(stage)

        self.metrics.on_stage_start(stage, self.sim.now)
        # Backend hook between the map barrier and task launch: the
        # pre-merge backend consolidates map output per datacenter here;
        # other backends yield nothing.
        yield from context.shuffle_service.prepare_stage_inputs(stage)
        done_events = self._task_done_events[stage.stage_id]
        launch_times: Dict[int, float] = {}
        for partition in range(stage.num_partitions):
            self.sim.spawn(
                self._task_flow(
                    stage, partition, done_events[partition], launch_times
                ),
                name=f"{stage.name}[{partition}]",
            )
        if context.config.scheduling.speculation:
            self.sim.spawn(
                self._speculation_monitor(stage, done_events, launch_times),
                name=f"{stage.name}:speculation",
            )
        gathered = yield self.sim.all_of(done_events)
        self.metrics.on_stage_end(stage, self.sim.now)
        sanitizer = context.fabric.sanitizer
        if sanitizer is not None:
            # Stage boundary: every landed flow's admission-time ledger
            # charge must reconcile bit-for-bit with the monitor's
            # completion-time record (in-flight flows excluded).
            sanitizer.check_ledger(
                context.fabric.tenant_ledger,
                context.fabric.monitor,
                iter(context.fabric.active_flow_ids()),
            )
        return gathered

    def _task_flow(
        self,
        stage: Stage,
        partition: int,
        done: Event,
        launch_times: Optional[Dict[int, float]] = None,
    ):
        """Wait for pipelined producers, then submit and await the task.

        Any failure is surfaced through ``done`` so the stage (and the
        whole job) fails loudly instead of deadlocking.
        """
        try:
            yield from self._task_flow_body(stage, partition, done, launch_times)
        except BaseException as error:  # noqa: BLE001 - propagate to stage
            if not done.triggered:
                done.fail(error)

    def _task_flow_body(
        self,
        stage: Stage,
        partition: int,
        done: Event,
        launch_times: Optional[Dict[int, float]],
    ):
        if self._partition_output_exists(stage, partition):
            # Partial stage re-execution (host failure recovery): only
            # the partitions whose output was lost re-run.
            done.succeed(None)
            return
        required = stage.required_transfers(partition)
        if required:
            gates = [
                self._task_done_events[producer.stage_id][index]
                for producer, index in required
            ]
            yield self.sim.all_of(gates)
        result = yield from self._submit_with_recovery(
            stage, partition, launch_times
        )
        if not done.triggered:
            # A speculative duplicate may have won the race already.
            done.succeed(result)

    # ------------------------------------------------------------------
    # FetchFailed recovery (Spark's lineage-resubmission path)
    # ------------------------------------------------------------------
    def _submit_with_recovery(
        self,
        stage: Stage,
        partition: int,
        launch_times: Optional[Dict[int, float]] = None,
        recovery: bool = False,
    ):
        """Submit one task; on FetchFailed, resubmit the lost parent
        from lineage and retry with a fresh attempt.

        Mirrors Spark's DAGScheduler: the consumer attempt dies, the
        stage producing the missing output is resubmitted (only its
        missing partitions re-run), and the consumer is retried.  The
        retry loop is bounded by ``max_fetch_failures_per_task``;
        resubmissions themselves are bounded per stage.
        """
        config = self.context.config.scheduling
        fetch_failures = 0
        while True:
            task = Task(
                stage,
                partition,
                preferred_hosts=self._preferred_hosts(stage, partition),
                action=self._action if stage.kind is StageKind.RESULT else None,
            )
            task.recovery = recovery or fetch_failures > 0
            task.allowed_hosts = self.allowed_hosts
            scheduler = self.context.task_scheduler
            if stage.is_receiver_stage and task.preferred_hosts:
                # Receivers queue for the aggregator datacenter rather
                # than scatter: pushing elsewhere would defeat
                # aggregation.  They run on the I/O-bound transfer
                # service, not compute slots.
                task.locality_wait_host = 0.5
                task.locality_wait_datacenter = (
                    config.receiver_datacenter_wait
                )
                scheduler = self.context.transfer_scheduler
            if launch_times is not None:
                launch_times[partition] = self.sim.now
            try:
                result: TaskResult = yield scheduler.submit(task)
            except FetchFailedError as failure:
                fetch_failures += 1
                self.context.recovery.fetch_failures += 1
                if fetch_failures >= config.max_fetch_failures_per_task:
                    raise
                yield from self._recover_lost_parent(stage, failure)
                continue
            self.metrics.on_task_end(result)
            return result

    def _recover_lost_parent(self, stage: Stage, failure: FetchFailedError):
        """Resubmit the parent stage whose boundary output went missing.

        Concurrent consumers failing on the same parent join a single
        in-flight resubmission instead of each spawning their own.
        """
        parent = self._parent_for_failure(stage, failure)
        process = self._active_recoveries.get(parent.stage_id)
        if process is None or process.triggered:
            process = self.sim.spawn(
                self._resubmit_stage(parent),
                name=f"{parent.name}:resubmit",
            )
            self._active_recoveries[parent.stage_id] = process
        yield process

    def _parent_for_failure(
        self, stage: Stage, failure: FetchFailedError
    ) -> Stage:
        for parent in stage.parents:
            dep = parent.outgoing_dep
            if (
                isinstance(dep, ShuffleDependency)
                and failure.shuffle_id == dep.shuffle_id
            ):
                return parent
            if (
                isinstance(dep, TransferDependency)
                and failure.transfer_id == dep.transfer_id
            ):
                return parent
        raise SchedulerError(
            f"stage {stage.name}: no parent produces the input of {failure}"
        )

    def _resubmit_stage(self, stage: Stage):
        """Re-run exactly the missing partitions of ``stage`` (a
        simulation process; backoff doubles per consecutive resubmit)."""
        context = self.context
        config = context.config.scheduling
        count = self._stage_resubmits.get(stage.stage_id, 0) + 1
        self._stage_resubmits[stage.stage_id] = count
        if count > config.max_stage_retries:
            raise StageRecoveryError(stage.name, count)
        context.recovery.stages_resubmitted += 1
        if config.stage_retry_backoff > 0:
            yield self.sim.timeout(
                config.stage_retry_backoff * 2 ** (count - 1)
            )
        # A failed transfer destination is re-elected before the
        # producers re-stage: receivers read ``resolved_destinations``
        # fresh on every retry, so the new choice takes effect at once.
        if stage.kind is StageKind.TRANSFER_PRODUCER:
            self._resolve_destination(stage, reelect=True)
        missing = [
            partition
            for partition in range(stage.num_partitions)
            if not self._partition_output_exists(stage, partition)
        ]
        context.recovery.tasks_recomputed += len(missing)
        if missing:
            runs = [
                self.sim.spawn(
                    self._submit_with_recovery(stage, partition, recovery=True),
                    name=f"{stage.name}[{partition}]:recompute",
                )
                for partition in missing
            ]
            yield self.sim.all_of(runs)
        # Backend repair hook: the pre-merge backend re-consolidates the
        # recovered outputs onto a surviving merger host before any
        # consumer retries its read.
        dep = stage.outgoing_dep
        if isinstance(dep, ShuffleDependency):
            yield from context.shuffle_service.on_blocks_lost(
                dep, tenant=stage.tenant or ""
            )

    # ------------------------------------------------------------------
    # Speculative execution (spark.speculation)
    # ------------------------------------------------------------------
    def _speculation_monitor(
        self,
        stage: Stage,
        done_events: List[Event],
        launch_times: Dict[int, float],
    ):
        config = self.context.config.scheduling
        speculated: set = set()
        total = len(done_events)
        if total == 0:
            return
        while True:
            yield self.sim.timeout(config.speculation_interval)
            completed = [event for event in done_events if event.triggered]
            if len(completed) == total:
                return
            if len(completed) < config.speculation_quantile * total:
                continue
            durations = sorted(
                event._value.duration
                for event in completed
                if event.ok and event._value is not None
            )
            if not durations:
                continue
            median = durations[len(durations) // 2]
            threshold = max(config.speculation_multiplier * median, 1e-3)
            for partition, event in enumerate(done_events):
                if event.triggered or partition in speculated:
                    continue
                started = launch_times.get(partition)
                if started is None:
                    continue  # still gated on a pipelined producer
                if self.sim.now - started < threshold:
                    continue
                speculated.add(partition)
                self.context.recovery.speculative_launched += 1
                self.sim.spawn(
                    self._speculative_copy(stage, partition, event),
                    name=f"{stage.name}[{partition}]:speculative",
                )

    def _speculative_copy(self, stage: Stage, partition: int, done: Event):
        """Run a duplicate attempt anywhere; first finisher wins."""
        task = Task(
            stage,
            partition,
            preferred_hosts=[],  # speculation runs wherever a slot frees
            action=self._action if stage.kind is StageKind.RESULT else None,
        )
        task.allowed_hosts = self.allowed_hosts
        try:
            result: TaskResult = yield self.context.task_scheduler.submit(task)
        except FetchFailedError:
            # The duplicate raced a block loss; abandon it quietly — the
            # original attempt drives recovery through its own retry.
            return
        except BaseException as error:  # noqa: BLE001
            if not done.triggered:
                done.fail(error)
            return
        self.metrics.on_task_end(result)
        if not done.triggered:
            self.context.recovery.speculative_wins += 1
            done.succeed(result)

    def _partition_output_exists(self, stage: Stage, partition: int) -> bool:
        """True when this partition's boundary output is already
        registered (from a previous job), so the task can be skipped."""
        context = self.context
        if stage.kind is StageKind.SHUFFLE_MAP:
            dep = stage.outgoing_dep
            assert isinstance(dep, ShuffleDependency)
            return context.map_output_tracker.has_map_output(
                dep.shuffle_id, partition
            )
        if stage.kind is StageKind.TRANSFER_PRODUCER:
            dep = stage.outgoing_dep
            assert isinstance(dep, TransferDependency)
            return (
                context.transfer_tracker.try_get(dep.transfer_id, partition)
                is not None
            )
        return False

    def _stage_already_complete(self, stage: Stage) -> bool:
        context = self.context
        if stage.kind is StageKind.SHUFFLE_MAP:
            dep = stage.outgoing_dep
            assert isinstance(dep, ShuffleDependency)
            return context.map_output_tracker.is_complete(dep.shuffle_id)
        if stage.kind is StageKind.TRANSFER_PRODUCER:
            dep = stage.outgoing_dep
            assert isinstance(dep, TransferDependency)
            return all(
                context.transfer_tracker.try_get(dep.transfer_id, partition)
                is not None
                for partition in range(stage.num_partitions)
            )
        return False

    # ------------------------------------------------------------------
    # Aggregator resolution and placement preferences
    # ------------------------------------------------------------------
    def _resolve_destination(
        self, producer_stage: Stage, reelect: bool = False
    ) -> None:
        """Elect the aggregation datacenter(s) of a transfer boundary.

        With ``reelect=True`` (producer resubmission after a failure)
        the election reruns with health-vetoed datacenters excluded —
        blacklisted ones, quarantined ones (an open breaker inbound),
        and ones with no live executor — so the recovered transfer lands
        somewhere that can actually receive it.  An explicit
        ``destination_datacenter`` pin is never overridden.
        """
        context = self.context
        dep = producer_stage.outgoing_dep
        assert isinstance(dep, TransferDependency)
        previous = getattr(dep, "resolved_destinations", None)
        if previous and not reelect:
            return
        if dep.destination_datacenter is not None:
            dep.resolved_destinations = [dep.destination_datacenter]  # type: ignore[attr-defined]
            return
        exclude = []
        if reelect:
            for datacenter in context.topology.datacenters:
                if (
                    not context.workers_in(datacenter)
                    or context.blacklist.is_datacenter_excluded(datacenter)
                    or context.link_health.datacenter_quarantined(datacenter)
                ):
                    exclude.append(datacenter)
        subset = context.config.shuffle.aggregation_subset_size
        chosen = select_aggregator_datacenters(
            producer_stage, context, subset_size=subset, exclude=exclude
        )
        dep.resolved_destinations = chosen  # type: ignore[attr-defined]
        if reelect and previous and chosen != list(previous):
            context.health.reelections += 1

    def _receiver_preferred_hosts(self, stage: Stage, partition: int) -> List[str]:
        topology = self.context.topology
        hosts: List[str] = []
        for transferred, _producer in stage.transfer_inputs:
            dep = transferred.transfer_dependency
            destinations = getattr(dep, "resolved_destinations", None)
            if not destinations:
                if dep.destination_datacenter is not None:
                    destinations = [dep.destination_datacenter]
                else:  # pragma: no cover - producer resolves first
                    raise SchedulerError(
                        "transfer destination unresolved at receiver launch"
                    )
            chosen = destinations[partition % len(destinations)]
            # §IV-C-2: when the staged partition already lives in the
            # aggregator datacenter the transfer is "completely
            # transparent" — pin the receiver to the staging host so no
            # data moves at all.
            staged = self.context.transfer_tracker.try_get(
                dep.transfer_id, partition
            )
            if (
                staged is not None
                and topology.datacenter_of(staged.host) == chosen
                and staged.host in self.context.executors
            ):
                if staged.host not in hosts:
                    hosts.append(staged.host)
                continue
            for host in topology.hosts_in(chosen):
                if host in self.context.executors and host not in hosts:
                    hosts.append(host)
        return hosts

    def _preferred_hosts(self, stage: Stage, partition: int) -> List[str]:
        if stage.is_receiver_stage:
            receiver_hosts = self._receiver_preferred_hosts(stage, partition)
            if receiver_hosts:
                return receiver_hosts
        return self._walk_preferences(stage.rdd, partition)

    def _walk_preferences(self, rdd: RDD, index: int) -> List[str]:
        """Locality hints: data-source replicas, cache hosts, or the
        hosts holding a significant fraction of shuffle input."""
        context = self.context
        own = [
            host for host in rdd.preferred_locations(index)
            if host in context.executors
        ]
        if own:
            return own
        if rdd.cached:
            location = context.cache.location(rdd.rdd_id, index)
            if location is not None:
                return [location]
        collected: List[str] = []
        fraction = context.config.scheduling.reducer_pref_fraction
        for dep in rdd.dependencies:
            if isinstance(dep, ShuffleDependency):
                for host in context.map_output_tracker.reducer_preferred_hosts(
                    dep.shuffle_id, index, fraction
                ):
                    if host in context.executors and host not in collected:
                        collected.append(host)
            elif isinstance(dep, TransferDependency):
                continue  # receiver placement handled separately
            elif isinstance(dep, NarrowDependency):
                if isinstance(dep, RangeDependency) and not dep.covers(index):
                    continue  # a union branch not owning this partition
                for host in self._walk_preferences(
                    dep.parent, dep.parent_partition(index)
                ):
                    if host not in collected:
                        collected.append(host)
        return collected

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    def _assemble(self, action: str, results: List[TaskResult]):
        if action == "collect":
            collected: List = []
            for result in results:
                collected.extend(result.records or [])
            return collected
        if action == "count":
            return sum((result.records or [0])[0] for result in results)
        if action == "save":
            return None
        raise SchedulerError(f"unknown action {action!r}")
