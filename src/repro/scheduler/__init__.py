"""DAG and task scheduling: turning lineage into placed, timed tasks.

* :mod:`repro.scheduler.stage` — stage decomposition of a lineage graph
  at shuffle *and transfer* boundaries (the latter is the paper's
  addition: receiver tasks live in their own pipelined stage).
* :mod:`repro.scheduler.task` — task descriptions and results.
* :mod:`repro.scheduler.task_scheduler` — delay-scheduling placement
  honouring ``preferred_locations`` with host -> datacenter -> anywhere
  fallback, over slot-based executors.
* :mod:`repro.scheduler.task_runtime` — the in-task execution engine:
  materialises RDD partitions, charges CPU/disk/network time, performs
  shuffle reads and transfer pulls.
* :mod:`repro.scheduler.dag_scheduler` — drives a job: submits stages in
  dependency order, pipelines receiver tasks with their producers,
  resolves aggregator datacenters, collects results.
"""

from repro.scheduler.stage import Stage, StageKind, build_stages
from repro.scheduler.task import Task, TaskResult
from repro.scheduler.task_scheduler import Executor, TaskScheduler
from repro.scheduler.dag_scheduler import DAGScheduler

__all__ = [
    "Stage",
    "StageKind",
    "build_stages",
    "Task",
    "TaskResult",
    "Executor",
    "TaskScheduler",
    "DAGScheduler",
]
