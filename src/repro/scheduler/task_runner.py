"""TaskRunner: the body of a task attempt, with retries and failures.

Drives one task end to end on a chosen host:

1. launch overhead;
2. materialise the stage's root partition via a fresh
   :class:`~repro.scheduler.task_runtime.TaskRuntime` (this performs all
   reads, transfers, and CPU charges);
3. (optional) injected failure for shuffle-reading tasks — the attempt's
   work is lost and step 2 repeats, re-fetching shuffle input exactly as
   a relaunched Spark reducer would (paper Fig. 2);
4. finalise: sharded shuffle write, transfer staging, or the job action.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.errors import TaskFailedError
from repro.rdd.dependencies import ShuffleDependency, TransferDependency
from repro.scheduler.stage import StageKind
from repro.scheduler.task import Task, TaskResult
from repro.scheduler.task_runtime import TaskRuntime
from repro.shuffle.stores import ShuffleShard

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.context import ClusterContext


class TaskRunner:
    """Executes tasks for one cluster context."""

    def __init__(self, context: ClusterContext) -> None:
        self.context = context

    # The signature TaskScheduler expects: a generator -> TaskResult.
    def run(self, task: Task, host: str):
        context = self.context
        sim = context.sim
        started = sim.now
        overhead = context.config.cost.task_launch_overhead
        if overhead > 0:
            yield sim.timeout(overhead)

        max_attempts = context.config.scheduling.max_task_attempts
        refetched = 0.0
        runtime = None
        records: List = []
        while True:
            task.attempts += 1
            if task.attempts > max_attempts:
                raise TaskFailedError(task.task_id, task.attempts - 1)
            runtime = TaskRuntime(context, task, host)
            runtime.slowdown = context.failure_injector.straggler_slowdown(task)
            records = yield from runtime.materialize(
                task.stage.rdd, task.partition
            )
            if task.attempts > 1:
                refetched += runtime.shuffle_bytes_fetched
            if task.stage.reads_shuffle and context.failure_injector.should_fail(task):
                context.metrics.on_task_attempt_failed(task, host, sim.now)
                context.blacklist.note_task_failure(host, task.stage.stage_id)
                # The next attempt re-fetches shuffle input; those flows
                # are recovery traffic (paper Fig. 2).
                task.recovery = True
                continue
            break

        output_bytes = 0.0
        result_records = None
        if task.stage.kind is StageKind.SHUFFLE_MAP:
            output_bytes = yield from self._shuffle_write(
                runtime, task, host, records
            )
        elif task.stage.kind is StageKind.TRANSFER_PRODUCER:
            output_bytes = yield from self._stage_transfer_partition(
                runtime, task, host, records
            )
        else:
            result_records = yield from self._apply_action(
                runtime, task, host, records
            )

        return TaskResult(
            task=task,
            host=host,
            started_at=started,
            finished_at=sim.now,
            attempts=task.attempts,
            records=result_records,
            shuffle_bytes_fetched=runtime.shuffle_bytes_fetched,
            shuffle_bytes_refetched=refetched,
            output_bytes=output_bytes,
        )

    # ------------------------------------------------------------------
    # Finalisers
    # ------------------------------------------------------------------
    def _shuffle_write(self, runtime: TaskRuntime, task: Task, host: str, records):
        """Shard (and maybe combine) records, write them, register output."""
        stage = task.stage
        dep = stage.outgoing_dep
        assert isinstance(dep, ShuffleDependency)
        runtime.ensure_pairs(records, "shuffle write")
        num_reduces = dep.partitioner.num_partitions
        shard_lists: List[List] = [[] for _ in range(num_reduces)]
        for record in records:
            shard_lists[dep.partitioner.partition(record[0])].append(record)
        if dep.aggregator is not None and dep.map_side_combine:
            if stage.combine_done:
                # Pre-combined before the transfer (§IV-C-3): only merge
                # combiners that collided across the partition.
                shard_lists = [
                    dep.aggregator.combine_combiners(shard)
                    for shard in shard_lists
                ]
            else:
                shard_lists = [
                    dep.aggregator.combine_values(shard)
                    for shard in shard_lists
                ]
            yield from runtime.charge_combine(stage.rdd, records)
        estimator = self.context.estimator
        shards = [
            ShuffleShard(records=shard, size_bytes=estimator.estimate(shard))
            for shard in shard_lists
        ]
        total_bytes = sum(shard.size_bytes for shard in shards)
        yield from runtime.charge_shuffle_write(total_bytes)
        yield from runtime.charge_disk_write(total_bytes)
        self.context.shuffle_service.register_map_output(
            dep.shuffle_id, task.partition, host, shards
        )
        return total_bytes

    def _stage_transfer_partition(
        self, runtime: TaskRuntime, task: Task, host: str, records
    ):
        """Stage the whole partition at this host for a receiver pull.

        Applies the pre-transfer combine when requested; skips the disk
        write entirely — pushed data leaves from memory (§IV-B:
        "unnecessary disk I/O is avoided").
        """
        stage = task.stage
        dep = stage.outgoing_dep
        assert isinstance(dep, TransferDependency)
        if dep.pre_combine is not None:
            runtime.ensure_pairs(records, "pre-transfer combine")
            yield from runtime.charge_combine(stage.rdd, records)
            records = dep.pre_combine.combine_values(records)
        size = self.context.estimator.estimate(records)
        self.context.shuffle_service.stage_transfer_partition(
            dep.transfer_id, task.partition, host, list(records), size
        )
        return size

    def _apply_action(self, runtime: TaskRuntime, task: Task, host: str, records):
        """Execute the result-stage action for this partition."""
        context = self.context
        action = task.action or "collect"
        if action == "collect":
            size = context.estimator.estimate(records)
            yield context.fabric.transfer(
                host, context.driver_host, size, tag="result",
                tenant=runtime.tenant,
            )
            return list(records)
        if action == "count":
            yield context.fabric.transfer(
                host, context.driver_host, 8.0, tag="result",
                tenant=runtime.tenant,
            )
            return [len(records)]
        if action == "save":
            size = context.estimator.estimate(records)
            yield from runtime.charge_disk_write(size)
            path = task.stage.save_path  # type: ignore[attr-defined]
            context.dfs.write_file(
                f"{path}/part-{task.partition:05d}",
                [records],
                [size],
                placement_hosts=[host],
            )
            return [size]
        raise TaskFailedError(task.task_id, task.attempts, f"unknown action {action!r}")
