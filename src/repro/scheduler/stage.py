"""Stage decomposition of a lineage graph.

A *stage* is a maximal narrow-dependency-connected subgraph, exactly as
in Spark, with one extension from the paper: :class:`TransferDependency`
is also a stage boundary.  Three stage kinds result:

* ``SHUFFLE_MAP`` — the stage's root RDD feeds a shuffle; tasks end with
  a sharded shuffle write.
* ``TRANSFER_PRODUCER`` — the root feeds a ``transfer_to`` boundary;
  tasks end by staging the whole partition at the producing host, ready
  for a receiver task to pull.
* ``RESULT`` — the final stage; tasks apply the job's action.

A stage whose in-stage chain contains a
:class:`~repro.rdd.transferred.TransferredRDD` is a *receiver stage*: its
tasks prefer the aggregator datacenter and are unlocked per-partition as
producer tasks finish (no barrier), which is what pipelines WAN pushes
with map execution.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.errors import LineageError
from repro.rdd.dependencies import (
    NarrowDependency,
    RangeDependency,
    ShuffleDependency,
    TransferDependency,
)
from repro.rdd.rdd import RDD
from repro.rdd.transferred import TransferredRDD

_stage_ids = itertools.count()


class StageKind(enum.Enum):
    SHUFFLE_MAP = "shuffle_map"
    TRANSFER_PRODUCER = "transfer_producer"
    RESULT = "result"


BoundaryDep = Union[ShuffleDependency, TransferDependency]


class Stage:
    """One schedulable stage of a job."""

    def __init__(
        self,
        rdd: RDD,
        kind: StageKind,
        outgoing_dep: Optional[BoundaryDep],
    ) -> None:
        self.stage_id = next(_stage_ids)
        self.rdd = rdd
        self.kind = kind
        # The boundary dependency this stage's output feeds (None for RESULT).
        self.outgoing_dep = outgoing_dep
        # Parent stages, discovered while walking the in-stage subgraph.
        self.parents: List[Stage] = []
        # Shuffle dependencies whose output this stage's tasks read.
        self.boundary_shuffle_deps: List[ShuffleDependency] = []
        # TransferredRDDs inside this stage (receiver semantics), paired
        # with the producer stage feeding each.
        self.transfer_inputs: List[Tuple[TransferredRDD, Stage]] = []
        # True once pre-combine already happened before the transfer, so
        # the shuffle write must merge combiners rather than values.
        self.combine_done = False
        # Owning tenant of the job this stage belongs to (None for
        # single-job runs); stamped by the DAGScheduler so every flow
        # the stage's tasks issue can be attributed and weighted.
        self.tenant: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return self.rdd.num_partitions

    @property
    def is_receiver_stage(self) -> bool:
        return bool(self.transfer_inputs)

    @property
    def reads_shuffle(self) -> bool:
        return bool(self.boundary_shuffle_deps)

    @property
    def name(self) -> str:
        return f"stage{self.stage_id}:{self.kind.value}:{self.rdd.name}"

    def required_transfers(self, partition: int) -> List[Tuple[Stage, int]]:
        """(producer stage, producer partition) pairs gating this task.

        Walks the in-stage narrow chain translating partition indices so
        union offsets are honoured.
        """
        required: List[Tuple[Stage, int]] = []
        producer_by_transfer = {
            transferred.transfer_dependency.transfer_id: producer
            for transferred, producer in self.transfer_inputs
        }

        def visit(rdd: RDD, index: int) -> None:
            for dep in rdd.dependencies:
                if isinstance(dep, TransferDependency):
                    producer = producer_by_transfer.get(dep.transfer_id)
                    if producer is not None:
                        required.append((producer, index))
                elif isinstance(dep, NarrowDependency):
                    if isinstance(dep, RangeDependency) and not dep.covers(index):
                        continue  # a union branch not owning this partition
                    visit(dep.parent, dep.parent_partition(index))

        visit(self.rdd, partition)
        return required

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.name} partitions={self.num_partitions}>"


def build_stages(final_rdd: RDD) -> Tuple[Stage, List[Stage]]:
    """Build the stage DAG for a job ending at ``final_rdd``.

    Returns ``(result_stage, all_stages)`` with ``all_stages`` in a
    parents-before-children topological order.  Stages for the same
    shuffle/transfer dependency are shared (important for cogroup and for
    diamond lineages).
    """
    stages_by_shuffle: Dict[int, Stage] = {}
    stages_by_transfer: Dict[int, Stage] = {}
    all_stages: List[Stage] = []

    def stage_for_boundary(dep: BoundaryDep) -> Stage:
        if isinstance(dep, ShuffleDependency):
            existing = stages_by_shuffle.get(dep.shuffle_id)
            if existing is not None:
                return existing
            stage = _new_stage(dep.parent, StageKind.SHUFFLE_MAP, dep)
            stages_by_shuffle[dep.shuffle_id] = stage
            return stage
        existing = stages_by_transfer.get(dep.transfer_id)
        if existing is not None:
            return existing
        stage = _new_stage(dep.parent, StageKind.TRANSFER_PRODUCER, dep)
        stages_by_transfer[dep.transfer_id] = stage
        return stage

    def _new_stage(
        rdd: RDD, kind: StageKind, outgoing: Optional[BoundaryDep]
    ) -> Stage:
        stage = Stage(rdd, kind, outgoing)
        _populate(stage)
        all_stages.append(stage)
        return stage

    def _populate(stage: Stage) -> None:
        """Walk the in-stage narrow subgraph, wiring boundaries."""
        visited: Set[int] = set()

        def visit(rdd: RDD) -> None:
            if rdd.rdd_id in visited:
                return
            visited.add(rdd.rdd_id)
            if isinstance(rdd, TransferredRDD):
                producer = stage_for_boundary(rdd.transfer_dependency)
                stage.transfer_inputs.append((rdd, producer))
                if producer not in stage.parents:
                    stage.parents.append(producer)
                return  # boundary: do not walk past the transfer
            for dep in rdd.dependencies:
                if isinstance(dep, ShuffleDependency):
                    stage.boundary_shuffle_deps.append(dep)
                    parent = stage_for_boundary(dep)
                    if parent not in stage.parents:
                        stage.parents.append(parent)
                elif isinstance(dep, TransferDependency):
                    # Reached only via a TransferredRDD, handled above.
                    raise LineageError(
                        "TransferDependency outside a TransferredRDD"
                    )
                else:
                    visit(dep.parent)

        visit(stage.rdd)
        _mark_combine_done(stage)

    def _mark_combine_done(stage: Stage) -> None:
        """Detect pre-combined transfers feeding this stage's shuffle write.

        When the stage is exactly ``TransferredRDD -> shuffle`` and the
        transfer carried a ``pre_combine``, map-side combine already
        happened at the producer (paper §IV-C-3) and the shuffle write
        must merge combiners instead of raw values.
        """
        if (
            stage.kind is StageKind.SHUFFLE_MAP
            and isinstance(stage.rdd, TransferredRDD)
            and stage.rdd.transfer_dependency.pre_combine is not None
        ):
            stage.combine_done = True

    result_stage = _new_stage(final_rdd, StageKind.RESULT, None)
    ordered = _topological(all_stages)
    # Renumber stages in topological order so ids (and the names derived
    # from them) depend only on this job's lineage, not on how many
    # stages earlier jobs in the process happened to build — experiment
    # results must be identical whether cells run sequentially or fanned
    # out across worker processes.
    for index, stage in enumerate(ordered):
        stage.stage_id = index
    return result_stage, ordered


def _topological(stages: List[Stage]) -> List[Stage]:
    """Parents-before-children order; detects accidental cycles."""
    order: List[Stage] = []
    state: Dict[int, int] = {}  # 0 = visiting, 1 = done

    def visit(stage: Stage) -> None:
        mark = state.get(stage.stage_id)
        if mark == 1:
            return
        if mark == 0:
            raise LineageError("cycle detected in stage graph")
        state[stage.stage_id] = 0
        for parent in stage.parents:
            visit(parent)
        state[stage.stage_id] = 1
        order.append(stage)

    for stage in stages:
        visit(stage)
    return order
