"""The simulation kernel: clock, event queue, and process execution.

The :class:`Simulator` owns a binary-heap agenda of ``(time, sequence,
event)`` entries.  ``sequence`` is a monotonically increasing tie-breaker so
that events scheduled at the same instant fire in FIFO order, which keeps
runs fully deterministic.

A :class:`Process` wraps a generator.  Each value the generator yields must
be an :class:`Event`; the process sleeps until that event fires and is then
resumed with the event's value (or the event's error is thrown into the
generator).  A finished process is itself an event, firing with the
generator's return value, so processes can wait for one another.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.simulation.event import AllOf, AnyOf, Event, Timeout


class Process(Event):
    """A running generator, resumable by the kernel; also awaitable."""

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Simulator.spawn() requires a generator, got {type(generator)!r}"
            )
        self._generator = generator
        # Kick-start on the next tick of the current instant.
        bootstrap = Event(sim, name=f"{self.name}:start")
        bootstrap.add_callback(self._resume)
        bootstrap.succeed(None)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's outcome."""
        if self.triggered:
            # The process already finished (e.g. it was interrupted and
            # the event it had been waiting on fired later).
            return
        try:
            if event.failed:
                target = self._generator.throw(event.error)  # type: ignore[arg-type]
            else:
                target = self._generator.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - process crashed
            self.fail(error)
            return
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name} yielded {target!r}, expected an Event"
                )
            )
            return
        target.add_callback(self._resume)

    def interrupt(self, cause: str = "interrupted") -> None:
        """Throw :class:`SimulationError` into the process at the next tick."""
        if self.triggered:
            return
        poke = Event(self.sim, name=f"{self.name}:interrupt")
        poke.add_callback(self._resume)
        poke.fail(SimulationError(cause))


class Simulator:
    """Discrete-event simulator: clock, agenda, and process spawner."""

    def __init__(self) -> None:
        self._now: float = 0.0
        self._agenda: List[Tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._processed_events = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention)."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events delivered so far (diagnostics)."""
        return self._processed_events

    # ------------------------------------------------------------------
    # Event creation helpers
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value=value, name=name)

    def all_of(self, events: Any, name: str = "") -> AllOf:
        """Combine events; fires when all have fired."""
        return AllOf(self, events, name=name)

    def any_of(self, events: Any, name: str = "") -> AnyOf:
        """Combine events; fires when the first one fires."""
        return AnyOf(self, events, name=name)

    def spawn(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # Scheduling (internal API used by Event)
    # ------------------------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(
            self._agenda, (self._now + delay, next(self._sequence), event)
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Deliver the next event.  Returns False if the agenda is empty."""
        if not self._agenda:
            return False
        time, _seq, event = heapq.heappop(self._agenda)
        if time < self._now:
            raise SimulationError(
                f"time went backwards: {time} < {self._now}"
            )
        self._now = time
        self._processed_events += 1
        event._deliver()
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the agenda empties or the clock passes ``until``.

        Returns the final simulated time.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self._now})"
            )
        while self._agenda:
            time = self._agenda[0][0]
            if until is not None and time > until:
                self._now = until
                return self._now
            self.step()
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def run_until_event(self, event: Event) -> Any:
        """Run until ``event`` fires, then return its value.

        Unlike :meth:`run`, this works when perpetual background processes
        (e.g. bandwidth jitter) keep the agenda non-empty forever.
        """
        while not event.triggered:
            if not self.step():
                raise SimulationError(
                    f"agenda drained before event {event.name!r} fired"
                )
        return event.value

    def run_process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Any:
        """Spawn ``generator``, run to completion, and return its result.

        Convenience wrapper used heavily in tests and the experiment
        harness.  Raises whatever the process raised.
        """
        process = self.spawn(generator, name=name)
        self.run()
        if not process.triggered:
            raise SimulationError(
                f"process {process.name} deadlocked: agenda empty but not done"
            )
        return process.value
