"""The simulation kernel: clock, event queue, and process execution.

The :class:`Simulator` separates its agenda into two stores:

* a **ready deque** of entries due at the current instant — scheduling
  a zero-delay event (the overwhelmingly common case: ``succeed()``,
  recompute triggers, process bootstraps) is a plain append, no heap;
* a bucketed **timer wheel** (:mod:`repro.simulation.timer_wheel`) for
  future entries, with lazy cancellation so superseded timers are
  skipped at drain time instead of being delivered as no-ops.

Entries fire in ``(time, sequence)`` order, where ``sequence`` is a
monotonically increasing tie-breaker, so events scheduled at the same
instant fire in FIFO order and runs stay fully deterministic — the
exact ordering contract of the original single-heap agenda.

A :class:`Process` wraps a generator.  Each value the generator yields
must be an :class:`Event`; the process sleeps until that event fires
and is then resumed with the event's value (or the event's error is
thrown into the generator).  A finished process is itself an event,
firing with the generator's return value, so processes can wait for
one another.

Hot paths that only need "call me back at time T" use
:meth:`Simulator.call_at` / :meth:`Simulator.call_later`, which
schedule a bare cancellable :class:`~repro.simulation.timer_wheel.
TimerHandle` instead of allocating an :class:`Event`.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from typing import Any, Callable, Generator, Optional

from repro.analysis.sanitizer import get_sanitizer
from repro.errors import LivenessError, SimulationError
from repro.simulation.event import AllOf, AnyOf, Event, Timeout
from repro.simulation.timer_wheel import TimerHandle, TimerWheel

# The wall-clock watchdog samples the clock once per this many timer-
# wheel batch pulls, so the steady-state cost is one integer decrement
# per clock advance.
_WALL_CHECK_INTERVAL = 1024


class Process(Event):
    """A running generator, resumable by the kernel; also awaitable."""

    __slots__ = ("_generator",)

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Simulator.spawn() requires a generator, got {type(generator)!r}"
            )
        self._generator = generator
        # Kick-start on the next tick of the current instant.
        bootstrap = Event(sim, name=f"{self.name}:start")
        bootstrap.add_callback(self._resume)
        bootstrap.succeed(None)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's outcome."""
        if self.triggered:
            # The process already finished (e.g. it was interrupted and
            # the event it had been waiting on fired later).
            return
        try:
            if event.failed:
                target = self._generator.throw(event.error)  # type: ignore[arg-type]
            else:
                target = self._generator.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - process crashed
            self.fail(error)
            return
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name} yielded {target!r}, expected an Event"
                )
            )
            return
        target.add_callback(self._resume)

    def interrupt(self, cause: str = "interrupted") -> None:
        """Throw :class:`SimulationError` into the process at the next tick."""
        if self.triggered:
            return
        poke = Event(self.sim, name=f"{self.name}:interrupt")
        poke.add_callback(self._resume)
        poke.fail(SimulationError(cause))


class Simulator:
    """Discrete-event simulator: clock, agenda, and process spawner."""

    def __init__(
        self,
        timer_granularity: float = 0.05,
        wall_deadline_seconds: Optional[float] = None,
    ) -> None:
        """``timer_granularity`` is the wheel bucket width in simulated
        seconds; entries within one bucket are sorted at drain time, so
        the width trades bucket count against per-bucket sort size.

        ``wall_deadline_seconds`` arms the liveness watchdog: a run that
        keeps the *real* clock busy past the deadline raises
        :class:`LivenessError` at the next timer-wheel batch pull
        instead of hanging the caller.  The watchdog observes only the
        wall clock — it never feeds simulated time, so determinism of
        non-timed-out runs is untouched.
        """
        self._now: float = 0.0
        self._ready: deque = deque()
        self._wheel = TimerWheel(timer_granularity)
        self._sequence = itertools.count()
        self._processed_events = 0
        self._batch: list = []
        # Runtime invariant sanitizer (None unless REPRO_SANITIZE /
        # --sanitize): validates clock monotonicity on every batch pull.
        self._sanitizer = get_sanitizer()
        if wall_deadline_seconds is not None and wall_deadline_seconds <= 0:
            raise SimulationError(
                f"wall_deadline_seconds must be > 0, got {wall_deadline_seconds!r}"
            )
        self._wall_deadline_seconds = wall_deadline_seconds
        self._wall_started: Optional[float] = None
        if wall_deadline_seconds is not None:
            # repro-lint: allow[DET002] liveness watchdog deadline; never feeds simulated time
            self._wall_started = time.monotonic()
        self._wall_countdown = _WALL_CHECK_INTERVAL

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention)."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events delivered so far (diagnostics)."""
        return self._processed_events

    # ------------------------------------------------------------------
    # Event creation helpers
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value=value, name=name)

    def all_of(self, events: Any, name: str = "") -> AllOf:
        """Combine events; fires when all have fired."""
        return AllOf(self, events, name=name)

    def any_of(self, events: Any, name: str = "") -> AnyOf:
        """Combine events; fires when the first one fires."""
        return AnyOf(self, events, name=name)

    def spawn(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # Bare timers (hot-path API: no Event allocation)
    # ------------------------------------------------------------------
    def call_at(self, time: float, fn: Callable[[], None]) -> TimerHandle:
        """Run ``fn()`` at simulated ``time``; returns a cancellable handle.

        Cancellation is lazy — a cancelled handle is skipped when its
        wheel bucket drains, costing O(1) instead of a delivered no-op.
        """
        if time < self._now:
            raise SimulationError(
                f"call_at({time}) is in the past (now={self._now})"
            )
        handle = TimerHandle(fn)
        if time == self._now:
            self._ready.append(handle)
        else:
            self._wheel.push(time, next(self._sequence), handle)
        return handle

    def call_later(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        """Run ``fn()`` after ``delay`` time units (cancellable)."""
        if delay < 0:
            raise SimulationError(f"negative timer delay: {delay}")
        return self.call_at(self._now + delay, fn)

    # ------------------------------------------------------------------
    # Scheduling (internal API used by Event)
    # ------------------------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        if delay <= 0:
            # Due at the current instant: FIFO deque, no heap, no seq.
            self._ready.append(event)
        else:
            self._wheel.push(self._now + delay, next(self._sequence), event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _pull_batch(self) -> bool:
        """Advance the clock to the wheel's next instant and stage every
        entry due then onto the ready deque.  False when nothing is left."""
        batch = self._batch
        next_time = self._wheel.pop_batch(batch)
        if next_time is None:
            return False
        if self._sanitizer is not None:
            self._sanitizer.check_time(self._now, next_time)
        if next_time < self._now:  # pragma: no cover - defensive
            raise SimulationError(
                f"time went backwards: {next_time} < {self._now}"
            )
        if self._wall_started is not None:
            self._wall_countdown -= 1
            if self._wall_countdown <= 0:
                self._wall_countdown = _WALL_CHECK_INTERVAL
                self._check_wall_deadline()
        self._now = next_time
        self._ready.extend(batch)
        batch.clear()
        return True

    def _check_wall_deadline(self) -> None:
        # repro-lint: allow[DET002] liveness watchdog deadline; never feeds simulated time
        elapsed = time.monotonic() - self._wall_started
        if elapsed > self._wall_deadline_seconds:
            raise LivenessError(
                f"simulation exceeded its wall-clock budget "
                f"({elapsed:.1f}s > {self._wall_deadline_seconds:g}s at "
                f"simulated t={self._now:g}, "
                f"{self._processed_events} events delivered)"
            )

    def step(self) -> bool:
        """Deliver the next event.  Returns False if the agenda is empty."""
        ready = self._ready
        while True:
            if not ready:
                if not self._pull_batch():
                    return False
            obj = ready.popleft()
            if obj._cancelled:
                continue
            self._processed_events += 1
            obj._deliver()
            return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the agenda empties or the clock passes ``until``.

        Returns the final simulated time.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self._now})"
            )
        ready = self._ready
        if until is None:
            # Unbounded run: inline the delivery loop (no per-event
            # step() call, no wheel peek between events).
            while True:
                while ready:
                    obj = ready.popleft()
                    if obj._cancelled:
                        continue
                    self._processed_events += 1
                    obj._deliver()
                if not self._pull_batch():
                    return self._now
        while True:
            # Purge cancelled entries here rather than via step(), which
            # would otherwise pull the next wheel batch — possibly past
            # ``until`` — just to find something deliverable.
            while ready and ready[0]._cancelled:
                ready.popleft()
            if ready:
                if not self.step():  # pragma: no cover - defensive
                    break
                continue
            next_time = self._wheel.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                return self._now
            self.step()
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def run_until_event(self, event: Event) -> Any:
        """Run until ``event`` fires, then return its value.

        Unlike :meth:`run`, this works when perpetual background processes
        (e.g. bandwidth jitter) keep the agenda non-empty forever.
        """
        while not event.triggered:
            if not self.step():
                raise SimulationError(
                    f"agenda drained before event {event.name!r} fired"
                )
        return event.value

    def run_process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Any:
        """Spawn ``generator``, run to completion, and return its result.

        Convenience wrapper used heavily in tests and the experiment
        harness.  Raises whatever the process raised.
        """
        process = self.spawn(generator, name=name)
        self.run()
        if not process.triggered:
            raise SimulationError(
                f"process {process.name} deadlocked: agenda empty but not done"
            )
        return process.value
