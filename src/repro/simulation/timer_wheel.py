"""Bucketed timer wheel: the simulator's future-event store.

The legacy agenda was one global binary heap, which charges O(log n)
for *every* schedule and pop — including the huge population of timers
that never meaningfully fire: superseded fabric wakes, flow-retry
deadlines that the flow beats, jitter resamples racing departures.

The wheel replaces that with a two-level structure:

* future entries hash into fixed-width *buckets* keyed by the integer
  tick ``int(time / granularity)``; scheduling is an O(1) list append
  (plus one heap push per newly-occupied bucket, amortized over every
  entry that lands in it);
* the earliest bucket is *activated* on demand: sorted once by
  ``(time, seq)`` and drained through a cursor, so ordering work is
  paid per bucket, not per entry;
* cancellation is **lazy**: :meth:`TimerHandle.cancel` (and
  ``Timeout.cancel``) just flips a flag — the entry is purged when the
  drain cursor reaches it, without ever touching the structure.  A
  cancelled timer therefore costs O(1) total instead of O(log n) at
  schedule time plus a delivered no-op callback at fire time.

Determinism is identical to the heap: entries fire in ``(time, seq)``
order, where ``seq`` is the global scheduling sequence number.

Entries are ``(time, seq, obj)`` where ``obj`` is anything with a
``_cancelled`` flag (an :class:`~repro.simulation.event.Event` or a
bare :class:`TimerHandle`); the wheel itself never delivers — the
kernel pops batches and dispatches.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Any, List, Optional, Tuple

Entry = Tuple[float, int, Any]


class TimerHandle:
    """A bare scheduled callback — no Event allocation, no value.

    Returned by ``Simulator.call_at`` / ``call_later``; the hot paths
    (fabric departure timers, retry deadlines) use these instead of
    :class:`Timeout` events to skip the callback-list machinery.
    """

    __slots__ = ("fn", "_cancelled")

    def __init__(self, fn) -> None:
        self.fn = fn
        self._cancelled = False

    def cancel(self) -> None:
        """Lazily cancel: the wheel skips this entry when it drains."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _deliver(self) -> None:
        self.fn()


class TimerWheel:
    """Sparse bucketed timer wheel with lazy cancellation."""

    __slots__ = (
        "granularity",
        "_buckets",
        "_tick_heap",
        "_active",
        "_active_tick",
        "_cursor",
    )

    def __init__(self, granularity: float = 0.05) -> None:
        if granularity <= 0:
            raise ValueError("wheel granularity must be positive")
        self.granularity = granularity
        # tick -> unsorted list of entries (future buckets).
        self._buckets: dict[int, List[Entry]] = {}
        # Occupied future ticks (each pushed exactly once per bucket
        # incarnation).
        self._tick_heap: List[int] = []
        # The earliest bucket, sorted, drained through _cursor.
        self._active: Optional[List[Entry]] = None
        self._active_tick = 0
        self._cursor = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def push(self, time: float, seq: int, obj: Any) -> None:
        tick = int(time / self.granularity)
        active = self._active
        if active is not None and tick <= self._active_tick:
            # Lands in the bucket currently being drained: keep it
            # sorted past the cursor (time >= now guarantees the slot
            # is at or after the cursor).
            insort(active, (time, seq, obj), lo=self._cursor)
            return
        bucket = self._buckets.get(tick)
        if bucket is None:
            self._buckets[tick] = [(time, seq, obj)]
            heappush(self._tick_heap, tick)
        else:
            bucket.append((time, seq, obj))

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def _advance_active(self) -> bool:
        """Make ``_active``/``_cursor`` point at the earliest live entry.

        Returns False when the wheel is empty.  Cancelled entries under
        the cursor are purged here (lazy cancellation).
        """
        while True:
            active = self._active
            if active is not None:
                # Purge cancelled entries at the cursor.
                cursor, length = self._cursor, len(active)
                while cursor < length and active[cursor][2]._cancelled:
                    cursor += 1
                self._cursor = cursor
                if cursor >= length:
                    self._active = None
                    continue
                # A future bucket could still be earlier than the rest
                # of the active one only if its tick is smaller (which
                # can happen after run(until=...) parked mid-bucket).
                if self._tick_heap and self._tick_heap[0] < self._active_tick:
                    self._suspend_active()
                    continue
                return True
            if not self._tick_heap:
                return False
            tick = heappop(self._tick_heap)
            bucket = self._buckets.pop(tick, None)
            if not bucket:
                continue
            bucket.sort()
            self._active = bucket
            self._active_tick = tick
            self._cursor = 0

    def _suspend_active(self) -> None:
        """Park the active bucket's remainder back into the future map."""
        active = self._active
        assert active is not None
        rest = active[self._cursor :]
        if rest:
            existing = self._buckets.get(self._active_tick)
            if existing is None:
                self._buckets[self._active_tick] = rest
                heappush(self._tick_heap, self._active_tick)
            else:
                existing.extend(rest)
        self._active = None

    def peek_time(self) -> Optional[float]:
        """Earliest live (non-cancelled) entry time, or None if empty."""
        if not self._advance_active():
            return None
        assert self._active is not None
        return self._active[self._cursor][0]

    def pop_batch(self, batch: List[Any]) -> Optional[float]:
        """Move every live entry at the earliest time into ``batch``.

        Returns that time, or None when the wheel is empty.  The batch
        is guaranteed non-empty on a non-None return.
        """
        if not self._advance_active():
            return None
        active = self._active
        assert active is not None
        cursor = self._cursor
        time = active[cursor][0]
        length = len(active)
        while cursor < length and active[cursor][0] == time:
            obj = active[cursor][2]
            if not obj._cancelled:
                batch.append(obj)
            cursor += 1
        self._cursor = cursor
        if not batch:
            # Every same-instant entry was cancelled; recurse to the
            # next instant without reporting an empty batch.
            return self.pop_batch(batch)
        return time

    def __len__(self) -> int:  # pragma: no cover - debugging aid
        count = sum(len(bucket) for bucket in self._buckets.values())
        if self._active is not None:
            count += len(self._active) - self._cursor
        return count
