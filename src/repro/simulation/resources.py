"""Shared-resource primitives built on the event kernel.

:class:`Resource` models a pool of identical slots (e.g. executor cores):
processes acquire a slot, hold it while working, and release it.  Waiters
are served FIFO, which mirrors the first-come-first-served slot handout of
a Spark standalone cluster.

:class:`Store` is an unbounded producer/consumer queue of items, used for
mailbox-style communication between simulation processes (e.g. a shuffle
receiver waiting for pushed blocks).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, TYPE_CHECKING

from repro.errors import SimulationError
from repro.simulation.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Simulator


class Resource:
    """A counted pool of interchangeable slots with FIFO waiters."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"Resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name or "resource"
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires when a slot is granted.

        The slot is held from the moment the event fires until
        :meth:`release` is called.
        """
        grant = self.sim.event(name=f"{self.name}:acquire")
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.succeed(self)
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Free one slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"{self.name}: release without acquire")
        if self._waiters:
            # Hand the slot straight to the next waiter; occupancy unchanged.
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO queue connecting producer and consumer processes."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name or "store"
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest blocked getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        request = self.sim.event(name=f"{self.name}:get")
        if self._items:
            request.succeed(self._items.popleft())
        else:
            self._getters.append(request)
        return request
