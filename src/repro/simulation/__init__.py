"""Discrete-event simulation kernel.

The kernel is deliberately small and self-contained: a binary-heap event
queue, a simulated clock, and generator-based processes in the style of
SimPy.  A process is a Python generator that yields :class:`Event` objects;
the kernel resumes the generator when the yielded event fires.

Typical usage::

    from repro.simulation import Simulator

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(5.0)
        print("woke at", sim.now)

    sim.spawn(worker(sim))
    sim.run()
"""

from repro.simulation.event import Event, Timeout, AllOf, AnyOf
from repro.simulation.kernel import Simulator, Process
from repro.simulation.random_source import RandomSource
from repro.simulation.resources import Resource, Store

__all__ = [
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Simulator",
    "Process",
    "RandomSource",
    "Resource",
    "Store",
]
