"""Events: the unit of synchronisation in the simulation kernel.

An :class:`Event` starts *pending* and fires exactly once, either with a
value (:meth:`Event.succeed`) or with an error (:meth:`Event.fail`).
Processes wait on events by yielding them; arbitrary callbacks may also be
attached.  :class:`Timeout` is an event pre-scheduled to fire after a delay,
and :class:`AllOf` / :class:`AnyOf` compose several events into one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from repro.errors import EventAlreadyFiredError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.simulation.kernel import Simulator

# Sentinel distinguishing "no value yet" from a legitimate None value.
_PENDING = object()


class Event:
    """A one-shot synchronisation point on the simulation timeline."""

    __slots__ = (
        "sim",
        "name",
        "_value",
        "_error",
        "_callbacks",
        "_processed",
        "_cancelled",
    )

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._value: Any = _PENDING
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[[Event], None]] = []
        # Has the kernel already delivered this event's callbacks?
        self._processed = False
        # Lazy cancellation (see repro.simulation.timer_wheel): the
        # kernel skips cancelled entries at drain time.
        self._cancelled = False

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has fired (successfully or not)."""
        return self._value is not _PENDING or self._error is not None

    @property
    def ok(self) -> bool:
        """True if the event fired successfully."""
        return self._value is not _PENDING and self._error is None

    @property
    def failed(self) -> bool:
        """True if the event fired with an error."""
        return self._error is not None

    @property
    def value(self) -> Any:
        """The value the event fired with.

        Raises the stored error for failed events and
        :class:`EventAlreadyFiredError` misuse errors for pending ones.
        """
        if self._error is not None:
            raise self._error
        if self._value is _PENDING:
            raise EventAlreadyFiredError(
                f"event {self.name or id(self)} has not fired yet"
            )
        return self._value

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> Event:
        """Fire the event successfully, delivering ``value`` to waiters."""
        if self.triggered:
            raise EventAlreadyFiredError(
                f"event {self.name or id(self)} fired twice"
            )
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, error: BaseException) -> Event:
        """Fire the event with an error, propagated to waiting processes."""
        if self.triggered:
            raise EventAlreadyFiredError(
                f"event {self.name or id(self)} fired twice"
            )
        if not isinstance(error, BaseException):
            raise TypeError("Event.fail() requires an exception instance")
        self._error = error
        self.sim._schedule_event(self)
        return self

    # ------------------------------------------------------------------
    # Callbacks
    # ------------------------------------------------------------------
    def add_callback(self, callback: Callable[[Event], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event has already been *processed* the callback runs
        immediately; if it fired but is still queued, the callback joins the
        queue like any other.
        """
        if self.triggered and self._processed:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _deliver(self) -> None:
        """Invoke all callbacks.  Called by the kernel exactly once."""
        self._processed = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.failed:
            state = f"failed({self._error!r})"
        elif self.triggered:
            state = f"ok({self._value!r})"
        return f"<Event {self.name or hex(id(self))} {state}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` time units from now."""

    __slots__ = ("delay", "_fire_value")

    def __init__(
        self, sim: Simulator, delay: float, value: Any = None, name: str = ""
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=name or f"timeout({delay})")
        self.delay = delay
        # The value is installed at delivery time; setting it now would
        # make the timeout look already-triggered.
        self._fire_value = value
        sim._schedule_event(self, delay=delay)

    def _deliver(self) -> None:
        self._value = self._fire_value
        super()._deliver()

    def cancel(self) -> None:
        """Lazily cancel the timeout: it will never fire, its callbacks
        never run, and the agenda entry is skipped (not delivered) when
        its timer-wheel bucket drains."""
        self._cancelled = True

    # A Timeout is born triggered-at-a-future-time; it cannot be re-fired.
    def succeed(self, value: Any = None) -> Event:  # pragma: no cover
        raise EventAlreadyFiredError("a Timeout fires automatically")

    def fail(self, error: BaseException) -> Event:  # pragma: no cover
        raise EventAlreadyFiredError("a Timeout fires automatically")


class AllOf(Event):
    """Fires when *all* child events have fired.

    The value is a list of child values in the original order.  If any child
    fails, this event fails with the first error observed.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(
        self, sim: Simulator, events: Iterable[Event], name: str = ""
    ) -> None:
        super().__init__(sim, name=name or "all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if child.failed:
            self.fail(child.error)  # type: ignore[arg-type]
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c._value for c in self._children])


class AnyOf(Event):
    """Fires when *any* child event fires, with ``(index, value)``.

    A failing child fails this event unless another child already fired.
    """

    __slots__ = ("_children",)

    def __init__(
        self, sim: Simulator, events: Iterable[Event], name: str = ""
    ) -> None:
        super().__init__(sim, name=name or "any_of")
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for index, child in enumerate(self._children):
            child.add_callback(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[Event], None]:
        def on_child(child: Event) -> None:
            if self.triggered:
                return
            if child.failed:
                self.fail(child.error)  # type: ignore[arg-type]
            else:
                self.succeed((index, child._value))

        return on_child
