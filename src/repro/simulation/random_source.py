"""Seeded, named random streams for reproducible experiments.

Different subsystems (bandwidth jitter, failure injection, workload data
generation) draw from *independent* named streams derived from a single
root seed.  Adding draws to one subsystem therefore never perturbs the
others — a property the experiment harness relies on when comparing the
three shuffle schemes under identical conditions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterator, List, Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(root_seed: int, stream_name: str) -> int:
    """Derive a 64-bit child seed from (root seed, stream name)."""
    digest = hashlib.sha256(f"{root_seed}:{stream_name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RandomSource:
    """A collection of independent named RNG streams under one root seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the named stream."""
        if name not in self._streams:
            self._streams[name] = random.Random(_derive_seed(self.seed, name))
        return self._streams[name]

    # ------------------------------------------------------------------
    # Convenience draws
    # ------------------------------------------------------------------
    def uniform(self, name: str, low: float, high: float) -> float:
        return self.stream(name).uniform(low, high)

    def expovariate(self, name: str, rate: float) -> float:
        return self.stream(name).expovariate(rate)

    def gauss(self, name: str, mean: float, stddev: float) -> float:
        return self.stream(name).gauss(mean, stddev)

    def chance(self, name: str, probability: float) -> bool:
        """Bernoulli draw; probability outside [0, 1] is clamped."""
        probability = min(1.0, max(0.0, probability))
        return self.stream(name).random() < probability

    def choice(self, name: str, options: Sequence[T]) -> T:
        return self.stream(name).choice(options)

    def shuffled(self, name: str, items: Sequence[T]) -> List[T]:
        """Return a new shuffled list, leaving the input untouched."""
        copy = list(items)
        self.stream(name).shuffle(copy)
        return copy

    def zipf_indices(
        self, name: str, count: int, vocabulary_size: int, exponent: float = 1.1
    ) -> Iterator[int]:
        """Yield ``count`` indices in [0, vocabulary_size) with a Zipf law.

        Implemented by inverse-CDF sampling over the (finite) harmonic
        weights, which is exact and needs no scipy.
        """
        if vocabulary_size <= 0:
            raise ValueError("vocabulary_size must be positive")
        weights = [1.0 / (rank + 1) ** exponent for rank in range(vocabulary_size)]
        total = sum(weights)
        cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        rng = self.stream(name)
        import bisect

        for _ in range(count):
            yield bisect.bisect_left(cumulative, rng.random())

    def child(self, name: str) -> RandomSource:
        """A new RandomSource whose streams are independent of this one."""
        return RandomSource(_derive_seed(self.seed, f"child:{name}"))
