"""Per-tenant accounting for multi-tenant job streams.

Two complementary pieces:

* :class:`TenantLedger` — byte attribution, charged by the fabric at
  flow *admission* and refunded when a flow is cancelled before
  draining.  Once every flow has landed, the ledger's per-tenant totals
  must reconcile exactly with the traffic monitor's completion-time
  ``by_tenant`` records — the multi-tenant extension of the
  counter-vs-monitor byte-equality invariant (property-tested,
  including under chaos/retry refunds).
* :class:`TenantCounters` — job-stream outcomes: per-tenant job
  completion times (JCT p50/p95/p99 via :mod:`repro.metrics.stats`),
  makespan, and job counts, merged with the ledger into the per-tenant
  report surfaced in ``RunResult.tenants`` and the CLI.
"""

from __future__ import annotations

from collections import defaultdict
from math import fsum
from typing import Collection, Dict, List, Optional

from repro.metrics.stats import percentile


class TenantLedger:
    """Admission-time per-tenant byte accounting with cancel refunds.

    Charges are kept **per flow** and totals reduced with
    :func:`math.fsum`, so they are independent of accumulation order:
    the ledger charges at admission while the traffic monitor records at
    completion, and a running float sum would drift by an ulp whenever
    overlapping flows land in a different order than they were admitted.
    With per-flow entries both sides sum the identical multiset of
    values — a cancelled flow's refund *replaces* its admission charge
    with the bytes actually delivered — so reconciliation is exact, not
    merely close.
    """

    def __init__(self) -> None:
        # flow key -> (tenant, charged bytes, crossed a WAN boundary)
        self._charges: Dict[int, tuple] = {}

    def account(
        self, tenant: str, flow_key: int, size_bytes: float, wan: bool = False
    ) -> None:
        """Charge ``size_bytes`` to ``tenant`` at flow admission."""
        self._charges[flow_key] = (tenant, size_bytes, wan)

    def settle(self, flow_key: int, delivered: float) -> None:
        """A cancelled flow's refund: keep only what actually crossed.

        The charge becomes the *same float* the traffic monitor records
        for the cancelled flow, keeping the two multisets identical.
        """
        entry = self._charges.get(flow_key)
        if entry is None:
            return
        tenant, _charged, wan = entry
        self._charges[flow_key] = (tenant, delivered, wan)

    @property
    def bytes_by_tenant(self) -> Dict[str, float]:
        return self._reduce(wan_only=False)

    @property
    def wan_bytes_by_tenant(self) -> Dict[str, float]:
        return self._reduce(wan_only=True)

    def settled_by_tenant(
        self, exclude: Collection[int] = (), wan_only: bool = False
    ) -> Dict[str, float]:
        """Per-tenant totals over the *landed* charges only.

        ``exclude`` names the still-in-flight flow keys: their admission
        charges have no traffic-monitor record yet.  What remains is the
        identical multiset of floats the monitor holds, so the runtime
        sanitizer compares the two fsum reductions for exact equality at
        stage boundaries.
        """
        excluded = set(exclude)
        grouped: Dict[str, List[float]] = defaultdict(list)
        for flow_key, (tenant, charged, wan) in self._charges.items():
            if flow_key in excluded or (wan_only and not wan):
                continue
            grouped[tenant].append(charged)
        return {tenant: fsum(values) for tenant, values in grouped.items()}

    def _reduce(self, wan_only: bool) -> Dict[str, float]:
        grouped: Dict[str, List[float]] = defaultdict(list)
        for tenant, charged, wan in self._charges.values():
            if wan_only and not wan:
                continue
            grouped[tenant].append(charged)
        return {tenant: fsum(values) for tenant, values in grouped.items()}

    @property
    def total_bytes(self) -> float:
        return fsum(self.bytes_by_tenant.values())

    @property
    def total_wan_bytes(self) -> float:
        return fsum(self.wan_bytes_by_tenant.values())


class TenantCounters:
    """Per-tenant job-stream outcomes (JCT distribution, makespan)."""

    def __init__(self) -> None:
        self.submitted: Dict[str, int] = defaultdict(int)
        self.completed: Dict[str, int] = defaultdict(int)
        self.jct: Dict[str, List[float]] = defaultdict(list)
        self._first_arrival: Dict[str, float] = {}
        self._last_completion: Dict[str, float] = {}

    def note_submitted(self, tenant: str, at: float) -> None:
        self.submitted[tenant] += 1
        if tenant not in self._first_arrival or at < self._first_arrival[tenant]:
            self._first_arrival[tenant] = at

    def note_completed(
        self, tenant: str, submitted_at: float, finished_at: float
    ) -> None:
        self.completed[tenant] += 1
        self.jct[tenant].append(finished_at - submitted_at)
        last = self._last_completion.get(tenant)
        if last is None or finished_at > last:
            self._last_completion[tenant] = finished_at

    def makespan(self, tenant: str) -> float:
        """First arrival to last completion (0.0 before any completion)."""
        if tenant not in self._last_completion:
            return 0.0
        return self._last_completion[tenant] - self._first_arrival[tenant]

    def report(
        self, ledger: Optional[TenantLedger] = None
    ) -> Dict[str, Dict[str, float]]:
        """Flat per-tenant summary (the ``RunResult.tenants`` payload)."""
        tenants = set(self.submitted) | (
            set(ledger.bytes_by_tenant) if ledger is not None else set()
        )
        out: Dict[str, Dict[str, float]] = {}
        for tenant in sorted(tenants):
            durations = self.jct.get(tenant, [])
            row: Dict[str, float] = {
                "jobs_submitted": float(self.submitted.get(tenant, 0)),
                "jobs_completed": float(self.completed.get(tenant, 0)),
                "makespan_s": self.makespan(tenant),
            }
            if durations:
                row["jct_mean_s"] = sum(durations) / len(durations)
                row["jct_p50_s"] = percentile(durations, 50)
                row["jct_p95_s"] = percentile(durations, 95)
                row["jct_p99_s"] = percentile(durations, 99)
            if ledger is not None:
                row["bytes"] = ledger.bytes_by_tenant.get(tenant, 0.0)
                row["wan_bytes"] = ledger.wan_bytes_by_tenant.get(tenant, 0.0)
            out[tenant] = row
        return out
