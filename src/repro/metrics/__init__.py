"""Metrics: timelines, traffic, and the statistics the paper reports.

* :mod:`repro.metrics.collectors` — listener collecting job/stage/task
  spans and byte counters during a run.
* :mod:`repro.metrics.stats` — the 10 %-trimmed mean, median, and
  interquartile range used in Fig. 7 / Fig. 9.
* :mod:`repro.metrics.reporting` — plain-text tables for benchmark
  output.
* :mod:`repro.metrics.perf` — counters of the simulation substrate's
  own hot path (solver invocations, flows touched, wall time).
"""

from repro.metrics.collectors import (
    JobMetrics,
    MetricsCollector,
    StageSpan,
    TaskSpan,
)
from repro.metrics.perf import FabricPerfCounters
from repro.metrics.stats import (
    interquartile_range,
    median,
    summarize,
    trimmed_mean,
    SummaryStats,
)

__all__ = [
    "FabricPerfCounters",
    "JobMetrics",
    "MetricsCollector",
    "StageSpan",
    "TaskSpan",
    "trimmed_mean",
    "median",
    "interquartile_range",
    "summarize",
    "SummaryStats",
]
