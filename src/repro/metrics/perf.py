"""Performance counters for the simulation substrate itself.

The figure benchmarks regenerate the paper's results by pushing
thousands of concurrent flows through :class:`repro.network.fabric.
NetworkFabric`; the counters here make the cost of that substrate
visible in every run, so a regression in the solver hot path shows up
as a number, not as a mysteriously slower benchmark.

``FabricPerfCounters`` is owned by the fabric (``fabric.perf``) and
incremented from the solver event loop:

* ``events``            — recompute/wake events processed;
* ``solves``            — fair-share solver invocations;
* ``flows_touched``     — total flows re-solved across all solves (the
  incremental engine touches only the dirty connected component, so
  this is far below ``solves * active_flows``);
* ``solver_seconds``    — wall-clock time inside the solver + component
  bookkeeping (real time, not simulated time);
* ``total_flows``       — flows ever admitted;
* ``peak_active_flows`` — high-water mark of concurrent flows;
* ``jitter_noops``      — capacity-change notifications skipped because
  the perturbed links carried zero active flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class FabricPerfCounters:
    """Counters of the fabric/solver hot path (see module docstring)."""

    events: int = 0
    solves: int = 0
    flows_touched: int = 0
    solver_seconds: float = 0.0
    total_flows: int = 0
    peak_active_flows: int = 0
    jitter_noops: int = 0

    def note_admission(self, active_flows: int) -> None:
        """Record one admitted flow and the new concurrency level."""
        self.total_flows += 1
        if active_flows > self.peak_active_flows:
            self.peak_active_flows = active_flows

    @property
    def mean_flows_per_solve(self) -> float:
        return self.flows_touched / self.solves if self.solves else 0.0

    def as_dict(self) -> Dict[str, float]:
        summary = {f.name: float(getattr(self, f.name)) for f in fields(self)}
        summary["mean_flows_per_solve"] = self.mean_flows_per_solve
        return summary

    def format_summary(self) -> str:
        """One-line human-readable summary for CLI / bench output."""
        return (
            f"events={self.events} solves={self.solves} "
            f"flows_touched={self.flows_touched} "
            f"(mean {self.mean_flows_per_solve:.1f}/solve) "
            f"solver={self.solver_seconds * 1e3:.1f}ms "
            f"peak_flows={self.peak_active_flows} "
            f"jitter_noops={self.jitter_noops}"
        )


@dataclass
class ShuffleCounters:
    """Per-backend counters of the shuffle data path.

    Owned by :class:`repro.shuffle.service.ShuffleService` and
    incremented by the active backend; every byte the backend moves over
    the network is accounted here, split WAN vs. intra-datacenter, so
    the invariant *counter bytes == traffic-monitor bytes for the
    backend's flow tags* is checkable (and checked, by the property
    suite in ``tests/shuffle``).

    * ``shuffles_registered``     — shuffles whose lifecycle the service
      opened (idempotent re-registration is not re-counted);
    * ``map_outputs_registered``  — sharded map outputs published;
    * ``reduce_reads``            — reduce-side read operations served;
    * ``blocks_fetched``          — remote reads issued by reducers
      (per-shard flows for the fetch backend, per-source-host coalesced
      flows for the pre-merge backend);
    * ``blocks_pushed``           — partitions staged at a ``transfer_to``
      boundary for a receiver pull (the push path's unit of work);
    * ``merge_rounds``            — per-(shuffle, datacenter) merge
      operations executed by the pre-merge backend;
    * ``merge_fan_in``            — total map outputs consolidated across
      all merge rounds (``mean_merge_fan_in`` derives the average);
    * ``wan_bytes`` / ``intra_dc_bytes`` — network bytes moved by the
      backend, split by whether the flow crossed a datacenter boundary;
    * ``recovery_wan_bytes`` / ``recovery_intra_dc_bytes`` — the subset
      of the above moved by *recovery* work (retried attempts, tasks
      relaunched after an executor loss, lineage-recomputed parents, and
      pre-merge re-consolidation) — always <= the matching total, so
      the counter/monitor equivalence invariant is unchanged;
    * ``local_bytes``             — shuffle input served from local disk
      (no network flow);
    * ``replication_bytes``       — bytes copied to additional replicas
      by a durability-first backend (the ``remote`` shuffle-worker
      pool's r-1 extra copies) during normal operation;
    * ``rereplication_bytes``     — the subset of replica copies made to
      *restore* the replication factor after a worker loss (always also
      counted as recovery bytes above);
    * ``replica_promotions``      — map outputs whose primary copy was
      lost and a surviving replica took over serving reads (the
      durability path's zero-resubmission handoff);
    * ``spill_bytes``             — bytes a shuffle worker accepted past
      its memory buffer and spilled to local disk (no network flow);
    * ``blob_puts`` / ``blob_gets`` — object-store requests issued by
      the ``blob`` backend (priced per-request by
      :class:`repro.metrics.billing.BlobPricing`).
    """

    shuffles_registered: int = 0
    map_outputs_registered: int = 0
    reduce_reads: int = 0
    blocks_fetched: int = 0
    blocks_pushed: int = 0
    merge_rounds: int = 0
    merge_fan_in: int = 0
    wan_bytes: float = 0.0
    intra_dc_bytes: float = 0.0
    recovery_wan_bytes: float = 0.0
    recovery_intra_dc_bytes: float = 0.0
    local_bytes: float = 0.0
    replication_bytes: float = 0.0
    rereplication_bytes: float = 0.0
    replica_promotions: int = 0
    spill_bytes: float = 0.0
    blob_puts: int = 0
    blob_gets: int = 0
    # Network bytes attributable to one shuffle id (reduce fetches and
    # pre-merge consolidation; transfer_to flows are keyed by transfer,
    # not shuffle, and appear only in the totals above).
    network_bytes_by_shuffle: Dict[int, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def network_bytes(self) -> float:
        return self.wan_bytes + self.intra_dc_bytes

    @property
    def mean_merge_fan_in(self) -> float:
        return self.merge_fan_in / self.merge_rounds if self.merge_rounds else 0.0

    def note_flow(
        self,
        src_dc: str,
        dst_dc: str,
        size_bytes: float,
        shuffle_id: int | None = None,
        recovery: bool = False,
    ) -> None:
        """Account one network flow issued by the backend."""
        if src_dc != dst_dc:
            self.wan_bytes += size_bytes
            if recovery:
                self.recovery_wan_bytes += size_bytes
        else:
            self.intra_dc_bytes += size_bytes
            if recovery:
                self.recovery_intra_dc_bytes += size_bytes
        if shuffle_id is not None:
            self.network_bytes_by_shuffle[shuffle_id] = (
                self.network_bytes_by_shuffle.get(shuffle_id, 0.0) + size_bytes
            )

    def note_local_read(self, size_bytes: float) -> None:
        self.local_bytes += size_bytes

    def as_dict(self) -> Dict[str, float]:
        """Flat float summary (per-shuffle breakdown omitted)."""
        summary = {
            f.name: float(getattr(self, f.name))
            for f in fields(self)
            if f.name != "network_bytes_by_shuffle"
        }
        summary["network_bytes"] = self.network_bytes
        summary["mean_merge_fan_in"] = self.mean_merge_fan_in
        return summary

    def format_summary(self) -> str:
        """One-line human-readable summary for CLI / bench output."""
        return (
            f"maps={self.map_outputs_registered} "
            f"reads={self.reduce_reads} "
            f"fetched={self.blocks_fetched} pushed={self.blocks_pushed} "
            f"merges={self.merge_rounds} "
            f"(fan-in {self.mean_merge_fan_in:.1f}) "
            f"wan={self.wan_bytes / 1e6:.1f}MB "
            f"intra={self.intra_dc_bytes / 1e6:.1f}MB "
            f"local={self.local_bytes / 1e6:.1f}MB "
            f"recovery={self.recovery_wan_bytes / 1e6:.1f}MB-wan/"
            f"{self.recovery_intra_dc_bytes / 1e6:.1f}MB-intra"
            + (
                f" repl={self.replication_bytes / 1e6:.1f}MB"
                f"(+{self.rereplication_bytes / 1e6:.1f}MB re) "
                f"promotions={self.replica_promotions} "
                f"spill={self.spill_bytes / 1e6:.1f}MB"
                if self.replication_bytes or self.replica_promotions
                else ""
            )
            + (
                f" blob={self.blob_puts}put/{self.blob_gets}get"
                if self.blob_puts or self.blob_gets
                else ""
            )
        )


@dataclass
class HealthCounters:
    """What the health-aware degradation machinery did during one run.

    Owned by :class:`repro.cluster.context.ClusterContext`
    (``context.health``) and incremented by the
    :class:`~repro.failures.health.BlacklistTracker`, the
    :class:`~repro.failures.health.LinkHealthMonitor`, the flow-retry
    layer, and the backends' graceful-degradation hooks.  Where
    :class:`RecoveryCounters` records the *blunt* instruments (attempt
    relaunches, lineage resubmission), these counters record the
    *graceful* middle of the failure spectrum.

    * ``stage_exclusions``        — (executor, stage) pairs excluded
      after repeated task failures in one stage;
    * ``hosts_blacklisted``       — executors excluded app-wide (timed);
    * ``datacenters_blacklisted`` — datacenter-level escalations;
    * ``blacklist_evictions``     — timed expiries of app-wide
      exclusions (the executor returns to service);
    * ``placements_vetoed``       — placement decisions the scheduler
      changed because the candidate host was excluded;
    * ``breaker_trips``           — WAN circuit breakers opened
      (including half-open probes that failed and re-opened);
    * ``breaker_probes``          — probe flows admitted in half-open;
    * ``breaker_closes``          — breakers closed after successful
      probes;
    * ``flow_retries``            — flows cancelled at their deadline
      and re-issued (possibly from another replica);
    * ``retry_wasted_bytes``      — bytes delivered by flows that were
      then abandoned (transferred but thrown away);
    * ``reelections``             — aggregation-datacenter or merger
      re-elections after the previous choice became unhealthy;
    * ``fallback_activations``    — shuffles degraded to plain fetch
      semantics because no healthy merger could be elected.
    """

    stage_exclusions: int = 0
    hosts_blacklisted: int = 0
    datacenters_blacklisted: int = 0
    blacklist_evictions: int = 0
    placements_vetoed: int = 0
    breaker_trips: int = 0
    breaker_probes: int = 0
    breaker_closes: int = 0
    flow_retries: int = 0
    retry_wasted_bytes: float = 0.0
    reelections: int = 0
    fallback_activations: int = 0

    @property
    def any_activity(self) -> bool:
        return any(getattr(self, f.name) for f in fields(self))

    def as_dict(self) -> Dict[str, float]:
        return {f.name: float(getattr(self, f.name)) for f in fields(self)}

    def format_summary(self) -> str:
        """One-line human-readable summary for CLI / bench output."""
        return (
            f"excluded={self.stage_exclusions}stage/"
            f"{self.hosts_blacklisted}host/{self.datacenters_blacklisted}dc "
            f"evicted={self.blacklist_evictions} "
            f"vetoed={self.placements_vetoed} "
            f"breaker={self.breaker_trips}T/{self.breaker_probes}P/"
            f"{self.breaker_closes}C "
            f"flow_retries={self.flow_retries} "
            f"wasted={self.retry_wasted_bytes / 1e6:.1f}MB "
            f"reelections={self.reelections} "
            f"fallbacks={self.fallback_activations}"
        )


@dataclass
class RecoveryCounters:
    """What the fault-tolerance machinery did during one context's life.

    Owned by :class:`repro.cluster.context.ClusterContext`
    (``context.recovery``) and incremented by the chaos injector, the
    task scheduler (executor-loss relaunches), and the DAG scheduler
    (FetchFailed handling, lineage resubmission, speculation).  Recovery
    *byte* totals live in :class:`ShuffleCounters`
    (``recovery_wan_bytes`` / ``recovery_intra_dc_bytes``) because bytes
    are moved, and therefore accounted, by the shuffle backend.

    * ``executor_crashes``    — executor processes crashed (slots and
      running attempts lost; stored blocks survive, as with Spark's
      external shuffle service);
    * ``hosts_lost``          — whole hosts taken down (storage too);
    * ``datacenter_outages``  — datacenter-wide outage events fired;
    * ``merger_losses``       — merger-host-loss events fired;
    * ``shuffle_worker_losses`` — dedicated shuffle-worker hosts lost
      (the ``shuffle_worker`` chaos kind);
    * ``blob_outages``        — object-store regional outage windows
      opened (the ``blob_outage`` chaos kind);
    * ``wan_degradations``    — WAN-link capacity changes applied
      (each flap counts its degrade and its restore);
    * ``wan_partitions``      — asymmetric WAN partitions opened (the
      ``partition`` chaos kind; heals are not counted separately);
    * ``tasks_relaunched``    — running attempts interrupted by an
      executor loss and resubmitted elsewhere;
    * ``fetch_failures``      — task attempts that found boundary input
      missing (Spark's FetchFailed);
    * ``stages_resubmitted``  — parent-stage resubmissions from lineage;
    * ``tasks_recomputed``    — parent partitions re-executed by those
      resubmissions;
    * ``speculative_launched`` / ``speculative_wins`` — duplicate
      attempts launched for stragglers, and how many finished first.
    """

    executor_crashes: int = 0
    hosts_lost: int = 0
    datacenter_outages: int = 0
    merger_losses: int = 0
    shuffle_worker_losses: int = 0
    blob_outages: int = 0
    wan_degradations: int = 0
    wan_partitions: int = 0
    tasks_relaunched: int = 0
    fetch_failures: int = 0
    stages_resubmitted: int = 0
    tasks_recomputed: int = 0
    speculative_launched: int = 0
    speculative_wins: int = 0

    @property
    def any_activity(self) -> bool:
        return any(getattr(self, f.name) for f in fields(self))

    def as_dict(self) -> Dict[str, float]:
        return {f.name: float(getattr(self, f.name)) for f in fields(self)}

    def format_summary(self) -> str:
        """One-line human-readable summary for CLI / bench output."""
        return (
            f"crashes={self.executor_crashes} hosts_lost={self.hosts_lost} "
            f"outages={self.datacenter_outages} "
            f"merger_losses={self.merger_losses} "
            f"shuffle_worker_losses={self.shuffle_worker_losses} "
            f"blob_outages={self.blob_outages} "
            f"wan_events={self.wan_degradations} "
            f"partitions={self.wan_partitions} "
            f"relaunched={self.tasks_relaunched} "
            f"fetch_failures={self.fetch_failures} "
            f"stages_resubmitted={self.stages_resubmitted} "
            f"recomputed={self.tasks_recomputed} "
            f"speculative={self.speculative_wins}/{self.speculative_launched}"
        )
