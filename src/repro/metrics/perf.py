"""Performance counters for the simulation substrate itself.

The figure benchmarks regenerate the paper's results by pushing
thousands of concurrent flows through :class:`repro.network.fabric.
NetworkFabric`; the counters here make the cost of that substrate
visible in every run, so a regression in the solver hot path shows up
as a number, not as a mysteriously slower benchmark.

``FabricPerfCounters`` is owned by the fabric (``fabric.perf``) and
incremented from the solver event loop:

* ``events``            — recompute/wake events processed;
* ``solves``            — fair-share solver invocations;
* ``flows_touched``     — total flows re-solved across all solves (the
  incremental engine touches only the dirty connected component, so
  this is far below ``solves * active_flows``);
* ``solver_seconds``    — wall-clock time inside the solver + component
  bookkeeping (real time, not simulated time);
* ``total_flows``       — flows ever admitted;
* ``peak_active_flows`` — high-water mark of concurrent flows;
* ``jitter_noops``      — capacity-change notifications skipped because
  the perturbed links carried zero active flows.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict


@dataclass
class FabricPerfCounters:
    """Counters of the fabric/solver hot path (see module docstring)."""

    events: int = 0
    solves: int = 0
    flows_touched: int = 0
    solver_seconds: float = 0.0
    total_flows: int = 0
    peak_active_flows: int = 0
    jitter_noops: int = 0

    def note_admission(self, active_flows: int) -> None:
        """Record one admitted flow and the new concurrency level."""
        self.total_flows += 1
        if active_flows > self.peak_active_flows:
            self.peak_active_flows = active_flows

    @property
    def mean_flows_per_solve(self) -> float:
        return self.flows_touched / self.solves if self.solves else 0.0

    def as_dict(self) -> Dict[str, float]:
        summary = {f.name: float(getattr(self, f.name)) for f in fields(self)}
        summary["mean_flows_per_solve"] = self.mean_flows_per_solve
        return summary

    def format_summary(self) -> str:
        """One-line human-readable summary for CLI / bench output."""
        return (
            f"events={self.events} solves={self.solves} "
            f"flows_touched={self.flows_touched} "
            f"(mean {self.mean_flows_per_solve:.1f}/solve) "
            f"solver={self.solver_seconds * 1e3:.1f}ms "
            f"peak_flows={self.peak_active_flows} "
            f"jitter_noops={self.jitter_noops}"
        )
