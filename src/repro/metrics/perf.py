"""Performance counters for the simulation substrate itself.

The figure benchmarks regenerate the paper's results by pushing
thousands of concurrent flows through :class:`repro.network.fabric.
NetworkFabric`; the counters here make the cost of that substrate
visible in every run, so a regression in the solver hot path shows up
as a number, not as a mysteriously slower benchmark.

``FabricPerfCounters`` is owned by the fabric (``fabric.perf``) and
incremented from the solver event loop:

* ``events``            — recompute/wake events processed;
* ``solves``            — fair-share solver invocations;
* ``flows_touched``     — total flows re-solved across all solves (the
  incremental engine touches only the dirty connected component, so
  this is far below ``solves * active_flows``);
* ``solver_seconds``    — wall-clock time inside the solver + component
  bookkeeping (real time, not simulated time);
* ``total_flows``       — flows ever admitted;
* ``peak_active_flows`` — high-water mark of concurrent flows;
* ``jitter_noops``      — capacity-change notifications skipped because
  the perturbed links carried zero active flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class FabricPerfCounters:
    """Counters of the fabric/solver hot path (see module docstring)."""

    events: int = 0
    solves: int = 0
    flows_touched: int = 0
    solver_seconds: float = 0.0
    total_flows: int = 0
    peak_active_flows: int = 0
    jitter_noops: int = 0

    def note_admission(self, active_flows: int) -> None:
        """Record one admitted flow and the new concurrency level."""
        self.total_flows += 1
        if active_flows > self.peak_active_flows:
            self.peak_active_flows = active_flows

    @property
    def mean_flows_per_solve(self) -> float:
        return self.flows_touched / self.solves if self.solves else 0.0

    def as_dict(self) -> Dict[str, float]:
        summary = {f.name: float(getattr(self, f.name)) for f in fields(self)}
        summary["mean_flows_per_solve"] = self.mean_flows_per_solve
        return summary

    def format_summary(self) -> str:
        """One-line human-readable summary for CLI / bench output."""
        return (
            f"events={self.events} solves={self.solves} "
            f"flows_touched={self.flows_touched} "
            f"(mean {self.mean_flows_per_solve:.1f}/solve) "
            f"solver={self.solver_seconds * 1e3:.1f}ms "
            f"peak_flows={self.peak_active_flows} "
            f"jitter_noops={self.jitter_noops}"
        )


@dataclass
class ShuffleCounters:
    """Per-backend counters of the shuffle data path.

    Owned by :class:`repro.shuffle.service.ShuffleService` and
    incremented by the active backend; every byte the backend moves over
    the network is accounted here, split WAN vs. intra-datacenter, so
    the invariant *counter bytes == traffic-monitor bytes for the
    backend's flow tags* is checkable (and checked, by the property
    suite in ``tests/shuffle``).

    * ``shuffles_registered``     — shuffles whose lifecycle the service
      opened (idempotent re-registration is not re-counted);
    * ``map_outputs_registered``  — sharded map outputs published;
    * ``reduce_reads``            — reduce-side read operations served;
    * ``blocks_fetched``          — remote reads issued by reducers
      (per-shard flows for the fetch backend, per-source-host coalesced
      flows for the pre-merge backend);
    * ``blocks_pushed``           — partitions staged at a ``transfer_to``
      boundary for a receiver pull (the push path's unit of work);
    * ``merge_rounds``            — per-(shuffle, datacenter) merge
      operations executed by the pre-merge backend;
    * ``merge_fan_in``            — total map outputs consolidated across
      all merge rounds (``mean_merge_fan_in`` derives the average);
    * ``wan_bytes`` / ``intra_dc_bytes`` — network bytes moved by the
      backend, split by whether the flow crossed a datacenter boundary;
    * ``local_bytes``             — shuffle input served from local disk
      (no network flow).
    """

    shuffles_registered: int = 0
    map_outputs_registered: int = 0
    reduce_reads: int = 0
    blocks_fetched: int = 0
    blocks_pushed: int = 0
    merge_rounds: int = 0
    merge_fan_in: int = 0
    wan_bytes: float = 0.0
    intra_dc_bytes: float = 0.0
    local_bytes: float = 0.0
    # Network bytes attributable to one shuffle id (reduce fetches and
    # pre-merge consolidation; transfer_to flows are keyed by transfer,
    # not shuffle, and appear only in the totals above).
    network_bytes_by_shuffle: Dict[int, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def network_bytes(self) -> float:
        return self.wan_bytes + self.intra_dc_bytes

    @property
    def mean_merge_fan_in(self) -> float:
        return self.merge_fan_in / self.merge_rounds if self.merge_rounds else 0.0

    def note_flow(
        self,
        src_dc: str,
        dst_dc: str,
        size_bytes: float,
        shuffle_id: int | None = None,
    ) -> None:
        """Account one network flow issued by the backend."""
        if src_dc != dst_dc:
            self.wan_bytes += size_bytes
        else:
            self.intra_dc_bytes += size_bytes
        if shuffle_id is not None:
            self.network_bytes_by_shuffle[shuffle_id] = (
                self.network_bytes_by_shuffle.get(shuffle_id, 0.0) + size_bytes
            )

    def note_local_read(self, size_bytes: float) -> None:
        self.local_bytes += size_bytes

    def as_dict(self) -> Dict[str, float]:
        """Flat float summary (per-shuffle breakdown omitted)."""
        summary = {
            f.name: float(getattr(self, f.name))
            for f in fields(self)
            if f.name != "network_bytes_by_shuffle"
        }
        summary["network_bytes"] = self.network_bytes
        summary["mean_merge_fan_in"] = self.mean_merge_fan_in
        return summary

    def format_summary(self) -> str:
        """One-line human-readable summary for CLI / bench output."""
        return (
            f"maps={self.map_outputs_registered} "
            f"reads={self.reduce_reads} "
            f"fetched={self.blocks_fetched} pushed={self.blocks_pushed} "
            f"merges={self.merge_rounds} "
            f"(fan-in {self.mean_merge_fan_in:.1f}) "
            f"wan={self.wan_bytes / 1e6:.1f}MB "
            f"intra={self.intra_dc_bytes / 1e6:.1f}MB "
            f"local={self.local_bytes / 1e6:.1f}MB"
        )
