"""Statistics used in the paper's figures.

Fig. 7 reports a 10 %-trimmed mean over 10 runs ("the maximum and the
minimum values are invalidated before we compute the average") with
error bars showing the interquartile range and the median.  The same
treatment is applied per stage in Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple


def trimmed_mean(values: Sequence[float], trim_fraction: float = 0.1) -> float:
    """Mean after dropping the top and bottom ``trim_fraction`` of values.

    With 10 values and the default fraction this drops exactly the
    maximum and the minimum, matching the paper's methodology.
    """
    if not values:
        raise ValueError("trimmed_mean of empty sequence")
    if not 0 <= trim_fraction < 0.5:
        raise ValueError("trim_fraction must be in [0, 0.5)")
    ordered = sorted(values)
    drop = int(len(ordered) * trim_fraction)
    if drop > 0 and len(ordered) > 2 * drop:
        ordered = ordered[drop:-drop]
    return sum(ordered) / len(ordered)


def _quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of pre-sorted values."""
    if not ordered:
        raise ValueError("quantile of empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    # a + (b - a) * w, not (1-w)*a + w*b: the two-product form can
    # underflow both terms to zero on subnormal inputs, landing *below*
    # ordered[low] and breaking min <= q25 <= median orderings.
    return ordered[low] + (ordered[high] - ordered[low]) * weight


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (``0 <= q <= 100``) of ``values``.

    Linear interpolation between closest ranks — ``percentile(v, 50)``
    equals :func:`median`, matching numpy's default method.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    return _quantile(sorted(values), q / 100.0)


def p95(values: Sequence[float]) -> float:
    """95th percentile (tail-latency convention for JCT reports)."""
    return percentile(values, 95)


def p99(values: Sequence[float]) -> float:
    """99th percentile (tail-latency convention for JCT reports)."""
    return percentile(values, 99)


def median(values: Sequence[float]) -> float:
    return _quantile(sorted(values), 0.5)


def interquartile_range(values: Sequence[float]) -> Tuple[float, float]:
    """(25th percentile, 75th percentile)."""
    ordered = sorted(values)
    return _quantile(ordered, 0.25), _quantile(ordered, 0.75)


@dataclass(frozen=True)
class SummaryStats:
    """The per-bar summary the paper's figures display."""

    count: int
    mean: float
    trimmed: float
    median: float
    q25: float
    q75: float
    minimum: float
    maximum: float

    @property
    def iqr_width(self) -> float:
        return self.q75 - self.q25


def summarize(values: Sequence[float]) -> SummaryStats:
    if not values:
        raise ValueError("summarize of empty sequence")
    ordered = sorted(values)
    q25, q75 = interquartile_range(ordered)
    return SummaryStats(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        trimmed=trimmed_mean(ordered),
        median=_quantile(ordered, 0.5),
        q25=q25,
        q75=q75,
        minimum=ordered[0],
        maximum=ordered[-1],
    )


def reduction_percent(baseline: float, improved: float) -> float:
    """Percentage reduction of ``improved`` relative to ``baseline``."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (baseline - improved) / baseline
