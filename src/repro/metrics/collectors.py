"""Run-time metrics collection (the Spark listener bus, in miniature)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduler.stage import Stage
    from repro.scheduler.task import Task, TaskResult


@dataclass
class TaskSpan:
    """One finished task."""

    task_id: str
    stage_id: int
    partition: int
    host: str
    started_at: float
    finished_at: float
    attempts: int
    shuffle_bytes_fetched: float
    output_bytes: float

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class StageSpan:
    """One finished stage (Fig. 9's unit of reporting)."""

    stage_id: int
    name: str
    kind: str
    submitted_at: float
    finished_at: Optional[float] = None
    tasks: List[TaskSpan] = field(default_factory=list)

    @property
    def duration(self) -> float:
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.submitted_at


@dataclass
class JobMetrics:
    """Everything measured about one job run."""

    started_at: float = 0.0
    finished_at: Optional[float] = None
    stages: List[StageSpan] = field(default_factory=list)
    injected_failures: int = 0
    # Filled in by the experiment harness from the traffic monitor.
    cross_dc_bytes: float = 0.0
    total_bytes: float = 0.0

    @property
    def duration(self) -> float:
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    def stage_durations(self) -> List[float]:
        return [stage.duration for stage in self.stages]


class MetricsCollector:
    """Receives scheduler callbacks and accumulates a JobMetrics."""

    def __init__(self) -> None:
        self.job = JobMetrics()
        self._stage_spans: Dict[int, StageSpan] = {}

    # ------------------------------------------------------------------
    # Scheduler hooks
    # ------------------------------------------------------------------
    def on_job_start(self, now: float) -> None:
        self.job.started_at = now

    def on_job_end(self, now: float) -> None:
        self.job.finished_at = now

    def on_stage_start(self, stage: Stage, now: float) -> None:
        span = StageSpan(
            stage_id=stage.stage_id,
            name=stage.name,
            kind=stage.kind.value,
            submitted_at=now,
        )
        self._stage_spans[stage.stage_id] = span
        self.job.stages.append(span)

    def on_stage_end(self, stage: Stage, now: float) -> None:
        span = self._stage_spans.get(stage.stage_id)
        if span is not None:
            span.finished_at = now

    def on_task_end(self, result: TaskResult) -> None:
        span = self._stage_spans.get(result.task.stage.stage_id)
        if span is None:
            return
        span.tasks.append(
            TaskSpan(
                task_id=result.task.task_id,
                stage_id=result.task.stage.stage_id,
                partition=result.task.partition,
                host=result.host,
                started_at=result.started_at,
                finished_at=result.finished_at,
                attempts=result.attempts,
                shuffle_bytes_fetched=result.shuffle_bytes_fetched,
                output_bytes=result.output_bytes,
            )
        )

    def on_task_attempt_failed(self, task: Task, host: str, now: float) -> None:
        self.job.injected_failures += 1
