"""Inter-datacenter bandwidth billing.

The paper's opening motivation is "the time and bandwidth *cost* for
moving data across datacenters".  Cloud providers bill inter-region
egress per gigabyte, so cross-datacenter bytes translate directly into
dollars; this module prices a run's traffic with EC2-style egress rates
and is used by the harness to report the monetary side of Fig. 8.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from math import fsum
from typing import Dict, List, Mapping, Tuple

from repro.network.traffic_monitor import TrafficMonitor

GB = 1_000_000_000.0

# Circa-2016 EC2 inter-region data-transfer prices ($/GB, source region
# egress).  Intra-region traffic is free.
DEFAULT_EGRESS_PRICES: Dict[str, float] = {
    "us-east-1": 0.02,
    "us-west-1": 0.02,
    "eu-central-1": 0.02,
    "ap-southeast-1": 0.09,
    "ap-southeast-2": 0.14,
    "sa-east-1": 0.16,
}
DEFAULT_PRICE = 0.05


@dataclass(frozen=True)
class PricingPolicy:
    """Per-source-datacenter egress prices in $/GB."""

    egress_per_gb: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_EGRESS_PRICES)
    )
    default_per_gb: float = DEFAULT_PRICE

    def price(self, source_datacenter: str) -> float:
        return self.egress_per_gb.get(source_datacenter, self.default_per_gb)


@dataclass
class BillingReport:
    """Dollar cost of one run's cross-datacenter traffic."""

    total_dollars: float
    by_source: Dict[str, float]
    by_pair: Dict[Tuple[str, str], float]

    def dominant_source(self) -> str:
        if not self.by_source:
            return ""
        return max(self.by_source, key=self.by_source.get)


def bill_traffic(
    monitor: TrafficMonitor, policy: PricingPolicy | None = None
) -> BillingReport:
    """Price every cross-datacenter flow the monitor recorded."""
    policy = policy if policy is not None else PricingPolicy()
    by_pair: Dict[Tuple[str, str], float] = {}
    source_terms: Dict[str, List[float]] = defaultdict(list)
    for (src, dst), size_bytes in monitor.by_pair.items():
        if src == dst:
            continue
        dollars = (size_bytes / GB) * policy.price(src)
        by_pair[(src, dst)] = dollars
        source_terms[src].append(dollars)
    # fsum over the gathered terms so totals do not depend on the order
    # pairs were recorded in (ACC001).
    return BillingReport(
        total_dollars=fsum(by_pair.values()),
        by_source={src: fsum(terms) for src, terms in source_terms.items()},
        by_pair=by_pair,
    )


@dataclass(frozen=True)
class BlobPricing:
    """Object-store request pricing (S3-style, per 1 000 requests).

    Egress bytes are already priced by :class:`PricingPolicy` from the
    traffic monitor; this adds the *request* dimension the BlobShuffle
    design point pays for — a PUT per published map output and a GET per
    map output read — so the ``blob`` backend's recovery story
    ("re-read dollars, not recomputation") is visible in run cost.
    """

    put_per_1k: float = 0.005
    get_per_1k: float = 0.0004

    def request_dollars(self, puts: int, gets: int) -> float:
        """Dollar cost of ``puts`` PUT and ``gets`` GET requests."""
        return (puts / 1000.0) * self.put_per_1k + (
            gets / 1000.0
        ) * self.get_per_1k


def blob_request_dollars(
    shuffle_perf: Mapping[str, float], pricing: BlobPricing | None = None
) -> float:
    """Request dollars for one run's shuffle-counter snapshot.

    Zero for every backend that issues no object-store requests, so the
    harness can add this unconditionally to the egress bill.
    """
    pricing = pricing if pricing is not None else BlobPricing()
    return pricing.request_dollars(
        int(shuffle_perf.get("blob_puts", 0)),
        int(shuffle_perf.get("blob_gets", 0)),
    )


def cost_comparison(
    monitors: Mapping[str, TrafficMonitor],
    policy: PricingPolicy | None = None,
) -> Dict[str, float]:
    """Scheme name -> run cost in dollars, for side-by-side reporting."""
    return {
        name: bill_traffic(monitor, policy).total_dollars
        for name, monitor in monitors.items()
    }
