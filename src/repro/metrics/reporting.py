"""Plain-text reporting: tables, stage timelines, and traffic matrices.

§IV-E of the paper notes that expressing transfers as computation lets
"inter-datacenter data transfers ... be shown from the Spark WebUI ...
visualizing the critical inter-datacenter traffic".  This module is that
idea for a terminal: render a job's stage Gantt chart (transfers appear
as first-class stages) and the cross-datacenter traffic matrix.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.metrics.collectors import JobMetrics
from repro.network.traffic_monitor import TrafficMonitor


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    align_right: bool = True,
) -> str:
    """A minimal fixed-width table (no external dependencies)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in cells))
        if cells else len(headers[column])
        for column in range(len(headers))
    ]

    def render_row(row: Sequence[str]) -> str:
        parts = []
        for column, value in enumerate(row):
            if align_right and column > 0:
                parts.append(value.rjust(widths[column]))
            else:
                parts.append(value.ljust(widths[column]))
        return "  ".join(parts).rstrip()

    lines = [render_row(list(headers))]
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)


def stage_timeline(job: JobMetrics, width: int = 60) -> str:
    """An ASCII Gantt chart of a job's stages.

    Transfer-producer and receiver stages appear alongside computation,
    making the WAN pushes visible exactly as §IV-E envisions.
    """
    if not job.stages:
        return "(no stages recorded)"
    start = min(span.submitted_at for span in job.stages)
    end = max(
        span.finished_at
        for span in job.stages
        if span.finished_at is not None
    )
    horizon = max(end - start, 1e-9)
    lines = [
        f"job: {job.duration:.1f}s over {len(job.stages)} stages "
        f"(1 col = {horizon / width:.2f}s)"
    ]
    for span in job.stages:
        if span.finished_at is None:
            continue
        lead = int((span.submitted_at - start) / horizon * width)
        body = max(1, int(span.duration / horizon * width))
        bar = " " * lead + "#" * body
        label = span.kind[:17]
        lines.append(
            f"  {label:<18}|{bar:<{width}}| {span.duration:7.1f}s"
        )
    return "\n".join(lines)


def traffic_matrix(
    monitor: TrafficMonitor, datacenters: Sequence[str]
) -> str:
    """Source x destination cross-datacenter megabytes."""
    headers = ["src \\ dst"] + list(datacenters)
    rows: List[List[str]] = []
    for src in datacenters:
        row: List[str] = [src]
        for dst in datacenters:
            megabytes = monitor.by_pair.get((src, dst), 0.0) / 1e6
            row.append(f"{megabytes:.1f}" if megabytes else ".")
        rows.append(row)
    table = format_table(headers, rows)
    total = monitor.cross_dc_megabytes
    return f"{table}\ncross-DC total: {total:.1f} MB"


def traffic_by_cause(monitor: TrafficMonitor) -> str:
    """Cross-datacenter megabytes per flow tag (shuffle, transfer, ...)."""
    rows: List[Tuple[str, str]] = [
        (tag, f"{size / 1e6:.1f}")
        for tag, size in sorted(
            monitor.cross_dc_by_tag.items(), key=lambda item: -item[1]
        )
    ]
    if not rows:
        return "(no cross-datacenter traffic)"
    return format_table(["cause", "cross-DC MB"], rows)


def job_report(
    job: JobMetrics,
    monitor: TrafficMonitor,
    datacenters: Sequence[str],
) -> str:
    """The full after-job report: timeline + traffic views."""
    sections = [
        stage_timeline(job),
        "",
        traffic_by_cause(monitor),
        "",
        traffic_matrix(monitor, datacenters),
    ]
    return "\n".join(sections)


def lineage_dump(rdd) -> str:
    """A textual DAG of an RDD's lineage, stage boundaries annotated."""
    from repro.rdd.dependencies import (
        ShuffleDependency,
        TransferDependency,
    )

    lines: List[str] = []
    for node in rdd.lineage():
        edges: List[str] = []
        for dep in node.dependencies:
            if isinstance(dep, ShuffleDependency):
                edges.append(
                    f"shuffle#{dep.shuffle_id} <- {dep.parent.name}"
                    f"({dep.parent.rdd_id})"
                )
            elif isinstance(dep, TransferDependency):
                destination = dep.destination_datacenter or "auto"
                edges.append(
                    f"transfer#{dep.transfer_id}[{destination}] <- "
                    f"{dep.parent.name}({dep.parent.rdd_id})"
                )
            else:
                edges.append(f"narrow <- {dep.parent.name}({dep.parent.rdd_id})")
        marker = " [cached]" if node.cached else ""
        suffix = f" {{{'; '.join(edges)}}}" if edges else " {source}"
        lines.append(
            f"({node.rdd_id}) {node.name}"
            f"[{node.num_partitions}]{marker}{suffix}"
        )
    return "\n".join(lines)
