"""Configuration objects shared across the whole stack.

All tunables live here so experiments are declarative: a
:class:`SimulationConfig` plus a topology fully determines a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.network.jitter import JitterSpec
from repro.storage.disk import DiskModel

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.failures.chaos import ChaosSchedule


@dataclass(frozen=True)
class CostModel:
    """Charges simulated CPU time for computation.

    ``cpu_bytes_per_second`` is the per-core streaming rate over *logical*
    bytes (the paper-scale volumes), so CPU time reflects paper-scale data
    even though the record count is scaled down.  ``seconds_per_record``
    adds a small per-record overhead so record-heavy operators are not
    free.  ``sort_factor`` multiplies the byte cost of sorting operators.
    """

    cpu_bytes_per_second: float = 40e6
    seconds_per_record: float = 0.0
    sort_factor: float = 1.2
    # In-memory combining / merging is much cheaper per byte than the
    # workload's primary record processing (hash-map updates vs. parsing).
    combine_factor: float = 0.3
    # Partitioning records into shuffle shards is a single cheap pass.
    shuffle_write_factor: float = 0.2
    task_launch_overhead: float = 0.05

    def compute_time(self, logical_bytes: float, records: int = 0) -> float:
        if logical_bytes < 0 or records < 0:
            raise ValueError("negative computation volume")
        return (
            logical_bytes / self.cpu_bytes_per_second
            + records * self.seconds_per_record
        )

    def sort_time(self, logical_bytes: float, records: int = 0) -> float:
        return self.sort_factor * self.compute_time(logical_bytes, records)

    def combine_time(self, logical_bytes: float, records: int = 0) -> float:
        return self.combine_factor * self.compute_time(logical_bytes, records)

    def shuffle_write_time(self, logical_bytes: float) -> float:
        return self.shuffle_write_factor * self.compute_time(logical_bytes)


@dataclass(frozen=True)
class SchedulingConfig:
    """Locality/delay-scheduling behaviour of the task scheduler."""

    # How long a task waits for a preferred-host slot before settling for
    # a same-datacenter slot, and then for any slot (Spark's
    # ``spark.locality.wait`` is 3 s by default).
    locality_wait_host: float = 2.0
    locality_wait_datacenter: float = 45.0
    # A reducer only *prefers* hosts that store at least this fraction of
    # its shuffle input (Spark 1.6's REDUCER_PREF_LOCS_FRACTION = 0.2).
    reducer_pref_fraction: float = 0.2
    # Receiver (transferTo) tasks wait this long for a slot in the
    # aggregator datacenter before falling back to any host; effectively
    # they queue there, since pushing elsewhere defeats aggregation.
    receiver_datacenter_wait: float = 600.0
    max_task_attempts: int = 4
    # Speculative execution (Spark's spark.speculation): once
    # ``speculation_quantile`` of a stage's tasks have finished, any
    # remaining task running longer than ``speculation_multiplier`` x
    # the median completed duration gets a duplicate launched anywhere;
    # the first finisher wins.
    speculation: bool = False
    speculation_multiplier: float = 2.0
    speculation_quantile: float = 0.75
    speculation_interval: float = 5.0
    # Lineage recovery (Spark's FetchFailed path): how many times one
    # stage may be resubmitted when its output is lost (Spark's
    # ``spark.stage.maxConsecutiveAttempts`` is 4), how long the first
    # resubmission waits (doubling each time), and how many FetchFailed
    # retries a single consumer task gets before the job fails.
    max_stage_retries: int = 4
    stage_retry_backoff: float = 0.2
    max_fetch_failures_per_task: int = 8

    def __post_init__(self) -> None:
        if self.speculation_multiplier < 1:
            raise ConfigurationError("speculation_multiplier must be >= 1")
        if not 0 < self.speculation_quantile <= 1:
            raise ConfigurationError(
                "speculation_quantile must be in (0, 1]"
            )
        if self.speculation_interval <= 0:
            raise ConfigurationError("speculation_interval must be > 0")
        if self.max_stage_retries < 1:
            raise ConfigurationError("max_stage_retries must be >= 1")
        if self.stage_retry_backoff < 0:
            raise ConfigurationError("stage_retry_backoff must be >= 0")
        if self.max_fetch_failures_per_task < 1:
            raise ConfigurationError(
                "max_fetch_failures_per_task must be >= 1"
            )


@dataclass(frozen=True)
class FailureConfig:
    """Task failure injection (paper Fig. 2 / §III-A)."""

    reducer_failure_probability: float = 0.0
    # Fraction of the attempt's work completed before the failure hits.
    wasted_work_fraction: float = 0.5
    max_injected_failures_per_task: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.reducer_failure_probability <= 1.0:
            raise ConfigurationError(
                "reducer_failure_probability must be in [0, 1]"
            )
        if not 0.0 <= self.wasted_work_fraction <= 1.0:
            raise ConfigurationError(
                "wasted_work_fraction must be in [0, 1]"
            )
        if self.max_injected_failures_per_task < 0:
            raise ConfigurationError(
                "max_injected_failures_per_task must be >= 0"
            )


@dataclass(frozen=True)
class HealthConfig:
    """Health-aware degradation: blacklisting, circuit breakers, retry.

    Everything here is opt-in (all features default off), so the legacy
    failure path — interrupt attempts, resubmit stages from lineage —
    is byte-for-byte unchanged unless a feature is enabled.  See
    DESIGN.md §10 and :mod:`repro.failures.health`.
    """

    # Spark-style excludeOnFailure: a host accumulating task failures is
    # excluded per-stage first, then app-wide (with timed expiry), and a
    # datacenter most of whose hosts are excluded is escalated whole.
    blacklist_enabled: bool = False
    max_task_failures_per_executor_stage: int = 2
    max_task_failures_per_executor: int = 4
    blacklist_timeout: float = 60.0
    datacenter_exclusion_threshold: int = 2

    # Per-WAN-link circuit breaker (closed -> open -> half-open with
    # probe flows), driven by flow deadline misses on the link.
    breaker_enabled: bool = False
    breaker_failure_threshold: int = 3
    breaker_cooldown: float = 10.0
    breaker_probe_flows: int = 1
    breaker_probes_to_close: int = 2

    # Flow-level retry: a flow missing its per-flow deadline is
    # cancelled and re-issued (possibly from another replica) with
    # exponential backoff.  The deadline is ``base + multiplier x ideal
    # transfer time at the route's *base* (undegraded) capacities``, so
    # a deep chaos degrade misses it while ordinary fair-share
    # contention does not; the final attempt runs without a deadline —
    # slowness alone never escalates to FetchFailed (genuinely missing
    # data already raises at lookup time).
    flow_retry_enabled: bool = False
    max_flow_retries: int = 3
    flow_retry_backoff: float = 0.5
    flow_deadline_base: float = 10.0
    flow_deadline_multiplier: float = 30.0

    def __post_init__(self) -> None:
        if self.max_task_failures_per_executor_stage < 1:
            raise ConfigurationError(
                "max_task_failures_per_executor_stage must be >= 1"
            )
        if self.max_task_failures_per_executor < 1:
            raise ConfigurationError(
                "max_task_failures_per_executor must be >= 1"
            )
        if self.blacklist_timeout <= 0:
            raise ConfigurationError("blacklist_timeout must be > 0")
        if self.datacenter_exclusion_threshold < 1:
            raise ConfigurationError(
                "datacenter_exclusion_threshold must be >= 1"
            )
        if self.breaker_failure_threshold < 1:
            raise ConfigurationError(
                "breaker_failure_threshold must be >= 1"
            )
        if self.breaker_cooldown <= 0:
            raise ConfigurationError("breaker_cooldown must be > 0")
        if self.breaker_probe_flows < 1:
            raise ConfigurationError("breaker_probe_flows must be >= 1")
        if self.breaker_probes_to_close < 1:
            raise ConfigurationError(
                "breaker_probes_to_close must be >= 1"
            )
        if self.max_flow_retries < 1:
            raise ConfigurationError("max_flow_retries must be >= 1")
        if self.flow_retry_backoff < 0:
            raise ConfigurationError("flow_retry_backoff must be >= 0")
        if self.flow_deadline_base < 0:
            raise ConfigurationError("flow_deadline_base must be >= 0")
        if self.flow_deadline_multiplier < 0:
            raise ConfigurationError(
                "flow_deadline_multiplier must be >= 0"
            )
        if (
            self.flow_retry_enabled
            and self.flow_deadline_base == 0
            and self.flow_deadline_multiplier == 0
        ):
            raise ConfigurationError(
                "flow retry needs a positive deadline (base or multiplier)"
            )


@dataclass(frozen=True)
class ShuffleConfig:
    """Which shuffle backend the engine's data path uses.

    ``backend`` names a strategy registered in
    :mod:`repro.shuffle.backends` (``"fetch"``, ``"push_aggregate"``,
    ``"pre_merge"``, ...).  When omitted it is derived from the legacy
    flags: ``push_based``/``auto_aggregate`` mirror the paper's
    ``spark.shuffle.aggregation`` property and select the Push/Aggregate
    backend (implicit ``transfer_to()`` before every shuffle); both False
    selects Spark's default fetch-based shuffle.
    """

    push_based: bool = False
    auto_aggregate: bool = False
    # Number of datacenters shuffle input is aggregated into (§III-B uses
    # a single datacenter "as an example"; >1 is our ablation extension).
    aggregation_subset_size: int = 1
    # Explicit backend name; None derives it from the legacy flags.
    backend: Optional[str] = None
    # Durability-first backends.  ``remote``: base replica count of the
    # shuffle-worker pool (adaptively raised — capped at 3 — while WAN
    # breakers are open or datacenters are blacklist-excluded), workers
    # pinned per datacenter, and the per-worker memory buffer before
    # accepted bytes spill to local disk.
    remote_replication: int = 2
    shuffle_workers_per_datacenter: int = 1
    shuffle_worker_buffer_bytes: float = 64e6

    @property
    def backend_name(self) -> str:
        """The registered backend this configuration resolves to."""
        if self.backend is not None:
            return self.backend
        return "push_aggregate" if self.auto_aggregate else "fetch"

    def validate(self) -> None:
        if self.auto_aggregate and not self.push_based:
            raise ConfigurationError(
                "auto_aggregate requires push_based shuffle"
            )
        if self.aggregation_subset_size < 1:
            raise ConfigurationError("aggregation_subset_size must be >= 1")
        if not 1 <= self.remote_replication <= 3:
            raise ConfigurationError(
                "remote_replication must be in [1, 3], "
                f"got {self.remote_replication!r}"
            )
        if self.shuffle_workers_per_datacenter < 1:
            raise ConfigurationError(
                "shuffle_workers_per_datacenter must be >= 1"
            )
        if self.shuffle_worker_buffer_bytes <= 0:
            raise ConfigurationError(
                "shuffle_worker_buffer_bytes must be > 0"
            )
        # Imported lazily: the backend modules depend on config for their
        # own imports.
        from repro.shuffle.backends import backend_names

        if self.backend_name not in backend_names():
            known = ", ".join(sorted(backend_names()))
            raise ConfigurationError(
                f"unknown shuffle backend {self.backend_name!r} "
                f"(registered: {known})"
            )


@dataclass(frozen=True)
class SimulationConfig:
    """Everything that parameterises one simulated job run."""

    seed: int = 0
    cores_per_host: int = 2
    cost: CostModel = field(default_factory=CostModel)
    disk: DiskModel = field(default_factory=DiskModel)
    scheduling: SchedulingConfig = field(default_factory=SchedulingConfig)
    failures: FailureConfig = field(default_factory=FailureConfig)
    # Health-aware degradation (blacklist, WAN circuit breakers,
    # flow-level retry); every feature defaults off.
    health: HealthConfig = field(default_factory=HealthConfig)
    shuffle: ShuffleConfig = field(default_factory=ShuffleConfig)
    jitter: Optional[JitterSpec] = field(default_factory=JitterSpec)
    # Timed infrastructure faults (executor crashes, host/DC losses,
    # WAN degradation) fired into the run by a ChaosInjector; None (or
    # an empty schedule) injects nothing.  See repro.failures.chaos.
    chaos: Optional[ChaosSchedule] = None
    # Multiplier from natural record sizes to logical bytes.  The
    # bundled workloads attach explicit paper-scale sizes to their
    # records (via SizedRecord), so the default is 1.0; raise it to make
    # plain-record datasets stand for proportionally larger volumes.
    scale_factor: float = 1.0
    # DFS replica count for input files.  1 matches the seed's behaviour
    # (and keeps placement-sensitive results unchanged); chaos runs with
    # host/outage/merger events want >= 2, or lineage recovery bottoms
    # out at permanently lost input blocks.
    dfs_replication: int = 1
    # Liveness watchdog: abort the run with LivenessError once this much
    # *wall-clock* time has elapsed.  None (the default) disables the
    # watchdog; the chaos campaign arms it so a hung recovery is flagged
    # instead of deadlocking the suite.
    max_wall_seconds: Optional[float] = None

    def validate(self) -> None:
        if self.cores_per_host < 1:
            raise ConfigurationError("cores_per_host must be >= 1")
        if self.scale_factor <= 0:
            raise ConfigurationError("scale_factor must be positive")
        if self.dfs_replication < 1:
            raise ConfigurationError("dfs_replication must be >= 1")
        if self.max_wall_seconds is not None and self.max_wall_seconds <= 0:
            raise ConfigurationError("max_wall_seconds must be > 0")
        self.shuffle.validate()
        if self.jitter is not None:
            self.jitter.validate()
        if self.chaos is not None:
            self.chaos.validate()

    def with_shuffle(self, shuffle: ShuffleConfig) -> SimulationConfig:
        return replace(self, shuffle=shuffle)

    def with_chaos(self, chaos: Optional[ChaosSchedule]) -> SimulationConfig:
        return replace(self, chaos=chaos)

    def with_seed(self, seed: int) -> SimulationConfig:
        return replace(self, seed=seed)

    def with_health(self, health: HealthConfig) -> SimulationConfig:
        return replace(self, health=health)


def fetch_config(**overrides) -> SimulationConfig:
    """Baseline Spark configuration (fetch-based shuffle)."""
    return SimulationConfig(
        shuffle=ShuffleConfig(push_based=False, auto_aggregate=False),
        **overrides,
    )


def agg_shuffle_config(**overrides) -> SimulationConfig:
    """The paper's AggShuffle configuration (implicit Push/Aggregate)."""
    return SimulationConfig(
        shuffle=ShuffleConfig(push_based=True, auto_aggregate=True),
        **overrides,
    )


def backend_config(backend: str, **overrides) -> SimulationConfig:
    """A configuration running any registered shuffle backend by name."""
    return SimulationConfig(
        shuffle=shuffle_config_for_backend(backend), **overrides
    )


def shuffle_config_for_backend(
    backend: str, aggregation_subset_size: int = 1
) -> ShuffleConfig:
    """A :class:`ShuffleConfig` for one registered backend, with the
    legacy flags kept consistent for code that still reads them."""
    from repro.shuffle.backends import backend_class

    implicit = backend_class(backend).implicit_transfers
    return ShuffleConfig(
        push_based=implicit,
        auto_aggregate=implicit,
        aggregation_subset_size=aggregation_subset_size,
        backend=backend,
    )
