"""The RDD engine: lazy, lineage-tracked, partitioned datasets.

This package reimplements the subset of Spark's RDD model the paper's
mechanism operates on:

* lazy transformations building a lineage DAG
  (:mod:`repro.rdd.rdd`, :mod:`repro.rdd.shuffled`),
* narrow vs. shuffle vs. *transfer* dependencies
  (:mod:`repro.rdd.dependencies`) — the transfer dependency is the
  paper's contribution, a stage boundary that moves data instead of
  sharding it,
* hash and range partitioners (:mod:`repro.rdd.partitioner`),
* logical-size estimation so scaled-down record counts still represent
  paper-scale byte volumes (:mod:`repro.rdd.size_estimator`).

Execution is *not* here: the DAG/task schedulers in
:mod:`repro.scheduler` walk the lineage and run tasks on the simulator.
"""

from repro.rdd.partitioner import HashPartitioner, Partitioner, RangePartitioner
from repro.rdd.size_estimator import SizeEstimator
from repro.rdd.dependencies import (
    Dependency,
    NarrowDependency,
    RangeDependency,
    ShuffleDependency,
    TransferDependency,
)
from repro.rdd.aggregator import Aggregator
from repro.rdd.rdd import (
    RDD,
    HadoopRDD,
    MappedRDD,
    FlatMappedRDD,
    FilteredRDD,
    MapPartitionsRDD,
    UnionRDD,
)
from repro.rdd.shuffled import CoGroupedRDD, ShuffledRDD
from repro.rdd.transferred import TransferredRDD
from repro.rdd.extra_ops import install_extra_ops

# Extended Spark-style operations (coalesce, sample, aggregate_by_key,
# combine_by_key, count_by_key, reduce, take, first, sort_by,
# zip_with_index) are attached to RDD here.
install_extra_ops()

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "SizeEstimator",
    "Dependency",
    "NarrowDependency",
    "RangeDependency",
    "ShuffleDependency",
    "TransferDependency",
    "Aggregator",
    "RDD",
    "HadoopRDD",
    "MappedRDD",
    "FlatMappedRDD",
    "FilteredRDD",
    "MapPartitionsRDD",
    "UnionRDD",
    "ShuffledRDD",
    "CoGroupedRDD",
    "TransferredRDD",
]
