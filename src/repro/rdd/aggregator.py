"""Key-value aggregation used by combiners and reduce-side merging.

Mirrors Spark's ``Aggregator[K, V, C]``: a combiner is created from the
first value for a key, extended with further values, and combiners from
different map tasks (or a pre-combined transfer) are merged together.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Tuple

Key = Any
Value = Any
Combiner = Any


class Aggregator:
    """create/merge functions for combine-by-key semantics."""

    def __init__(
        self,
        create_combiner: Callable[[Value], Combiner],
        merge_value: Callable[[Combiner, Value], Combiner],
        merge_combiners: Callable[[Combiner, Combiner], Combiner],
    ) -> None:
        self.create_combiner = create_combiner
        self.merge_value = merge_value
        self.merge_combiners = merge_combiners

    # ------------------------------------------------------------------
    # Bulk operations used by the shuffle machinery
    # ------------------------------------------------------------------
    def combine_values(
        self, records: Iterable[Tuple[Key, Value]]
    ) -> List[Tuple[Key, Combiner]]:
        """Map-side combine: fold raw (k, v) records into (k, combiner)."""
        combined: Dict[Key, Combiner] = {}
        for key, value in records:
            if key in combined:
                combined[key] = self.merge_value(combined[key], value)
            else:
                combined[key] = self.create_combiner(value)
        return list(combined.items())

    def combine_combiners(
        self, records: Iterable[Tuple[Key, Combiner]]
    ) -> List[Tuple[Key, Combiner]]:
        """Reduce-side merge of already-combined (k, combiner) records."""
        merged: Dict[Key, Combiner] = {}
        for key, combiner in records:
            if key in merged:
                merged[key] = self.merge_combiners(merged[key], combiner)
            else:
                merged[key] = combiner
        return list(merged.items())

    @classmethod
    def from_reduce_function(
        cls, func: Callable[[Value, Value], Value]
    ) -> Aggregator:
        """The reduceByKey aggregator: combiner type == value type."""
        return cls(
            create_combiner=lambda value: value,
            merge_value=func,
            merge_combiners=func,
        )

    @classmethod
    def group_by_key(cls) -> Aggregator:
        """The groupByKey aggregator: combiner is a list of values."""
        return cls(
            create_combiner=lambda value: [value],
            merge_value=_append,
            merge_combiners=_extend,
        )


def _append(acc: List[Value], value: Value) -> List[Value]:
    acc.append(value)
    return acc


def _extend(left: List[Value], right: List[Value]) -> List[Value]:
    left.extend(right)
    return left
