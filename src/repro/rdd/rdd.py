"""The RDD base class, input RDDs, and narrow transformations.

An RDD here is a lazy *description*; nothing computes until an action
(:meth:`RDD.collect`, :meth:`RDD.count`, :meth:`RDD.save_as_file`) hands
the lineage to the DAG scheduler.  Each RDD implements

* ``num_partitions`` — how many partitions it has,
* ``compute(index, runtime)`` — a *generator* producing the records of
  one partition.  It may yield simulation events (CPU charges, reads) and
  must ``return`` the record list.  Parent partitions are obtained through
  ``runtime.materialize(...)``, which stops at stage boundaries (shuffle
  and transfer dependencies) and performs the corresponding data movement,
* ``preferred_locations(index)`` — host-level locality hints used by the
  task scheduler (non-empty only for data sources).

User functions passed to ``map``/``filter``/... are ordinary Python
callables over records; simulated time is charged per operator from the
logical byte volume, so the real Python cost of tiny scaled-down datasets
is irrelevant to the measured results.
"""

from __future__ import annotations

import itertools
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
)

from repro.errors import PartitionError
from repro.rdd.aggregator import Aggregator
from repro.rdd.dependencies import (
    Dependency,
    NarrowDependency,
    RangeDependency,
)
from repro.rdd.partitioner import HashPartitioner, Partitioner, RangePartitioner

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.context import ClusterContext

_rdd_ids = itertools.count()


class RDD:
    """A lazy, partitioned, lineage-tracked dataset."""

    def __init__(
        self,
        context: ClusterContext,
        dependencies: Sequence[Dependency],
        name: str = "",
    ) -> None:
        self.rdd_id = next(_rdd_ids)
        self.context = context
        self.dependencies: List[Dependency] = list(dependencies)
        self.name = name or type(self).__name__
        self.cached = False
        # Set for outputs of shuffles with a known partitioning.
        self.partitioner: Optional[Partitioner] = None

    # ------------------------------------------------------------------
    # Abstract interface
    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        raise NotImplementedError

    def compute(self, index: int, runtime):  # generator
        raise NotImplementedError

    def preferred_locations(self, index: int) -> List[str]:
        """Host-level locality hints; empty means 'anywhere'."""
        return []

    # ------------------------------------------------------------------
    # Narrow transformations
    # ------------------------------------------------------------------
    def map(self, func: Callable[[Any], Any], name: str = "map") -> MappedRDD:
        """Apply ``func`` to every record."""
        return MappedRDD(self, func, name=name)

    def map_values(self, func: Callable[[Any], Any]) -> MappedRDD:
        """Apply ``func`` to the value of every (key, value) record."""
        return MappedRDD(
            self, lambda kv: (kv[0], func(kv[1])), name="mapValues"
        )

    def flat_map(
        self, func: Callable[[Any], Iterable[Any]], name: str = "flatMap"
    ) -> FlatMappedRDD:
        """Apply ``func`` and flatten the resulting iterables."""
        return FlatMappedRDD(self, func, name=name)

    def filter(self, predicate: Callable[[Any], bool]) -> FilteredRDD:
        """Keep only records satisfying ``predicate``."""
        return FilteredRDD(self, predicate)

    def map_partitions(
        self,
        func: Callable[[List[Any]], Iterable[Any]],
        name: str = "mapPartitions",
        preserves_partitioning: bool = False,
    ) -> MapPartitionsRDD:
        """Apply ``func`` to each whole partition."""
        return MapPartitionsRDD(
            self, func, name=name, preserves_partitioning=preserves_partitioning
        )

    def keys(self) -> MappedRDD:
        return MappedRDD(self, lambda kv: kv[0], name="keys")

    def values(self) -> MappedRDD:
        return MappedRDD(self, lambda kv: kv[1], name="values")

    def union(self, other: RDD) -> UnionRDD:
        """Concatenate two RDDs partition-wise (no data movement)."""
        return UnionRDD(self.context, [self, other])

    # ------------------------------------------------------------------
    # Shuffle transformations (defined in shuffled.py, bound here)
    # ------------------------------------------------------------------
    def group_by_key(self, num_partitions: Optional[int] = None) -> RDD:
        """Group (k, v) records into (k, [values]) via a shuffle."""
        from repro.rdd.shuffled import ShuffledRDD

        partitioner = HashPartitioner(
            num_partitions or self.context.default_parallelism
        )
        return ShuffledRDD(
            self,
            partitioner,
            aggregator=Aggregator.group_by_key(),
            map_side_combine=False,
            name="groupByKey",
        )

    def reduce_by_key(
        self,
        func: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
    ) -> RDD:
        """Merge values per key with ``func``; combines map-side."""
        from repro.rdd.shuffled import ShuffledRDD

        partitioner = HashPartitioner(
            num_partitions or self.context.default_parallelism
        )
        return ShuffledRDD(
            self,
            partitioner,
            aggregator=Aggregator.from_reduce_function(func),
            map_side_combine=True,
            name="reduceByKey",
        )

    def sort_by_key(
        self,
        sample_keys: Sequence[Any],
        num_partitions: Optional[int] = None,
        ascending: bool = True,
    ) -> RDD:
        """Globally sort (k, v) records with a range partitioner.

        ``sample_keys`` stands in for Spark's sampling pre-pass: callers
        provide representative keys (workload generators know their key
        distribution), from which balanced range boundaries are drawn.
        """
        from repro.rdd.shuffled import ShuffledRDD

        partitioner = RangePartitioner(
            num_partitions or self.context.default_parallelism, sample_keys
        )
        return ShuffledRDD(
            self,
            partitioner,
            aggregator=None,
            map_side_combine=False,
            key_ordering=True,
            ascending=ascending,
            name="sortByKey",
        )

    def partition_by(self, partitioner: Partitioner) -> RDD:
        """Repartition (k, v) records by ``partitioner`` via a shuffle."""
        from repro.rdd.shuffled import ShuffledRDD

        return ShuffledRDD(
            self, partitioner, aggregator=None, map_side_combine=False,
            name="partitionBy",
        )

    def cogroup(
        self, other: RDD, num_partitions: Optional[int] = None
    ) -> RDD:
        """Group both RDDs' values per key: (k, ([left vs], [right vs]))."""
        from repro.rdd.shuffled import CoGroupedRDD

        partitioner = HashPartitioner(
            num_partitions or self.context.default_parallelism
        )
        return CoGroupedRDD(self, other, partitioner)

    def join(self, other: RDD, num_partitions: Optional[int] = None) -> RDD:
        """Inner join on keys: (k, (left value, right value))."""
        grouped = self.cogroup(other, num_partitions)

        def emit_pairs(record):
            key, (left_values, right_values) = record
            for left in left_values:
                for right in right_values:
                    yield (key, (left, right))

        return grouped.flat_map(emit_pairs, name="join")

    def distinct(self, num_partitions: Optional[int] = None) -> RDD:
        """Remove duplicate records via a shuffle."""
        keyed = self.map(lambda record: (record, None), name="distinct:key")
        reduced = keyed.reduce_by_key(lambda a, _b: a, num_partitions)
        return reduced.keys()

    # ------------------------------------------------------------------
    # The paper's transformation
    # ------------------------------------------------------------------
    def transfer_to(
        self,
        destination_datacenter: Optional[str] = None,
        pre_combine: Optional[Aggregator] = None,
    ) -> RDD:
        """Proactively push this dataset into an aggregator datacenter.

        The core API of the reproduced paper (§IV-B).  Returns a
        :class:`~repro.rdd.transferred.TransferredRDD` whose partitions are
        produced by *receiver tasks* scheduled inside
        ``destination_datacenter`` (all worker hosts there are offered as
        ``preferred_locations``; the task scheduler keeps host-level load
        balance).  When ``destination_datacenter`` is omitted, the DAG
        scheduler selects the datacenter storing the largest fraction of
        this RDD's input, per §IV-D of the paper.

        Receiver tasks pipeline with the producing stage: each starts as
        soon as its parent partition is available, without waiting for the
        whole stage — this is what smooths WAN traffic over time (Fig. 1).
        """
        from repro.rdd.transferred import TransferredRDD

        return TransferredRDD(
            self,
            destination_datacenter=destination_datacenter,
            pre_combine=pre_combine,
        )

    def cache(self) -> RDD:
        """Persist computed partitions at the hosts that produced them."""
        self.cached = True
        return self

    # ------------------------------------------------------------------
    # Actions (run the job on the simulator via the context)
    # ------------------------------------------------------------------
    def collect(self) -> List[Any]:
        """Materialise every partition and return records in order."""
        return self.context.run_collect(self)

    def count(self) -> int:
        """Number of records across all partitions."""
        return self.context.run_count(self)

    def save_as_file(self, path: str) -> None:
        """Write each output partition to the DFS at the task's host."""
        self.context.run_save(self, path)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def lineage(self) -> List[RDD]:
        """All ancestor RDDs (including self), deduplicated, parents first."""
        seen: dict = {}
        order: List[RDD] = []

        def visit(rdd: RDD) -> None:
            if rdd.rdd_id in seen:
                return
            seen[rdd.rdd_id] = rdd
            for dep in rdd.dependencies:
                visit(dep.parent)
            order.append(rdd)

        visit(self)
        return order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.name} id={self.rdd_id} partitions={self.num_partitions}>"


class HadoopRDD(RDD):
    """An input RDD backed by one DFS file: one partition per block."""

    def __init__(self, context: ClusterContext, path: str) -> None:
        super().__init__(context, dependencies=[], name=f"hadoop[{path}]")
        self.path = path
        self._block_ids = context.dfs.file_blocks(path)

    @property
    def num_partitions(self) -> int:
        return len(self._block_ids)

    def block_id(self, index: int) -> str:
        try:
            return self._block_ids[index]
        except IndexError:
            raise PartitionError(
                f"{self.name}: partition {index} out of range"
            ) from None

    def compute(self, index: int, runtime):
        records = yield from runtime.read_input_block(self.block_id(index))
        return records

    def preferred_locations(self, index: int) -> List[str]:
        return self.context.dfs.block_locations(self.block_id(index))


class ParallelizedRDD(RDD):
    """Driver-side data split into partitions (context.parallelize)."""

    def __init__(
        self, context: ClusterContext, records: Sequence[Any], num_slices: int
    ) -> None:
        super().__init__(context, dependencies=[], name="parallelize")
        if num_slices < 1:
            raise PartitionError("num_slices must be >= 1")
        self._slices: List[List[Any]] = [[] for _ in range(num_slices)]
        for position, record in enumerate(records):
            self._slices[position % num_slices].append(record)

    @property
    def num_partitions(self) -> int:
        return len(self._slices)

    def compute(self, index: int, runtime):
        # Driver data is shipped to the task's host when first used.
        records = yield from runtime.read_driver_data(self._slices[index])
        return records


class MappedRDD(RDD):
    """One-to-one record transformation."""

    def __init__(self, parent: RDD, func: Callable[[Any], Any], name: str = "map") -> None:
        super().__init__(parent.context, [NarrowDependency(parent)], name=name)
        self.func = func
        # mapValues-style ops preserve the parent's partitioning.
        if name in ("mapValues", "keys") and parent.partitioner is not None:
            self.partitioner = parent.partitioner if name == "mapValues" else None

    @property
    def num_partitions(self) -> int:
        return self.dependencies[0].parent.num_partitions

    def compute(self, index: int, runtime):
        parent = self.dependencies[0].parent
        records = yield from runtime.materialize(parent, index)
        yield from runtime.charge_operator(self, records)
        return [self.func(record) for record in records]


class FlatMappedRDD(RDD):
    """One-to-many record transformation."""

    def __init__(
        self, parent: RDD, func: Callable[[Any], Iterable[Any]], name: str = "flatMap"
    ) -> None:
        super().__init__(parent.context, [NarrowDependency(parent)], name=name)
        self.func = func

    @property
    def num_partitions(self) -> int:
        return self.dependencies[0].parent.num_partitions

    def compute(self, index: int, runtime):
        parent = self.dependencies[0].parent
        records = yield from runtime.materialize(parent, index)
        yield from runtime.charge_operator(self, records)
        output: List[Any] = []
        for record in records:
            output.extend(self.func(record))
        return output


class FilteredRDD(RDD):
    """Keeps records satisfying a predicate; preserves partitioning."""

    def __init__(self, parent: RDD, predicate: Callable[[Any], bool]) -> None:
        super().__init__(parent.context, [NarrowDependency(parent)], name="filter")
        self.predicate = predicate
        self.partitioner = parent.partitioner

    @property
    def num_partitions(self) -> int:
        return self.dependencies[0].parent.num_partitions

    def compute(self, index: int, runtime):
        parent = self.dependencies[0].parent
        records = yield from runtime.materialize(parent, index)
        yield from runtime.charge_operator(self, records)
        return [record for record in records if self.predicate(record)]


class MapPartitionsRDD(RDD):
    """Whole-partition transformation."""

    def __init__(
        self,
        parent: RDD,
        func: Callable[[List[Any]], Iterable[Any]],
        name: str = "mapPartitions",
        preserves_partitioning: bool = False,
    ) -> None:
        super().__init__(parent.context, [NarrowDependency(parent)], name=name)
        self.func = func
        if preserves_partitioning:
            self.partitioner = parent.partitioner

    @property
    def num_partitions(self) -> int:
        return self.dependencies[0].parent.num_partitions

    def compute(self, index: int, runtime):
        parent = self.dependencies[0].parent
        records = yield from runtime.materialize(parent, index)
        yield from runtime.charge_operator(self, records)
        return list(self.func(records))


class UnionRDD(RDD):
    """Concatenation of several RDDs; partitions are stacked in order."""

    def __init__(self, context: ClusterContext, parents: Sequence[RDD]) -> None:
        if not parents:
            raise PartitionError("union requires at least one parent")
        dependencies: List[Dependency] = []
        start = 0
        for parent in parents:
            dependencies.append(
                RangeDependency(parent, start, parent.num_partitions)
            )
            start += parent.num_partitions
        super().__init__(context, dependencies, name="union")
        self._total_partitions = start

    @property
    def num_partitions(self) -> int:
        return self._total_partitions

    def _resolve(self, index: int) -> tuple:
        for dep in self.dependencies:
            if dep.covers(index):  # type: ignore[attr-defined]
                return dep.parent, dep.parent_partition(index)  # type: ignore[attr-defined]
        raise PartitionError(f"union partition {index} out of range")

    def compute(self, index: int, runtime):
        parent, parent_index = self._resolve(index)
        records = yield from runtime.materialize(parent, parent_index)
        return records

    def preferred_locations(self, index: int) -> List[str]:
        parent, parent_index = self._resolve(index)
        return parent.preferred_locations(parent_index)
