"""Shuffle-consuming RDDs: the reduce side of a shuffle boundary.

:class:`ShuffledRDD` covers groupByKey / reduceByKey / sortByKey /
partitionBy, differing only in aggregator and ordering.
:class:`CoGroupedRDD` consumes two shuffles at once and underlies
``join``/``cogroup``.

Both obtain their input through ``runtime.shuffle_read``, which routes
to the context's :class:`~repro.shuffle.service.ShuffleService` — the
active backend (fetch, push/aggregate, pre-merge, ...) performs the
actual data movement.  The RDD layer is agnostic to the mechanism,
exactly as in the paper's design where ``transferTo`` changes *where
shuffle input lives*, not what reducers do.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.rdd.aggregator import Aggregator
from repro.rdd.dependencies import ShuffleDependency
from repro.rdd.partitioner import Partitioner
from repro.rdd.rdd import RDD


class ShuffledRDD(RDD):
    """The output of a single-parent shuffle."""

    def __init__(
        self,
        parent: RDD,
        partitioner: Partitioner,
        aggregator: Optional[Aggregator] = None,
        map_side_combine: bool = False,
        key_ordering: bool = False,
        ascending: bool = True,
        name: str = "shuffled",
    ) -> None:
        dependency = ShuffleDependency(
            parent,
            partitioner,
            aggregator=aggregator,
            map_side_combine=map_side_combine,
            key_ordering=key_ordering,
        )
        super().__init__(parent.context, [dependency], name=name)
        self.shuffle_dependency = dependency
        self.partitioner = partitioner
        self.ascending = ascending

    @property
    def num_partitions(self) -> int:
        return self.partitioner.num_partitions

    def compute(self, index: int, runtime):
        dep = self.shuffle_dependency
        records = yield from runtime.shuffle_read(dep, index)
        aggregator = dep.aggregator
        if aggregator is not None:
            if dep.map_side_combine:
                # Shards arrive pre-combined; merge combiners across maps.
                output = aggregator.combine_combiners(records)
            else:
                output = aggregator.combine_values(records)
            yield from runtime.charge_combine(self, records)
            return output
        if dep.key_ordering:
            yield from runtime.charge_sort(self, records)
            return sorted(
                records, key=lambda kv: kv[0], reverse=not self.ascending
            )
        yield from runtime.charge_combine(self, records)
        return list(records)


class CoGroupedRDD(RDD):
    """Groups two keyed RDDs by key: (k, ([left values], [right values]))."""

    def __init__(
        self, left: RDD, right: RDD, partitioner: Partitioner
    ) -> None:
        left_dep = ShuffleDependency(left, partitioner)
        right_dep = ShuffleDependency(right, partitioner)
        super().__init__(left.context, [left_dep, right_dep], name="cogroup")
        self.left_dependency = left_dep
        self.right_dependency = right_dep
        self.partitioner = partitioner

    @property
    def num_partitions(self) -> int:
        return self.partitioner.num_partitions

    def compute(self, index: int, runtime):
        left_records = yield from runtime.shuffle_read(self.left_dependency, index)
        right_records = yield from runtime.shuffle_read(self.right_dependency, index)
        yield from runtime.charge_combine(self, left_records)
        yield from runtime.charge_combine(self, right_records)
        groups: Dict[Any, Tuple[List[Any], List[Any]]] = {}
        for key, value in left_records:
            groups.setdefault(key, ([], []))[0].append(value)
        for key, value in right_records:
            groups.setdefault(key, ([], []))[1].append(value)
        return list(groups.items())
