"""Logical size estimation for records.

The simulation runs with record counts scaled down by ``scale_factor``
relative to the paper's datasets, but charges network/disk/CPU time for
*logical* bytes at paper scale.  Every record therefore has a logical
size: its natural serialized size heuristic multiplied by the scale
factor.  Workload generators may also attach an explicit size by using
:class:`SizedRecord`.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple


class SizedRecord:
    """A record with an explicit natural size in bytes.

    Wraps a payload whose cost is not well captured by the generic
    heuristic — e.g. a "document" record standing for many raw text lines.
    """

    __slots__ = ("payload", "natural_size")

    def __init__(self, payload: Any, natural_size: float) -> None:
        if natural_size < 0:
            raise ValueError("natural_size must be >= 0")
        self.payload = payload
        self.natural_size = float(natural_size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SizedRecord({self.payload!r}, {self.natural_size})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SizedRecord)
            and self.payload == other.payload
            and self.natural_size == other.natural_size
        )

    def __hash__(self) -> int:
        return hash((self.payload, self.natural_size))


# Natural serialized-size heuristics, roughly matching Java object sizes.
_NUMBER_SIZE = 8.0
_BASE_OBJECT_SIZE = 16.0


def natural_size(record: Any) -> float:
    """Estimate the serialized size of one record in natural bytes."""
    if isinstance(record, SizedRecord):
        return record.natural_size
    if isinstance(record, bool) or record is None:
        return _NUMBER_SIZE
    if isinstance(record, (int, float)):
        return _NUMBER_SIZE
    if isinstance(record, str):
        return float(len(record)) + _NUMBER_SIZE
    if isinstance(record, bytes):
        return float(len(record)) + _NUMBER_SIZE
    if isinstance(record, tuple):
        return _BASE_OBJECT_SIZE + sum(natural_size(item) for item in record)
    if isinstance(record, (list, set, frozenset)):
        return _BASE_OBJECT_SIZE + sum(natural_size(item) for item in record)
    if isinstance(record, dict):
        return _BASE_OBJECT_SIZE + sum(
            natural_size(key) + natural_size(value)
            for key, value in record.items()
        )
    return _BASE_OBJECT_SIZE


class SizeEstimator:
    """Converts records to logical (paper-scale) bytes."""

    def __init__(self, scale_factor: float = 1.0) -> None:
        if scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        self.scale_factor = float(scale_factor)

    def record_size(self, record: Any) -> float:
        return natural_size(record) * self.scale_factor

    def estimate(self, records: Iterable[Any]) -> float:
        return sum(natural_size(record) for record in records) * self.scale_factor

    def estimate_with_count(self, records: Iterable[Any]) -> Tuple[float, int]:
        total = 0.0
        count = 0
        for record in records:
            total += natural_size(record)
            count += 1
        return total * self.scale_factor, count
