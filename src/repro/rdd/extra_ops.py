"""Additional RDD operations beyond the paper's minimum.

These mirror the corresponding Spark operations and are implemented in
terms of the primitive transformations, so they inherit the shuffle
mechanism (fetch or push) transparently.  They are attached to
:class:`~repro.rdd.rdd.RDD` at import time by :func:`install_extra_ops`
(called from ``repro.rdd``), keeping the core class focused on the
paper's machinery.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.errors import PartitionError, RDDError
from repro.rdd.aggregator import Aggregator
from repro.rdd.partitioner import HashPartitioner
from repro.rdd.rdd import RDD


def _coalesce(self: RDD, num_partitions: int) -> RDD:
    """Reduce the partition count without a shuffle.

    Partition ``i`` of the result concatenates every source partition
    ``j`` with ``j % num_partitions == i`` (a narrow many-to-one
    dependency approximated through a union-of-slices pipeline).
    """
    if num_partitions < 1:
        raise PartitionError("coalesce requires num_partitions >= 1")
    if num_partitions >= self.num_partitions:
        return self

    return _CoalescedRDD(self, num_partitions)


class _CoalescedRDD(RDD):
    """Narrow many-to-one repartitioning."""

    def __init__(self, parent: RDD, num_partitions: int) -> None:
        from repro.rdd.dependencies import NarrowDependency

        super().__init__(parent.context, [NarrowDependency(parent)],
                         name="coalesce")
        self._parent = parent
        self._num_partitions = num_partitions

    @property
    def num_partitions(self) -> int:
        return self._num_partitions

    def _parent_indices(self, index: int) -> List[int]:
        return [
            j for j in range(self._parent.num_partitions)
            if j % self._num_partitions == index
        ]

    def compute(self, index: int, runtime):
        records: List[Any] = []
        for parent_index in self._parent_indices(index):
            chunk = yield from runtime.materialize(self._parent, parent_index)
            records.extend(chunk)
        return records

    def preferred_locations(self, index: int) -> List[str]:
        for parent_index in self._parent_indices(index):
            hints = self._parent.preferred_locations(parent_index)
            if hints:
                return hints
        return []


def _sample(self: RDD, fraction: float, seed: int = 0) -> RDD:
    """Bernoulli sampling of records (without replacement)."""
    if not 0 <= fraction <= 1:
        raise RDDError("sample fraction must be in [0, 1]")
    from repro.rdd.partitioner import stable_hash

    threshold = int(fraction * (2 ** 31))

    def keep(record) -> bool:
        return stable_hash((seed, repr(record))) < threshold

    return self.filter(keep)


def _aggregate_by_key(
    self: RDD,
    zero_factory: Callable[[], Any],
    seq_op: Callable[[Any, Any], Any],
    comb_op: Callable[[Any, Any], Any],
    num_partitions: Optional[int] = None,
) -> RDD:
    """Spark's aggregateByKey: per-key fold with a neutral element."""
    from repro.rdd.shuffled import ShuffledRDD

    aggregator = Aggregator(
        create_combiner=lambda value: seq_op(zero_factory(), value),
        merge_value=seq_op,
        merge_combiners=comb_op,
    )
    partitioner = HashPartitioner(
        num_partitions or self.context.default_parallelism
    )
    return ShuffledRDD(
        self, partitioner, aggregator=aggregator, map_side_combine=True,
        name="aggregateByKey",
    )


def _combine_by_key(
    self: RDD,
    create_combiner: Callable[[Any], Any],
    merge_value: Callable[[Any, Any], Any],
    merge_combiners: Callable[[Any, Any], Any],
    num_partitions: Optional[int] = None,
) -> RDD:
    """The general combine-by-key primitive (Spark's combineByKey)."""
    from repro.rdd.shuffled import ShuffledRDD

    partitioner = HashPartitioner(
        num_partitions or self.context.default_parallelism
    )
    return ShuffledRDD(
        self,
        partitioner,
        aggregator=Aggregator(create_combiner, merge_value, merge_combiners),
        map_side_combine=True,
        name="combineByKey",
    )


def _count_by_key(self: RDD) -> dict:
    """Action: key -> number of records with that key."""
    counted = self.map(
        lambda kv: (kv[0], 1), name="countByKey"
    ).reduce_by_key(lambda a, b: a + b)
    return dict(counted.collect())


def _reduce(self: RDD, func: Callable[[Any, Any], Any]) -> Any:
    """Action: fold all records into one value at the driver."""
    partials = self.map_partitions(
        lambda records: [_fold(records, func)] if records else [],
        name="reduce",
    ).collect()
    if not partials:
        raise RDDError("reduce of an empty RDD")
    return _fold(partials, func)


def _fold(records: List[Any], func: Callable[[Any, Any], Any]) -> Any:
    accumulator = records[0]
    for record in records[1:]:
        accumulator = func(accumulator, record)
    return accumulator


def _take(self: RDD, count: int) -> List[Any]:
    """Action: the first ``count`` records in partition order.

    Materialises the whole dataset (no incremental job submission), so
    use on small results only — matching this engine's collect-based
    action model.
    """
    if count < 0:
        raise RDDError("take requires count >= 0")
    return self.collect()[:count]


def _first(self: RDD) -> Any:
    records = _take(self, 1)
    if not records:
        raise RDDError("first() on an empty RDD")
    return records[0]


def _sort_by(
    self: RDD,
    key_func: Callable[[Any], Any],
    sample_keys,
    num_partitions: Optional[int] = None,
    ascending: bool = True,
) -> RDD:
    """Globally sort records by ``key_func`` (sortBy)."""
    keyed = self.map(lambda record: (key_func(record), record), name="keyBy")
    ordered = keyed.sort_by_key(
        sample_keys=[key_func(k) if not _is_plain_key(k) else k
                     for k in sample_keys],
        num_partitions=num_partitions,
        ascending=ascending,
    )
    return ordered.values()


def _is_plain_key(candidate) -> bool:
    return not callable(candidate)


def _zip_with_index(self: RDD) -> RDD:
    """(record, global index) pairs; requires a counting pre-pass.

    Like Spark, this runs one job to learn partition sizes, then tags
    records in a second pass.
    """
    sizes = self.map_partitions(
        lambda records: [len(records)], name="countPartitions"
    ).collect()
    offsets = [0]
    for size in sizes[:-1]:
        offsets.append(offsets[-1] + size)

    class _Zipped(RDD):
        def __init__(inner, parent: RDD) -> None:
            from repro.rdd.dependencies import NarrowDependency

            super().__init__(
                parent.context, [NarrowDependency(parent)],
                name="zipWithIndex",
            )
            inner._parent = parent

        @property
        def num_partitions(inner) -> int:
            return inner._parent.num_partitions

        def compute(inner, index: int, runtime):
            records = yield from runtime.materialize(inner._parent, index)
            base = offsets[index]
            return [
                (record, base + position)
                for position, record in enumerate(records)
            ]

        def preferred_locations(inner, index: int):
            return inner._parent.preferred_locations(index)

    return _Zipped(self)


def install_extra_ops() -> None:
    """Attach the extended operations to the RDD class (idempotent)."""
    RDD.coalesce = _coalesce
    RDD.sample = _sample
    RDD.aggregate_by_key = _aggregate_by_key
    RDD.combine_by_key = _combine_by_key
    RDD.count_by_key = _count_by_key
    RDD.reduce = _reduce
    RDD.take = _take
    RDD.first = _first
    RDD.sort_by = _sort_by
    RDD.zip_with_index = _zip_with_index
