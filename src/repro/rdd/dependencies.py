"""Dependencies between RDDs: the edges of the lineage DAG.

Three families matter here:

* :class:`NarrowDependency` / :class:`RangeDependency` — one-to-one
  partition relationships; parent and child live in the same stage and
  are pipelined inside one task (exactly Spark's behaviour).
* :class:`ShuffleDependency` — an all-to-all boundary.  The parent stage
  writes sharded map output; the child stage reads it through the shuffle
  machinery (fetch- or push-based depending on configuration).
* :class:`TransferDependency` — the paper's contribution.  Also a stage
  boundary, but one-to-one: partition *i* of the child
  (:class:`~repro.rdd.transferred.TransferredRDD`) is produced by a
  *receiver task* that pulls partition *i* of the parent across the
  network.  Unlike a shuffle there is no barrier: each receiver task
  becomes runnable the moment its parent task finishes, which is what
  pipelines WAN transfers with map execution (Fig. 1 of the paper).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from repro.rdd.aggregator import Aggregator
from repro.rdd.partitioner import Partitioner

if TYPE_CHECKING:  # pragma: no cover
    from repro.rdd.rdd import RDD

_shuffle_ids = itertools.count()
_transfer_ids = itertools.count()


class Dependency:
    """Base class: an edge from a child RDD to one parent RDD."""

    def __init__(self, parent: RDD) -> None:
        self.parent = parent


class NarrowDependency(Dependency):
    """Partition i of the child depends on partition i of the parent."""

    def parent_partition(self, child_partition: int) -> int:
        return child_partition


class RangeDependency(NarrowDependency):
    """Used by union: a contiguous slice of child partitions maps onto
    the parent's partitions with an offset."""

    def __init__(self, parent: RDD, child_start: int, length: int) -> None:
        super().__init__(parent)
        self.child_start = child_start
        self.length = length

    def covers(self, child_partition: int) -> bool:
        return self.child_start <= child_partition < self.child_start + self.length

    def parent_partition(self, child_partition: int) -> int:
        if not self.covers(child_partition):
            raise ValueError(
                f"partition {child_partition} outside range "
                f"[{self.child_start}, {self.child_start + self.length})"
            )
        return child_partition - self.child_start


class ShuffleDependency(Dependency):
    """An all-to-all repartitioning edge.

    Attributes:
        partitioner: key -> reduce partition mapping.
        aggregator: optional combine semantics.
        map_side_combine: if True (and an aggregator is present) map tasks
            combine each shard before writing shuffle output.
        key_ordering: if True the reduce side sorts records by key
            (sortByKey); sorting cost is charged by the cost model.
    """

    def __init__(
        self,
        parent: RDD,
        partitioner: Partitioner,
        aggregator: Optional[Aggregator] = None,
        map_side_combine: bool = False,
        key_ordering: bool = False,
    ) -> None:
        super().__init__(parent)
        if map_side_combine and aggregator is None:
            raise ValueError("map_side_combine requires an aggregator")
        self.shuffle_id = next(_shuffle_ids)
        self.partitioner = partitioner
        self.aggregator = aggregator
        self.map_side_combine = map_side_combine
        self.key_ordering = key_ordering


class TransferDependency(Dependency):
    """A one-to-one *data movement* edge (the transferTo boundary).

    Attributes:
        destination_datacenter: the aggregator datacenter name, or None
            for "decide automatically at stage submission" (§IV-D: the
            datacenter storing the largest amount of map input).
        pre_combine: aggregator applied to the parent partition *before*
            the transfer (the §IV-C-3 map-side-combine-before-transfer
            optimisation); None disables it.
    """

    def __init__(
        self,
        parent: RDD,
        destination_datacenter: Optional[str] = None,
        pre_combine: Optional[Aggregator] = None,
    ) -> None:
        super().__init__(parent)
        self.transfer_id = next(_transfer_ids)
        self.destination_datacenter = destination_datacenter
        self.pre_combine = pre_combine
