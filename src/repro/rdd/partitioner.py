"""Partitioners: deterministic key -> reduce-partition mapping.

:class:`HashPartitioner` matches Spark's default (``hash(key) mod n``
with a stable string hash so runs are reproducible across processes).
:class:`RangePartitioner` supports sort operations: boundaries are chosen
from a sample of keys so output partitions are roughly balanced, exactly
the load-balancing tendency the paper's analysis assumes ("all shards of
a particular partition tend to be about the same size", §III-B).
"""

from __future__ import annotations

import bisect
import zlib
from typing import Any, List, Sequence


def stable_hash(key: Any) -> int:
    """A process-independent hash (Python's ``hash`` is salted for str)."""
    if isinstance(key, int):
        return key & 0x7FFFFFFF
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8", "replace")) & 0x7FFFFFFF
    if isinstance(key, bytes):
        return zlib.crc32(key) & 0x7FFFFFFF
    if isinstance(key, tuple):
        value = 0x345678
        for item in key:
            value = (value * 1000003) ^ stable_hash(item)
        return value & 0x7FFFFFFF
    return hash(key) & 0x7FFFFFFF


class Partitioner:
    """Maps a record key to a partition index in ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions

    def partition(self, key: Any) -> int:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.num_partitions == other.num_partitions  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return hash((type(self).__name__, self.num_partitions))


class HashPartitioner(Partitioner):
    """Spark's default: stable hash modulo partition count."""

    def partition(self, key: Any) -> int:
        return stable_hash(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Ordered partitioning from sampled boundaries (used by sortByKey)."""

    def __init__(self, num_partitions: int, sample_keys: Sequence[Any]) -> None:
        super().__init__(num_partitions)
        self.boundaries: List[Any] = _choose_boundaries(
            sample_keys, num_partitions
        )

    def partition(self, key: Any) -> int:
        return bisect.bisect_right(self.boundaries, key)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RangePartitioner)
            and self.num_partitions == other.num_partitions
            and self.boundaries == other.boundaries
        )

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return hash((type(self).__name__, self.num_partitions, tuple(self.boundaries)))


def _choose_boundaries(sample_keys: Sequence[Any], num_partitions: int) -> List[Any]:
    """Pick ``num_partitions - 1`` split points from sorted samples."""
    if num_partitions == 1 or not sample_keys:
        return []
    ordered = sorted(sample_keys)
    boundaries: List[Any] = []
    for split in range(1, num_partitions):
        index = split * len(ordered) // num_partitions
        index = min(index, len(ordered) - 1)
        candidate = ordered[index]
        if not boundaries or candidate > boundaries[-1]:
            boundaries.append(candidate)
    return boundaries
