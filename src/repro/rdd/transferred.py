"""TransferredRDD: the dataset after a ``transfer_to`` (paper §IV-B).

A TransferredRDD has the same partitions and records as its parent — it
represents a pure *placement* change.  The :class:`TransferDependency`
marks a stage boundary, so each partition is produced by a dedicated
*receiver task*:

* its ``preferred_locations`` are every worker host of the aggregator
  datacenter, leaving the host-level choice to the task scheduler (the
  paper's load-balance argument in §IV-A);
* it becomes runnable as soon as its parent partition is materialised,
  pipelining WAN transfers with map execution (§IV-B's "bonus point");
* if the parent partition already lives in the destination datacenter the
  transfer degenerates to a local no-op ("completely transparent" tasks
  in Fig. 4 (b)) — the runtime handles this case with a zero-byte move.
"""

from __future__ import annotations

from typing import List, Optional

from repro.rdd.aggregator import Aggregator
from repro.rdd.dependencies import TransferDependency
from repro.rdd.rdd import RDD


class TransferredRDD(RDD):
    """Identity records, relocated into an aggregator datacenter."""

    def __init__(
        self,
        parent: RDD,
        destination_datacenter: Optional[str] = None,
        pre_combine: Optional[Aggregator] = None,
    ) -> None:
        dependency = TransferDependency(
            parent,
            destination_datacenter=destination_datacenter,
            pre_combine=pre_combine,
        )
        super().__init__(parent.context, [dependency], name="transferTo")
        self.transfer_dependency = dependency
        # Relocation does not change the key -> partition mapping.
        self.partitioner = parent.partitioner

    @property
    def num_partitions(self) -> int:
        return self.dependencies[0].parent.num_partitions

    @property
    def destination_datacenter(self) -> Optional[str]:
        return self.transfer_dependency.destination_datacenter

    def compute(self, index: int, runtime):
        # The runtime pulls the parent partition from its origin host to
        # the receiver task's host (a no-op when already local).
        records = yield from runtime.transfer_read(self.transfer_dependency, index)
        return records

    def preferred_locations(self, index: int) -> List[str]:
        """All hosts of the (resolved) destination datacenter.

        Resolution of an omitted destination happens at stage submission;
        the scheduler consults the resolved value, so this method returns
        hints only when an explicit destination was given.
        """
        destination = self.transfer_dependency.destination_datacenter
        if destination is None:
            return []
        return self.context.topology.hosts_in(destination)
