"""Straggler model: occasional slow task attempts.

Stage completion is gated by its slowest task ("the stragglers will
directly affect the overall stage completion time", §II-B).  The model
makes a small fraction of attempts run their CPU work a configurable
factor slower, drawn from a dedicated random stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.random_source import RandomSource


@dataclass(frozen=True)
class StragglerModel:
    """Bernoulli stragglers with a uniform slowdown range."""

    probability: float = 0.05
    min_slowdown: float = 1.5
    max_slowdown: float = 3.0

    def __post_init__(self) -> None:
        if not 0 <= self.probability <= 1:
            raise ValueError("probability must be in [0, 1]")
        if not 1 <= self.min_slowdown <= self.max_slowdown:
            raise ValueError("need 1 <= min_slowdown <= max_slowdown")

    def slowdown(
        self, randomness: RandomSource, task_id: str, attempt: int
    ) -> float:
        stream = f"straggler:{task_id}:{attempt}"
        if not randomness.chance(stream, self.probability):
            return 1.0
        return randomness.uniform(
            f"{stream}:factor", self.min_slowdown, self.max_slowdown
        )
