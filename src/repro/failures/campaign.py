"""Seeded chaos campaign: coverage-guided fault fuzzing with oracles.

The campaign loop (``repro fuzz``):

1. draw seeded schedules from the weighted grammar
   (:mod:`repro.failures.grammar`) over a fixed three-datacenter fuzz
   cluster;
2. run each schedule against a backend x policy matrix cell — a small
   deterministic two-stage job with byte-heavy
   :class:`~repro.rdd.size_estimator.SizedRecord` payloads, sized so the
   job is still in flight when the schedule fires — under a **composite
   oracle**:

   * the runtime sanitizer's invariants (rates, capacity conservation,
     clock monotonicity, stage-boundary ledger reconciliation);
   * post-run bit-exact counter==monitor==ledger reconciliation
     (:func:`repro.analysis.sanitizer.reconcile_run`);
   * fault-free **result-hash equality**: recovery may re-execute work
     but must never change the answer;
   * a wall-clock-bounded **liveness** check (the kernel watchdog) that
     flags hung recoveries instead of deadlocking the suite;

3. delta-debug every violating schedule down to a minimal failing
   reproducer (:mod:`repro.failures.minimize`);
4. emit a replayable JSON artifact whose ``schedule`` round-trips
   through the CLI grammar (``repro run --chaos @artifact.json``).

A job that *fails cleanly* under chaos (lineage budget exhausted after
losing too many replicas, say) is an accepted outcome — fail-stop is
not a bug.  The oracles hunt silent corruption, broken accounting, and
hangs.

Cells are independent seeded simulations, so the campaign parallelises
through the same :func:`~repro.experiments.runner.shard_map` machinery
as the experiment matrix, byte-identically to a serial run.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.sanitizer import InvariantViolation, reconcile_run, sanitized
from repro.errors import ConfigurationError, LivenessError, ReproError
from repro.failures.chaos import ChaosSchedule
from repro.failures.grammar import (
    ChaosUniverse,
    GrammarConfig,
    random_schedule,
    schedule_to_specs,
)
from repro.failures.minimize import MinimizationResult, minimize_schedule
from repro.network.topology import GBPS, MBPS
from repro.rdd.size_estimator import SizedRecord
from repro.simulation.random_source import RandomSource

if False:  # pragma: no cover - type-only names (cluster layer imports us)
    from repro.cluster.builder import ClusterSpec  # noqa: F401

ARTIFACT_VERSION = 1

# The fuzz job's shape: enough keys and bytes that the reduce stage is
# still shuffling when schedule windows (~0.5-4 s simulated) fire on the
# fuzz cluster below, while one cell stays ~10-30 ms of wall time.
_FUZZ_KEYS = 48
_FUZZ_SLICES = 6
_FUZZ_REDUCERS = 4
_FUZZ_RECORD_BYTES = 0.5e6

POLICIES = ("baseline", "health", "speculate")


def fuzz_cluster_spec() -> "ClusterSpec":
    """The fixed cluster every campaign cell runs on: three DCs, two
    workers each, 100 Mbps WAN — small enough for milliseconds per cell,
    wide enough that every chaos kind has a meaningful target."""
    # Lazy: the cluster layer imports repro.failures at its own import
    # time, so the campaign pulls cluster/config names per call.
    from repro.cluster.builder import ClusterSpec

    return ClusterSpec(
        datacenters=("dc-a", "dc-b", "dc-c"),
        workers_per_datacenter=2,
        intra_dc_bandwidth=1 * GBPS,
        inter_dc_bandwidth=100 * MBPS,
        gateway_bandwidth=None,
        driver_datacenter="dc-a",
    )


def _policy_config(policy: str, backend: str, seed: int):
    from repro.config import (
        HealthConfig,
        SchedulingConfig,
        SimulationConfig,
        shuffle_config_for_backend,
    )

    if policy not in POLICIES:
        known = ", ".join(POLICIES)
        raise ConfigurationError(
            f"unknown campaign policy {policy!r} (one of: {known})"
        )
    overrides: Dict[str, Any] = {}
    if policy in ("health", "speculate"):
        overrides["health"] = HealthConfig(
            blacklist_enabled=True,
            flow_retry_enabled=True,
            breaker_enabled=True,
        )
    if policy == "speculate":
        overrides["scheduling"] = SchedulingConfig(speculation=True)
    return SimulationConfig(
        seed=seed,
        shuffle=shuffle_config_for_backend(backend),
        jitter=None,
        # Chaos kinds that destroy storage need a second replica or
        # lineage recovery bottoms out at permanently lost input.
        dfs_replication=2,
        **overrides,
    )


def _fuzz_records() -> List[Tuple[str, SizedRecord]]:
    return [
        (f"key-{index % _FUZZ_KEYS}", SizedRecord(1, _FUZZ_RECORD_BYTES))
        for index in range(_FUZZ_KEYS * 4)
    ]


def _merge(a: SizedRecord, b: SizedRecord) -> SizedRecord:
    return SizedRecord(a.payload + b.payload, a.natural_size + b.natural_size)


def result_hash(result: Any) -> str:
    """Order-insensitive digest of a reduce result."""
    canonical = sorted(
        (key, record.payload, record.natural_size) for key, record in result
    )
    return hashlib.sha256(repr(canonical).encode()).hexdigest()


@dataclass(frozen=True, slots=True)
class CampaignCell:
    """One (schedule, backend, policy) matrix cell, picklable for
    :func:`~repro.experiments.runner.shard_map` workers."""

    index: int
    schedule_specs: Tuple[str, ...]
    backend: str
    policy: str
    seed: int
    expected_hash: Optional[str]
    max_wall_seconds: float


@dataclass(frozen=True, slots=True)
class CellOutcome:
    """Everything one cell reports back to the campaign."""

    cell: CampaignCell
    violations: Tuple[str, ...]
    job_failed: str
    duration: float
    chaos_applied: Tuple[str, ...]
    chaos_skipped: Tuple[str, ...]
    recovery: Tuple[Tuple[str, float], ...]
    observed_hash: Optional[str]

    @property
    def ok(self) -> bool:
        return not self.violations


def run_cell(
    cell: CampaignCell, schedule: Optional[ChaosSchedule] = None
) -> CellOutcome:
    """Execute one matrix cell under the composite oracle.

    ``schedule`` overrides the cell's own specs (the minimizer probes
    with candidate schedules without re-serializing each one).
    """
    if schedule is None:
        schedule = ChaosSchedule.from_specs(cell.schedule_specs)
    config = _policy_config(cell.policy, cell.backend, cell.seed)
    config = config.with_chaos(schedule if schedule else None)
    if cell.max_wall_seconds > 0:
        config = _with_wall_limit(config, cell.max_wall_seconds)
    violations: List[str] = []
    job_failed = ""
    observed: Optional[str] = None
    duration = 0.0
    applied: Tuple[str, ...] = ()
    skipped: Tuple[str, ...] = ()
    recovery: Tuple[Tuple[str, float], ...] = ()
    from repro.cluster.context import ClusterContext

    with sanitized():
        context = ClusterContext(fuzz_cluster_spec(), config)
        try:
            started = context.sim.now
            rdd = context.parallelize(_fuzz_records(), _FUZZ_SLICES)
            result = rdd.reduce_by_key(
                _merge, num_partitions=_FUZZ_REDUCERS
            ).collect()
            duration = context.sim.now - started
            observed = result_hash(result)
            if cell.expected_hash and observed != cell.expected_hash:
                violations.append(
                    f"result-hash: {observed} != fault-free {cell.expected_hash}"
                )
            violations.extend(reconcile_run(context))
        except InvariantViolation as violation:
            violations.append(f"sanitizer: {violation}")
        except LivenessError as violation:
            violations.append(f"liveness: {violation}")
        except ReproError as error:
            # Fail-stop under chaos is an accepted outcome, not a bug.
            job_failed = f"{type(error).__name__}: {error}"
        finally:
            injector = context.chaos_injector
            if injector is not None:
                applied = tuple(
                    record.event.kind for record in injector.fired if record.applied
                )
                skipped = tuple(
                    record.event.kind
                    for record in injector.fired
                    if not record.applied
                )
            recovery = tuple(sorted(context.recovery.as_dict().items()))
            try:
                context.shutdown()
            except ReproError:  # pragma: no cover - defensive
                pass
    return CellOutcome(
        cell=cell,
        violations=tuple(violations),
        job_failed=job_failed,
        duration=duration,
        chaos_applied=applied,
        chaos_skipped=skipped,
        recovery=recovery,
        observed_hash=observed,
    )


def _with_wall_limit(config, limit: float):
    from dataclasses import replace

    return replace(config, max_wall_seconds=limit)


def _run_campaign_shard(cells: Sequence[CampaignCell]) -> List[CellOutcome]:
    """Worker entry point: run a contiguous slice of the cell list."""
    return [run_cell(cell) for cell in cells]


def fault_free_hashes(
    backends: Sequence[str], policies: Sequence[str], seed: int
) -> Dict[Tuple[str, str], str]:
    """The fault-free result hash of every matrix column.

    Computed by running each (backend, policy) cell once with an empty
    schedule; the oracle then demands every chaotic run of that column
    reproduce it exactly.
    """
    hashes: Dict[Tuple[str, str], str] = {}
    for backend in backends:
        for policy in policies:
            probe = CampaignCell(
                index=-1,
                schedule_specs=(),
                backend=backend,
                policy=policy,
                seed=seed,
                expected_hash=None,
                max_wall_seconds=0.0,
            )
            outcome = run_cell(probe)
            if outcome.violations or outcome.job_failed:
                raise ConfigurationError(
                    f"fault-free baseline for backend={backend} "
                    f"policy={policy} did not run clean: "
                    f"{outcome.violations or outcome.job_failed}"
                )
            hashes[(backend, policy)] = outcome.observed_hash or ""
    return hashes


# ---------------------------------------------------------------------------
# Campaign driver
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CampaignConfig:
    """Tunables of one ``repro fuzz`` campaign."""

    seed: int = 0
    schedules: int = 50
    # None = stop on the schedule budget alone; otherwise stop drawing
    # new work once this much wall time has elapsed (cells already
    # dispatched still finish).
    max_wall_seconds: Optional[float] = None
    backends: Tuple[str, ...] = ()
    policies: Tuple[str, ...] = POLICIES
    # rotate=True pairs schedule i with matrix column i mod columns (one
    # cell per schedule — breadth); rotate=False runs the full cross
    # product (depth).
    rotate: bool = True
    events_min: int = 2
    events_max: int = 6
    window: Tuple[float, float] = (0.5, 4.0)
    cell_wall_seconds: float = 30.0
    minimize: bool = True
    artifact_dir: Optional[str] = None

    def validate(self) -> None:
        if self.schedules < 1:
            raise ConfigurationError("campaign needs at least one schedule")
        if not 1 <= self.events_min <= self.events_max:
            raise ConfigurationError(
                "campaign needs 1 <= events_min <= events_max"
            )
        if self.cell_wall_seconds <= 0:
            raise ConfigurationError("cell_wall_seconds must be > 0")
        if self.max_wall_seconds is not None and self.max_wall_seconds <= 0:
            raise ConfigurationError("max_wall_seconds must be > 0")
        for policy in self.policies:
            if policy not in POLICIES:
                known = ", ".join(POLICIES)
                raise ConfigurationError(
                    f"unknown campaign policy {policy!r} (one of: {known})"
                )


@dataclass(frozen=True)
class Finding:
    """One confirmed oracle violation, minimized to a reproducer."""

    outcome: CellOutcome
    minimized: Optional[MinimizationResult]
    artifact_path: Optional[str]

    @property
    def reproducer_specs(self) -> Tuple[str, ...]:
        if self.minimized is not None:
            return tuple(schedule_to_specs(self.minimized.schedule))
        return self.outcome.cell.schedule_specs


@dataclass
class CampaignReport:
    """The campaign's result: findings plus a coverage report."""

    config: CampaignConfig
    schedules_drawn: int = 0
    cells_run: int = 0
    findings: List[Finding] = field(default_factory=list)
    job_failures: int = 0
    kinds_applied: Dict[str, int] = field(default_factory=dict)
    kinds_skipped: Dict[str, int] = field(default_factory=dict)
    kinds_by_backend: Dict[str, Dict[str, int]] = field(default_factory=dict)
    recovery_totals: Dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0
    stopped_early: bool = False

    @property
    def ok(self) -> bool:
        return not self.findings

    def format_summary(self) -> str:
        lines = [
            f"campaign: seed={self.config.seed} "
            f"schedules={self.schedules_drawn} cells={self.cells_run} "
            f"findings={len(self.findings)} job_failures={self.job_failures} "
            f"wall={self.wall_seconds:.1f}s"
            + (" (stopped early: wall budget)" if self.stopped_early else ""),
            "coverage (kind: applied/skipped):",
        ]
        for kind in sorted(set(self.kinds_applied) | set(self.kinds_skipped)):
            lines.append(
                f"  {kind}: {self.kinds_applied.get(kind, 0)}"
                f"/{self.kinds_skipped.get(kind, 0)}"
            )
        lines.append("recovery paths fired:")
        for name, total in sorted(self.recovery_totals.items()):
            if total:
                lines.append(f"  {name}: {total:g}")
        for finding in self.findings:
            cell = finding.outcome.cell
            lines.append(
                f"FINDING schedule#{cell.index} backend={cell.backend} "
                f"policy={cell.policy}: {'; '.join(finding.outcome.violations)}"
            )
            if finding.minimized is not None:
                lines.append(
                    f"  minimized {finding.minimized.original_events} -> "
                    f"{finding.minimized.events} event(s) in "
                    f"{finding.minimized.probes} probe(s)"
                )
            for spec in finding.reproducer_specs:
                lines.append(f"  {spec}")
            if finding.artifact_path:
                lines.append(f"  artifact: {finding.artifact_path}")
        return "\n".join(lines)


def build_artifact(finding: Finding, campaign_seed: int) -> Dict[str, Any]:
    """The replayable JSON payload for one finding."""
    outcome = finding.outcome
    cell = outcome.cell
    payload: Dict[str, Any] = {
        "version": ARTIFACT_VERSION,
        "campaign_seed": campaign_seed,
        "schedule_index": cell.index,
        "backend": cell.backend,
        "policy": cell.policy,
        "seed": cell.seed,
        "violations": list(outcome.violations),
        "schedule": list(finding.reproducer_specs),
        "original_schedule": list(cell.schedule_specs),
    }
    if finding.minimized is not None:
        payload["minimizer"] = {
            "original_events": finding.minimized.original_events,
            "events": finding.minimized.events,
            "probes": finding.minimized.probes,
        }
    return payload


def load_artifact_schedule(path: str) -> ChaosSchedule:
    """Parse the ``schedule`` of a campaign artifact back through the
    grammar (the ``--chaos @artifact.json`` round trip)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        raise ConfigurationError(
            f"cannot load chaos artifact {path!r}: {error}"
        ) from None
    specs = payload.get("schedule")
    if not isinstance(specs, list) or not all(
        isinstance(spec, str) for spec in specs
    ):
        raise ConfigurationError(
            f"chaos artifact {path!r} has no 'schedule' list of specs"
        )
    return ChaosSchedule.from_specs(specs)


def run_campaign(
    config: CampaignConfig, jobs: Optional[int] = None
) -> CampaignReport:
    """Run one full campaign: draw, execute, minimize, report."""
    config.validate()
    backends = config.backends
    if not backends:
        from repro.shuffle.backends import backend_names

        backends = tuple(backend_names())
    # repro-lint: allow[DET002] campaign wall budget; never feeds simulated time
    started = time.monotonic()
    report = CampaignReport(config=config)
    root = RandomSource(config.seed)
    universe = ChaosUniverse.from_spec(fuzz_cluster_spec())
    baselines = fault_free_hashes(backends, config.policies, config.seed)
    matrix = [
        (backend, policy)
        for backend in backends
        for policy in config.policies
    ]

    cells: List[CampaignCell] = []
    for index in range(config.schedules):
        if config.max_wall_seconds is not None:
            # repro-lint: allow[DET002] campaign wall budget; never feeds simulated time
            if time.monotonic() - started > config.max_wall_seconds:
                report.stopped_early = True
                break
        child = root.child(f"schedule:{index}")
        events = child.stream("fuzz:events").randint(
            config.events_min, config.events_max
        )
        schedule = random_schedule(
            child,
            universe,
            GrammarConfig(events=events, window=config.window),
        )
        specs = tuple(schedule_to_specs(schedule))
        columns = (
            [matrix[index % len(matrix)]] if config.rotate else matrix
        )
        for backend, policy in columns:
            cells.append(CampaignCell(
                index=index,
                schedule_specs=specs,
                backend=backend,
                policy=policy,
                seed=config.seed,
                expected_hash=baselines[(backend, policy)],
                max_wall_seconds=config.cell_wall_seconds,
            ))
        report.schedules_drawn = index + 1

    from repro.experiments.runner import shard_map

    outcomes: List[CellOutcome] = shard_map(
        cells, _run_campaign_shard, jobs=jobs
    )

    for outcome in outcomes:
        report.cells_run += 1
        if outcome.job_failed:
            report.job_failures += 1
        backend_cov = report.kinds_by_backend.setdefault(
            outcome.cell.backend, {}
        )
        for kind in outcome.chaos_applied:
            report.kinds_applied[kind] = report.kinds_applied.get(kind, 0) + 1
            backend_cov[kind] = backend_cov.get(kind, 0) + 1
        for kind in outcome.chaos_skipped:
            report.kinds_skipped[kind] = report.kinds_skipped.get(kind, 0) + 1
        for name, value in outcome.recovery:
            report.recovery_totals[name] = (
                report.recovery_totals.get(name, 0.0) + value
            )
        if outcome.violations:
            report.findings.append(
                _minimize_finding(outcome, config)
            )

    # repro-lint: allow[DET002] campaign wall budget; never feeds simulated time
    report.wall_seconds = time.monotonic() - started
    return report


def _minimize_finding(
    outcome: CellOutcome, config: CampaignConfig
) -> Finding:
    """Shrink one violating cell to a reproducer and emit its artifact."""
    minimized: Optional[MinimizationResult] = None
    if config.minimize and outcome.cell.schedule_specs:
        cell = outcome.cell

        def still_fails(candidate: ChaosSchedule) -> bool:
            return bool(run_cell(cell, schedule=candidate).violations)

        minimized = minimize_schedule(
            ChaosSchedule.from_specs(cell.schedule_specs), still_fails
        )
    finding = Finding(outcome=outcome, minimized=minimized, artifact_path=None)
    if config.artifact_dir:
        os.makedirs(config.artifact_dir, exist_ok=True)
        cell = outcome.cell
        path = os.path.join(
            config.artifact_dir,
            f"finding-{cell.index:04d}-{cell.backend}-{cell.policy}.json",
        )
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                build_artifact(finding, config.seed),
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        finding = Finding(
            outcome=outcome, minimized=minimized, artifact_path=path
        )
    return finding
