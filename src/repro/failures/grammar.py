"""Weighted chaos-schedule grammar for the fuzz campaign.

:class:`ChaosUniverse` names everything a schedule may target in one
cluster — live hosts, datacenters, and directed WAN pairs — and
:func:`random_schedule` draws a seeded schedule from a weighted grammar
over every chaos kind (the seven pre-campaign kinds plus ``partition``).

Determinism contract: every draw comes from a dedicated named stream of
the supplied :class:`~repro.simulation.random_source.RandomSource`,
keyed by event index, so the same root seed always yields the same
schedule regardless of how many schedules were drawn before (callers
hand each schedule its own ``randomness.child(...)``).

Round-tripping: :func:`schedule_to_specs` serializes a schedule to the
compact CLI grammar with ``repr`` floats, and
``ChaosSchedule.from_specs`` parses it back bit-identically — the
campaign's replay artifacts are just these spec lists in JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError, NoRouteError
from repro.failures.chaos import ChaosEvent, ChaosSchedule

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.builder import ClusterSpec
    from repro.cluster.context import ClusterContext
    from repro.simulation.random_source import RandomSource

# Relative draw weights per chaos kind.  Link-level faults dominate
# because they exercise the retry/blacklist/breaker paths the campaign
# is hunting in; whole-DC outages are rare (and often partially skipped
# by the last-executor guard, wasting budget).
DEFAULT_WEIGHTS: Dict[str, float] = {
    "crash": 2.0,
    "host": 2.0,
    "outage": 0.5,
    "merger": 1.0,
    "shuffle_worker": 1.0,
    "blob_outage": 1.0,
    "degrade": 2.5,
    "partition": 2.5,
}

# Transient-fault durations are drawn from this range (seconds of
# simulated time).  Kept shorter than the schedule window so heals land
# while the job still runs.
_DURATION_RANGE = (0.5, 5.0)
_DEGRADE_FACTOR_RANGE = (0.05, 0.5)


@dataclass(frozen=True)
class ChaosUniverse:
    """Everything one cluster offers as a chaos target."""

    hosts: Tuple[str, ...]
    datacenters: Tuple[str, ...]
    wan_pairs: Tuple[Tuple[str, str], ...]

    def validate(self) -> None:
        if not self.hosts:
            raise ConfigurationError("chaos universe has no hosts")
        if not self.datacenters:
            raise ConfigurationError("chaos universe has no datacenters")

    @classmethod
    def from_spec(cls, spec: ClusterSpec) -> ChaosUniverse:
        """Derive the universe from a declarative cluster spec.

        Only worker hosts are candidates (the driver host runs no
        executor, so killing it is always a skipped event).
        """
        datacenters = tuple(spec.datacenters)
        pairs = tuple(
            (src, dst)
            for src in datacenters
            for dst in datacenters
            if src != dst
        )
        return cls(
            hosts=tuple(spec.worker_names()),
            datacenters=datacenters,
            wan_pairs=pairs,
        )

    @classmethod
    def from_context(cls, context: ClusterContext) -> ChaosUniverse:
        """Derive the universe from a live cluster context."""
        topology = context.topology
        datacenters = tuple(sorted(topology.datacenters))
        pairs: List[Tuple[str, str]] = []
        for src in datacenters:
            for dst in datacenters:
                if src == dst:
                    continue
                try:
                    topology.wan_link(src, dst)
                except NoRouteError:
                    continue
                pairs.append((src, dst))
        return cls(
            hosts=tuple(sorted(context.executors)),
            datacenters=datacenters,
            wan_pairs=tuple(pairs),
        )


@dataclass(frozen=True)
class GrammarConfig:
    """Tunables for :func:`random_schedule`."""

    events: int = 3
    window: Tuple[float, float] = (0.5, 4.0)
    weights: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_WEIGHTS)
    )

    def validate(self) -> None:
        if self.events < 0:
            raise ConfigurationError("grammar events must be >= 0")
        start, end = self.window
        if not 0 <= start <= end:
            raise ConfigurationError(
                f"grammar window must satisfy 0 <= start <= end, "
                f"got {self.window!r}"
            )
        for kind, weight in self.weights.items():
            if kind not in DEFAULT_WEIGHTS:
                known = ", ".join(sorted(DEFAULT_WEIGHTS))
                raise ConfigurationError(
                    f"unknown chaos kind {kind!r} in weights (one of: {known})"
                )
            if weight < 0:
                raise ConfigurationError(
                    f"weight for {kind!r} must be >= 0, got {weight!r}"
                )
        if not any(weight > 0 for weight in self.weights.values()):
            raise ConfigurationError("grammar needs at least one positive weight")


def _weighted_kind(
    randomness: RandomSource, index: int, weights: Mapping[str, float]
) -> str:
    """Draw a kind proportionally to its weight (deterministic order:
    kinds are scanned in sorted order, so dict insertion order of the
    caller's weights never leaks into the draw)."""
    items = [(kind, weight) for kind, weight in sorted(weights.items()) if weight > 0]
    total = sum(weight for _, weight in items)
    point = randomness.uniform(f"fuzz:kind:{index}", 0.0, total)
    running = 0.0
    for kind, weight in items:
        running += weight
        if point <= running:
            return kind
    return items[-1][0]


def random_schedule(
    randomness: RandomSource,
    universe: ChaosUniverse,
    config: Optional[GrammarConfig] = None,
) -> ChaosSchedule:
    """Draw one seeded schedule from the weighted grammar.

    A universe without WAN pairs (single-datacenter cluster) silently
    redistributes link-fault weight onto the remaining kinds.
    """
    universe.validate()
    config = config or GrammarConfig()
    config.validate()
    weights = dict(config.weights)
    if not universe.wan_pairs:
        weights.pop("degrade", None)
        weights.pop("partition", None)
        if not any(weight > 0 for weight in weights.values()):
            raise ConfigurationError(
                "grammar weights leave no drawable kind for a single-DC universe"
            )
    start, end = config.window
    hosts = tuple(sorted(universe.hosts))
    datacenters = tuple(sorted(universe.datacenters))
    wan_pairs = tuple(sorted(universe.wan_pairs))
    events: List[ChaosEvent] = []
    for index in range(config.events):
        kind = _weighted_kind(randomness, index, weights)
        at = randomness.uniform(f"fuzz:at:{index}", start, end)
        if kind in ("crash", "host"):
            target = randomness.choice(f"fuzz:host:{index}", hosts)
            events.append(ChaosEvent(at=at, kind=kind, target=target))
        elif kind in ("outage", "merger", "shuffle_worker"):
            target = randomness.choice(f"fuzz:dc:{index}", datacenters)
            events.append(ChaosEvent(at=at, kind=kind, target=target))
        elif kind == "blob_outage":
            target = randomness.choice(f"fuzz:dc:{index}", datacenters)
            duration = randomness.uniform(
                f"fuzz:duration:{index}", *_DURATION_RANGE
            )
            events.append(
                ChaosEvent(at=at, kind=kind, target=target, duration=duration)
            )
        elif kind == "degrade":
            src, dst = randomness.choice(f"fuzz:pair:{index}", wan_pairs)
            factor = randomness.uniform(
                f"fuzz:factor:{index}", *_DEGRADE_FACTOR_RANGE
            )
            duration = randomness.uniform(
                f"fuzz:duration:{index}", *_DURATION_RANGE
            )
            events.append(ChaosEvent(
                at=at,
                kind=kind,
                target=f"{src}->{dst}",
                factor=factor,
                duration=duration,
            ))
        else:  # partition
            src, dst = randomness.choice(f"fuzz:pair:{index}", wan_pairs)
            duration = randomness.uniform(
                f"fuzz:duration:{index}", *_DURATION_RANGE
            )
            events.append(ChaosEvent(
                at=at,
                kind=kind,
                target=f"{src}->{dst}",
                duration=duration,
            ))
    schedule = ChaosSchedule(tuple(events))
    schedule.validate()
    return schedule


def schedule_to_specs(schedule: ChaosSchedule) -> List[str]:
    """Serialize to the compact CLI grammar; bit-exact round trip via
    ``ChaosSchedule.from_specs``."""
    return [event.to_spec() for event in schedule.events]


# ---------------------------------------------------------------------------
# CLI token: ``random:<n>@<seed>``
# ---------------------------------------------------------------------------

def parse_random_token(token: str) -> Tuple[int, int]:
    """Parse a CLI ``random:<n>@<seed>`` chaos token.

    Returns ``(events, seed)``.  Malformed tokens raise
    :class:`ConfigurationError` naming the offending token, matching the
    rest of the chaos grammar's error style.
    """
    _, _, rest = token.partition(":")
    count_part, sep, seed_part = rest.partition("@")
    if not sep:
        raise ConfigurationError(
            f"bad chaos spec {token!r}: expected 'random:<n>@<seed>'"
        )
    try:
        events = int(count_part)
    except ValueError:
        raise ConfigurationError(
            f"bad chaos spec {token!r}: {count_part!r} is not an integer"
        ) from None
    try:
        seed = int(seed_part)
    except ValueError:
        raise ConfigurationError(
            f"bad chaos spec {token!r}: {seed_part!r} is not an integer"
        ) from None
    if events < 1:
        raise ConfigurationError(
            f"bad chaos spec {token!r}: event count must be >= 1"
        )
    return events, seed
