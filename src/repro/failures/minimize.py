"""Delta-debugging for failing chaos schedules (ddmin + value shrinking).

Given a schedule that makes some predicate fail (an oracle violation in
the campaign), :func:`minimize_schedule` reduces it in two phases:

1. **ddmin over events** — Zeller's classic delta debugging: repeatedly
   try dropping chunks (complements) of the event list, keeping any
   subset that still fails, until the result is 1-minimal at the tried
   granularity;
2. **value shrinking** — for each surviving event, shrink ``at`` and
   ``duration`` toward zero (try the floor outright, then halve) while
   the schedule keeps failing, so the reproducer fires as early and as
   briefly as the bug allows.

The predicate is called with candidate :class:`ChaosSchedule` objects
and must return ``True`` when the candidate *still fails*.  Every call
is counted; the result reports the probe budget spent.  Candidates that
fail schedule validation (e.g. a partition shrunk to zero duration) are
never passed to the predicate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Sequence

from repro.errors import ConfigurationError
from repro.failures.chaos import ChaosEvent, ChaosSchedule

# Stop halving a value once it drops below this (seconds); the floor
# candidate itself is tried separately.
_SHRINK_EPSILON = 1e-3

# Smallest duration a duration-carrying kind may shrink to (their
# validators require strictly positive durations).
_MIN_DURATION = 0.001


@dataclass(frozen=True)
class MinimizationResult:
    """Outcome of one minimization: the reproducer plus its cost."""

    schedule: ChaosSchedule
    original_events: int
    probes: int

    @property
    def events(self) -> int:
        return len(self.schedule.events)

    @property
    def events_removed(self) -> int:
        return self.original_events - self.events


class _Prober:
    """Wraps the failure predicate with validation and a probe counter."""

    def __init__(self, fails: Callable[[ChaosSchedule], bool]) -> None:
        self._fails = fails
        self.probes = 0

    def __call__(self, events: Sequence[ChaosEvent]) -> bool:
        candidate = ChaosSchedule(tuple(events))
        try:
            candidate.validate()
        except ConfigurationError:
            return False
        self.probes += 1
        return bool(self._fails(candidate))


def _split(events: Sequence[ChaosEvent], chunks: int) -> List[List[ChaosEvent]]:
    """Split into ``chunks`` contiguous, non-empty-where-possible parts."""
    result: List[List[ChaosEvent]] = []
    size, extra = divmod(len(events), chunks)
    start = 0
    for index in range(chunks):
        stop = start + size + (1 if index < extra else 0)
        if stop > start:
            result.append(list(events[start:stop]))
        start = stop
    return result


def _ddmin(events: List[ChaosEvent], prober: _Prober) -> List[ChaosEvent]:
    """Classic ddmin: 1-minimal failing subset of ``events``."""
    granularity = 2
    while len(events) >= 2:
        chunks = _split(events, granularity)
        reduced = False
        # Try each complement (drop one chunk) in order.
        for index in range(len(chunks)):
            complement = [
                event
                for position, chunk in enumerate(chunks)
                if position != index
                for event in chunk
            ]
            if prober(complement):
                events = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(granularity * 2, len(events))
    return events


def _try_shrink_field(
    events: List[ChaosEvent],
    index: int,
    fieldname: str,
    floor: float,
    prober: _Prober,
) -> List[ChaosEvent]:
    """Shrink one float field of ``events[index]`` toward ``floor``."""
    current = getattr(events[index], fieldname)
    if current <= floor:
        return events

    def with_value(value: float) -> List[ChaosEvent]:
        candidate = list(events)
        candidate[index] = replace(candidate[index], **{fieldname: value})
        return candidate

    # Greedy: the floor outright, then halve the gap while it still fails.
    candidate = with_value(floor)
    if prober(candidate):
        return candidate
    best = events
    value = current
    while value - floor > _SHRINK_EPSILON:
        value = floor + (value - floor) / 2.0
        candidate = with_value(value)
        if prober(candidate):
            best = candidate
            events = candidate
        else:
            break
    return best


def minimize_schedule(
    schedule: ChaosSchedule,
    fails: Callable[[ChaosSchedule], bool],
    shrink_values: bool = True,
) -> MinimizationResult:
    """Reduce a failing schedule to a minimal failing reproducer.

    ``fails(candidate)`` must return ``True`` while the candidate still
    triggers the original failure.  The input schedule itself is assumed
    failing (the campaign only minimizes confirmed violations); if it
    somehow is not, the original schedule comes back unchanged with one
    probe spent.
    """
    original = list(schedule.events)
    prober = _Prober(fails)
    if not prober(original):
        return MinimizationResult(
            schedule=schedule, original_events=len(original), probes=prober.probes
        )
    events = _ddmin(original, prober)
    if shrink_values:
        for index in range(len(events)):
            events = _try_shrink_field(events, index, "at", 0.0, prober)
            kind = events[index].kind
            if kind in ("blob_outage", "partition"):
                events = _try_shrink_field(
                    events, index, "duration", _MIN_DURATION, prober
                )
            elif kind == "degrade" and events[index].duration > 0:
                # A degrade's duration may legally reach zero (permanent
                # degrade) — often a *simpler* reproducer.
                events = _try_shrink_field(events, index, "duration", 0.0, prober)
    return MinimizationResult(
        schedule=ChaosSchedule(tuple(events)),
        original_events=len(original),
        probes=prober.probes,
    )
