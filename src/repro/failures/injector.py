"""FailureInjector: probabilistic reducer-attempt failures.

The paper motivates Push/Aggregate partly through failure recovery: a
failed reducer under fetch-based shuffle re-fetches its input over WAN
links, while under Push/Aggregate the input already sits in the
reducer's datacenter.  The injector decides, per attempt of a
shuffle-reading task, whether that attempt fails after doing its work;
the task runner then retries, re-reading shuffle input (and re-incurring
whatever network that costs under the active shuffle mechanism).

Draws are taken from a dedicated seeded stream, so enabling failures
never perturbs workload data or bandwidth jitter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.config import FailureConfig
from repro.simulation.random_source import RandomSource

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduler.task import Task


class FailureInjector:
    """Stateful per-task failure decisions."""

    def __init__(
        self,
        config: FailureConfig,
        randomness: RandomSource,
        straggler_model=None,
    ) -> None:
        self.config = config
        self.randomness = randomness
        self.straggler_model = straggler_model
        self._injected: Dict[str, int] = {}
        self.total_injected = 0
        # Attempts slowed down by the straggler model (surfaced in
        # RunResult / the CLI run summary alongside total_injected).
        self.stragglers_hit = 0

    def should_fail(self, task: Task) -> bool:
        """Decide whether this attempt of ``task`` fails.

        Respects ``max_injected_failures_per_task`` so a job always
        terminates, mirroring Spark's bounded task retries.
        """
        probability = self.config.reducer_failure_probability
        if probability <= 0:
            return False
        already = self._injected.get(task.task_id, 0)
        if already >= self.config.max_injected_failures_per_task:
            return False
        if not self.randomness.chance(f"failure:{task.task_id}:{already}", probability):
            return False
        self._injected[task.task_id] = already + 1
        self.total_injected += 1
        return True

    def straggler_slowdown(self, task: Task) -> float:
        """CPU slowdown multiplier for this attempt (1.0 = healthy)."""
        if self.straggler_model is None:
            return 1.0
        slowdown = self.straggler_model.slowdown(
            self.randomness, task.task_id, task.attempts
        )
        if slowdown > 1.0:
            self.stragglers_hit += 1
        return slowdown
