"""Health-aware degradation: blacklisting, circuit breakers, flow retry.

PR 3's recovery machinery handles every fault with the bluntest
instrument available — interrupt the attempt, resubmit the parent stage
from lineage.  This module adds the *graceful* middle of the failure
spectrum (the FuxiShuffle/Exoshuffle argument: recovery policy belongs
in the shuffle layer, layered below lineage):

* :class:`BlacklistTracker` — Spark-style excludeOnFailure.  Per-
  (executor, stage) and per-executor failure counts with configurable
  thresholds; an executor crossing the app-wide threshold is excluded
  for ``blacklist_timeout`` simulated seconds, and a datacenter most of
  whose executors are excluded is escalated whole.  Consulted by
  :class:`~repro.scheduler.task_scheduler.TaskScheduler` at placement.
* :class:`LinkHealthMonitor` — a per-directed-WAN-pair circuit breaker
  (closed -> open -> half-open with probe flows) driven by flow
  deadline misses, feeding a reduced capacity *hint* (the EWMA of
  observed rates on the sick path) into the fair-share fabric while the
  breaker is open.
* :func:`transfer_with_retry` — the flow-level retry loop used by the
  shuffle backends and the DFS input reader: race each flow against a
  per-flow deadline, cancel and re-issue on a miss (possibly from
  another replica, honoring ``dfs_replication``), with exponential
  backoff.  The final attempt runs without a deadline, so slowness
  alone never escalates; genuinely missing data raises
  ``FetchFailedError`` through the caller-supplied ``check`` hook.

Everything rides the deterministic simulation clock (all state
transitions are functions of ``sim.now``), and every byte an abandoned
flow delivered is reconciled exactly between the backend counters and
the traffic monitor (see ``NetworkFabric.cancel``), so the
counter-vs-monitor equality invariant holds under any chaos schedule
with retries enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.config import HealthConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.perf import HealthCounters
    from repro.network.fabric import NetworkFabric
    from repro.network.topology import Topology

# Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

# Admission verdicts.
ALLOW = "allow"
PROBE = "probe"
DEFER = "defer"


class BlacklistTracker:
    """excludeOnFailure: executor -> host -> datacenter escalation.

    One executor per host in this simulation, so the per-executor and
    per-host tiers coincide: repeated failures inside one stage exclude
    the (executor, stage) pair for that stage's lifetime; enough
    failures across stages exclude the executor app-wide until
    ``blacklist_timeout`` elapses; and a datacenter with
    ``datacenter_exclusion_threshold`` (or more) currently-excluded
    executors is treated as excluded whole.  Expiry is lazy — checked
    against ``sim.now`` on every query — so no background process runs.
    """

    def __init__(
        self,
        config: HealthConfig,
        counters: HealthCounters,
        topology: Topology,
        sim,
    ) -> None:
        self.config = config
        self.counters = counters
        self.topology = topology
        self.sim = sim
        self._stage_failures: Dict[Tuple[str, int], int] = {}
        self._stage_excluded: Set[Tuple[str, int]] = set()
        self._host_failures: Dict[str, int] = {}
        # host -> expiry time (simulated) of its app-wide exclusion.
        self._host_excluded: Dict[str, float] = {}
        # Datacenters whose escalation has been counted (reset when the
        # excluded-host count drops back below the threshold).
        self._escalated: Set[str] = set()

    @property
    def enabled(self) -> bool:
        return self.config.blacklist_enabled

    # ------------------------------------------------------------------
    # Failure observation
    # ------------------------------------------------------------------
    def note_task_failure(self, host: str, stage_id: int) -> None:
        """Record one failed task attempt of ``stage_id`` on ``host``."""
        if not self.enabled:
            return
        self._sweep()
        key = (host, stage_id)
        count = self._stage_failures.get(key, 0) + 1
        self._stage_failures[key] = count
        if (
            count >= self.config.max_task_failures_per_executor_stage
            and key not in self._stage_excluded
        ):
            self._stage_excluded.add(key)
            self.counters.stage_exclusions += 1
        total = self._host_failures.get(host, 0) + 1
        self._host_failures[host] = total
        if (
            total >= self.config.max_task_failures_per_executor
            and host not in self._host_excluded
        ):
            self._host_excluded[host] = (
                self.sim.now + self.config.blacklist_timeout
            )
            self._host_failures[host] = 0  # a fresh window after expiry
            self.counters.hosts_blacklisted += 1
            self._check_escalation(self.topology.datacenter_of(host))

    def exclude_host(self, host: str) -> None:
        """Directly exclude ``host`` app-wide (operator-fed exclusion)."""
        if not self.enabled:
            return
        self._sweep()
        if host not in self._host_excluded:
            self._host_excluded[host] = (
                self.sim.now + self.config.blacklist_timeout
            )
            self.counters.hosts_blacklisted += 1
            self._check_escalation(self.topology.datacenter_of(host))

    # ------------------------------------------------------------------
    # Queries (all lazily expire first)
    # ------------------------------------------------------------------
    def is_excluded(self, host: str, stage_id: Optional[int] = None) -> bool:
        if not self.enabled:
            return False
        self._sweep()
        if host in self._host_excluded:
            return True
        if self.is_datacenter_excluded(self.topology.datacenter_of(host)):
            return True
        return stage_id is not None and (host, stage_id) in self._stage_excluded

    def is_datacenter_excluded(self, datacenter: str) -> bool:
        if not self.enabled:
            return False
        self._sweep()
        excluded = sum(
            1
            for host in self._host_excluded
            if self.topology.datacenter_of(host) == datacenter
        )
        return excluded >= self.config.datacenter_exclusion_threshold

    def next_expiry(self) -> Optional[float]:
        """The earliest pending app-wide exclusion expiry, if any."""
        if not self._host_excluded:
            return None
        return min(self._host_excluded.values())

    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        now = self.sim.now
        expired = [
            host
            for host, expiry in self._host_excluded.items()
            if expiry <= now
        ]
        for host in expired:
            del self._host_excluded[host]
            self.counters.blacklist_evictions += 1
        if expired:
            # Escalations may unwind once members return to service.
            for datacenter in list(self._escalated):
                count = sum(
                    1
                    for host in self._host_excluded
                    if self.topology.datacenter_of(host) == datacenter
                )
                if count < self.config.datacenter_exclusion_threshold:
                    self._escalated.discard(datacenter)

    def _check_escalation(self, datacenter: str) -> None:
        count = sum(
            1
            for host in self._host_excluded
            if self.topology.datacenter_of(host) == datacenter
        )
        if (
            count >= self.config.datacenter_exclusion_threshold
            and datacenter not in self._escalated
        ):
            self._escalated.add(datacenter)
            self.counters.datacenters_blacklisted += 1


@dataclass
class _Breaker:
    """State of one directed WAN pair's circuit breaker."""

    src_dc: str
    dst_dc: str
    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    probes_in_flight: int = 0
    probe_successes: int = 0
    # EWMA of observed per-flow rates on this path (the capacity hint).
    rate_ewma: float = 0.0


class LinkHealthMonitor:
    """Per-WAN-pair circuit breakers with probe flows and rate hints.

    Keyed by the *directed* (src datacenter, dst datacenter) pair of a
    flow's endpoints.  ``record_failure`` (a flow deadline miss) trips
    the breaker after ``breaker_failure_threshold`` consecutive misses;
    while open, admission defers flows until ``breaker_cooldown``
    elapses, after which up to ``breaker_probe_flows`` concurrent probe
    flows are let through; ``breaker_probes_to_close`` probe successes
    close it again.  While open, the EWMA of the rates the cancelled
    flows actually achieved is fed to the fabric as a capacity hint on
    the pair's WAN link (cleared when the cooldown elapses, so probes
    measure the real path), modelling endpoint congestion control
    backing off harder than the fluid model alone.
    """

    _EWMA_ALPHA = 0.5

    def __init__(
        self,
        config: HealthConfig,
        counters: HealthCounters,
        topology: Topology,
        fabric: NetworkFabric,
        sim,
    ) -> None:
        self.config = config
        self.counters = counters
        self.topology = topology
        self.fabric = fabric
        self.sim = sim
        self._breakers: Dict[Tuple[str, str], _Breaker] = {}

    @property
    def enabled(self) -> bool:
        return self.config.breaker_enabled

    # ------------------------------------------------------------------
    def _breaker(self, src_dc: str, dst_dc: str) -> _Breaker:
        return self._breakers.setdefault(
            (src_dc, dst_dc), _Breaker(src_dc, dst_dc)
        )

    def _refresh(self, breaker: _Breaker) -> None:
        """Lazy open -> half-open transition once the cooldown elapsed."""
        if (
            breaker.state == OPEN
            and self.sim.now >= breaker.opened_at + self.config.breaker_cooldown
        ):
            breaker.state = HALF_OPEN
            breaker.probes_in_flight = 0
            breaker.probe_successes = 0
            # Probes must see the path's *real* capacity — the hint lives
            # only while the breaker is open, else it would make its own
            # probes miss their deadlines and re-open forever.
            self._set_hint(breaker.src_dc, breaker.dst_dc, None)

    def state(self, src_dc: str, dst_dc: str) -> str:
        breaker = self._breakers.get((src_dc, dst_dc))
        if breaker is None:
            return CLOSED
        self._refresh(breaker)
        return breaker.state

    def datacenter_quarantined(self, datacenter: str) -> bool:
        """True when any breaker *into* ``datacenter`` is open — the
        aggregation-destination health signal used at (re-)election."""
        if not self.enabled:
            return False
        return any(
            self.state(src, dst) == OPEN
            for (src, dst) in list(self._breakers)
            if dst == datacenter
        )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admission(self, src_dc: str, dst_dc: str) -> Tuple[str, float]:
        """May a flow ``src_dc -> dst_dc`` start now?

        Returns ``(verdict, wait)``: ``(ALLOW, 0)``, ``(PROBE, 0)`` —
        admitted as a half-open probe (already counted and reserved) —
        or ``(DEFER, seconds)`` with a suggested wait.
        """
        if not self.enabled or src_dc == dst_dc:
            return ALLOW, 0.0
        breaker = self._breakers.get((src_dc, dst_dc))
        if breaker is None:
            return ALLOW, 0.0
        self._refresh(breaker)
        if breaker.state == CLOSED:
            return ALLOW, 0.0
        if breaker.state == OPEN:
            wait = breaker.opened_at + self.config.breaker_cooldown - self.sim.now
            return DEFER, max(wait, 0.0)
        # Half-open: admit a bounded number of concurrent probes.
        if breaker.probes_in_flight < self.config.breaker_probe_flows:
            breaker.probes_in_flight += 1
            self.counters.breaker_probes += 1
            return PROBE, 0.0
        return DEFER, self.config.breaker_cooldown

    # ------------------------------------------------------------------
    # Outcomes
    # ------------------------------------------------------------------
    def record_failure(
        self,
        src_dc: str,
        dst_dc: str,
        probe: bool = False,
        observed_rate: float = 0.0,
    ) -> None:
        """A flow on the pair missed its deadline (was cancelled)."""
        if not self.enabled or src_dc == dst_dc:
            return
        breaker = self._breaker(src_dc, dst_dc)
        self._refresh(breaker)
        if observed_rate > 0:
            breaker.rate_ewma = (
                observed_rate
                if breaker.rate_ewma == 0
                else self._EWMA_ALPHA * observed_rate
                + (1 - self._EWMA_ALPHA) * breaker.rate_ewma
            )
        if probe:
            breaker.probes_in_flight = max(breaker.probes_in_flight - 1, 0)
        if breaker.state == HALF_OPEN or (
            breaker.state == CLOSED
            and breaker.consecutive_failures + 1
            >= self.config.breaker_failure_threshold
        ):
            self._trip(src_dc, dst_dc, breaker)
        elif breaker.state == CLOSED:
            breaker.consecutive_failures += 1

    def record_success(
        self,
        src_dc: str,
        dst_dc: str,
        probe: bool = False,
        observed_rate: float = 0.0,
    ) -> None:
        if not self.enabled or src_dc == dst_dc:
            return
        breaker = self._breakers.get((src_dc, dst_dc))
        if breaker is None:
            return
        self._refresh(breaker)
        if observed_rate > 0:
            breaker.rate_ewma = (
                self._EWMA_ALPHA * observed_rate
                + (1 - self._EWMA_ALPHA) * breaker.rate_ewma
            )
        if probe:
            breaker.probes_in_flight = max(breaker.probes_in_flight - 1, 0)
        if breaker.state == HALF_OPEN:
            breaker.probe_successes += 1
            if breaker.probe_successes >= self.config.breaker_probes_to_close:
                breaker.state = CLOSED
                breaker.consecutive_failures = 0
                self.counters.breaker_closes += 1
                self._set_hint(src_dc, dst_dc, None)
        else:
            breaker.consecutive_failures = 0

    # ------------------------------------------------------------------
    def _trip(self, src_dc: str, dst_dc: str, breaker: _Breaker) -> None:
        breaker.state = OPEN
        breaker.opened_at = self.sim.now
        breaker.consecutive_failures = 0
        breaker.probe_successes = 0
        self.counters.breaker_trips += 1
        if breaker.rate_ewma > 0:
            self._set_hint(src_dc, dst_dc, breaker.rate_ewma)

    def _set_hint(
        self, src_dc: str, dst_dc: str, rate: Optional[float]
    ) -> None:
        """Apply (or clear) the capacity hint on the pair's WAN link."""
        try:
            link = self.topology.wan_link(src_dc, dst_dc)
        except Exception:  # noqa: BLE001 - pair has no direct WAN link
            return
        if rate is None:
            self.fabric.clear_capacity_hint(link)
        else:
            self.fabric.set_capacity_hint(link, rate)


# ---------------------------------------------------------------------------
# Flow-level retry
# ---------------------------------------------------------------------------
@dataclass
class _RetryScope:
    """Per-call bookkeeping shared by the retry loop's helpers."""

    sources: List[str]
    deferrals: int = 0
    probe: bool = False
    issued: List[str] = field(default_factory=list)


def flow_deadline(context, src_host: str, dst_host: str, size_bytes: float) -> float:
    """The per-flow deadline: configured slack plus a multiple of the
    ideal transfer time at the route's *base* (undegraded) capacities —
    so fair-share contention within the multiplier passes, while a deep
    chaos degrade (factor far below ``1 / multiplier``) misses."""
    config = context.config.health
    route = context.topology.route(src_host, dst_host)
    latency = sum(link.latency for link in route)
    ideal = latency
    if route and size_bytes > 0:
        bottleneck = min(link.base_capacity for link in route)
        if bottleneck > 0:
            ideal += size_bytes / bottleneck
    return config.flow_deadline_base + config.flow_deadline_multiplier * ideal


def transfer_with_retry(
    context,
    sources: List[str],
    dst_host: str,
    size_bytes: float,
    tag: str,
    tenant: str = "",
    on_issue: Optional[Callable[[str], None]] = None,
    on_cancel: Optional[Callable[[str, float], None]] = None,
    check: Optional[Callable[[], None]] = None,
):
    """Deliver ``size_bytes`` to ``dst_host`` from one of ``sources``.

    A simulation sub-process (generator).  Each attempt races a flow
    against its deadline; a miss cancels the flow (the fabric records
    the bytes it actually delivered, see ``NetworkFabric.cancel``),
    waits an exponentially growing backoff, and re-issues — rotating
    over ``sources``, so a replica on a healthy path is tried before
    the sick one is retried.  After ``max_flow_retries`` misses the
    final flow runs without a deadline: slowness alone never fails a
    read.  ``check`` runs before every re-issue and should raise
    (``FetchFailedError``) when the data itself is gone — that is the
    escalation to lineage recovery.

    ``on_issue(src)`` / ``on_cancel(src, undelivered)`` let the caller
    keep its byte counters in lockstep with the traffic monitor: the
    caller accounts the full size per issued flow and refunds exactly
    the undelivered remainder per cancelled one.

    Returns the source host that completed the transfer.
    """
    config = context.config.health
    health = context.link_health
    counters = context.health
    sim = context.sim
    fabric = context.fabric
    topology = context.topology
    dst_dc = topology.datacenter_of(dst_host)
    scope = _RetryScope(sources=list(sources))
    attempt = 0
    while True:
        # Pick a source, preferring paths the breaker admits; rotation
        # starts at the attempt index so a retry naturally moves to the
        # next replica before revisiting the one that just missed.
        start = attempt % len(scope.sources)
        ordered = scope.sources[start:] + scope.sources[:start]
        chosen: Optional[str] = None
        scope.probe = False
        best_wait = None
        for candidate in ordered:
            verdict, wait = health.admission(
                topology.datacenter_of(candidate), dst_dc
            )
            if verdict == ALLOW:
                chosen = candidate
                break
            if verdict == PROBE:
                chosen = candidate
                scope.probe = True
                break
            best_wait = wait if best_wait is None else min(best_wait, wait)
        if chosen is None:
            # Every path is open-circuited.  Wait for the earliest
            # cooldown, bounded: a capped number of deferrals, then
            # force the flow through (progress beats protection).
            if scope.deferrals < config.max_flow_retries:
                scope.deferrals += 1
                yield sim.timeout(max(best_wait or 0.0, 1e-3))
                if check is not None:
                    check()
                continue
            chosen = ordered[0]
        src_dc = topology.datacenter_of(chosen)
        started = sim.now
        flow = fabric.transfer(
            chosen, dst_host, size_bytes, tag=tag, tenant=tenant
        )
        if on_issue is not None:
            on_issue(chosen)
        scope.issued.append(chosen)
        if attempt >= config.max_flow_retries:
            # Final attempt: no deadline.
            yield flow
            elapsed = max(sim.now - started, 1e-9)
            health.record_success(
                src_dc, dst_dc, probe=scope.probe,
                observed_rate=size_bytes / elapsed,
            )
            return chosen
        deadline = flow_deadline(context, chosen, dst_host, size_bytes)
        timer = sim.timeout(deadline, name=f"flow-deadline@{sim.now:.3f}")
        yield sim.any_of([flow, timer])
        if flow.triggered:
            elapsed = max(sim.now - started, 1e-9)
            health.record_success(
                src_dc, dst_dc, probe=scope.probe,
                observed_rate=size_bytes / elapsed,
            )
            return chosen
        # Deadline miss: cancel, refund, report, back off, re-issue.
        observed_rate = fabric.current_rate(flow)
        delivered = fabric.cancel(flow)
        if delivered is None:
            # The flow departed between the deadline firing and now
            # (only its propagation-latency tail remains): await it.
            yield flow
            elapsed = max(sim.now - started, 1e-9)
            health.record_success(
                src_dc, dst_dc, probe=scope.probe,
                observed_rate=size_bytes / elapsed,
            )
            return chosen
        if on_cancel is not None:
            on_cancel(chosen, size_bytes - delivered)
        counters.flow_retries += 1
        counters.retry_wasted_bytes += delivered
        health.record_failure(
            src_dc, dst_dc, probe=scope.probe, observed_rate=observed_rate
        )
        backoff = config.flow_retry_backoff * (2 ** attempt)
        if backoff > 0:
            yield sim.timeout(backoff)
        if check is not None:
            check()
        attempt += 1
