"""Failure and straggler injection (paper Fig. 2 / §II-B)."""

from repro.failures.injector import FailureInjector
from repro.failures.stragglers import StragglerModel

__all__ = ["FailureInjector", "StragglerModel"]
