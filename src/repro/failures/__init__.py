"""Failure, straggler, and chaos injection (paper Fig. 2 / §II-B)."""

from repro.failures.chaos import ChaosEvent, ChaosInjector, ChaosSchedule
from repro.failures.health import (
    BlacklistTracker,
    LinkHealthMonitor,
    flow_deadline,
    transfer_with_retry,
)
from repro.failures.injector import FailureInjector
from repro.failures.stragglers import StragglerModel

__all__ = [
    "BlacklistTracker",
    "ChaosEvent",
    "ChaosInjector",
    "ChaosSchedule",
    "FailureInjector",
    "LinkHealthMonitor",
    "StragglerModel",
    "flow_deadline",
    "transfer_with_retry",
]
