"""Failure, straggler, and chaos injection (paper Fig. 2 / §II-B)."""

from repro.failures.campaign import (
    CampaignConfig,
    CampaignReport,
    run_campaign,
)
from repro.failures.chaos import ChaosEvent, ChaosInjector, ChaosSchedule
from repro.failures.grammar import (
    ChaosUniverse,
    GrammarConfig,
    random_schedule,
    schedule_to_specs,
)
from repro.failures.health import (
    BlacklistTracker,
    LinkHealthMonitor,
    flow_deadline,
    transfer_with_retry,
)
from repro.failures.injector import FailureInjector
from repro.failures.minimize import MinimizationResult, minimize_schedule
from repro.failures.stragglers import StragglerModel

__all__ = [
    "BlacklistTracker",
    "CampaignConfig",
    "CampaignReport",
    "ChaosEvent",
    "ChaosInjector",
    "ChaosSchedule",
    "ChaosUniverse",
    "FailureInjector",
    "GrammarConfig",
    "LinkHealthMonitor",
    "MinimizationResult",
    "StragglerModel",
    "flow_deadline",
    "minimize_schedule",
    "random_schedule",
    "run_campaign",
    "schedule_to_specs",
    "transfer_with_retry",
]
