"""Failure, straggler, and chaos injection (paper Fig. 2 / §II-B)."""

from repro.failures.chaos import ChaosEvent, ChaosInjector, ChaosSchedule
from repro.failures.injector import FailureInjector
from repro.failures.stragglers import StragglerModel

__all__ = [
    "ChaosEvent",
    "ChaosInjector",
    "ChaosSchedule",
    "FailureInjector",
    "StragglerModel",
]
