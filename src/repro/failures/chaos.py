"""ChaosSchedule: deterministic, timed fault injection for the kernel.

The ``repro.failures`` layer injects per-*attempt* reducer failures; a
chaos schedule injects *infrastructure* faults — the events the paper's
robustness argument (Fig. 2) is actually about — at fixed simulated
times, so every backend can be subjected to the **identical** fault
sequence:

* ``crash``   — an executor process crashes: its slots disappear and
  running attempts are relaunched elsewhere, but blocks stored on the
  host survive (Spark with the external shuffle service enabled);
* ``host``    — a whole worker host is lost: executor *and* storage
  (shuffle output, staged partitions, cache, DFS replicas).  Consumers
  hit FetchFailed and the DAG scheduler resubmits parents from lineage;
* ``outage``  — every live worker of one datacenter is lost (``host``
  applied DC-wide);
* ``merger``  — the datacenter's *merger host* is lost: the host the
  pre-merge backend consolidated onto (resolved at fire time via the
  backend's ``merger_host`` hook); for backends without mergers it
  falls back to the live host storing the most map-output bytes, so
  the same schedule stays meaningful across backends;
* ``shuffle_worker`` — the datacenter's busiest *dedicated shuffle
  worker* is lost (resolved at fire time via the backend's
  ``shuffle_worker_host`` hook); for backends without a worker pool it
  falls back to the live host storing the most map-output bytes, so
  the same schedule stays meaningful across backends;
* ``blob_outage`` — the datacenter's regional object store goes dark
  for ``duration`` seconds: blob requests inside the window retry
  (transient errors) until it closes.  Only meaningful for the
  ``blob`` backend; skipped-and-recorded elsewhere;
* ``degrade`` — one WAN link's capacity is multiplied by ``factor``;
  with a ``duration`` the base capacity is restored afterwards (a
  *flap* is a deep degrade with a short duration).  The factor is a
  multiplicative overlay on the link's *nominal* capacity, so
  ``BandwidthJitter`` and chaos compose: a jitter resample moves the
  nominal capacity and the degrade keeps scaling it — chaos schedules
  run fine with jitter enabled;
* ``partition`` — an asymmetric WAN partition: the *directed* link
  ``src->dst`` drops out of the fabric (capacity pinned to the
  partition floor) for ``duration`` seconds while the reverse link
  keeps working.  In-flight flows stall past their health deadline and
  take the flow-retry / blacklist / re-election paths; the heal
  restores whatever capacity jitter/degrade currently prescribe.

Events are plain data (time, kind, target), validated up front, fired
by a :class:`ChaosInjector` process the cluster context spawns at
construction.  The schedule is finite, so ``Simulator.run()`` still
terminates.  Compact CLI syntax (``--chaos crash:dc-a-w0@5``)::

    crash:<host>@<t>            outage:<dc>@<t>
    host:<host>@<t>             merger:<dc>@<t>
    shuffle_worker:<dc>@<t>     blob_outage:<dc>@<t>[+<duration>]
    degrade:<src>-><dst>@<t>x<factor>[+<duration>]
    partition:<src>-><dst>@<t>[+<duration>]
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, NoRouteError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.context import ClusterContext
    from repro.network.topology import Link
    from repro.simulation.random_source import RandomSource

KINDS = (
    "crash", "host", "outage", "merger",
    "shuffle_worker", "blob_outage", "degrade", "partition",
)

# A blob_outage with no explicit ``+<duration>`` lasts this long.
DEFAULT_BLOB_OUTAGE_DURATION = 5.0

# A partition with no explicit ``+<duration>`` heals after this long.
# Partitions are never permanent: a directed link that stays at the
# partition floor forever would wedge any flow whose final (deadline-
# free) retry lands on it.
DEFAULT_PARTITION_DURATION = 30.0

# Link capacities must stay positive; a "down" link is one at this floor.
MIN_LINK_CAPACITY = 1.0


@dataclass(frozen=True)
class ChaosEvent:
    """One timed fault: fire ``kind`` against ``target`` at time ``at``."""

    at: float
    kind: str
    target: str
    # degrade only: capacity multiplier and optional restore delay.
    factor: float = 0.1
    duration: float = 0.0

    def validate(self) -> None:
        if self.kind not in KINDS:
            known = ", ".join(KINDS)
            raise ConfigurationError(
                f"unknown chaos kind {self.kind!r} (one of: {known})"
            )
        if not math.isfinite(self.at) or self.at < 0:
            raise ConfigurationError(
                f"chaos event time must be finite and >= 0, got {self.at!r}"
            )
        if not self.target:
            raise ConfigurationError("chaos event needs a target")
        if self.kind == "degrade":
            if not (math.isfinite(self.factor) and 0 < self.factor <= 1):
                raise ConfigurationError(
                    f"degrade factor must be in (0, 1], got {self.factor!r}"
                )
            if not math.isfinite(self.duration) or self.duration < 0:
                raise ConfigurationError(
                    "degrade duration must be finite and >= 0, "
                    f"got {self.duration!r}"
                )
            if "->" not in self.target:
                raise ConfigurationError(
                    "degrade target must be '<src_dc>-><dst_dc>'"
                )
        if self.kind == "blob_outage":
            if not math.isfinite(self.duration) or self.duration <= 0:
                raise ConfigurationError(
                    "blob_outage duration must be finite and > 0, "
                    f"got {self.duration!r}"
                )
        if self.kind == "partition":
            if "->" not in self.target:
                raise ConfigurationError(
                    "partition target must be '<src_dc>-><dst_dc>'"
                )
            if not math.isfinite(self.duration) or self.duration <= 0:
                raise ConfigurationError(
                    "partition duration must be finite and > 0, "
                    f"got {self.duration!r}"
                )

    @property
    def link_endpoints(self) -> Tuple[str, str]:
        src, _, dst = self.target.partition("->")
        return src, dst

    def to_spec(self) -> str:
        """The compact CLI spec that parses back to exactly this event.

        Numbers are emitted with ``repr`` (shortest round-tripping
        form), so ``ChaosSchedule.parse_event(event.to_spec()) == event``
        holds bit-for-bit — campaign artifacts lean on this for
        byte-identical replay.
        """
        base = f"{self.kind}:{self.target}@{_format_number(self.at)}"
        if self.kind == "degrade":
            spec = f"{base}x{_format_number(self.factor)}"
            # Duration 0 means permanent; the parser defaults to it, so
            # omitting the suffix keeps the canonical form stable.
            if self.duration:
                spec += f"+{_format_number(self.duration)}"
            return spec
        if self.kind in ("blob_outage", "partition"):
            return f"{base}+{_format_number(self.duration)}"
        return base


@dataclass(frozen=True)
class ChaosSchedule:
    """An immutable, validated sequence of :class:`ChaosEvent`."""

    events: Tuple[ChaosEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def validate(self) -> None:
        for event in self.events:
            event.validate()

    def sorted_events(self) -> List[ChaosEvent]:
        """Events in firing order; ties break by declaration order
        (``sorted`` is stable)."""
        return sorted(self.events, key=lambda event: event.at)

    def __bool__(self) -> bool:
        return bool(self.events)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def parse_event(spec: str) -> ChaosEvent:
        """Parse one compact CLI spec (see module docstring)."""
        kind, sep, rest = spec.partition(":")
        if not sep:
            raise ConfigurationError(
                f"bad chaos spec {spec!r}: expected '<kind>:<target>@<t>'"
            )
        target, sep, when = rest.rpartition("@")
        if not sep:
            raise ConfigurationError(
                f"bad chaos spec {spec!r}: missing '@<time>'"
            )
        factor, duration = 0.1, 0.0
        if kind == "degrade" and "x" in when:
            when, _, factor_part = when.partition("x")
            if "+" in factor_part:
                factor_part, _, duration_part = factor_part.partition("+")
                duration = _parse_number(spec, duration_part)
            factor = _parse_number(spec, factor_part)
        if kind == "blob_outage":
            duration = DEFAULT_BLOB_OUTAGE_DURATION
            if "+" in when:
                when, _, duration_part = when.partition("+")
                duration = _parse_number(spec, duration_part)
        if kind == "partition":
            duration = DEFAULT_PARTITION_DURATION
            if "+" in when:
                when, _, duration_part = when.partition("+")
                duration = _parse_number(spec, duration_part)
        event = ChaosEvent(
            at=_parse_number(spec, when),
            kind=kind,
            target=target,
            factor=factor,
            duration=duration,
        )
        event.validate()
        return event

    @classmethod
    def from_specs(cls, specs: Sequence[str]) -> ChaosSchedule:
        return cls(tuple(cls.parse_event(spec) for spec in specs))

    @classmethod
    def random(
        cls,
        randomness: RandomSource,
        hosts: Sequence[str],
        wan_pairs: Sequence[Tuple[str, str]] = (),
        crashes: int = 1,
        degradations: int = 0,
        window: Tuple[float, float] = (1.0, 30.0),
    ) -> ChaosSchedule:
        """A seeded random schedule over the given hosts/links.

        Draws come from dedicated streams of ``randomness``, so the same
        root seed always produces the same schedule — runs comparing
        backends under "random" chaos stay paired.
        """
        if crashes > 0 and not hosts:
            raise ConfigurationError("random chaos needs candidate hosts")
        if degradations > 0 and not wan_pairs:
            raise ConfigurationError("random chaos needs WAN pairs")
        start, end = window
        events: List[ChaosEvent] = []
        for index in range(crashes):
            events.append(ChaosEvent(
                at=randomness.uniform(f"chaos:crash:{index}", start, end),
                kind="crash",
                target=randomness.choice(
                    f"chaos:crash-host:{index}", sorted(hosts)
                ),
            ))
        for index in range(degradations):
            src, dst = randomness.choice(
                f"chaos:degrade-link:{index}", sorted(wan_pairs)
            )
            events.append(ChaosEvent(
                at=randomness.uniform(f"chaos:degrade:{index}", start, end),
                kind="degrade",
                target=f"{src}->{dst}",
                factor=randomness.uniform(
                    f"chaos:degrade-factor:{index}", 0.05, 0.5
                ),
                duration=randomness.uniform(
                    f"chaos:degrade-duration:{index}", 1.0, 10.0
                ),
            ))
        schedule = cls(tuple(events))
        schedule.validate()
        return schedule


def _parse_number(spec: str, text: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ConfigurationError(
            f"bad chaos spec {spec!r}: {text!r} is not a number"
        ) from None


def _format_number(value: float) -> str:
    # repr() is the shortest string that floats back bit-exactly; small
    # simulated times never reach the 1e16+ range where repr grows a
    # '+' that would collide with the duration separator.
    return repr(float(value))


@dataclass
class FiredEvent:
    """Audit record of one applied (or skipped) chaos event."""

    event: ChaosEvent
    at: float
    applied: bool
    detail: str = ""


class ChaosInjector:
    """Fires a :class:`ChaosSchedule` into one cluster context.

    Spawned by the context at construction; each event resolves its
    target against *live* cluster state at fire time (a merger host is
    whatever host the backend actually merged onto).  Events whose
    target is already gone — or whose application would leave the
    cluster unable to finish any job (last live executor) — are skipped
    and recorded, never raised: chaos must not crash the experiment
    harness itself.
    """

    def __init__(self, context: ClusterContext, schedule: ChaosSchedule) -> None:
        schedule.validate()
        self.context = context
        self.schedule = schedule
        self.fired: List[FiredEvent] = []
        self._process = None

    # ------------------------------------------------------------------
    @property
    def events_applied(self) -> int:
        return sum(1 for record in self.fired if record.applied)

    def start(self) -> None:
        if self._process is None and self.schedule:
            self._process = self.context.sim.spawn(
                self._run(), name="chaos:injector"
            )

    def _run(self):
        sim = self.context.sim
        for event in self.schedule.sorted_events():
            if event.at > sim.now:
                yield sim.timeout(event.at - sim.now)
            self._fire(event)

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def _fire(self, event: ChaosEvent) -> None:
        handler = getattr(self, f"_apply_{event.kind}")
        try:
            detail = handler(event)
        except (ConfigurationError, NoRouteError) as error:
            self.fired.append(
                FiredEvent(event, self.context.sim.now, False, str(error))
            )
            return
        self.fired.append(
            FiredEvent(event, self.context.sim.now, True, detail)
        )

    def _apply_crash(self, event: ChaosEvent) -> str:
        relaunched = self.context.crash_executor(event.target)
        return f"relaunched {relaunched} attempt(s)"

    def _apply_host(self, event: ChaosEvent) -> str:
        report = self.context.fail_host(event.target)
        return f"lost {report['map_outputs_lost']} map output(s)"

    def _apply_outage(self, event: ChaosEvent) -> str:
        context = self.context
        doomed = [
            host for host in context.topology.hosts_in(event.target)
            if host in context.executors
        ]
        if not doomed:
            raise ConfigurationError(
                f"no live workers in datacenter {event.target!r}"
            )
        lost = 0
        for host in doomed:
            try:
                context.fail_host(host)
                lost += 1
            except ConfigurationError:
                break  # refused to take the last live executor
        if lost == 0:
            raise ConfigurationError(
                f"outage of {event.target!r} would leave no executors"
            )
        context.recovery.datacenter_outages += 1
        return f"took down {lost}/{len(doomed)} host(s)"

    def _apply_merger(self, event: ChaosEvent) -> str:
        context = self.context
        merger = self._resolve_merger(event.target)
        if merger is None:
            raise ConfigurationError(
                f"no merger candidate alive in {event.target!r}"
            )
        context.fail_host(merger)
        context.recovery.merger_losses += 1
        return f"lost merger host {merger}"

    def _resolve_merger(self, datacenter: str) -> Optional[str]:
        """The backend's merger for ``datacenter``; for backends without
        mergers, the live host storing the most map-output bytes (tie →
        lexicographically first), so the schedule ports across backends."""
        context = self.context
        merger = context.shuffle_service.merger_host(datacenter)
        if merger is not None and merger in context.executors:
            return merger
        return self._busiest_store_host(datacenter)

    def _apply_shuffle_worker(self, event: ChaosEvent) -> str:
        context = self.context
        self._require_datacenter(event.target)
        worker = self._resolve_shuffle_worker(event.target)
        if worker is None:
            raise ConfigurationError(
                f"no shuffle-worker candidate alive in {event.target!r}"
            )
        context.fail_host(worker)
        context.recovery.shuffle_worker_losses += 1
        return f"lost shuffle worker {worker}"

    def _resolve_shuffle_worker(self, datacenter: str) -> Optional[str]:
        """The backend's busiest dedicated shuffle worker in
        ``datacenter``; for backends without a worker pool, the live host
        storing the most map-output bytes, so the schedule ports across
        backends."""
        context = self.context
        worker = context.shuffle_service.shuffle_worker_host(datacenter)
        if worker is not None and worker in context.executors:
            return worker
        return self._busiest_store_host(datacenter)

    def _busiest_store_host(self, datacenter: str) -> Optional[str]:
        context = self.context
        candidates = [
            host for host in sorted(context.topology.hosts_in(datacenter))
            if host in context.executors
        ]
        if not candidates:
            return None
        by_host = context.shuffle_store.bytes_by_host()
        return min(
            candidates, key=lambda host: (-by_host.get(host, 0.0), host)
        )

    def _require_datacenter(self, name: str) -> None:
        if name not in self.context.topology.datacenters:
            raise ConfigurationError(f"unknown datacenter {name!r}")

    def _apply_blob_outage(self, event: ChaosEvent) -> str:
        context = self.context
        self._require_datacenter(event.target)
        store = context.shuffle_service.blob_store()
        if store is None:
            raise ConfigurationError(
                "backend has no blob store; blob_outage skipped"
            )
        until = context.sim.now + event.duration
        store.open_outage(event.target, until)
        context.recovery.blob_outages += 1
        return f"blob store {event.target} dark until t={until:g}"

    def _apply_degrade(self, event: ChaosEvent) -> str:
        context = self.context
        src, dst = event.link_endpoints
        link = context.topology.wan_link(src, dst)
        # Multiplicative overlay, not an absolute capacity: on jittered
        # links the resampler keeps moving the nominal capacity, and a
        # plain set_capacity would be overwritten at the next tick.
        factor = max(
            event.factor, MIN_LINK_CAPACITY / link.base_capacity
        )
        context.fabric.set_link_degrade(link, factor)
        context.recovery.wan_degradations += 1
        if event.duration > 0:
            context.sim.spawn(
                self._restore_later(link, event.duration),
                name=f"chaos:restore:{link.name}",
            )
        return f"{link.name} capacity x{factor:g} -> {link.capacity:.0f} B/s"

    def _restore_later(self, link: Link, delay: float):
        yield self.context.sim.timeout(delay)
        self.context.fabric.set_link_degrade(link, 1.0)

    def _apply_partition(self, event: ChaosEvent) -> str:
        context = self.context
        src, dst = event.link_endpoints
        link = context.topology.wan_link(src, dst)
        if link.partitioned:
            raise ConfigurationError(
                f"link {link.name} is already partitioned"
            )
        context.fabric.set_link_partition(link, True)
        context.recovery.wan_partitions += 1
        context.sim.spawn(
            self._heal_later(link, event.duration),
            name=f"chaos:heal:{link.name}",
        )
        until = context.sim.now + event.duration
        return f"{link.name} partitioned until t={until:g}"

    def _heal_later(self, link: Link, delay: float):
        yield self.context.sim.timeout(delay)
        self.context.fabric.set_link_partition(link, False)
