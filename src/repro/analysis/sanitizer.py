"""Runtime invariant sanitizer (``REPRO_SANITIZE=1`` / ``--sanitize``).

The static rules catch convention violations the AST can see; this
module catches the dynamic ones — the same division of labour as a race
detector next to a linter.  When enabled, hooks in the fabric, kernel,
and DAG scheduler assert, *while the simulation runs*:

* **capacity conservation** — after every fair-share solve, the summed
  rates of the flows sharing each link stay within its (hinted)
  capacity plus ``1e-9`` relative slack;
* **sane rates** — no NaN, no negative, no infinite flow rate, and no
  negative ``remaining`` bytes;
* **time monotonicity** — the kernel's batch clock never goes backwards
  and never goes NaN;
* **ledger==monitor reconciliation** — at every stage boundary, the
  admission-time :class:`~repro.metrics.tenants.TenantLedger` charges of
  all *landed* flows equal the completion-time
  :class:`~repro.network.traffic_monitor.TrafficMonitor` records
  bit-for-bit, per tenant, for both total and WAN bytes.

Checks never mutate simulation state, so a sanitized run is
byte-identical to an unsanitized one (asserted in CI).  Cost when off is
one attribute load + ``is None`` test per hook site: components capture
:func:`get_sanitizer` — ``None`` unless enabled — at construction.

Enable via the environment (``REPRO_SANITIZE=1``), the CLI
(``--sanitize``), or programmatically with the :func:`sanitized` context
manager (which installs a fresh :class:`Sanitizer` and hands it back so
tests can inspect its check counters).
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from math import fsum
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.tenants import TenantLedger
    from repro.network.traffic_monitor import TrafficMonitor

# Relative slack for capacity conservation: the solvers guarantee 1e-9
# relative accuracy (the property-tested drive-equivalence bound), so
# the sanitizer allows exactly that.
_CAPACITY_SLACK = 1e-9

_ENV_FLAG = "REPRO_SANITIZE"
_TRUTHY = frozenset({"1", "true", "yes", "on"})


class InvariantViolation(AssertionError):
    """A runtime invariant the simulation must uphold was broken."""


class Sanitizer:
    """Stateless invariant checks plus per-invariant check counters."""

    __slots__ = ("checks",)

    def __init__(self) -> None:
        # invariant name -> number of times it was checked (not failed);
        # tests assert these move so a silently-dead hook cannot pass.
        self.checks: Dict[str, int] = {
            "rates": 0,
            "capacity": 0,
            "time": 0,
            "ledger": 0,
        }

    # ------------------------------------------------------------------
    # Fabric: rates and capacity conservation
    # ------------------------------------------------------------------
    def check_rates(
        self,
        rates: Mapping[int, float],
        routes: Mapping[int, Sequence[str]],
        capacities: Mapping[str, float],
    ) -> None:
        """Validate one solve: finite non-negative rates, per-link sums
        within capacity (plus 1e-9 relative slack)."""
        self.checks["rates"] += 1
        for flow_id, rate in rates.items():
            if math.isnan(rate):
                raise InvariantViolation(f"flow {flow_id}: NaN rate")
            if rate < 0:
                raise InvariantViolation(
                    f"flow {flow_id}: negative rate {rate!r}"
                )
            if math.isinf(rate):
                raise InvariantViolation(
                    f"flow {flow_id}: infinite rate"
                )
        self.checks["capacity"] += 1
        loads: Dict[str, float] = {}
        for flow_id, route in routes.items():
            rate = rates.get(flow_id, 0.0)
            for link_name in route:
                loads[link_name] = loads.get(link_name, 0.0) + rate
        for link_name, load in loads.items():
            capacity = capacities.get(link_name)
            if capacity is None or math.isinf(capacity):
                continue
            limit = capacity * (1.0 + _CAPACITY_SLACK) + _CAPACITY_SLACK
            if load > limit:
                raise InvariantViolation(
                    f"link {link_name}: flow rates sum to {load!r} "
                    f"> capacity {capacity!r} (+1e-9 slack)"
                )

    def check_remaining(self, flow_id: int, remaining: float) -> None:
        """A flow's outstanding bytes must stay finite and non-negative."""
        self.checks["rates"] += 1
        if math.isnan(remaining) or remaining < 0 or math.isinf(remaining):
            raise InvariantViolation(
                f"flow {flow_id}: invalid remaining bytes {remaining!r}"
            )

    # ------------------------------------------------------------------
    # Kernel: time monotonicity
    # ------------------------------------------------------------------
    def check_time(self, now: float, batch_time: float) -> None:
        """The agenda clock must advance monotonically and stay a number.

        ``now`` is the previous batch's time, so ``batch_time >= now``
        is the full per-simulator monotonicity invariant (one sanitizer
        may serve several sequential Simulators; each carries its own
        clock).
        """
        self.checks["time"] += 1
        if math.isnan(batch_time):
            raise InvariantViolation("agenda produced a NaN timestamp")
        if batch_time < now:
            raise InvariantViolation(
                f"time went backwards: batch at {batch_time!r} < now {now!r}"
            )

    # ------------------------------------------------------------------
    # Ledger: admission charges == completion records, bit for bit
    # ------------------------------------------------------------------
    def check_ledger(
        self,
        ledger: TenantLedger,
        monitor: TrafficMonitor,
        active_flow_ids: Iterator[int],
    ) -> None:
        """Settled ledger charges must equal monitor records exactly.

        ``active_flow_ids`` names the in-flight flows, whose admission
        charges the monitor has not seen yet; everything else has landed
        and both sides hold the identical multiset of floats, so fsum
        reconciliation is exact — the stage-boundary version of the
        end-of-run property test.
        """
        self.checks["ledger"] += 1
        active = set(active_flow_ids)
        settled = ledger.settled_by_tenant(exclude=active)
        settled_wan = ledger.settled_by_tenant(exclude=active, wan_only=True)
        recorded = monitor.by_tenant
        recorded_wan = monitor.cross_dc_by_tenant
        for tenant in sorted(set(settled) | set(recorded)):
            lhs = settled.get(tenant, 0.0)
            rhs = recorded.get(tenant, 0.0)
            if lhs != rhs:
                raise InvariantViolation(
                    f"tenant {tenant!r}: ledger settled bytes {lhs!r} != "
                    f"monitor recorded bytes {rhs!r} at stage boundary"
                )
        for tenant in sorted(set(settled_wan) | set(recorded_wan)):
            lhs = settled_wan.get(tenant, 0.0)
            rhs = recorded_wan.get(tenant, 0.0)
            if lhs != rhs:
                raise InvariantViolation(
                    f"tenant {tenant!r}: ledger settled WAN bytes {lhs!r} "
                    f"!= monitor recorded WAN bytes {rhs!r} at stage boundary"
                )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Check counters (for the CLI's sanitize report)."""
        return {name: float(count) for name, count in self.checks.items()}

    @property
    def total_checks(self) -> int:
        return sum(self.checks.values())


# ---------------------------------------------------------------------------
# Post-run reconciliation oracle (chaos campaign adapter)
# ---------------------------------------------------------------------------

# Counter-vs-monitor comparisons use the solvers' accuracy bound (the
# same slack the end-of-run property tests use); ledger-vs-monitor is
# bit-exact because both sides hold the identical multiset of floats.
_RECONCILE_REL = 1e-9
_RECONCILE_ABS = 1e-6


def _mismatch(lhs: float, rhs: float) -> bool:
    return abs(lhs - rhs) > _RECONCILE_REL * max(abs(lhs), abs(rhs)) + _RECONCILE_ABS


def reconcile_run(context) -> List[str]:
    """Cross-check one finished run's three accounting spines.

    The chaos campaign's composite-oracle adapter: given a cluster
    context whose jobs have completed, verify

    * backend **counters** == traffic **monitor** over the backend's
      declared flow tags (total, cross-DC, and per-shuffle attribution),
      within the solver accuracy bound;
    * tenant **ledger** settled charges == monitor completion records,
      bit for bit per tenant, for total and WAN bytes.

    Flows still in flight when the run stopped (abandoned attempts whose
    awaiting process died — a speculative loser's fetch, a relaunched
    task's half-finished read) are excluded from every comparison: they
    were charged at issue but the monitor only records completions.

    Returns a list of human-readable violation strings — empty means the
    run reconciles.  Never raises: the campaign wants every violation,
    not the first one.
    """
    violations: List[str] = []
    backend = context.shuffle_service.backend
    counters = backend.counters
    monitor = context.traffic

    def tag_total(table: Mapping[str, float], tags: Sequence[str]) -> float:
        return fsum(table.get(tag, 0.0) for tag in tags)

    # Flows still in flight when the run stopped — abandoned attempts,
    # e.g. a speculative loser whose fetch was orphaned by the job
    # completing first — were counter-charged in full at issue but never
    # reached the monitor, which records at completion (or delivered
    # bytes at cancellation).  Exclude them from the counter side, the
    # same treatment the ledger comparison below applies by flow id.
    topology = context.topology
    in_flight = in_flight_wan = in_flight_shuffle = 0.0
    for flow in context.fabric.active_flows():
        if flow.tag not in backend.flow_tags:
            continue
        in_flight += flow.size_bytes
        if topology.datacenter_of(flow.src_host) != topology.datacenter_of(
            flow.dst_host
        ):
            in_flight_wan += flow.size_bytes
        if flow.tag != "transfer_to":
            in_flight_shuffle += flow.size_bytes

    total = tag_total(monitor.by_tag, backend.flow_tags)
    claimed = counters.wan_bytes + counters.intra_dc_bytes - in_flight
    if _mismatch(claimed, total):
        violations.append(
            f"counters: wan+intra {claimed!r} != monitor total {total!r}"
        )
    cross = tag_total(monitor.cross_dc_by_tag, backend.flow_tags)
    claimed_wan = counters.wan_bytes - in_flight_wan
    if _mismatch(claimed_wan, cross):
        violations.append(
            f"counters: wan_bytes {claimed_wan!r} != "
            f"monitor cross-DC total {cross!r}"
        )
    shuffle_tags = tuple(tag for tag in backend.flow_tags if tag != "transfer_to")
    by_shuffle = fsum(counters.network_bytes_by_shuffle.values()) - in_flight_shuffle
    shuffle_total = tag_total(monitor.by_tag, shuffle_tags)
    if _mismatch(by_shuffle, shuffle_total):
        violations.append(
            f"counters: per-shuffle attribution {by_shuffle!r} != "
            f"monitor shuffle-path total {shuffle_total!r}"
        )

    ledger = context.fabric.tenant_ledger
    if ledger is not None:
        active = set(context.fabric.active_flow_ids())
        settled = ledger.settled_by_tenant(exclude=active)
        settled_wan = ledger.settled_by_tenant(exclude=active, wan_only=True)
        recorded = monitor.by_tenant
        recorded_wan = monitor.cross_dc_by_tenant
        for tenant in sorted(set(settled) | set(recorded)):
            lhs = settled.get(tenant, 0.0)
            rhs = recorded.get(tenant, 0.0)
            if lhs != rhs:
                violations.append(
                    f"tenant {tenant!r}: ledger settled {lhs!r} != "
                    f"monitor recorded {rhs!r}"
                )
        for tenant in sorted(set(settled_wan) | set(recorded_wan)):
            lhs = settled_wan.get(tenant, 0.0)
            rhs = recorded_wan.get(tenant, 0.0)
            if lhs != rhs:
                violations.append(
                    f"tenant {tenant!r}: ledger settled WAN {lhs!r} != "
                    f"monitor recorded WAN {rhs!r}"
                )
    return violations


# ---------------------------------------------------------------------------
# Process-wide enablement
# ---------------------------------------------------------------------------

# The installed sanitizer, or None when off.  Components capture
# get_sanitizer() once at construction, so toggling mid-simulation is
# deliberately unsupported — enable before building the cluster.
_INSTALLED: Optional[Sanitizer] = None
_ENV_CHECKED = False


def _env_enabled() -> bool:
    return os.environ.get(_ENV_FLAG, "").strip().lower() in _TRUTHY


def get_sanitizer() -> Optional[Sanitizer]:
    """The active sanitizer, or ``None`` (the common, zero-cost case).

    The environment flag is honoured lazily on first call, so spawned
    benchmark/matrix workers inherit ``REPRO_SANITIZE`` naturally.
    """
    global _INSTALLED, _ENV_CHECKED
    if _INSTALLED is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        if _env_enabled():
            _INSTALLED = Sanitizer()
    return _INSTALLED


def enable() -> Sanitizer:
    """Install (or return the already-installed) process-wide sanitizer."""
    global _INSTALLED
    if _INSTALLED is None:
        _INSTALLED = Sanitizer()
    return _INSTALLED


def disable() -> None:
    """Remove the process-wide sanitizer (existing components keep the
    instance they captured; new components come up unsanitized)."""
    global _INSTALLED, _ENV_CHECKED
    _INSTALLED = None
    # Re-arm the env check so a later get_sanitizer() re-reads the flag.
    _ENV_CHECKED = False


@contextmanager
def sanitized():
    """Context manager installing a fresh sanitizer for its scope.

    Yields the :class:`Sanitizer` so tests can assert its check
    counters actually moved.
    """
    global _INSTALLED, _ENV_CHECKED
    previous, previous_checked = _INSTALLED, _ENV_CHECKED
    _INSTALLED, _ENV_CHECKED = Sanitizer(), True
    try:
        yield _INSTALLED
    finally:
        _INSTALLED, _ENV_CHECKED = previous, previous_checked
