"""The determinism & accounting rule catalogue (see DESIGN.md §13).

==========  =============================================================
DET001      stdlib/numpy RNG outside ``repro.simulation.random_source``
DET002      wall-clock reads in simulation paths
DET003      iteration over unordered sets in ordering-sensitive modules
DET004      ``id()`` used in sort keys, dict keys, or comparisons
ACC001      order-dependent float ``+=`` loops in accounting modules
PERF001     configured hot-path classes missing ``__slots__``
==========  =============================================================

All rules are purely syntactic (no type inference): DET003 tracks only
set literals/comprehensions/``set()`` calls and names assigned from
them within the enclosing scope, so a set that arrives through a
function return is invisible to it.  The runtime sanitizer
(:mod:`repro.analysis.sanitizer`) is the complementary dynamic net.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.analysis.engine import (
    Finding,
    LintConfig,
    ModuleInfo,
    Rule,
    register_rule,
)

# ---------------------------------------------------------------------------
# DET001 — module-level RNG
# ---------------------------------------------------------------------------


@register_rule
class NoModuleLevelRandom(Rule):
    name = "DET001"
    summary = (
        "randomness must flow through repro.simulation.random_source; "
        "module-level random/numpy.random state breaks seeded replay"
    )

    def check(self, info: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        if config.module_matches(info.module, config.rng_allowed):
            return
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "numpy.random"
                    ):
                        yield self.finding(
                            info,
                            node,
                            f"import of {alias.name!r}: draw from a seeded "
                            "RandomSource stream instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "random" or module.startswith("numpy.random"):
                    yield self.finding(
                        info,
                        node,
                        f"import from {module!r}: draw from a seeded "
                        "RandomSource stream instead",
                    )
                elif module == "numpy" and any(
                    alias.name == "random" for alias in node.names
                ):
                    yield self.finding(
                        info,
                        node,
                        "import of numpy.random: draw from a seeded "
                        "RandomSource stream instead",
                    )
            elif isinstance(node, ast.Attribute):
                # np.random.* / numpy.random.* attribute chains.
                value = node.value
                if (
                    node.attr == "random"
                    and isinstance(value, ast.Name)
                    and value.id in ("np", "numpy")
                ):
                    yield self.finding(
                        info,
                        node,
                        f"use of {value.id}.random: draw from a seeded "
                        "RandomSource stream instead",
                    )


# ---------------------------------------------------------------------------
# DET002 — wall-clock in simulation paths
# ---------------------------------------------------------------------------

_TIME_FUNCS = frozenset(
    {
        "time",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})


@register_rule
class NoWallClock(Rule):
    name = "DET002"
    summary = (
        "simulation paths must use Simulator.now, never the wall clock "
        "(time.*/datetime.now)"
    )

    def check(self, info: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        if config.module_matches(info.module, config.wallclock_allowed):
            return
        # Names imported directly from the time module in this file
        # (``from time import perf_counter``).
        bare_time_names: Set[str] = set()
        for node in ast.walk(info.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _TIME_FUNCS:
                        bare_time_names.add(alias.asname or alias.name)
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in bare_time_names:
                yield self.finding(
                    info,
                    node,
                    f"wall-clock call {func.id}(): simulated components "
                    "must read Simulator.now",
                )
            elif isinstance(func, ast.Attribute):
                base = func.value
                if (
                    func.attr in _TIME_FUNCS
                    and isinstance(base, ast.Name)
                    and base.id == "time"
                ):
                    yield self.finding(
                        info,
                        node,
                        f"wall-clock call time.{func.attr}(): simulated "
                        "components must read Simulator.now",
                    )
                elif func.attr in _DATETIME_FUNCS and (
                    (isinstance(base, ast.Name) and base.id == "datetime")
                    or (
                        isinstance(base, ast.Attribute)
                        and base.attr == "datetime"
                        and isinstance(base.value, ast.Name)
                        and base.value.id == "datetime"
                    )
                ):
                    yield self.finding(
                        info,
                        node,
                        f"wall-clock call datetime.{func.attr}(): simulated "
                        "components must read Simulator.now",
                    )


# ---------------------------------------------------------------------------
# DET003 — unordered set iteration where order leaks into results
# ---------------------------------------------------------------------------

# Consumers whose result is independent of element order.
_ORDER_FREE_CALLS = frozenset(
    {
        "sorted",
        "min",
        "max",
        "sum",
        "len",
        "any",
        "all",
        "set",
        "frozenset",
        "fsum",
        "bool",
    }
)


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


class _SetIterationVisitor(ast.NodeVisitor):
    """Walks one scope in statement order, tracking set-typed names."""

    def __init__(self, rule: Rule, info: ModuleInfo) -> None:
        self.rule = rule
        self.info = info
        self.set_names: Set[str] = set()
        self.findings: List[Finding] = []

    # -- name tracking -------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        is_set = _is_set_expr(node.value, self.set_names)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_set:
                    self.set_names.add(target.id)
                else:
                    self.set_names.discard(target.id)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if isinstance(node.target, ast.Name) and node.value is not None:
            if _is_set_expr(node.value, self.set_names):
                self.set_names.add(node.target.id)
            else:
                self.set_names.discard(node.target.id)

    # -- nested scopes get fresh trackers ------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._nested(node)

    def _nested(self, node: ast.AST) -> None:
        nested = _SetIterationVisitor(self.rule, self.info)
        for child in ast.iter_child_nodes(node):
            nested.visit(child)
        self.findings.extend(nested.findings)

    # -- iteration sites -----------------------------------------------
    def _check_iter(self, iter_node: ast.AST) -> None:
        if _is_set_expr(iter_node, self.set_names):
            name = (
                f" {iter_node.id!r}" if isinstance(iter_node, ast.Name) else ""
            )
            self.findings.append(
                self.rule.finding(
                    self.info,
                    iter_node,
                    f"iteration over unordered set{name} in an "
                    "ordering-sensitive module: wrap in sorted(...) so "
                    "results cannot depend on hash order",
                )
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for generator in node.generators:
            self._check_iter(generator.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comp(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comp(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comp(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # A set comprehension *over* a set produces another set —
        # order-free in itself, so only its nested generators matter.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # list(s) / tuple(s) / enumerate(s) materialize hash order;
        # sorted(s)/min(s)/... are order-free and skipped.
        func = node.func
        if isinstance(func, ast.Name) and func.id in (
            "list",
            "tuple",
            "enumerate",
            "iter",
            "reversed",
        ):
            for arg in node.args[:1]:
                self._check_iter(arg)
        self.generic_visit(node)


@register_rule
class NoUnorderedSetIteration(Rule):
    name = "DET003"
    summary = (
        "iterating a set in an ordering-sensitive module leaks "
        "memory-address ordering into results; wrap in sorted()"
    )

    def check(self, info: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        if not config.module_matches(info.module, config.ordering_sensitive):
            return
        visitor = _SetIterationVisitor(self, info)
        visitor.visit(info.tree)
        yield from visitor.findings


# ---------------------------------------------------------------------------
# DET004 — id() in ordering/keying positions
# ---------------------------------------------------------------------------


@register_rule
class NoIdInOrdering(Rule):
    name = "DET004"
    summary = (
        "id() values are memory addresses — different every run; never "
        "sort, key, or compare on them"
    )

    def check(self, info: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        parents = info.parents
        for node in ast.walk(info.tree):
            # sorted(xs, key=id) — id passed bare as a key function.
            if (
                isinstance(node, ast.keyword)
                and node.arg == "key"
                and isinstance(node.value, ast.Name)
                and node.value.id == "id"
            ):
                yield self.finding(
                    info, node.value, "id used as a sort key function"
                )
                continue
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
            ):
                continue
            context = self._ordering_context(node, parents)
            if context is not None:
                yield self.finding(
                    info, node, f"id() used in {context}"
                )

    @staticmethod
    def _ordering_context(
        node: ast.Call, parents: Dict[ast.AST, ast.AST]
    ) -> str | None:
        child: ast.AST = node
        parent = parents.get(child)
        while parent is not None and not isinstance(
            parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Module)
        ):
            if isinstance(parent, ast.Compare):
                return "a comparison"
            if isinstance(parent, ast.Dict) and child in parent.keys:
                return "a dict key"
            if isinstance(parent, ast.Subscript) and child is parent.slice:
                return "a subscript key"
            if isinstance(parent, ast.keyword) and parent.arg == "key":
                return "a sort key"
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in ("hash", "sorted", "min", "max")
            ):
                return f"{parent.func.id}()"
            child, parent = parent, parents.get(parent)
        return None


# ---------------------------------------------------------------------------
# ACC001 — float += accumulation loops in accounting modules
# ---------------------------------------------------------------------------


@register_rule
class NoFloatAccumulationLoops(Rule):
    name = "ACC001"
    summary = (
        "running float += in accounting loops drifts with accumulation "
        "order; collect terms and reduce with math.fsum"
    )

    def check(self, info: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        if not config.module_matches(info.module, config.accounting_modules):
            return
        for loop in ast.walk(info.tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in ast.walk(loop):
                if not (
                    isinstance(node, ast.AugAssign)
                    and isinstance(node.op, ast.Add)
                ):
                    continue
                value = node.value
                # Integer-literal increments are exact counters, not
                # float accumulation.
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, int
                ):
                    continue
                yield self.finding(
                    info,
                    node,
                    "float accumulation with += inside a loop in an "
                    "accounting module: gather the terms and math.fsum "
                    "them so totals are accumulation-order-free",
                )


# ---------------------------------------------------------------------------
# PERF001 — hot-path classes must carry __slots__
# ---------------------------------------------------------------------------


def _class_has_slots(cls: ast.ClassDef) -> bool:
    for statement in cls.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(statement, ast.AnnAssign):
            target = statement.target
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    # @dataclass(slots=True) synthesizes __slots__ at class-creation
    # time (Python 3.10+); the keyword in the decorator call is the
    # syntactic evidence.
    for decorator in cls.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "slots"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


@register_rule
class HotPathSlots(Rule):
    name = "PERF001"
    summary = (
        "configured hot-path classes must define __slots__ (allocation "
        "volume makes per-instance __dict__ cost real)"
    )

    def check(self, info: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        wanted: Dict[str, bool] = {}
        for entry in config.slots_classes:
            module, _, class_name = entry.partition(":")
            if not class_name:
                yield Finding(
                    rule=self.name,
                    message=(
                        f"malformed slots-classes entry {entry!r} "
                        "(expected 'module:ClassName')"
                    ),
                    path=str(info.path),
                    line=1,
                )
                continue
            if module == info.module:
                wanted[class_name] = False
        if not wanted:
            return
        for node in ast.walk(info.tree):
            if isinstance(node, ast.ClassDef) and node.name in wanted:
                wanted[node.name] = True
                if not _class_has_slots(node):
                    yield self.finding(
                        info,
                        node,
                        f"hot-path class {node.name} defines no __slots__",
                    )
        for class_name, found in sorted(wanted.items()):
            if not found:
                yield Finding(
                    rule=self.name,
                    message=(
                        f"configured hot-path class {class_name} not found "
                        f"in {info.module} (stale slots-classes entry?)"
                    ),
                    path=str(info.path),
                    line=1,
                )
