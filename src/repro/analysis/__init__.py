"""Static analysis and runtime sanitizing for the repro's invariants.

Two enforcement layers for the conventions every headline guarantee
rests on (byte-identical runs, bit-exact ledger reconciliation, 1e-9
solver equivalence):

* :mod:`repro.analysis.engine` + :mod:`repro.analysis.rules` — the
  ``repro lint`` AST rule engine: determinism and accounting rules
  (DET*/ACC*/PERF*) with per-line pragma suppression and
  ``[tool.repro-lint]`` configuration;
* :mod:`repro.analysis.sanitizer` — the opt-in runtime invariant
  sanitizer (``REPRO_SANITIZE=1`` / ``--sanitize``): zero-cost-when-off
  hooks in the fabric, kernel, and tenant ledger asserting capacity
  conservation, finite non-negative rates, time monotonicity, and
  ledger==monitor reconciliation at stage boundaries.
"""

from repro.analysis.engine import (
    Finding,
    LintConfig,
    LintEngine,
    load_config,
    lint_paths,
)
from repro.analysis.sanitizer import (
    InvariantViolation,
    Sanitizer,
    get_sanitizer,
    sanitized,
)

__all__ = [
    "Finding",
    "LintConfig",
    "LintEngine",
    "load_config",
    "lint_paths",
    "InvariantViolation",
    "Sanitizer",
    "get_sanitizer",
    "sanitized",
]
