"""The ``repro lint`` rule engine.

An AST-based linter purpose-built for this repro's invariants: the
generic linters (ruff) catch generic defects, while these rules encode
*project* conventions — all randomness through
:class:`~repro.simulation.random_source.RandomSource`, no wall-clock in
simulation paths, ``fsum`` in accounting, sorted iteration where order
leaks into results — that nothing else machine-checks.

Building blocks:

* :class:`Rule` — one check over one parsed module; registered in
  :data:`RULE_REGISTRY` via :func:`register_rule`.
* :class:`LintConfig` — knobs loaded from ``[tool.repro-lint]`` in
  ``pyproject.toml`` (module allow-lists per rule, hot-path class
  list, rule selection).
* pragma suppression — ``# repro-lint: allow[RULE] reason`` on (or
  immediately above) the offending line silences that rule there; a
  pragma **must** carry a reason or the engine reports LNT001, which
  cannot itself be suppressed.
* :func:`lint_paths` — walk files/directories, apply every selected
  rule, resolve suppressions, and return :class:`Finding`\\ s.

Exit-code contract of the CLI built on top: 0 = clean (every finding
suppressed with a reason), 1 = unsuppressed findings, 2 = usage or
configuration error.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import json
import re
import tokenize
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError

# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    message: str
    path: str
    line: int
    col: int = 0
    suppressed: bool = False
    reason: str = ""

    def format(self) -> str:
        suffix = f"  (suppressed: {self.reason})" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{suffix}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }


# Engine-level findings (pragma misuse, parse errors).  LNT001 is
# deliberately unsuppressable: a reasonless suppression must not be able
# to hide itself.
LNT_NO_REASON = "LNT001"
LNT_UNKNOWN_RULE = "LNT002"
LNT_PARSE = "LNT003"
_UNSUPPRESSABLE = frozenset({LNT_NO_REASON})


# ---------------------------------------------------------------------------
# Configuration ([tool.repro-lint] in pyproject.toml)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LintConfig:
    """Rule selection and per-rule module scoping.

    Module lists are fnmatch globs over dotted module names
    (``repro.network.*``).  TOML keys use dashes (``rng-allowed``);
    they map onto these fields with dashes replaced by underscores.
    """

    # Rules to run; empty tuple means every registered rule.
    select: Tuple[str, ...] = ()
    # Path globs to skip entirely.
    exclude: Tuple[str, ...] = ()
    # DET001: modules allowed to touch the stdlib/numpy RNG directly.
    rng_allowed: Tuple[str, ...] = ("repro.simulation.random_source",)
    # DET002: modules allowed to read the wall clock.
    wallclock_allowed: Tuple[str, ...] = ()
    # DET003: modules whose iteration order leaks into results.
    ordering_sensitive: Tuple[str, ...] = (
        "repro.scheduler.*",
        "repro.network.*",
        "repro.shuffle.*",
        "repro.simulation.*",
    )
    # ACC001: modules doing byte/dollar accounting.
    accounting_modules: Tuple[str, ...] = (
        "repro.metrics.*",
        "repro.network.traffic_monitor",
    )
    # PERF001: "module:ClassName" entries that must define __slots__.
    slots_classes: Tuple[str, ...] = ()

    def module_matches(self, module: str, globs: Iterable[str]) -> bool:
        return any(fnmatch.fnmatchcase(module, glob) for glob in globs)


_CONFIG_FIELDS = {f.name for f in fields(LintConfig)}


def _read_lint_section(pyproject: Path) -> Dict[str, object]:
    """The raw ``[tool.repro-lint]`` table from ``pyproject``.

    Uses :mod:`tomllib` when available (3.11+); on 3.10 falls back to a
    line parser covering exactly the shape this section uses — string
    lists, possibly multi-line, with comments — so the linter behaves
    identically across the CI matrix.
    """
    try:
        text = pyproject.read_text(encoding="utf-8")
    except OSError as error:
        raise ConfigurationError(f"cannot read {pyproject}: {error}") from error
    try:
        import tomllib
    except ModuleNotFoundError:  # pragma: no cover - Python 3.10 path
        return _parse_lint_section_fallback(text, pyproject)
    try:
        data = tomllib.loads(text)
    except tomllib.TOMLDecodeError as error:
        raise ConfigurationError(
            f"invalid TOML in {pyproject}: {error}"
        ) from error
    return data.get("tool", {}).get("repro-lint", {})


def _parse_lint_section_fallback(
    text: str, pyproject: Path
) -> Dict[str, object]:
    """Minimal [tool.repro-lint] reader for interpreters without tomllib."""
    section: Dict[str, object] = {}
    in_section = False
    key: Optional[str] = None
    items: List[str] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("["):
            in_section = line == "[tool.repro-lint]"
            continue
        if not in_section:
            continue
        if key is None:
            name, eq, rest = line.partition("=")
            if not eq:
                raise ConfigurationError(
                    f"cannot parse [tool.repro-lint] line {line!r} in "
                    f"{pyproject} (fallback parser supports string lists only)"
                )
            key, line = name.strip(), rest.strip()
            items = []
            if not line.startswith("["):
                raise ConfigurationError(
                    f"[tool.repro-lint] {key} must be a list of strings "
                    f"({pyproject})"
                )
            line = line[1:]
        closed = line.endswith("]")
        if closed:
            line = line[:-1]
        items.extend(re.findall(r'"([^"]*)"', line))
        if closed:
            section[key] = items
            key = None
    return section


def load_config(pyproject: Optional[Path] = None) -> LintConfig:
    """Load ``[tool.repro-lint]`` from ``pyproject`` (or defaults).

    When ``pyproject`` is None the file is searched upward from the
    current directory.  Unknown keys raise :class:`ConfigurationError`
    — a typo in the config must not silently disable a rule.
    """
    if pyproject is None:
        for candidate in [Path.cwd(), *Path.cwd().parents]:
            found = candidate / "pyproject.toml"
            if found.is_file():
                pyproject = found
                break
        else:
            return LintConfig()
    section = _read_lint_section(pyproject)
    overrides: Dict[str, Tuple[str, ...]] = {}
    for key, value in section.items():
        name = key.replace("-", "_")
        if name not in _CONFIG_FIELDS:
            raise ConfigurationError(
                f"unknown [tool.repro-lint] key {key!r} in {pyproject}"
            )
        if not isinstance(value, list) or not all(
            isinstance(item, str) for item in value
        ):
            raise ConfigurationError(
                f"[tool.repro-lint] {key} must be a list of strings"
            )
        overrides[name] = tuple(value)
    return replace(LintConfig(), **overrides)


# ---------------------------------------------------------------------------
# Parsed-module context shared by the rules
# ---------------------------------------------------------------------------


class ModuleInfo:
    """One parsed source file plus the lookups rules need."""

    def __init__(self, path: Path, source: str, module: str) -> None:
        self.path = path
        self.source = source
        self.module = module
        self.tree = ast.parse(source, filename=str(path))
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """child node -> parent node (built lazily, once per module)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path`` (``src`` package layout aware)."""
    parts = list(path.resolve().with_suffix("").parts)
    for anchor in ("src", "repro"):
        if anchor in parts:
            index = parts.index(anchor)
            if anchor == "src":
                index += 1
            dotted = parts[index:]
            if dotted and dotted[-1] == "__init__":
                dotted = dotted[:-1]
            if dotted:
                return ".".join(dotted)
    return path.stem


# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------


class Rule:
    """Base class: subclasses set ``name``/``summary`` and implement check."""

    name = ""
    summary = ""

    def check(self, info: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    def finding(
        self, info: ModuleInfo, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.name,
            message=message,
            path=str(info.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


RULE_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls: type) -> type:
    """Class decorator adding one Rule instance to the registry."""
    rule = cls()
    if not rule.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if rule.name in RULE_REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name}")
    RULE_REGISTRY[rule.name] = rule
    return cls


def known_rules() -> Tuple[str, ...]:
    _ensure_rules_loaded()
    return tuple(sorted(RULE_REGISTRY))


def _ensure_rules_loaded() -> None:
    # The rules module registers itself on import; importing it here
    # keeps `from repro.analysis.engine import lint_paths` self-contained.
    import repro.analysis.rules  # noqa: F401


# ---------------------------------------------------------------------------
# Pragma suppression
# ---------------------------------------------------------------------------

# Grammar:   # repro-lint: allow[RULE{,RULE}] <reason text>
# A pragma suppresses matching findings on its own line; a pragma on a
# comment-only line suppresses the next line instead (for statements too
# long to share a line with their justification).
_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*allow\[(?P<rules>[A-Za-z0-9_*,\s]+)\]\s*(?P<reason>.*)$"
)


@dataclass
class _Suppression:
    rules: Tuple[str, ...]
    reason: str
    pragma_line: int
    used: bool = False

    def covers(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules


def _iter_comments(source: str) -> Iterator[Tuple[int, int, str, str]]:
    """(line, col, comment text, full line) for every real COMMENT token.

    Tokenizing — rather than regex-scanning raw lines — keeps pragma
    text inside string literals and docstrings inert (e.g. the grammar
    example in this module's own docstring)."""
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string, token.line
    except tokenize.TokenError:  # pragma: no cover - parse already succeeded
        return


def _parse_suppressions(
    info: ModuleInfo,
) -> Tuple[Dict[int, List[_Suppression]], List[Finding]]:
    """line number -> suppressions active there, plus pragma-misuse findings."""
    by_line: Dict[int, List[_Suppression]] = {}
    problems: List[Finding] = []
    for lineno, col, comment, text in _iter_comments(info.source):
        match = _PRAGMA.search(comment)
        if match is None:
            continue
        rules = tuple(
            token.strip() for token in match.group("rules").split(",") if token.strip()
        )
        reason = match.group("reason").strip()
        unknown = [
            token
            for token in rules
            if token != "*" and token not in RULE_REGISTRY
        ]
        if unknown:
            problems.append(
                Finding(
                    rule=LNT_UNKNOWN_RULE,
                    message=(
                        f"pragma names unknown rule(s) {', '.join(unknown)} "
                        f"(known: {', '.join(known_rules())})"
                    ),
                    path=str(info.path),
                    line=lineno,
                )
            )
        if not reason:
            problems.append(
                Finding(
                    rule=LNT_NO_REASON,
                    message="suppression pragma must carry a written reason",
                    path=str(info.path),
                    line=lineno,
                )
            )
            continue
        suppression = _Suppression(rules, reason, lineno)
        target = lineno
        if not text[:col].strip():
            # Comment-only line: the pragma shields the next line.
            target = lineno + 1
        by_line.setdefault(target, []).append(suppression)
    return by_line, problems


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


class LintEngine:
    """Applies the selected rules to modules and resolves suppressions."""

    def __init__(self, config: Optional[LintConfig] = None) -> None:
        _ensure_rules_loaded()
        self.config = config if config is not None else LintConfig()
        selected = self.config.select or tuple(sorted(RULE_REGISTRY))
        unknown = [name for name in selected if name not in RULE_REGISTRY]
        if unknown:
            raise ConfigurationError(
                f"unknown rule(s) in select: {', '.join(unknown)} "
                f"(known: {', '.join(known_rules())})"
            )
        self.rules: List[Rule] = [RULE_REGISTRY[name] for name in selected]

    # -- single-module entry points ------------------------------------
    def lint_source(
        self, source: str, path: str = "<string>", module: Optional[str] = None
    ) -> List[Finding]:
        """Lint one source string (the fixture-test entry point)."""
        as_path = Path(path)
        if module is None:
            module = module_name_for(as_path)
        try:
            info = ModuleInfo(as_path, source, module)
        except SyntaxError as error:
            return [
                Finding(
                    rule=LNT_PARSE,
                    message=f"syntax error: {error.msg}",
                    path=path,
                    line=error.lineno or 1,
                )
            ]
        return self._lint_module(info)

    def lint_file(self, path: Path) -> List[Finding]:
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            raise ConfigurationError(f"cannot read {path}: {error}") from error
        return self.lint_source(source, path=str(path))

    def _lint_module(self, info: ModuleInfo) -> List[Finding]:
        suppressions, findings = _parse_suppressions(info)
        for rule in self.rules:
            for finding in rule.check(info, self.config):
                findings.append(self._resolve(finding, suppressions))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    @staticmethod
    def _resolve(
        finding: Finding, suppressions: Dict[int, List[_Suppression]]
    ) -> Finding:
        if finding.rule in _UNSUPPRESSABLE:
            return finding
        for suppression in suppressions.get(finding.line, ()):
            if suppression.covers(finding.rule):
                suppression.used = True
                return replace(
                    finding, suppressed=True, reason=suppression.reason
                )
        return finding


def iter_python_files(paths: Iterable[Path], exclude: Tuple[str, ...] = ()) -> Iterator[Path]:
    """Yield .py files under ``paths`` in sorted order (deterministic)."""
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise ConfigurationError(f"not a python file or directory: {path}")
        for candidate in candidates:
            name = str(candidate)
            if any(fnmatch.fnmatch(name, glob) for glob in exclude):
                continue
            yield candidate


def lint_paths(
    paths: Iterable[Path], config: Optional[LintConfig] = None
) -> List[Finding]:
    """Lint every python file under ``paths``; returns all findings
    (suppressed ones included, flagged as such)."""
    engine = LintEngine(config)
    findings: List[Finding] = []
    exclude = engine.config.exclude
    for path in iter_python_files(paths, exclude):
        findings.extend(engine.lint_file(path))
    return findings


# ---------------------------------------------------------------------------
# Output formatting
# ---------------------------------------------------------------------------


def format_findings(
    findings: List[Finding], as_json: bool = False, show_suppressed: bool = False
) -> str:
    """Human or JSON report.  Suppressed findings are hidden by default."""
    visible = [f for f in findings if show_suppressed or not f.suppressed]
    if as_json:
        return json.dumps([f.as_dict() for f in visible], indent=2)
    lines = [f.format() for f in visible]
    active = sum(1 for f in findings if not f.suppressed)
    suppressed = len(findings) - active
    lines.append(
        f"{active} finding(s), {suppressed} suppressed"
        if findings
        else "clean: no findings"
    )
    return "\n".join(lines)
