"""Payload stores for shuffle shards and staged transfer partitions.

These hold the *actual records* flowing between stages.  Metadata about
where data lives is in :class:`~repro.shuffle.map_output_tracker.MapOutputTracker`
(for shuffles) and :class:`TransferTracker` (for transfer boundaries);
the stores here hold the bytes, keyed so the runtime can tell whether a
read is host-local (disk) or remote (a network flow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import MapOutputMissingError


@dataclass
class ShuffleShard:
    """One (map partition, reduce partition) shard of shuffle output."""

    records: List[Any] = field(default_factory=list)
    size_bytes: float = 0.0


class ShuffleStore:
    """All written shuffle shards, keyed by (shuffle, map, reduce)."""

    def __init__(self) -> None:
        self._shards: Dict[Tuple[int, int, int], ShuffleShard] = {}
        self._hosts: Dict[Tuple[int, int], str] = {}

    def put_map_output(
        self,
        shuffle_id: int,
        map_index: int,
        host: str,
        shards: List[ShuffleShard],
    ) -> None:
        """Store all reduce shards of one map partition at ``host``.

        Re-registration (after a push relocated the output, or a map task
        re-ran) simply overwrites.
        """
        self._hosts[(shuffle_id, map_index)] = host
        for reduce_index, shard in enumerate(shards):
            self._shards[(shuffle_id, map_index, reduce_index)] = shard

    def get_shard(
        self, shuffle_id: int, map_index: int, reduce_index: int
    ) -> ShuffleShard:
        key = (shuffle_id, map_index, reduce_index)
        if key not in self._shards:
            raise MapOutputMissingError(
                f"missing shuffle shard {key}"
            )
        return self._shards[key]

    def host_of(self, shuffle_id: int, map_index: int) -> str:
        key = (shuffle_id, map_index)
        if key not in self._hosts:
            raise MapOutputMissingError(
                f"no shuffle output registered for shuffle {shuffle_id} "
                f"map {map_index}"
            )
        return self._hosts[key]

    def bytes_by_host(self) -> Dict[str, float]:
        """Total stored shuffle bytes per host.

        Used by chaos targeting: on backends without mergers, the
        data-heaviest live host stands in for a "merger" so the same
        chaos schedule stays meaningful across backends.
        """
        totals: Dict[str, float] = {}
        for (shuffle_id, map_index, _reduce), shard in self._shards.items():
            host = self._hosts.get((shuffle_id, map_index))
            if host is not None:
                totals[host] = totals.get(host, 0.0) + shard.size_bytes
        return totals

    def remove_host(self, host: str) -> None:
        """Drop all shards written by ``host`` (host failure)."""
        doomed = {
            key for key, owner in self._hosts.items() if owner == host
        }
        self._hosts = {
            key: owner for key, owner in self._hosts.items()
            if key not in doomed
        }
        self._shards = {
            key: shard for key, shard in self._shards.items()
            if (key[0], key[1]) not in doomed
        }

    def remove_shuffle(self, shuffle_id: int) -> None:
        self._shards = {
            key: value
            for key, value in self._shards.items()
            if key[0] != shuffle_id
        }
        self._hosts = {
            key: value
            for key, value in self._hosts.items()
            if key[0] != shuffle_id
        }


@dataclass
class StagedPartition:
    """A whole partition staged at its origin, awaiting a receiver pull."""

    host: str
    records: List[Any]
    size_bytes: float


class TransferTracker:
    """Staged partitions for ``transfer_to`` boundaries.

    The producing stage registers each partition under
    ``(transfer_id, partition_index)`` at the host that computed it;
    receiver tasks look it up, pull it, and the DAG scheduler uses the
    registration events to pipeline receivers with producers.
    """

    def __init__(self) -> None:
        self._staged: Dict[Tuple[int, int], StagedPartition] = {}

    def stage_partition(
        self,
        transfer_id: int,
        partition_index: int,
        host: str,
        records: List[Any],
        size_bytes: float,
    ) -> None:
        self._staged[(transfer_id, partition_index)] = StagedPartition(
            host=host, records=records, size_bytes=size_bytes
        )

    def get(self, transfer_id: int, partition_index: int) -> StagedPartition:
        key = (transfer_id, partition_index)
        if key not in self._staged:
            raise MapOutputMissingError(
                f"no staged partition for transfer {transfer_id} "
                f"partition {partition_index}"
            )
        return self._staged[key]

    def try_get(
        self, transfer_id: int, partition_index: int
    ) -> Optional[StagedPartition]:
        return self._staged.get((transfer_id, partition_index))

    def remove_transfer(self, transfer_id: int) -> None:
        self._staged = {
            key: value
            for key, value in self._staged.items()
            if key[0] != transfer_id
        }

    def remove_host(self, host: str) -> None:
        """Drop all partitions staged at ``host`` (host failure)."""
        self._staged = {
            key: value
            for key, value in self._staged.items()
            if value.host != host
        }
