"""MapOutputTracker: driver-side metadata about shuffle output.

For every shuffle it records, per map partition, the host where the
sharded output was written and the logical size of each reduce shard.
Reducers consult it to plan fetches; the task scheduler consults it to
compute reducer locality preferences (hosts holding at least a configured
fraction of a reducer's input, Spark 1.6 semantics); the DAG scheduler
consults it to pick aggregator datacenters for downstream transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.errors import MapOutputMissingError


@dataclass
class MapStatus:
    """Location and shard sizes of one map partition's shuffle output."""

    map_index: int
    host: str
    shard_sizes: List[float]

    @property
    def total_size(self) -> float:
        return sum(self.shard_sizes)


class MapOutputTracker:
    """Registry of :class:`MapStatus` per shuffle."""

    def __init__(self) -> None:
        self._shuffles: Dict[int, Dict[int, MapStatus]] = {}
        self._num_maps: Dict[int, int] = {}

    def register_shuffle(self, shuffle_id: int, num_maps: int) -> None:
        if shuffle_id not in self._shuffles:
            self._shuffles[shuffle_id] = {}
            self._num_maps[shuffle_id] = num_maps

    def register_map_output(self, shuffle_id: int, status: MapStatus) -> None:
        if shuffle_id not in self._shuffles:
            raise MapOutputMissingError(f"shuffle {shuffle_id} not registered")
        self._shuffles[shuffle_id][status.map_index] = status

    def unregister_shuffle(self, shuffle_id: int) -> None:
        self._shuffles.pop(shuffle_id, None)
        self._num_maps.pop(shuffle_id, None)

    def unregister_host(self, host: str) -> int:
        """Drop every map output registered at ``host`` (host failure).

        Returns the number of map outputs lost; affected shuffles become
        incomplete, so dependent stages re-run exactly those partitions.
        """
        lost = 0
        for statuses in self._shuffles.values():
            doomed = [
                index for index, status in statuses.items()
                if status.host == host
            ]
            for index in doomed:
                del statuses[index]
                lost += 1
        return lost

    def has_map_output(self, shuffle_id: int, map_index: int) -> bool:
        return map_index in self._shuffles.get(shuffle_id, {})

    def is_registered(self, shuffle_id: int) -> bool:
        return shuffle_id in self._shuffles

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_complete(self, shuffle_id: int) -> bool:
        if shuffle_id not in self._shuffles:
            return False
        return len(self._shuffles[shuffle_id]) == self._num_maps[shuffle_id]

    def map_statuses(self, shuffle_id: int) -> List[MapStatus]:
        try:
            statuses = self._shuffles[shuffle_id]
        except KeyError:
            raise MapOutputMissingError(
                f"shuffle {shuffle_id} not registered"
            ) from None
        return [statuses[index] for index in sorted(statuses)]

    def map_status(self, shuffle_id: int, map_index: int) -> MapStatus:
        statuses = self._shuffles.get(shuffle_id, {})
        if map_index not in statuses:
            raise MapOutputMissingError(
                f"shuffle {shuffle_id}: no output for map {map_index}"
            )
        return statuses[map_index]

    def reducer_input_by_host(
        self, shuffle_id: int, reduce_index: int
    ) -> Dict[str, float]:
        """Logical bytes this reducer must read, keyed by source host."""
        by_host: Dict[str, float] = {}
        for status in self.map_statuses(shuffle_id):
            size = status.shard_sizes[reduce_index]
            if size > 0:
                by_host[status.host] = by_host.get(status.host, 0.0) + size
        return by_host

    def reducer_preferred_hosts(
        self, shuffle_id: int, reduce_index: int, fraction: float
    ) -> List[str]:
        """Hosts storing at least ``fraction`` of the reducer's input.

        Mirrors Spark 1.6's ``getPreferredLocationsForShuffle``: with map
        output scattered over many hosts no host passes the threshold and
        the reducer has *no* locality preference — the behaviour that lets
        the default scheduler scatter reducers across datacenters, which
        the paper's aggregation strategy exploits in reverse.
        """
        by_host = self.reducer_input_by_host(shuffle_id, reduce_index)
        total = sum(by_host.values())
        if total <= 0:
            return []
        return [
            host for host, size in by_host.items() if size >= fraction * total
        ]

    def total_output_by_datacenter(
        self, shuffle_id: int, host_to_dc: Mapping[str, str]
    ) -> Dict[str, float]:
        """Aggregate registered map-output bytes per datacenter."""
        by_dc: Dict[str, float] = {}
        for status in self.map_statuses(shuffle_id):
            dc = host_to_dc[status.host]
            by_dc[dc] = by_dc.get(dc, 0.0) + status.total_size
        return by_dc

    def shard_size(
        self, shuffle_id: int, map_index: int, reduce_index: int
    ) -> Optional[float]:
        try:
            return self.map_status(shuffle_id, map_index).shard_sizes[reduce_index]
        except MapOutputMissingError:
            return None
