"""ShuffleWorkerPool: a dedicated, replicated shuffle-worker tier.

The FuxiShuffle argument (PAPERS.md) is that shuffle durability belongs
in a *service*, not in executor lineage: map output is handed to
dedicated shuffle workers, replicated r∈{1,2,3} ways, and a worker loss
becomes a storage-durability non-event — surviving replicas keep
serving reads with zero stage resubmission, and a background copy
restores the replication factor.

This module is the pure state machine of that tier; the ``remote``
backend (:mod:`repro.shuffle.backends.remote`) drives it and issues the
actual network flows.  The pool tracks:

* which physical hosts act as shuffle workers, per datacenter
  (placement is deterministic: the lexicographically first live hosts);
* per-worker load (assigned bytes) for least-loaded shard assignment
  and per-worker memory buffers (bytes past the buffer are *spilled* —
  charged disk time and counted, never silently dropped);
* the replica map: for every (shuffle_id, map_index) the primary
  serving host plus the extra copies (the
  :class:`~repro.shuffle.stores.ShuffleStore` holds exactly one copy,
  so replica payloads live here until promotion re-registers them).

Every iteration is over sorted keys, so pool decisions depend only on
the byte distribution — never on dict order — and replay identically
under ``REPRO_SANITIZE``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.topology import Topology
    from repro.shuffle.stores import ShuffleShard

# (shuffle_id, map_index): the unit of replication.
OutputKey = Tuple[int, int]


class ShuffleWorker:
    """One dedicated shuffle worker pinned to a physical host."""

    __slots__ = ("host", "datacenter", "assigned_bytes", "buffer_bytes",
                 "spilled_bytes")

    def __init__(self, host: str, datacenter: str, buffer_bytes: float) -> None:
        self.host = host
        self.datacenter = datacenter
        self.assigned_bytes = 0.0
        self.buffer_bytes = buffer_bytes
        self.spilled_bytes = 0.0

    def accept(self, size_bytes: float) -> float:
        """Account ``size_bytes`` stored here; returns the portion that
        overflowed the memory buffer and spilled to local disk."""
        before = self.assigned_bytes
        self.assigned_bytes = before + size_bytes
        over = self.assigned_bytes - self.buffer_bytes
        if over <= 0:
            return 0.0
        spill = min(size_bytes, over)
        self.spilled_bytes += spill
        return spill

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShuffleWorker({self.host}, {self.assigned_bytes / 1e6:.1f}MB)"
        )


class ShuffleWorkerPool:
    """Placement, load-aware assignment, and replica bookkeeping."""

    __slots__ = ("topology", "workers_per_datacenter", "buffer_bytes",
                 "_workers", "_primary", "_replicas")

    def __init__(
        self,
        topology: Topology,
        workers_per_datacenter: int = 1,
        buffer_bytes: float = 64e6,
    ) -> None:
        self.topology = topology
        self.workers_per_datacenter = workers_per_datacenter
        self.buffer_bytes = buffer_bytes
        # host -> ShuffleWorker (insertion order is provision order, but
        # every selection below sorts explicitly).
        self._workers: Dict[str, ShuffleWorker] = {}
        self._primary: Dict[OutputKey, str] = {}
        # key -> {replica host -> shard payloads}; primary excluded.
        self._replicas: Dict[OutputKey, Dict[str, List[ShuffleShard]]] = {}

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def provision(self, datacenter: str, live_hosts: List[str]) -> None:
        """(Re-)pin ``datacenter``'s shuffle workers to the first
        ``workers_per_datacenter`` live hosts, lexicographically —
        deterministic across runs and stable under unrelated losses."""
        chosen = sorted(live_hosts)[: self.workers_per_datacenter]
        for host in chosen:
            if host not in self._workers:
                self._workers[host] = ShuffleWorker(
                    host, datacenter, self.buffer_bytes
                )

    def workers_in(self, datacenter: str) -> List[ShuffleWorker]:
        return [
            self._workers[host]
            for host in sorted(self._workers)
            if self._workers[host].datacenter == datacenter
        ]

    def all_workers(self) -> List[ShuffleWorker]:
        return [self._workers[host] for host in sorted(self._workers)]

    def worker_host(self, datacenter: str) -> Optional[str]:
        """The busiest worker of ``datacenter`` — the host a
        ``shuffle_worker`` chaos event meaningfully targets."""
        workers = self.workers_in(datacenter)
        if not workers:
            return None
        return min(workers, key=lambda w: (-w.assigned_bytes, w.host)).host

    # ------------------------------------------------------------------
    # Load-aware assignment
    # ------------------------------------------------------------------
    def assign(self, datacenter: str) -> Optional[ShuffleWorker]:
        """The least-loaded worker in ``datacenter`` (ties break to the
        lexicographically first host); any worker when the datacenter
        has none left."""
        candidates = self.workers_in(datacenter) or self.all_workers()
        if not candidates:
            return None
        return min(candidates, key=lambda w: (w.assigned_bytes, w.host))

    def replica_targets(
        self, primary_host: str, count: int, exclude: Tuple[str, ...] = ()
    ) -> List[ShuffleWorker]:
        """Up to ``count`` replica workers for a primary at
        ``primary_host``: other-datacenter workers first (so a whole-DC
        outage cannot take every copy), least-loaded within each tier."""
        primary_dc = self._workers[primary_host].datacenter if (
            primary_host in self._workers
        ) else self.topology.datacenter_of(primary_host)
        banned = set(exclude) | {primary_host}
        remote = sorted(
            (w for w in self.all_workers()
             if w.host not in banned and w.datacenter != primary_dc),
            key=lambda w: (w.assigned_bytes, w.host),
        )
        local = sorted(
            (w for w in self.all_workers()
             if w.host not in banned and w.datacenter == primary_dc),
            key=lambda w: (w.assigned_bytes, w.host),
        )
        return (remote + local)[:count]

    # ------------------------------------------------------------------
    # Replica bookkeeping
    # ------------------------------------------------------------------
    def record_primary(self, key: OutputKey, host: str) -> None:
        self._primary[key] = host
        replicas = self._replicas.get(key)
        if replicas is not None:
            replicas.pop(host, None)

    def record_replica(
        self, key: OutputKey, host: str, shards: List[ShuffleShard]
    ) -> None:
        self._replicas.setdefault(key, {})[host] = shards

    def primary(self, key: OutputKey) -> Optional[str]:
        return self._primary.get(key)

    def replica_hosts(self, key: OutputKey) -> List[str]:
        return sorted(self._replicas.get(key, {}))

    def replica_shards(
        self, key: OutputKey, host: str
    ) -> List[ShuffleShard]:
        return self._replicas[key][host]

    def copy_count(self, key: OutputKey) -> int:
        """Live copies of ``key``: the primary plus its replicas."""
        return (1 if key in self._primary else 0) + len(
            self._replicas.get(key, {})
        )

    def drop_shuffle(self, shuffle_id: int) -> None:
        for key in [k for k in self._primary if k[0] == shuffle_id]:
            del self._primary[key]
        for key in [k for k in self._replicas if k[0] == shuffle_id]:
            del self._replicas[key]

    # ------------------------------------------------------------------
    # Worker loss
    # ------------------------------------------------------------------
    def on_worker_lost(
        self, host: str
    ) -> Tuple[List[OutputKey], List[OutputKey]]:
        """Forget ``host`` and report the damage.

        Returns ``(orphaned, degraded)``: keys whose *primary* copy was
        on the host (a surviving replica must be promoted, or the key
        falls back to lineage) and keys that merely lost one replica
        (re-replication restores the factor).  Both lists are sorted.
        """
        self._workers.pop(host, None)
        orphaned = sorted(
            key for key, primary in self._primary.items() if primary == host
        )
        for key in orphaned:
            del self._primary[key]
        degraded = []
        for key in sorted(self._replicas):
            replicas = self._replicas[key]
            if host in replicas:
                del replicas[host]
                if key not in orphaned:
                    degraded.append(key)
            if not replicas:
                del self._replicas[key]
        return orphaned, degraded
