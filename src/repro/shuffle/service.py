"""The shuffle service: a pluggable data path for stage boundaries.

The paper's contribution is *replacing* Spark's fetch-based shuffle with
a Push/Aggregate strategy; this module lifts that choice out of the
scheduler and into a swappable **backend**, so a shuffle strategy is a
registered component rather than a set of branches spread over the DAG
scheduler, the RDD layer, and the experiment harness.

Division of labour:

* :class:`ShuffleBackend` — the protocol every strategy implements:
  rewrite the job lineage (``prepare_job``), open per-shuffle lifecycle
  (``register_shuffle``), publish map output (``register_map_output``),
  optionally reorganise map output before reducers start
  (``prepare_shuffle_input``), serve reduce reads (``shuffle_read``) and
  receiver pulls (``transfer_read``), and account every byte it moves in
  its :class:`~repro.metrics.perf.ShuffleCounters`.
* :class:`ShuffleService` — owned by the cluster context; binds exactly
  one backend, exposes the uniform entry points the scheduler/runtime
  call, and snapshots counters for ``RunResult``/CLI reporting.

The base class implements the Spark-semantics data path (per-shard
concurrent fetches, staged-partition pulls), so backends override only
what they change.  All metadata/payload bookkeeping stays in the
existing :class:`~repro.shuffle.map_output_tracker.MapOutputTracker`,
:class:`~repro.shuffle.stores.ShuffleStore`, and
:class:`~repro.shuffle.stores.TransferTracker`; backends reorganise
*where* data lives, never what it is.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import FetchFailedError
from repro.failures.health import transfer_with_retry
from repro.metrics.perf import ShuffleCounters
from repro.shuffle.map_output_tracker import MapStatus
from repro.shuffle.stores import ShuffleShard

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.context import ClusterContext
    from repro.rdd.dependencies import ShuffleDependency, TransferDependency
    from repro.rdd.rdd import RDD
    from repro.scheduler.stage import Stage
    from repro.scheduler.task_runtime import TaskRuntime


class ShuffleBackend:
    """Base backend: Spark's fetch semantics, fully accounted.

    Subclasses override the hooks they change and set the class
    attributes:

    * ``name``               — registry key (``ShuffleConfig.backend``);
    * ``scheme_label``       — the experiment scheme this backend backs
      (matched against :class:`repro.experiments.schemes.Scheme` values);
    * ``implicit_transfers`` — True when ``prepare_job`` rewrites the
      lineage with ``transfer_to`` boundaries (the push path);
    * ``flow_tags``          — the traffic-monitor tags of every flow
      this backend issues; the counter/monitor equivalence property is
      stated over exactly these tags.
    """

    name: str = "abstract"
    scheme_label: str = ""
    implicit_transfers: bool = False
    flow_tags: Tuple[str, ...] = ("shuffle", "transfer_to")

    def __init__(self) -> None:
        self.context: ClusterContext = None  # type: ignore[assignment]
        self.counters = ShuffleCounters()

    def bind(self, context: ClusterContext) -> None:
        """Attach to one cluster context (called once by the service)."""
        self.context = context

    # ------------------------------------------------------------------
    # Lineage rewriting
    # ------------------------------------------------------------------
    def prepare_job(self, final_rdd: RDD) -> RDD:
        """Hook to rewrite the lineage before stage building (identity
        by default; the push backend embeds ``transfer_to`` here)."""
        return final_rdd

    # ------------------------------------------------------------------
    # Lifecycle and map-output publication
    # ------------------------------------------------------------------
    def register_shuffle(self, shuffle_id: int, num_maps: int) -> None:
        tracker = self.context.map_output_tracker
        known = tracker.is_registered(shuffle_id)
        tracker.register_shuffle(shuffle_id, num_maps)
        if not known:
            self.counters.shuffles_registered += 1

    def register_map_output(
        self,
        shuffle_id: int,
        map_index: int,
        host: str,
        shards: List[ShuffleShard],
    ) -> None:
        """Publish one map partition's sharded output at ``host``."""
        self.context.shuffle_store.put_map_output(
            shuffle_id, map_index, host, shards
        )
        self.context.map_output_tracker.register_map_output(
            shuffle_id,
            MapStatus(
                map_index=map_index,
                host=host,
                shard_sizes=[shard.size_bytes for shard in shards],
            ),
        )
        self.counters.map_outputs_registered += 1

    def remove_shuffle(self, shuffle_id: int) -> None:
        """Drop one shuffle's metadata and payloads."""
        self.context.map_output_tracker.unregister_shuffle(shuffle_id)
        self.context.shuffle_store.remove_shuffle(shuffle_id)

    def on_host_failure(self, host: str) -> None:
        """Invalidate backend state referring to ``host`` (no-op here)."""

    def on_blocks_lost(self, dep: ShuffleDependency, tenant: str = ""):
        """Simulation process run by the DAG scheduler after the lost
        partitions of ``dep``'s producing stage were recomputed, before
        any consumer retries its read.

        The base path needs no repair — fetch simply re-fetches the
        recovered outputs (over WAN when they are remote, Fig. 2a), and
        push recovers through its receiver stage.  The pre-merge backend
        re-consolidates here.
        """
        return
        yield  # pragma: no cover - makes this a generator

    def merger_host(self, datacenter: str) -> Optional[str]:
        """The host this backend consolidated ``datacenter``'s map
        output onto, if it has such a notion (chaos targeting hook)."""
        return None

    def shuffle_worker_host(self, datacenter: str) -> Optional[str]:
        """The dedicated shuffle-worker host serving ``datacenter``, if
        this backend runs a worker pool (``shuffle_worker`` chaos
        targeting hook; None for lineage-recovered backends)."""
        return None

    def blob_store(self):
        """The backend's object store, if it has one (``blob_outage``
        chaos targeting hook; None for every other backend)."""
        return None

    # ------------------------------------------------------------------
    # Pre-reduce reorganisation
    # ------------------------------------------------------------------
    def prepare_shuffle_input(self, dep: ShuffleDependency, tenant: str = ""):
        """Simulation process run after the map barrier, before the
        consuming stage's tasks launch.  The pre-merge backend uses it to
        consolidate map output per datacenter; fetch/push do nothing.
        ``tenant`` attributes the consolidation flows it may issue."""
        return
        yield  # pragma: no cover - makes this a generator

    # ------------------------------------------------------------------
    # Reduce-side reads
    # ------------------------------------------------------------------
    def shuffle_read(
        self, runtime: TaskRuntime, dep: ShuffleDependency, reduce_index: int
    ):
        """Fetch this reducer's shards from every map output location.

        All remote shards are fetched with *concurrent* flows — the
        bursty all-to-all pattern of §II-B — while host-local shards
        cost only disk time.  In push mode the tracker simply points at
        receiver hosts, so the identical code becomes a mostly
        datacenter-local read.
        """
        context = self.context
        statuses = context.map_output_tracker.map_statuses(dep.shuffle_id)
        store = context.shuffle_store
        tenant = runtime.task.stage.tenant or ""
        self.counters.reduce_reads += 1
        records: List[Any] = []
        flows = []
        local_bytes = 0.0
        retry_enabled = context.config.health.flow_retry_enabled
        for status in statuses:
            shard = store.get_shard(
                dep.shuffle_id, status.map_index, reduce_index
            )
            records.extend(shard.records)
            if shard.size_bytes <= 0:
                continue
            if status.host == runtime.host:
                local_bytes += shard.size_bytes
            else:
                # Bytes and blocks are counted once per logical block,
                # whatever number of flow attempts delivers it.
                runtime.shuffle_bytes_fetched += shard.size_bytes
                self.counters.blocks_fetched += 1
                if retry_enabled:
                    flows.append(
                        context.sim.spawn(
                            self._fetch_with_retry(
                                runtime, dep, status.host, shard.size_bytes
                            ),
                            name=(
                                f"fetch-retry:s{dep.shuffle_id}"
                                f"m{status.map_index}r{reduce_index}"
                            ),
                        )
                    )
                else:
                    flows.append(
                        context.fabric.transfer(
                            status.host, runtime.host, shard.size_bytes,
                            tag="shuffle", tenant=tenant,
                        )
                    )
                    self._account_flow(
                        status.host, runtime.host, shard.size_bytes,
                        shuffle_id=dep.shuffle_id,
                        recovery=runtime.task.recovery,
                    )
        if local_bytes > 0:
            yield context.sim.timeout(
                context.config.disk.read_time(local_bytes)
            )
            runtime.bytes_read_local += local_bytes
            self.counters.note_local_read(local_bytes)
        if flows:
            # With retries these are sub-processes; a FetchFailedError
            # raised by one (data gone mid-retry) fails the all_of and
            # propagates to this reducer exactly like the legacy raise.
            yield context.sim.all_of(flows)
        return records

    def _fetch_with_retry(
        self,
        runtime: TaskRuntime,
        dep: ShuffleDependency,
        src_host: str,
        size_bytes: float,
    ):
        """One remote shard's deadline-raced, re-issued fetch (see
        :func:`repro.failures.health.transfer_with_retry`).  Counters
        stay in lockstep with the traffic monitor: each issued flow is
        accounted in full, each cancelled one refunds exactly its
        undelivered remainder."""
        context = self.context
        recovery = runtime.task.recovery

        def check() -> None:
            if not context.map_output_tracker.is_complete(dep.shuffle_id):
                raise FetchFailedError(shuffle_id=dep.shuffle_id)

        yield from transfer_with_retry(
            context,
            [src_host],
            runtime.host,
            size_bytes,
            tag="shuffle",
            tenant=runtime.task.stage.tenant or "",
            on_issue=lambda src: self._account_flow(
                src, runtime.host, size_bytes,
                shuffle_id=dep.shuffle_id, recovery=recovery,
            ),
            on_cancel=lambda src, undelivered: self._account_flow(
                src, runtime.host, -undelivered,
                shuffle_id=dep.shuffle_id, recovery=recovery,
            ),
            check=check,
        )

    # ------------------------------------------------------------------
    # Transfer boundaries (the push path's unit of data movement)
    # ------------------------------------------------------------------
    def stage_transfer_partition(
        self,
        transfer_id: int,
        partition_index: int,
        host: str,
        records: List[Any],
        size_bytes: float,
    ) -> None:
        """Stage a whole partition at ``host`` for a receiver pull."""
        self.context.transfer_tracker.stage_partition(
            transfer_id, partition_index, host, records, size_bytes
        )
        self.counters.blocks_pushed += 1

    def transfer_read(
        self, runtime: TaskRuntime, dep: TransferDependency, index: int
    ):
        """Pull a staged partition from its origin (receiver task);
        a no-op when the partition is already local."""
        staged = self.context.transfer_tracker.try_get(dep.transfer_id, index)
        if staged is None:
            # The staged partition was lost with its host: FetchFailed,
            # so the DAG scheduler resubmits the producer from lineage.
            raise FetchFailedError(transfer_id=dep.transfer_id)
        if staged.host != runtime.host and staged.size_bytes > 0:
            runtime.bytes_transferred_in += staged.size_bytes
            recovery = runtime.task.recovery
            tenant = runtime.task.stage.tenant or ""
            if self.context.config.health.flow_retry_enabled:
                tracker = self.context.transfer_tracker

                def check() -> None:
                    if tracker.try_get(dep.transfer_id, index) is None:
                        raise FetchFailedError(transfer_id=dep.transfer_id)

                yield from transfer_with_retry(
                    self.context,
                    [staged.host],
                    runtime.host,
                    staged.size_bytes,
                    tag="transfer_to",
                    tenant=tenant,
                    on_issue=lambda src: self._account_flow(
                        src, runtime.host, staged.size_bytes,
                        recovery=recovery,
                    ),
                    on_cancel=lambda src, undelivered: self._account_flow(
                        src, runtime.host, -undelivered, recovery=recovery,
                    ),
                    check=check,
                )
            else:
                flow = self.context.fabric.transfer(
                    staged.host, runtime.host, staged.size_bytes,
                    tag="transfer_to", tenant=tenant,
                )
                # Account at flow creation, not completion: if this
                # attempt is interrupted (executor crash) the fabric
                # still carries the flow to completion, and the counters
                # must agree with the traffic monitor byte-for-byte.
                self._account_flow(
                    staged.host, runtime.host, staged.size_bytes,
                    recovery=recovery,
                )
                yield flow
        return list(staged.records)

    # ------------------------------------------------------------------
    # Accounting helper
    # ------------------------------------------------------------------
    def _account_flow(
        self,
        src: str,
        dst: str,
        size_bytes: float,
        shuffle_id: int | None = None,
        recovery: bool = False,
    ) -> None:
        topology = self.context.topology
        self.counters.note_flow(
            topology.datacenter_of(src),
            topology.datacenter_of(dst),
            size_bytes,
            shuffle_id=shuffle_id,
            recovery=recovery,
        )


class ShuffleService:
    """Per-context facade over exactly one :class:`ShuffleBackend`.

    The scheduler, the task runtime, and the task runner call only this
    class; which strategy actually moves the bytes is decided once, at
    context construction, from ``ShuffleConfig.backend_name``.
    """

    def __init__(self, context: ClusterContext, backend: ShuffleBackend) -> None:
        self.context = context
        self.backend = backend
        backend.bind(context)

    # ------------------------------------------------------------------
    @property
    def backend_name(self) -> str:
        return self.backend.name

    @property
    def counters(self) -> ShuffleCounters:
        return self.backend.counters

    # ------------------------------------------------------------------
    # Uniform entry points (delegation, no strategy branches)
    # ------------------------------------------------------------------
    def prepare_job(self, final_rdd: RDD) -> RDD:
        return self.backend.prepare_job(final_rdd)

    def register_shuffle(self, shuffle_id: int, num_maps: int) -> None:
        self.backend.register_shuffle(shuffle_id, num_maps)

    def register_map_output(
        self,
        shuffle_id: int,
        map_index: int,
        host: str,
        shards: List[ShuffleShard],
    ) -> None:
        self.backend.register_map_output(shuffle_id, map_index, host, shards)

    def prepare_stage_inputs(self, stage: Stage):
        """Run the backend's pre-reduce hook for every shuffle this
        stage consumes (a simulation sub-process of the stage)."""
        seen = set()
        for dep in stage.boundary_shuffle_deps:
            if dep.shuffle_id in seen:
                continue
            seen.add(dep.shuffle_id)
            yield from self.backend.prepare_shuffle_input(
                dep, tenant=stage.tenant or ""
            )

    def shuffle_read(
        self, runtime: TaskRuntime, dep: ShuffleDependency, reduce_index: int
    ):
        # Spark's FetchFailed check: a reducer must see *every* map
        # output.  After a host loss the tracker silently drops the lost
        # entries, so an incomplete read here means blocks are gone —
        # fail fast and let the DAG scheduler recover from lineage
        # instead of returning silently truncated input.
        if not self.context.map_output_tracker.is_complete(dep.shuffle_id):
            raise FetchFailedError(shuffle_id=dep.shuffle_id)
        records = yield from self.backend.shuffle_read(
            runtime, dep, reduce_index
        )
        return records

    def stage_transfer_partition(
        self,
        transfer_id: int,
        partition_index: int,
        host: str,
        records: List[Any],
        size_bytes: float,
    ) -> None:
        self.backend.stage_transfer_partition(
            transfer_id, partition_index, host, records, size_bytes
        )

    def transfer_read(
        self, runtime: TaskRuntime, dep: TransferDependency, index: int
    ):
        records = yield from self.backend.transfer_read(runtime, dep, index)
        return records

    def remove_shuffle(self, shuffle_id: int) -> None:
        self.backend.remove_shuffle(shuffle_id)

    def on_host_failure(self, host: str) -> None:
        self.backend.on_host_failure(host)

    def on_blocks_lost(self, dep: ShuffleDependency, tenant: str = ""):
        yield from self.backend.on_blocks_lost(dep, tenant=tenant)

    def merger_host(self, datacenter: str) -> Optional[str]:
        return self.backend.merger_host(datacenter)

    def shuffle_worker_host(self, datacenter: str) -> Optional[str]:
        return self.backend.shuffle_worker_host(datacenter)

    def blob_store(self):
        return self.backend.blob_store()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def perf_snapshot(self) -> Dict[str, float]:
        """Flat counter summary for ``RunResult.shuffle_perf``."""
        return self.counters.as_dict()
