"""Shuffle machinery: the pluggable service, trackers, and data stores.

* :class:`~repro.shuffle.service.ShuffleService` /
  :class:`~repro.shuffle.service.ShuffleBackend` — the swappable data
  path: how map output is placed, reorganised, and served to reducers.
  Built-in strategies live in :mod:`repro.shuffle.backends` (fetch,
  push_aggregate, pre_merge) and are addressed by name through
  ``ShuffleConfig.backend``.
* :class:`~repro.shuffle.map_output_tracker.MapOutputTracker` — where each
  map task's sharded output lives and how big each shard is (the driver-
  side metadata Spark keeps under the same name).
* :class:`~repro.shuffle.stores.ShuffleStore` — the shard payloads,
  indexed by (shuffle, map partition, reduce partition) and by host, so
  reads can be charged as local disk or network flows.
* :class:`~repro.shuffle.stores.TransferTracker` — the analogous metadata
  and payload store for ``transfer_to`` boundaries: whole partitions
  staged at their origin host, waiting for a receiver task to pull them.
"""

from repro.shuffle.map_output_tracker import MapOutputTracker, MapStatus
from repro.shuffle.service import ShuffleBackend, ShuffleService
from repro.shuffle.stores import ShuffleStore, TransferTracker, StagedPartition

__all__ = [
    "MapOutputTracker",
    "MapStatus",
    "ShuffleBackend",
    "ShuffleService",
    "ShuffleStore",
    "TransferTracker",
    "StagedPartition",
]
