"""The Spark-baseline backend: fetch-based shuffle, no lineage rewrite.

This is "the deployment of Spark across geo-distributed datacenters,
without any optimization in terms of the wide-area network" (§V-A):
reducers fetch every shard from wherever its map task wrote it, one
concurrent flow per remote shard.  The whole data path is inherited from
:class:`~repro.shuffle.service.ShuffleBackend` — this class exists so
the baseline is a *named, registered* strategy rather than the implicit
absence of one.
"""

from __future__ import annotations

from repro.shuffle.service import ShuffleBackend


class FetchShuffleBackend(ShuffleBackend):
    """Spark's default fetch-based shuffle (the paper's baseline)."""

    name = "fetch"
    scheme_label = "Spark"
    implicit_transfers = False
    flow_tags = ("shuffle", "transfer_to")
