"""Remote shuffle service backend: durability instead of lineage.

FuxiShuffle-style (PAPERS.md): after a shuffle's map stage completes,
every map output is handed off to a dedicated per-datacenter *shuffle
worker* (:class:`~repro.shuffle.worker_pool.ShuffleWorkerPool`) and
replicated ``r`` ∈ {1, 2, 3} ways, preferring workers in *other*
datacenters so a whole-DC outage cannot take every copy.  ``r`` adapts
to cluster health: the configured base is raised (capped at 3) while
any WAN circuit breaker is open or any datacenter is blacklist-excluded
— the LinkHealthMonitor EWMA and BlacklistTracker signals from the
health layer.

Failure semantics — the point of this backend:

* a shuffle-worker loss promotes a surviving replica to primary
  *synchronously inside the failure handler*, so the map-output tracker
  never stays incomplete: reducers keep reading with **zero stage
  resubmissions**;
* a background re-replication flow then restores ``r`` (recovery-tagged
  ``shuffle_replicate`` traffic, drained at the next stage barrier);
* only when the *last* copy dies does the tracker stay incomplete and
  the DAG scheduler fall back to lineage recovery, after which
  ``on_blocks_lost`` re-uploads the recomputed outputs.

Correctness: hand-off and promotion relocate shards without touching
records, and reads concatenate in global map-index order — reduce input
stays byte-identical to the fetch baseline (pinned by the equivalence
suite).  Every flow is accounted at issue with an exact cancel refund,
so counter==monitor reconciliation holds at every quiescent point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Set, Tuple

from repro.shuffle.service import ShuffleBackend
from repro.shuffle.worker_pool import ShuffleWorker, ShuffleWorkerPool

if TYPE_CHECKING:  # pragma: no cover
    from repro.rdd.dependencies import ShuffleDependency
    from repro.scheduler.task_runtime import TaskRuntime
    from repro.shuffle.map_output_tracker import MapStatus
    from repro.shuffle.stores import ShuffleShard


class RemoteShuffleBackend(ShuffleBackend):
    """Dedicated shuffle workers with adaptive replication."""

    name = "remote"
    scheme_label = "RemoteShuffle"
    implicit_transfers = False
    flow_tags = ("shuffle", "shuffle_upload", "shuffle_replicate",
                 "transfer_to")

    def __init__(self) -> None:
        super().__init__()
        self._pool: ShuffleWorkerPool | None = None
        # Shuffles whose outputs were handed to the worker pool; a
        # shuffle uploads at most once (durability then maintains it).
        self._uploaded: Set[int] = set()
        # Background re-replication processes still in flight; drained
        # at the next stage barrier so the backend is quiescent whenever
        # the scheduler observes it.
        self._repairs: List[Any] = []

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ShuffleWorkerPool:
        if self._pool is None:
            config = self.context.config.shuffle
            self._pool = ShuffleWorkerPool(
                self.context.topology,
                workers_per_datacenter=config.shuffle_workers_per_datacenter,
                buffer_bytes=config.shuffle_worker_buffer_bytes,
            )
            for datacenter in sorted(self.context.topology.datacenters):
                self._provision(datacenter)
        return self._pool

    def _provision(self, datacenter: str) -> None:
        """Pin ``datacenter``'s workers, preferring blacklist-healthy
        hosts (any live host beats none when all are suspect)."""
        live = self.context.workers_in(datacenter)
        blacklist = self.context.blacklist
        if blacklist.enabled:
            healthy = [h for h in live if not blacklist.is_excluded(h)]
            if healthy:
                live = healthy
        if live:
            self._pool.provision(datacenter, live)

    def _replication_factor(self) -> int:
        """Base ``remote_replication`` plus one per active health alarm
        (open WAN breaker into any DC, blacklist-excluded DC), capped to
        r ∈ [1, 3] — a deterministic function of current health state."""
        context = self.context
        factor = context.config.shuffle.remote_replication
        datacenters = sorted(context.topology.datacenters)
        if any(
            context.link_health.datacenter_quarantined(dc)
            for dc in datacenters
        ):
            factor += 1
        if context.blacklist.enabled and any(
            context.blacklist.is_datacenter_excluded(dc)
            for dc in datacenters
        ):
            factor += 1
        return max(1, min(3, factor))

    def shuffle_worker_host(self, datacenter: str) -> str | None:
        if self._pool is None:
            return None
        return self._pool.worker_host(datacenter)

    # ------------------------------------------------------------------
    # Hand-off: upload + replicate at the map barrier
    # ------------------------------------------------------------------
    def prepare_shuffle_input(self, dep: ShuffleDependency, tenant: str = ""):
        # Stage barrier: finish outstanding background repairs first, so
        # reads never race a half-made replica and the counters are
        # reconciled whenever the scheduler proceeds.
        if self._repairs:
            pending = [p for p in self._repairs if not p.triggered]
            self._repairs = []
            if pending:
                yield self.context.sim.all_of(pending)
        if dep.shuffle_id in self._uploaded:
            return
        yield from self._upload(dep, recovery=False, tenant=tenant)

    def _upload(self, dep: ShuffleDependency, recovery: bool, tenant: str = ""):
        shuffle_id = dep.shuffle_id
        self._uploaded.add(shuffle_id)
        context = self.context
        topology = context.topology
        pool = self._ensure_pool()
        statuses = context.map_output_tracker.map_statuses(shuffle_id)
        factor = self._replication_factor()

        # Phase 1: upload each map output to the least-loaded shuffle
        # worker of its own datacenter (cheap intra-DC flows, like the
        # pre-merge hop, but onto the dedicated tier).
        plan: List[Tuple[MapStatus, ShuffleWorker, List[ShuffleShard]]] = []
        upload_flows = []
        spilled = 0.0
        for status in statuses:
            key = (shuffle_id, status.map_index)
            if recovery and pool.primary(key) == status.host:
                continue  # this copy survived; nothing to re-upload
            worker = pool.assign(topology.datacenter_of(status.host))
            if worker is None:
                continue  # no workers left anywhere: stay scattered
            shards = [
                context.shuffle_store.get_shard(
                    shuffle_id, status.map_index, reduce_index
                )
                for reduce_index in range(len(status.shard_sizes))
            ]
            size = status.total_size
            spilled += worker.accept(size)
            if status.host != worker.host and size > 0:
                upload_flows.append(
                    context.fabric.transfer(
                        status.host, worker.host, size,
                        tag="shuffle_upload", tenant=tenant,
                    )
                )
                self._account_flow(
                    status.host, worker.host, size,
                    shuffle_id=shuffle_id, recovery=recovery,
                )
            plan.append((status, worker, shards))
        if upload_flows:
            yield context.sim.all_of(upload_flows)
        if spilled > 0:
            self.counters.spill_bytes += spilled
            yield context.sim.timeout(context.config.disk.write_time(spilled))

        # Phase 2: replicate each primary to r-1 other workers (other
        # datacenters first), sourced from the freshly-loaded primary.
        replica_plan: List[Tuple[int, ShuffleWorker, List[ShuffleShard],
                                 List[ShuffleWorker]]] = []
        replica_flows = []
        for status, worker, shards in plan:
            targets = pool.replica_targets(worker.host, factor - 1)
            size = status.total_size
            for target in targets:
                spill = target.accept(size)
                if spill > 0:
                    self.counters.spill_bytes += spill
                self.counters.replication_bytes += size
                if size > 0:
                    replica_flows.append(
                        context.fabric.transfer(
                            worker.host, target.host, size,
                            tag="shuffle_replicate", tenant=tenant,
                        )
                    )
                    self._account_flow(
                        worker.host, target.host, size,
                        shuffle_id=shuffle_id, recovery=recovery,
                    )
            replica_plan.append((status.map_index, worker, shards, targets))
        if replica_flows:
            yield context.sim.all_of(replica_flows)

        # Relocate metadata/payloads only after every flow landed:
        # reducers launch after this process returns, so no read can
        # observe a half-made hand-off.
        for map_index, worker, shards, targets in replica_plan:
            key = (shuffle_id, map_index)
            current = context.map_output_tracker.map_statuses(shuffle_id)
            status_host = next(
                (s.host for s in current if s.map_index == map_index), None
            )
            if status_host != worker.host:
                self.register_map_output(
                    shuffle_id, map_index, worker.host, shards
                )
                self.counters.map_outputs_registered -= 1  # relocation
            pool.record_primary(key, worker.host)
            for target in targets:
                pool.record_replica(key, target.host, shards)

    # ------------------------------------------------------------------
    # Coalesced reduce read (one flow per source worker host)
    # ------------------------------------------------------------------
    def shuffle_read(
        self, runtime: TaskRuntime, dep: ShuffleDependency, reduce_index: int
    ):
        """After the hand-off every datacenter exposes at most a few
        worker hosts, so a reducer opens one coalesced flow per source
        host.  Records concatenate in map-index order — byte-identical
        reduce input to the fetch baseline."""
        context = self.context
        statuses = context.map_output_tracker.map_statuses(dep.shuffle_id)
        store = context.shuffle_store
        self.counters.reduce_reads += 1
        records: List[Any] = []
        by_source: Dict[str, float] = {}
        for status in statuses:
            shard = store.get_shard(
                dep.shuffle_id, status.map_index, reduce_index
            )
            records.extend(shard.records)
            if shard.size_bytes > 0:
                by_source[status.host] = (
                    by_source.get(status.host, 0.0) + shard.size_bytes
                )
        local_bytes = by_source.pop(runtime.host, 0.0)
        flows = []
        retry_enabled = context.config.health.flow_retry_enabled
        for source in sorted(by_source):
            size = by_source[source]
            runtime.shuffle_bytes_fetched += size
            self.counters.blocks_fetched += 1
            if retry_enabled:
                flows.append(
                    context.sim.spawn(
                        self._fetch_with_retry(runtime, dep, source, size),
                        name=(
                            f"fetch-retry:s{dep.shuffle_id}"
                            f"r{reduce_index}@{source}"
                        ),
                    )
                )
            else:
                flows.append(
                    context.fabric.transfer(
                        source, runtime.host, size, tag="shuffle",
                        tenant=runtime.tenant,
                    )
                )
                self._account_flow(
                    source, runtime.host, size, shuffle_id=dep.shuffle_id,
                    recovery=runtime.task.recovery,
                )
        if local_bytes > 0:
            yield context.sim.timeout(
                context.config.disk.read_time(local_bytes)
            )
            runtime.bytes_read_local += local_bytes
            self.counters.note_local_read(local_bytes)
        if flows:
            yield context.sim.all_of(flows)
        return records

    # ------------------------------------------------------------------
    # Failure handling: promote, then re-replicate in the background
    # ------------------------------------------------------------------
    def on_host_failure(self, host: str) -> None:
        """Called from ``fail_host`` *after* the tracker and store
        dropped the dead host's entries — promotion below re-registers
        surviving replicas synchronously, so the tracker is complete
        again before any other simulation event can observe the gap."""
        if self._pool is None:
            return
        pool = self._pool
        context = self.context
        datacenter = context.topology.datacenter_of(host)
        was_worker = host in {w.host for w in pool.all_workers()}
        orphaned, degraded = pool.on_worker_lost(host)
        repair_keys: List[Tuple[int, int]] = []
        for key in orphaned:
            survivors = pool.replica_hosts(key)
            if not survivors:
                # Last copy died: the tracker stays incomplete and the
                # next read escalates to lineage recovery.
                self._uploaded.discard(key[0])
                continue
            new_primary = survivors[0]
            shards = pool.replica_shards(key, new_primary)
            self.register_map_output(key[0], key[1], new_primary, shards)
            self.counters.map_outputs_registered -= 1  # promotion
            self.counters.replica_promotions += 1
            pool.record_primary(key, new_primary)
            repair_keys.append(key)
        repair_keys.extend(degraded)
        if was_worker:
            self._provision(datacenter)
        factor = self._replication_factor()
        for key in sorted(set(repair_keys)):
            primary = pool.primary(key)
            if primary is None:
                continue
            missing = factor - pool.copy_count(key)
            if missing <= 0:
                continue
            status = next(
                (
                    s
                    for s in context.map_output_tracker.map_statuses(key[0])
                    if s.map_index == key[1]
                ),
                None,
            )
            if status is None:
                continue
            shards = [
                context.shuffle_store.get_shard(key[0], key[1], index)
                for index in range(len(status.shard_sizes))
            ]
            exclude = tuple(pool.replica_hosts(key))
            for target in pool.replica_targets(primary, missing, exclude):
                self._repairs.append(
                    context.sim.spawn(
                        self._re_replicate(key, primary, target, shards),
                        name=f"re-replicate:s{key[0]}m{key[1]}@{target.host}",
                    )
                )

    def _re_replicate(
        self,
        key: Tuple[int, int],
        src_host: str,
        target: ShuffleWorker,
        shards: List[ShuffleShard],
    ):
        """Background copy restoring the replication factor (recovery-
        tagged; accounted at issue with the usual exactness)."""
        pool = self._pool
        context = self.context
        size = sum(shard.size_bytes for shard in shards)
        if size > 0:
            flow = context.fabric.transfer(
                src_host, target.host, size,
                tag="shuffle_replicate", tenant="",
            )
            self._account_flow(
                src_host, target.host, size, shuffle_id=key[0], recovery=True,
            )
            self.counters.replication_bytes += size
            self.counters.rereplication_bytes += size
            yield flow
        # The copy only exists once it fully arrived — and only if both
        # the target worker and the shuffle are still alive.
        if pool is None or pool.primary(key) is None:
            return
        if target.host not in {w.host for w in pool.all_workers()}:
            return
        spill = target.accept(size)
        if spill > 0:
            self.counters.spill_bytes += spill
        pool.record_replica(key, target.host, shards)

    def on_blocks_lost(self, dep: ShuffleDependency, tenant: str = ""):
        """Lineage fallback (last replica died): the recomputed outputs
        sit at scattered executor hosts — hand them back to the worker
        pool, recovery-tagged, before any consumer retries its read."""
        self._uploaded.discard(dep.shuffle_id)
        yield from self._upload(dep, recovery=True, tenant=tenant)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def remove_shuffle(self, shuffle_id: int) -> None:
        super().remove_shuffle(shuffle_id)
        self._uploaded.discard(shuffle_id)
        if self._pool is not None:
            self._pool.drop_shuffle(shuffle_id)
